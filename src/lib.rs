//! # VUsion — secure page fusion, reproduced in Rust
//!
//! This workspace reproduces **"Secure Page Fusion with VUsion"**
//! (Oliverio, Razavi, Bos, Giuffrida — SOSP 2017) on a simulated memory
//! subsystem: a complete software model of physical frames, allocators,
//! page tables, TLBs, a last-level cache and Rowhammer-prone DRAM, with
//! three page-fusion engines on top — Linux **KSM**, Windows **WPF**, and
//! the paper's secure **VUsion** — plus the paper's six attacks and every
//! table/figure of its evaluation.
//!
//! ## Quick start
//!
//! ```
//! use vusion::prelude::*;
//!
//! // A machine running the secure VUsion engine.
//! let mut sys = EngineKind::VUsion.build_system(MachineConfig::test_small());
//!
//! // Two "VMs" with one identical page each.
//! let a = sys.machine.spawn("vm-a").expect("spawn");
//! let b = sys.machine.spawn("vm-b").expect("spawn");
//! for pid in [a, b] {
//!     sys.machine.mmap(pid, Vma::anon(VirtAddr(0x10000), 16, Protection::rw()));
//!     sys.machine.madvise_mergeable(pid, VirtAddr(0x10000), 16);
//!     sys.write_page(pid, VirtAddr(0x10000), &[7u8; 4096]);
//! }
//!
//! // Let the scanner run: the duplicates fuse...
//! sys.force_scans(14);
//! assert_eq!(sys.policy.pages_saved(), 1);
//!
//! // ...and any access transparently unmerges with identical timing for
//! // merged and non-merged pages (the Same Behavior principle).
//! assert_eq!(sys.read(a, VirtAddr(0x10000)), 7);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`mem`] | frames, buddy/linear/random-pool allocators, deferred free |
//! | [`mmu`] | PTEs, 4-level page tables, VMAs, TLB |
//! | [`cache`] | last-level cache with page coloring |
//! | [`dram`] | DRAM geometry, row buffers, Rowhammer fault model |
//! | [`kernel`] | the simulated machine, fault handling, khugepaged |
//! | [`obs`] | deterministic tracer, metrics registry, cycle profiler |
//! | [`core`] | the fusion engines: KSM, WPF, VUsion |
//! | [`attacks`] | the six attacks of the paper's Table 1 |
//! | [`stats`] | KS tests, histograms, percentiles |
//! | [`workloads`] | VM images and benchmark drivers |

pub mod diffsurface;
pub mod repro;

pub use vusion_attacks as attacks;
pub use vusion_cache as cache;
pub use vusion_core as core;
pub use vusion_dram as dram;
pub use vusion_kernel as kernel;
pub use vusion_mem as mem;
pub use vusion_mmu as mmu;
pub use vusion_obs as obs;
pub use vusion_stats as stats;
pub use vusion_workloads as workloads;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use vusion_core::{EngineKind, Ksm, KsmConfig, VUsion, VUsionConfig, Wpf, WpfConfig};
    pub use vusion_kernel::{
        FusionPolicy, Khugepaged, Machine, MachineConfig, NoFusion, Pid, PressureBand,
        PressureConfig, PressureGovernor, PressureStats, System, SystemReport,
    };
    pub use vusion_mem::{
        CrashPlan, CrashSite, FaultPlan, FaultPlanError, FrameId, MmError, PhysAddr, VirtAddr,
        HUGE_PAGE_SIZE, PAGE_SIZE,
    };
    pub use vusion_mmu::{GuestTag, Protection, Pte, PteFlags, Vma};
    pub use vusion_obs::{Coverage, InstantKind, MetricsSnapshot, Profile, SpanKind, Tracer};
    pub use vusion_workloads::images::{ImageCatalog, ImageSpec};
}
