//! Failure bundles: self-contained repro artifacts for chaos failures.
//!
//! When a chaos or security-invariant assertion fails, the harness dumps a
//! [`Bundle`] — `{engine, seed, fault plan, crash plan, base snapshot,
//! event journal, expected digest}` — into [`REPRO_DIR`]. The
//! `replay` example (or [`Bundle::replay`] from test code) rebuilds the
//! identical system, restores the snapshot, re-arms the crash plan if the
//! failing run had one armed, re-executes the journal, and checks that
//! the machine digest matches the one recorded at failure time. A match
//! means the failure is deterministic and the bundle alone reproduces it.
//!
//! Bundles record only the *deltas* from [`MachineConfig::test_small`]
//! (frame count, reserved region, THP, weak-row fraction, seed, plans) —
//! the configuration every chaos and security test starts from. A bundle
//! from an exotic cache/DRAM geometry would fail loudly on restore (the
//! snapshot verifies geometry), never silently mis-replay.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, JournalEvent, Machine, MachineConfig, System};
use vusion_mem::{CrashPlan, FaultPlan, FrameId};
use vusion_snapshot::{fnv1a64, Reader, SnapshotError, Writer};

/// Where [`Bundle::dump`] writes and `examples/replay.rs` looks.
pub const REPRO_DIR: &str = "bench_logs/repro";

/// Newest bundles kept by the [`Bundle::dump`] rotation; older ones are
/// deleted so a flaky suite cannot fill the disk.
pub const KEEP_BUNDLES: usize = 8;

/// Everything needed to re-execute a failing chaos run.
#[derive(Clone)]
pub struct Bundle {
    /// Engine the failing run used.
    pub kind: EngineKind,
    /// Physical frames (from the run's config).
    pub frames: u64,
    /// Reserved top-of-memory frames (WPF linear region).
    pub reserved_top_frames: u64,
    /// Whether huge demand paging was on.
    pub thp: bool,
    /// Rowhammer weak-cell density.
    pub weak_row_fraction: f64,
    /// Machine seed.
    pub seed: u64,
    /// Fault-injection plan (journaled behavior; replayed).
    pub fault_plan: FaultPlan,
    /// Crash-injection plan (re-armed on replay iff `crashes_armed`).
    pub crash_plan: CrashPlan,
    /// Whether the failing run armed its crash plan after the snapshot.
    pub crashes_armed: bool,
    /// Free-form context (which test, which assertion).
    pub note: String,
    /// The assertion message that fired.
    pub failing_step: String,
    /// Chrome `trace_event` JSON of the tracer ring buffer at failure
    /// time — empty when the failing run had tracing disabled.
    pub trace_tail: String,
    /// Canonical side-channel surface JSON at failure time — empty when
    /// the failing run had the surface recorder disabled.
    pub surface_tail: String,
    /// [`machine_digest`] of the machine at failure time.
    pub digest: u64,
    /// Sealed [`System::snapshot`] taken when journaling began.
    pub snapshot: Vec<u8>,
    /// Every journaled event between the snapshot and the failure.
    pub journal: Vec<JournalEvent>,
}

/// What [`Bundle::replay`] observed.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Digest recorded in the bundle at failure time.
    pub digest_expected: u64,
    /// Digest of the machine after restore + replay.
    pub digest_replayed: u64,
    /// Frame-accounting violations after replay (non-empty exactly when
    /// the original failure was an audit failure).
    pub audit_violations: Vec<String>,
    /// Crash sites that fired during the replay.
    pub crashes_fired: u64,
}

impl ReplayOutcome {
    /// Whether the replay converged to the recorded failing state.
    pub fn reproduced(&self) -> bool {
        self.digest_replayed == self.digest_expected
    }
}

/// What [`Bundle::shrink`] produced: the minimal bundle plus the search's
/// bookkeeping.
#[derive(Clone)]
pub struct ShrinkOutcome {
    /// Events in the journal before shrinking.
    pub original_len: usize,
    /// Restore+replay probes the search spent.
    pub replays: u64,
    /// The failure signature the shrunk journal still reproduces.
    pub signature: u64,
    /// The bundle carrying the minimal journal (digest recomputed so it
    /// replays green through [`Bundle::replay`]).
    pub shrunk: Bundle,
}

impl ShrinkOutcome {
    /// Events remaining after shrinking.
    pub fn shrunk_len(&self) -> usize {
        self.shrunk.journal.len()
    }
}

/// Loading or dumping a bundle failed.
#[derive(Debug)]
pub enum BundleError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The bundle bytes are corrupt or from an incompatible version.
    Snapshot(SnapshotError),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "bundle I/O error: {e}"),
            Self::Snapshot(e) => write!(f, "bundle decode error: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<SnapshotError> for BundleError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

fn kind_tag(kind: EngineKind) -> u8 {
    match kind {
        EngineKind::NoFusion => 0,
        EngineKind::Ksm => 1,
        EngineKind::KsmCoa => 2,
        EngineKind::KsmZeroOnly => 3,
        EngineKind::Wpf => 4,
        EngineKind::VUsion => 5,
        EngineKind::VUsionThp => 6,
    }
}

fn kind_from_tag(tag: u8) -> Result<EngineKind, SnapshotError> {
    Ok(match tag {
        0 => EngineKind::NoFusion,
        1 => EngineKind::Ksm,
        2 => EngineKind::KsmCoa,
        3 => EngineKind::KsmZeroOnly,
        4 => EngineKind::Wpf,
        5 => EngineKind::VUsion,
        6 => EngineKind::VUsionThp,
        _ => return Err(SnapshotError::Corrupt("unknown engine tag")),
    })
}

/// Order-insensitive-free digest of the externally observable machine
/// state: every frame's content hash and refcount, plus the full stats
/// block. Two machines with equal digests hold byte-identical memory
/// images (up to 64-bit hash collision) and identical accounting — the
/// equality the replay contract promises.
pub fn machine_digest(m: &Machine) -> u64 {
    let mut w = Writer::new();
    let mem = m.mem();
    for i in 0..mem.frame_count() {
        let f = FrameId(i as u64);
        w.u64(mem.hash_page(f));
        w.u32(mem.info(f).refcount);
    }
    let s = m.stats();
    for v in [
        s.reads,
        s.writes,
        s.prefetches,
        s.faults_not_mapped,
        s.faults_trapped,
        s.faults_write_protected,
        s.demand_zero,
        s.demand_huge,
        s.demand_file,
        s.cow_copies,
        s.bit_flips,
        s.oom_events,
        s.injected_faults,
        s.scan_retries,
        s.deferred_drains,
    ] {
        w.u64(v);
    }
    fnv1a64(&w.into_bytes())
}

/// Asserts that [`Machine::audit_frames`] comes back empty.
///
/// The chaos harness calls this from its `Drop` impl so *every* chaos
/// test ends with a frame-accounting audit — refcounts vs. mappings,
/// allocator vs. frame states — whether or not the test body remembered
/// to check explicitly.
///
/// # Panics
///
/// Panics, listing the violations, if the audit finds any.
pub fn assert_frames_sound(m: &Machine, label: &str) {
    let violations = m.audit_frames();
    assert!(
        violations.is_empty(),
        "frame audit failed at end of `{label}`: {violations:?}"
    );
}

impl Bundle {
    /// Builds a bundle from a failing system. `cfg` is the *pre-adapt*
    /// config the run was built from (the same value handed to
    /// [`EngineKind::build_system`]); `base_snapshot` is the
    /// [`System::snapshot`] taken when the journal was last cleared.
    pub fn capture<P: FusionPolicy>(
        kind: EngineKind,
        cfg: &MachineConfig,
        base_snapshot: Vec<u8>,
        sys: &System<P>,
        crashes_armed: bool,
        note: &str,
        failing_step: &str,
    ) -> Self {
        Self {
            kind,
            frames: cfg.frames,
            reserved_top_frames: cfg.reserved_top_frames,
            thp: cfg.thp,
            weak_row_fraction: cfg.weak_row_fraction,
            seed: cfg.seed,
            fault_plan: cfg.fault_plan,
            crash_plan: cfg.crash_plan,
            crashes_armed,
            note: note.to_string(),
            failing_step: failing_step.to_string(),
            trace_tail: if sys.machine.obs().enabled() {
                sys.machine.obs().tracer().chrome_trace_json()
            } else {
                String::new()
            },
            surface_tail: if sys.machine.surface_enabled() {
                sys.surface_json()
            } else {
                String::new()
            },
            digest: machine_digest(&sys.machine),
            snapshot: base_snapshot,
            journal: sys.machine.journal().to_vec(),
        }
    }

    /// Rebuilds the run's config: [`MachineConfig::test_small`] with the
    /// recorded deltas applied. [`EngineKind::build_system`] re-runs the
    /// engine's `adapt_machine`, exactly as the original run did.
    pub fn config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::test_small()
            .with_seed(self.seed)
            .with_fault_plan(self.fault_plan)
            .with_crash_plan(self.crash_plan);
        cfg.frames = self.frames;
        cfg.reserved_top_frames = self.reserved_top_frames;
        cfg.thp = self.thp;
        cfg.weak_row_fraction = self.weak_row_fraction;
        cfg
    }

    /// Builds a fresh system identical to the one the failing run started
    /// from (before the snapshot is restored into it).
    pub fn build_system(&self) -> System<Box<dyn FusionPolicy>> {
        self.kind.build_system(self.config())
    }

    /// Re-executes the failing run: restore the base snapshot, re-arm the
    /// crash plan if the original run had armed it, replay the journal,
    /// digest the result.
    pub fn replay(&self) -> Result<ReplayOutcome, SnapshotError> {
        let sys = self.replay_with(&self.journal)?;
        Ok(ReplayOutcome {
            digest_expected: self.digest,
            digest_replayed: machine_digest(&sys.machine),
            audit_violations: sys.machine.audit_frames(),
            crashes_fired: sys.machine.crashes_fired(),
        })
    }

    /// Like [`Self::replay`], but re-executes an arbitrary journal —
    /// typically a subset of `self.journal` proposed by the shrinker —
    /// and hands back the whole replayed system so the caller can run any
    /// invariant over it, not just the digest comparison.
    pub fn replay_with(
        &self,
        journal: &[JournalEvent],
    ) -> Result<System<Box<dyn FusionPolicy>>, SnapshotError> {
        let mut sys = self.build_system();
        sys.restore(&self.snapshot)?;
        if self.crashes_armed {
            sys.machine.arm_crashes();
        }
        sys.replay(journal);
        Ok(sys)
    }

    /// Delta-debugs the journal down to a minimal failing core.
    ///
    /// `fails` inspects a replayed system and returns `Some(signature)`
    /// when it exhibits the failure (the signature identifies *which*
    /// failure — e.g. a hash of the violated invariant's name), `None`
    /// when it is healthy. The loop is the classic ddmin chunk
    /// elimination: partition the journal into `n` chunks, try dropping
    /// each chunk, keep any drop that still reproduces the *same*
    /// signature, double the granularity when nothing can be dropped.
    ///
    /// Returns `Ok(None)` when the full journal does not reproduce the
    /// failure (nothing to shrink — the failure is not journal-derived).
    /// Otherwise returns a [`ShrinkOutcome`] whose bundle carries the
    /// minimal journal and a recomputed digest, so `shrunk.replay()`
    /// reports `reproduced()` like any hand-captured bundle.
    ///
    /// `max_replays` bounds the search (each probe is a full
    /// restore+replay); the loop stops early and keeps its best-so-far
    /// journal when the budget runs out.
    pub fn shrink<F>(
        &self,
        mut fails: F,
        max_replays: u64,
    ) -> Result<Option<ShrinkOutcome>, SnapshotError>
    where
        F: FnMut(&System<Box<dyn FusionPolicy>>) -> Option<u64>,
    {
        let mut replays: u64 = 0;
        let mut probe =
            |journal: &[JournalEvent], replays: &mut u64| -> Result<Option<u64>, SnapshotError> {
                *replays += 1;
                let sys = self.replay_with(journal)?;
                Ok(fails(&sys))
            };
        let Some(target) = probe(&self.journal, &mut replays)? else {
            return Ok(None);
        };
        let mut current = self.journal.clone();
        let mut n: usize = 2;
        'outer: while current.len() >= 2 && replays < max_replays {
            let chunk = current.len().div_ceil(n);
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let candidate: Vec<JournalEvent> = current[..start]
                    .iter()
                    .chain(current[end..].iter())
                    .cloned()
                    .collect();
                if candidate.len() < current.len()
                    && probe(&candidate, &mut replays)? == Some(target)
                {
                    // The dropped chunk was irrelevant: keep the smaller
                    // journal and re-partition it coarsely again.
                    current = candidate;
                    n = 2;
                    continue 'outer;
                }
                if replays >= max_replays {
                    break 'outer;
                }
                start = end;
            }
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
        // Rebuild a digest-stable bundle around the minimal journal so it
        // replays green through the ordinary `Bundle::replay` contract.
        let sys = self.replay_with(&current)?;
        let mut shrunk = self.clone();
        shrunk.digest = machine_digest(&sys.machine);
        shrunk.note = format!(
            "{} (shrunk from {} to {} events)",
            self.note,
            self.journal.len(),
            current.len()
        );
        shrunk.journal = current;
        shrunk.trace_tail = String::new();
        shrunk.surface_tail = String::new();
        Ok(Some(ShrinkOutcome {
            original_len: self.journal.len(),
            replays,
            signature: target,
            shrunk,
        }))
    }

    /// Serializes the bundle into a sealed, checksummed byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(kind_tag(self.kind));
        w.u64(self.frames);
        w.u64(self.reserved_top_frames);
        w.bool(self.thp);
        w.f64(self.weak_row_fraction);
        w.u64(self.seed);
        self.fault_plan.save(&mut w);
        self.crash_plan.save(&mut w);
        w.bool(self.crashes_armed);
        w.str(&self.note);
        w.str(&self.failing_step);
        w.str(&self.trace_tail);
        w.str(&self.surface_tail);
        w.u64(self.digest);
        w.blob(&self.snapshot);
        let mut jw = Writer::new();
        JournalEvent::save_all(&self.journal, &mut jw);
        w.blob(&jw.into_bytes());
        vusion_snapshot::seal(&w.into_bytes())
    }

    /// Deserializes a bundle written by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = vusion_snapshot::unseal(bytes)?;
        let mut r = Reader::new(payload);
        let kind = kind_from_tag(r.u8()?)?;
        let frames = r.u64()?;
        let reserved_top_frames = r.u64()?;
        let thp = r.bool()?;
        let weak_row_fraction = r.f64()?;
        let seed = r.u64()?;
        let fault_plan = FaultPlan::load(&mut r)?;
        let crash_plan = CrashPlan::load(&mut r)?;
        let crashes_armed = r.bool()?;
        let note = r.str()?;
        let failing_step = r.str()?;
        let trace_tail = r.str()?;
        let surface_tail = r.str()?;
        let digest = r.u64()?;
        let snapshot = r.blob()?.to_vec();
        let jblob = r.blob()?;
        let mut jr = Reader::new(jblob);
        let journal = JournalEvent::load_all(&mut jr)?;
        Ok(Self {
            kind,
            frames,
            reserved_top_frames,
            thp,
            weak_row_fraction,
            seed,
            fault_plan,
            crash_plan,
            crashes_armed,
            note,
            failing_step,
            trace_tail,
            surface_tail,
            digest,
            snapshot,
            journal,
        })
    }

    /// Writes the bundle into [`REPRO_DIR`], rotating so at most
    /// [`KEEP_BUNDLES`] bundles remain. Returns the path written.
    pub fn dump(&self) -> Result<PathBuf, BundleError> {
        self.dump_to(Path::new(REPRO_DIR))
    }

    /// [`Self::dump`] into an explicit directory (tests use a temp dir).
    pub fn dump_to(&self, dir: &Path) -> Result<PathBuf, BundleError> {
        fs::create_dir_all(dir)?;
        let stem: String = self
            .kind
            .label()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        let mut n = 0u32;
        let path = loop {
            let p = dir.join(format!("{stem}-seed{:016x}-{n:03}.vbun", self.seed));
            if !p.exists() {
                break p;
            }
            n += 1;
        };
        fs::write(&path, self.to_bytes())?;
        if !self.trace_tail.is_empty() {
            // Openable directly in a Chrome-trace viewer, no unbundling.
            fs::write(path.with_extension("trace.json"), &self.trace_tail)?;
        }
        if !self.surface_tail.is_empty() {
            // Diffable directly against another run's surface artifact.
            fs::write(path.with_extension("surface.json"), &self.surface_tail)?;
        }
        rotate(dir, KEEP_BUNDLES)?;
        Ok(path)
    }

    /// Loads a bundle from disk.
    pub fn load(path: &Path) -> Result<Self, BundleError> {
        let bytes = fs::read(path)?;
        Ok(Self::from_bytes(&bytes)?)
    }
}

/// Bundle files in `dir`, oldest first (by modification time, ties broken
/// by name so rotation is stable within one filesystem-timestamp tick).
fn bundles_oldest_first(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_file() && path.extension().is_some_and(|e| e == "vbun") {
            let modified = entry
                .metadata()?
                .modified()
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            entries.push((modified, path));
        }
    }
    entries.sort();
    Ok(entries.into_iter().map(|(_, p)| p).collect())
}

/// Deletes the oldest bundles until at most `keep` remain.
fn rotate(dir: &Path, keep: usize) -> std::io::Result<()> {
    let paths = bundles_oldest_first(dir)?;
    if paths.len() > keep {
        for path in &paths[..paths.len() - keep] {
            fs::remove_file(path)?;
            for ext in ["trace.json", "surface.json"] {
                let sidecar = path.with_extension(ext);
                if sidecar.exists() {
                    fs::remove_file(sidecar)?;
                }
            }
        }
    }
    Ok(())
}

/// Newest bundle in `dir`, if any (what `examples/replay.rs` picks up).
pub fn latest_bundle(dir: &Path) -> std::io::Result<Option<PathBuf>> {
    Ok(bundles_oldest_first(dir)?.pop())
}
