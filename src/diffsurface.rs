//! The differential surface harness: one workload, three engines, one
//! leakage report.
//!
//! VUsion's security claim (paper §4) is that after Share-XOR-Randomize
//! an attacker probing a page cannot tell whether it was fused. This
//! module turns that claim into a continuously-checked observable:
//!
//! 1. **Record** one workload journal on a fusion-disabled system: two
//!    processes populate a mergeable region whose first half is
//!    duplicated across them and whose second half is unique, the
//!    scanner settles, then every duplicated page is probed (one write
//!    each), then every unique page — with the journal index noted at
//!    each phase boundary.
//! 2. **Replay** the identical journal against KSM, WPF, and VUsion with
//!    the side-channel surface recorder on, cloning the recorder at each
//!    boundary so each probe phase's *delta* is isolated.
//! 3. **Score** each channel's ability to distinguish the two probe
//!    phases (fused vs unfused targets) with a normalized L1 distance
//!    over per-phase event profiles: 0 = identical profiles, 1 = fully
//!    disjoint (see [`leakage_score`]).
//!
//! The expected outcome reproduces the paper end to end: KSM and WPF
//! show a fault-latency score of ~1 (only fused probes CoW-fault — the
//! §2 attack premise), while every VUsion channel stays under
//! [`LEAKAGE_THRESHOLD`] (both probe phases trap identically — the
//! Same Behavior defense). Everything is driven by the simulated clock,
//! so the emitted `surface_<engine>.json` artifacts and the report are
//! byte-identical across runs and scan-thread counts.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, JournalEvent, MachineConfig, Pid, SideChannelSurface, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};

/// Per-channel leakage scores above this are "distinguishing": the
/// engine leaks whether the probed page was fused. Chosen with wide
/// margin on both sides — the insecure engines' fault channel scores
/// ~1.0, VUsion's channels score ~0.0 (bucket-granular latencies absorb
/// jitter).
pub const LEAKAGE_THRESHOLD: f64 = 0.25;

/// Workload seed (any fixed value works; this one is shared with nothing
/// else so the harness's artifacts only change when the model does).
const SEED: u64 = 0x5eed_5afe;

/// Region base for the probed working set.
const BASE: u64 = 0x40000;

/// Pages duplicated across both processes (the fused probe targets).
const DUP_PAGES: u64 = 12;

/// Unique pages per process (the unfused probe targets). Equal to
/// [`DUP_PAGES`] so the two probe phases drive identical event volume.
const UNQ_PAGES: u64 = 12;

/// Scanner wakeups before probing: enough for KSM's two-pass
/// candidate→stable promotion and VUsion's fake-merge sweep to settle.
const SETTLE_SCANS: usize = 14;

/// The recorded workload: the journal plus the phase-boundary indices.
pub struct WorkloadJournal {
    events: Vec<JournalEvent>,
    /// `events[..setup_end]` is setup + settle scans.
    setup_end: usize,
    /// `events[setup_end..dup_end]` probes the duplicated pages.
    dup_end: usize,
}

impl WorkloadJournal {
    /// Records the canonical differential workload on a fusion-disabled
    /// system (the journal captures workload calls only, so it replays
    /// identically into any engine).
    pub fn record() -> Self {
        let mut sys = EngineKind::NoFusion.build_system(config());
        sys.machine.enable_journal();
        sys.machine.clear_journal();
        let (a, b) = populate(&mut sys);
        let _ = b;
        sys.force_scans(SETTLE_SCANS);
        let setup_end = sys.machine.journal().len();
        // Probe phase 1: one write per duplicated page.
        for pg in 0..DUP_PAGES {
            sys.write(a, VirtAddr(BASE + pg * PAGE_SIZE), 0xd0 + (pg % 16) as u8);
        }
        let dup_end = sys.machine.journal().len();
        // Probe phase 2: one write per unique page, same access pattern.
        for pg in 0..UNQ_PAGES {
            sys.write(
                a,
                VirtAddr(BASE + (DUP_PAGES + pg) * PAGE_SIZE),
                0xd0 + (pg % 16) as u8,
            );
        }
        Self {
            events: sys.machine.journal().to_vec(),
            setup_end,
            dup_end,
        }
    }

    /// Total journaled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal is empty (it never is; clippy convention).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The machine configuration every engine runs (engines still apply
/// their own [`EngineKind::adapt_machine`] on top).
fn config() -> MachineConfig {
    MachineConfig::test_small().with_seed(SEED)
}

/// Two processes, a shared mergeable region: pages `0..DUP_PAGES` hold
/// content duplicated across both, pages `DUP_PAGES..` are unique per
/// process.
fn populate<P: FusionPolicy>(sys: &mut System<P>) -> (Pid, Pid) {
    let a = sys.machine.spawn("vm-a").expect("spawn vm-a");
    let b = sys.machine.spawn("vm-b").expect("spawn vm-b");
    let pages = DUP_PAGES + UNQ_PAGES;
    for (i, pid) in [a, b].into_iter().enumerate() {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), pages, Protection::rw()));
        let _ = sys.machine.madvise_mergeable(pid, VirtAddr(BASE), pages);
        for pg in 0..pages {
            let fill = if pg < DUP_PAGES {
                // Identical in both processes: the fused targets.
                0x11 + (pg % 7) as u8
            } else {
                // Unique per process: the unfused controls.
                0x40 + (i as u8 * 64) + (pg % 29) as u8
            };
            sys.write_page(
                pid,
                VirtAddr(BASE + pg * PAGE_SIZE),
                &[fill; PAGE_SIZE as usize],
            );
        }
    }
    (a, b)
}

/// One channel's per-phase profile comparison.
#[derive(Debug, Clone)]
pub struct ChannelScore {
    /// Channel name: `fault_latency`, `llc`, `dram`, or `tlb`.
    pub channel: &'static str,
    /// Events the channel recorded during the fused-probe phase.
    pub dup_events: u64,
    /// Events during the unfused-probe phase.
    pub unq_events: u64,
    /// Normalized L1 distance between the two phase profiles, in [0, 1].
    pub score: f64,
}

/// One engine's replayed surface and its channel scores.
pub struct EngineSurface {
    /// The engine replayed.
    pub engine: EngineKind,
    /// The full end-of-replay surface artifact (canonical JSON).
    pub surface_json: String,
    /// Per-channel phase-profile scores.
    pub channels: Vec<ChannelScore>,
}

impl EngineSurface {
    /// Channels whose score exceeds [`LEAKAGE_THRESHOLD`].
    pub fn distinguishing(&self) -> Vec<&'static str> {
        self.channels
            .iter()
            .filter(|c| c.score > LEAKAGE_THRESHOLD)
            .map(|c| c.channel)
            .collect()
    }

    /// The score of one channel (0.0 if absent).
    pub fn score(&self, channel: &str) -> f64 {
        self.channels
            .iter()
            .find(|c| c.channel == channel)
            .map(|c| c.score)
            .unwrap_or(0.0)
    }
}

/// The whole differential report.
pub struct DiffSurfaceReport {
    /// One entry per replayed engine, in replay order.
    pub engines: Vec<EngineSurface>,
}

impl DiffSurfaceReport {
    /// Checks the paper's claims: KSM and WPF must show a distinguishing
    /// fault-latency surface; every VUsion channel must stay under
    /// threshold. Returns the list of violations (empty = the claims
    /// reproduce).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in &self.engines {
            match e.engine {
                EngineKind::Ksm | EngineKind::Wpf => {
                    let s = e.score("fault_latency");
                    if s <= LEAKAGE_THRESHOLD {
                        out.push(format!(
                            "{}: fault_latency score {s:.6} does not distinguish fused pages \
                             (expected > {LEAKAGE_THRESHOLD})",
                            e.engine.slug()
                        ));
                    }
                }
                EngineKind::VUsion => {
                    for c in &e.channels {
                        if c.score > LEAKAGE_THRESHOLD {
                            out.push(format!(
                                "vusion: channel {} leaks (score {:.6} > {LEAKAGE_THRESHOLD})",
                                c.channel, c.score
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The report as canonical JSON (fixed key order, scores at fixed
    /// precision — byte-identical for equal inputs).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"vusion-leakage/v1\",\"threshold\":");
        s.push_str(&format!("{LEAKAGE_THRESHOLD:.6}"));
        s.push_str(",\"engines\":[");
        for (i, e) in self.engines.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"engine\":");
            s.push_str(&vusion_obs::json::quote(e.engine.slug()));
            s.push_str(",\"channels\":[");
            for (j, c) in e.channels.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"channel\":{},\"dup_events\":{},\"unq_events\":{},\"score\":{:.6},\
                     \"distinguishing\":{}}}",
                    vusion_obs::json::quote(c.channel),
                    c.dup_events,
                    c.unq_events,
                    c.score,
                    c.score > LEAKAGE_THRESHOLD
                ));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

/// Normalized L1 distance between two event profiles, exact in integer
/// arithmetic: with `D = Σd` and `U = Σu`,
/// `score = Σ|dᵢ·U − uᵢ·D| / Σ(dᵢ·U + uᵢ·D)` — the L1 distance between
/// the two profiles normalized to probability vectors. 0 when both
/// phases are empty; 1 when exactly one is.
pub fn leakage_score(d: &[u64], u: &[u64]) -> f64 {
    let dt: u128 = d.iter().map(|&x| x as u128).sum();
    let ut: u128 = u.iter().map(|&x| x as u128).sum();
    if dt == 0 && ut == 0 {
        return 0.0;
    }
    if dt == 0 || ut == 0 {
        return 1.0;
    }
    let mut num = 0u128;
    let mut den = 0u128;
    for (&di, &ui) in d.iter().zip(u.iter()) {
        let a = di as u128 * ut;
        let b = ui as u128 * dt;
        num += a.abs_diff(b);
        den += a + b;
    }
    num as f64 / den as f64
}

/// Element-wise monotone counter delta.
fn delta(after: &[u64], before: &[u64]) -> Vec<u64> {
    after
        .iter()
        .zip(before.iter())
        .map(|(&a, &b)| a.saturating_sub(b))
        .collect()
}

/// The observable per-channel event profiles of one recorder state.
/// Totals only — the split by ground-truth page class stays in the
/// artifact; the attacker-facing score uses what a prober could count.
fn profiles(s: &SideChannelSurface) -> [Vec<u64>; 4] {
    let fault = s.fault_bucket_totals().to_vec();
    let (h, m, e) = s.llc_counts();
    let llc = vec![h[0] + h[1], m[0] + m[1], e[0] + e[1]];
    let d = s.dram_totals();
    let dram = vec![d[0][0] + d[1][0], d[0][1] + d[1][1], d[0][2] + d[1][2]];
    let (tf, te) = s.tlb_counts();
    let tlb = vec![tf[0] + tf[1], te[0] + te[1]];
    [fault, llc, dram, tlb]
}

/// Replays the journal into one engine with the surface recorder on and
/// `threads` scan shards, scoring each channel across the two probe
/// phases. Returns the engine's full surface artifact and scores.
pub fn replay_engine(kind: EngineKind, journal: &WorkloadJournal, threads: usize) -> EngineSurface {
    let mut sys = kind.build_system(config());
    sys.set_scan_threads(threads);
    sys.machine.enable_surface();
    sys.replay(&journal.events[..journal.setup_end]);
    let at_setup = sys.machine.obs().surface().clone();
    sys.replay(&journal.events[journal.setup_end..journal.dup_end]);
    let at_dup = sys.machine.obs().surface().clone();
    sys.replay(&journal.events[journal.dup_end..]);
    let at_end = sys.machine.obs().surface().clone();

    let p0 = profiles(&at_setup);
    let p1 = profiles(&at_dup);
    let p2 = profiles(&at_end);
    let names = ["fault_latency", "llc", "dram", "tlb"];
    let channels = names
        .iter()
        .enumerate()
        .map(|(i, &channel)| {
            let dup = delta(&p1[i], &p0[i]);
            let unq = delta(&p2[i], &p1[i]);
            ChannelScore {
                channel,
                dup_events: dup.iter().sum(),
                unq_events: unq.iter().sum(),
                score: leakage_score(&dup, &unq),
            }
        })
        .collect();

    EngineSurface {
        engine: kind,
        surface_json: sys.surface_json(),
        channels,
    }
}

/// Records the workload once and replays it against KSM, WPF, and
/// VUsion. `threads` sets each engine's scan-shard worker count — a
/// host knob the artifacts must not depend on.
pub fn run(threads: usize) -> DiffSurfaceReport {
    let journal = WorkloadJournal::record();
    let engines = [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion]
        .into_iter()
        .map(|kind| replay_engine(kind, &journal, threads))
        .collect();
    DiffSurfaceReport { engines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_score_bounds_and_symmetry() {
        assert_eq!(leakage_score(&[], &[]), 0.0);
        assert_eq!(leakage_score(&[0, 0], &[0, 0]), 0.0);
        assert_eq!(leakage_score(&[5, 0], &[0, 0]), 1.0);
        assert_eq!(leakage_score(&[0, 0], &[0, 7]), 1.0);
        // Identical profiles (up to scale) are indistinguishable.
        assert_eq!(leakage_score(&[2, 4], &[1, 2]), 0.0);
        // Disjoint support is fully distinguishing.
        assert_eq!(leakage_score(&[3, 0], &[0, 9]), 1.0);
        let a = leakage_score(&[3, 1], &[1, 3]);
        let b = leakage_score(&[1, 3], &[3, 1]);
        assert!(a > 0.0 && a < 1.0);
        assert_eq!(a, b, "score must be symmetric");
    }

    #[test]
    fn report_reproduces_the_papers_claims() {
        let report = run(1);
        assert!(
            report.violations().is_empty(),
            "violations: {:?}",
            report.violations()
        );
        let ksm = &report.engines[0];
        assert!(ksm.score("fault_latency") > LEAKAGE_THRESHOLD);
        let vusion = &report.engines[2];
        for c in &vusion.channels {
            assert!(
                c.score <= LEAKAGE_THRESHOLD,
                "vusion channel {} leaks: {}",
                c.channel,
                c.score
            );
        }
    }

    #[test]
    fn artifacts_are_identical_across_thread_counts() {
        let journal = WorkloadJournal::record();
        let base: Vec<_> = [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion]
            .into_iter()
            .map(|k| replay_engine(k, &journal, 1))
            .collect();
        for threads in [2, 7] {
            for b in &base {
                let again = replay_engine(b.engine, &journal, threads);
                assert_eq!(
                    again.surface_json,
                    b.surface_json,
                    "{} surface changed at {threads} threads",
                    b.engine.slug()
                );
            }
        }
    }
}
