//! Cross-crate correctness: fusion must never change what any process
//! observes in its memory, under any engine and any interleaving of
//! accesses and scan passes.
//!
//! The oracle is a plain `BTreeMap<(pid, va), byte>` model of what was
//! written; after arbitrary interleavings of writes, reads, scans,
//! khugepaged passes and idle time, every byte must read back as the model
//! predicts. Driven by the in-repo seeded PRNG: each test sweeps many
//! seeds so failures reproduce exactly by seed.

use vusion::prelude::*;
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

const ENGINES: [EngineKind; 5] = [
    EngineKind::Ksm,
    EngineKind::KsmCoa,
    EngineKind::Wpf,
    EngineKind::VUsion,
    EngineKind::VUsionThp,
];

const BASE: u64 = 0x10000;
const PAGES: u64 = 24;

fn build(kind: EngineKind) -> (System<Box<dyn FusionPolicy>>, Vec<Pid>) {
    let mut sys = kind.build_system(MachineConfig::test_small());
    let pids: Vec<Pid> = (0..3)
        .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
    }
    (sys, pids)
}

/// One scripted operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Write a (often duplicate-prone) byte at (pid, page, offset).
    Write(usize, u64, u16, u8),
    /// Read at (pid, page, offset).
    Read(usize, u64, u16),
    /// Run scanner wakeups.
    Scan(u8),
    /// Let simulated time pass (daemons run).
    Idle(u8),
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0..4u8) {
        0 => Op::Write(
            rng.random_range(0..3usize),
            rng.random_range(0..PAGES),
            rng.random_range(0..4096u16),
            rng.random_range(0..4u8),
        ),
        1 => Op::Read(
            rng.random_range(0..3usize),
            rng.random_range(0..PAGES),
            rng.random_range(0..4096u16),
        ),
        2 => Op::Scan(rng.random_range(1..6u8)),
        _ => Op::Idle(rng.random_range(1..4u8)),
    }
}

/// Differential test: every engine preserves the memory model.
#[test]
fn fusion_preserves_memory_semantics() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0bb);
        let n = rng.random_range(1..120usize);
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut rng)).collect();
        for kind in ENGINES {
            let (mut sys, pids) = build(kind);
            let mut model = std::collections::BTreeMap::new();
            for op in &ops {
                match *op {
                    Op::Write(p, pg, off, v) => {
                        let va = VirtAddr(BASE + pg * PAGE_SIZE + u64::from(off));
                        sys.write(pids[p], va, v);
                        model.insert((p, pg, off), v);
                    }
                    Op::Read(p, pg, off) => {
                        let va = VirtAddr(BASE + pg * PAGE_SIZE + u64::from(off));
                        let got = sys.read(pids[p], va);
                        let want = model.get(&(p, pg, off)).copied().unwrap_or(0);
                        assert_eq!(
                            got, want,
                            "seed {seed} {kind:?}: mismatch at p{p} page {pg} off {off}"
                        );
                    }
                    Op::Scan(n) => sys.force_scans(n as usize),
                    Op::Idle(n) => sys.idle(u64::from(n) * 25_000_000),
                }
            }
            // Final sweep: every written byte still reads back.
            for (&(p, pg, off), &v) in &model {
                let va = VirtAddr(BASE + pg * PAGE_SIZE + u64::from(off));
                assert_eq!(
                    sys.read(pids[p], va),
                    v,
                    "seed {seed} {kind:?}: final state diverged"
                );
            }
        }
    }
}

/// Identical content across processes always converges to sharing under
/// KSM and VUsion, and writes always unshare correctly afterwards.
#[test]
fn merge_then_diverge() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1fe);
        let fill = rng.random_range(1..255u8);
        let diverge_at = rng.random_range(0..4096u16);
        for kind in [EngineKind::Ksm, EngineKind::VUsion] {
            let (mut sys, pids) = build(kind);
            let page = [fill; PAGE_SIZE as usize];
            for &pid in &pids {
                sys.write_page(pid, VirtAddr(BASE), &page);
            }
            sys.force_scans(16);
            assert!(
                sys.policy.pages_saved() >= 2,
                "seed {seed} {kind:?} failed to merge triples"
            );
            // One process diverges.
            let va = VirtAddr(BASE + u64::from(diverge_at));
            sys.write(pids[0], va, fill.wrapping_add(1));
            assert_eq!(sys.read(pids[0], va), fill.wrapping_add(1), "seed {seed}");
            assert_eq!(sys.read(pids[1], va), fill, "seed {seed}");
            assert_eq!(sys.read(pids[2], va), fill, "seed {seed}");
        }
    }
}

#[test]
fn heavy_churn_converges_and_preserves_contents() {
    // Repeated merge/unmerge cycles across engines must neither corrupt
    // contents nor leak saved-page accounting.
    for kind in ENGINES {
        let (mut sys, pids) = build(kind);
        for round in 0..6u8 {
            for (i, &pid) in pids.iter().enumerate() {
                for pg in 0..PAGES {
                    // Alternate between all-same and per-process content.
                    let label = if round % 2 == 0 {
                        7
                    } else {
                        (i as u8 + 1) * 10 + round
                    };
                    sys.write_page(
                        pid,
                        VirtAddr(BASE + pg * PAGE_SIZE),
                        &[label; PAGE_SIZE as usize],
                    );
                }
            }
            sys.force_scans(20);
        }
        // Verify final contents.
        for (i, &pid) in pids.iter().enumerate() {
            let want = (i as u8 + 1) * 10 + 5;
            for pg in 0..PAGES {
                assert_eq!(
                    sys.read_page(pid, VirtAddr(BASE + pg * PAGE_SIZE)),
                    [want; PAGE_SIZE as usize],
                    "{kind:?}: corrupted after churn"
                );
            }
        }
    }
}
