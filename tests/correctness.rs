//! Cross-crate correctness: fusion must never change what any process
//! observes in its memory, under any engine and any interleaving of
//! accesses and scan passes.
//!
//! The oracle is a plain `HashMap<(pid, va), byte>` model of what was
//! written; after arbitrary interleavings of writes, reads, scans,
//! khugepaged passes and idle time, every byte must read back as the model
//! predicts.

use proptest::prelude::*;
use vusion::prelude::*;

const ENGINES: [EngineKind; 5] = [
    EngineKind::Ksm,
    EngineKind::KsmCoa,
    EngineKind::Wpf,
    EngineKind::VUsion,
    EngineKind::VUsionThp,
];

const BASE: u64 = 0x10000;
const PAGES: u64 = 24;

fn build(kind: EngineKind) -> (System<Box<dyn FusionPolicy>>, Vec<Pid>) {
    let mut sys = kind.build_system(MachineConfig::test_small());
    let pids: Vec<Pid> = (0..3)
        .map(|i| sys.machine.spawn(&format!("p{i}")))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
    }
    (sys, pids)
}

/// One scripted operation.
#[derive(Debug, Clone)]
enum Op {
    /// Write a (often duplicate-prone) byte at (pid, page, offset).
    Write(usize, u64, u16, u8),
    /// Read at (pid, page, offset).
    Read(usize, u64, u16),
    /// Run scanner wakeups.
    Scan(u8),
    /// Let simulated time pass (daemons run).
    Idle(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3usize, 0..PAGES, 0..4096u16, 0..4u8)
            .prop_map(|(p, pg, off, v)| Op::Write(p, pg, off, v)),
        (0..3usize, 0..PAGES, 0..4096u16).prop_map(|(p, pg, off)| Op::Read(p, pg, off)),
        (1..6u8).prop_map(Op::Scan),
        (1..4u8).prop_map(Op::Idle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Differential test: every engine preserves the memory model.
    #[test]
    fn fusion_preserves_memory_semantics(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        for kind in ENGINES {
            let (mut sys, pids) = build(kind);
            let mut model = std::collections::HashMap::new();
            for op in &ops {
                match *op {
                    Op::Write(p, pg, off, v) => {
                        let va = VirtAddr(BASE + pg * PAGE_SIZE + u64::from(off));
                        sys.write(pids[p], va, v);
                        model.insert((p, pg, off), v);
                    }
                    Op::Read(p, pg, off) => {
                        let va = VirtAddr(BASE + pg * PAGE_SIZE + u64::from(off));
                        let got = sys.read(pids[p], va);
                        let want = model.get(&(p, pg, off)).copied().unwrap_or(0);
                        prop_assert_eq!(got, want, "{:?}: mismatch at p{} page {} off {}", kind, p, pg, off);
                    }
                    Op::Scan(n) => sys.force_scans(n as usize),
                    Op::Idle(n) => sys.idle(u64::from(n) * 25_000_000),
                }
            }
            // Final sweep: every written byte still reads back.
            for (&(p, pg, off), &v) in &model {
                let va = VirtAddr(BASE + pg * PAGE_SIZE + u64::from(off));
                prop_assert_eq!(sys.read(pids[p], va), v, "{:?}: final state diverged", kind);
            }
        }
    }

    /// Identical content across processes always converges to sharing under
    /// KSM and VUsion, and writes always unshare correctly afterwards.
    #[test]
    fn merge_then_diverge(fill in 1u8..255, diverge_at in 0u16..4096) {
        for kind in [EngineKind::Ksm, EngineKind::VUsion] {
            let (mut sys, pids) = build(kind);
            let page = [fill; PAGE_SIZE as usize];
            for &pid in &pids {
                sys.write_page(pid, VirtAddr(BASE), &page);
            }
            sys.force_scans(16);
            prop_assert!(sys.policy.pages_saved() >= 2, "{kind:?} failed to merge triples");
            // One process diverges.
            let va = VirtAddr(BASE + u64::from(diverge_at));
            sys.write(pids[0], va, fill.wrapping_add(1));
            prop_assert_eq!(sys.read(pids[0], va), fill.wrapping_add(1));
            prop_assert_eq!(sys.read(pids[1], va), fill);
            prop_assert_eq!(sys.read(pids[2], va), fill);
        }
    }
}

#[test]
fn heavy_churn_converges_and_preserves_contents() {
    // Repeated merge/unmerge cycles across engines must neither corrupt
    // contents nor leak saved-page accounting.
    for kind in ENGINES {
        let (mut sys, pids) = build(kind);
        for round in 0..6u8 {
            for (i, &pid) in pids.iter().enumerate() {
                for pg in 0..PAGES {
                    // Alternate between all-same and per-process content.
                    let label = if round % 2 == 0 {
                        7
                    } else {
                        (i as u8 + 1) * 10 + round
                    };
                    sys.write_page(
                        pid,
                        VirtAddr(BASE + pg * PAGE_SIZE),
                        &[label; PAGE_SIZE as usize],
                    );
                }
            }
            sys.force_scans(20);
        }
        // Verify final contents.
        for (i, &pid) in pids.iter().enumerate() {
            let want = (i as u8 + 1) * 10 + 5;
            for pg in 0..PAGES {
                assert_eq!(
                    sys.read_page(pid, VirtAddr(BASE + pg * PAGE_SIZE)),
                    [want; PAGE_SIZE as usize],
                    "{kind:?}: corrupted after churn"
                );
            }
        }
    }
}
