//! End-to-end security invariants: the Same Behavior and Randomized
//! Allocation principles, checked at the PTE and allocator level (the
//! attack-level checks live in `vusion-attacks`).

use vusion::core::{VUsion, VUsionConfig};
use vusion::prelude::*;
use vusion::stats::ks_test_uniform;

const BASE: u64 = 0x10000;

fn vusion_system(pool: usize) -> (System<VUsion>, Pid, Pid) {
    let mut m = Machine::new(MachineConfig::test_small());
    let a = m.spawn("a").expect("spawn");
    let b = m.spawn("b").expect("spawn");
    for pid in [a, b] {
        m.mmap(pid, Vma::anon(VirtAddr(BASE), 64, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(BASE), 64);
    }
    let policy = VUsion::new(
        &mut m,
        VUsionConfig {
            pool_frames: pool,
            ..Default::default()
        },
    );
    (System::new(m, policy), a, b)
}

fn page(fill: u8) -> [u8; PAGE_SIZE as usize] {
    let mut p = [fill; PAGE_SIZE as usize];
    p[0] = fill.wrapping_add(1);
    p
}

/// SB at the PTE level: after a scan pass, *every* page that was considered
/// carries byte-identical flag bits — there is no PTE-visible difference
/// between really-merged and fake-merged pages.
#[test]
fn sb_ptes_are_flagwise_identical() {
    let (mut sys, a, b) = vusion_system(256);
    // Pages 0..8: duplicates (will merge). Pages 8..16: unique (fake merge).
    for i in 0..8u64 {
        sys.write_page(a, VirtAddr(BASE + i * PAGE_SIZE), &page(i as u8 + 1));
        sys.write_page(b, VirtAddr(BASE + i * PAGE_SIZE), &page(i as u8 + 1));
    }
    for i in 8..16u64 {
        sys.write_page(a, VirtAddr(BASE + i * PAGE_SIZE), &page(i as u8 + 100));
    }
    sys.force_scans(16);
    let flags: Vec<u64> = (0..16u64)
        .map(|i| {
            sys.machine
                .leaf(a, VirtAddr(BASE + i * PAGE_SIZE))
                .expect("mapped")
                .pte
                .flags()
        })
        .collect();
    assert!(
        flags.windows(2).all(|w| w[0] == w[1]),
        "PTE flags must be indistinguishable across merged/fake-merged pages: {flags:?}"
    );
    // And they are all trapped + uncacheable.
    let leaf = sys.machine.leaf(a, VirtAddr(BASE)).expect("mapped");
    assert!(leaf.pte.is_trapped());
    assert!(leaf.pte.has(PteFlags::NO_CACHE));
}

/// SB: prefetch must not load any considered page into the cache (the PCD
/// bit), merged or not.
#[test]
fn sb_prefetch_is_inert_on_considered_pages() {
    let (mut sys, a, b) = vusion_system(256);
    sys.write_page(a, VirtAddr(BASE), &page(1));
    sys.write_page(b, VirtAddr(BASE), &page(1)); // Merged.
    sys.write_page(a, VirtAddr(BASE + PAGE_SIZE), &page(2)); // Fake merged.
    sys.force_scans(16);
    for i in 0..2u64 {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        let pa = sys.machine.translate_quiet(a, va).expect("mapped");
        sys.machine.llc_mut().flush_frame(pa.frame());
        assert!(!sys.machine.llc().contains(pa));
        sys.prefetch(a, va);
        assert!(
            !sys.machine.llc().contains(pa),
            "prefetch leaked page {i} into the cache despite PCD"
        );
    }
}

/// RA: the frames backing (fake-)merged pages never coincide with either
/// party's original frame, and the choices pass a uniformity test.
#[test]
fn ra_backing_frames_are_random_and_foreign() {
    let (mut sys, a, b) = vusion_system(512);
    let mut originals = Vec::new();
    for i in 0..48u64 {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        sys.write_page(a, va, &page(i as u8));
        sys.write_page(b, va, &page(i as u8));
        originals.push((
            sys.machine.translate_quiet(a, va).expect("mapped").frame(),
            sys.machine.translate_quiet(b, va).expect("mapped").frame(),
        ));
    }
    sys.force_scans(30);
    // The invariant Flip Feng Shui cares about: the fused copy of page `i`
    // is never backed by either of page `i`'s own parties' frames (KSM
    // merges in place; VUsion never does). Released originals may re-enter
    // the random pool and back *unrelated* pages — that reuse is uniform
    // at probability 1/pool, which the KS test below checks.
    for (i, &(fa, fb)) in originals.iter().enumerate() {
        let va = VirtAddr(BASE + i as u64 * PAGE_SIZE);
        let f = sys.machine.translate_quiet(a, va).expect("mapped").frame();
        assert_ne!(f, fa, "page {i} merged in place onto a's frame");
        assert_ne!(f, fb, "page {i} merged in place onto b's frame");
    }
    // Uniformity of the RA trace.
    let trace: Vec<f64> = sys.policy.ra_trace().iter().map(|&f| f as f64).collect();
    assert!(trace.len() >= 48);
    let lo = trace.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = trace.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1.0;
    let ks = ks_test_uniform(&trace, lo, hi);
    assert!(
        ks.same_distribution(0.01),
        "RA trace not uniform: p = {}",
        ks.p_value
    );
}

/// The contrast that motivates RA: KSM's unmerge allocations are instantly
/// predictable (LIFO buddy reuse).
#[test]
fn ksm_unmerge_allocation_is_predictable() {
    let mut sys = EngineKind::Ksm.build_system(MachineConfig::test_small());
    let a = sys.machine.spawn("a").expect("spawn");
    let b = sys.machine.spawn("b").expect("spawn");
    for pid in [a, b] {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), 8, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 8);
    }
    sys.write_page(a, VirtAddr(BASE), &page(3));
    sys.write_page(b, VirtAddr(BASE), &page(3));
    let frame_b = sys
        .machine
        .translate_quiet(b, VirtAddr(BASE))
        .expect("mapped")
        .frame();
    sys.force_scans(16);
    // b's duplicate frame went back to the buddy allocator; the very next
    // allocation (b's own CoW) gets it straight back — LIFO predictability.
    sys.write(b, VirtAddr(BASE), 9);
    let frame_after = sys
        .machine
        .translate_quiet(b, VirtAddr(BASE))
        .expect("mapped")
        .frame();
    assert_eq!(
        frame_after, frame_b,
        "buddy LIFO reuse is the predictable behavior RA fixes"
    );
}

/// SB timing, end to end: merged and fake-merged pages fault with the same
/// distribution even when measured through the public API.
#[test]
fn sb_fault_timing_indistinguishable() {
    let (mut sys, a, b) = vusion_system(512);
    const N: u64 = 60;
    for i in 0..N {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        sys.write_page(a, va, &page(i as u8));
        if i % 2 == 0 {
            sys.write_page(b, va, &page(i as u8)); // Even pages merge.
        }
    }
    sys.force_scans(24);
    let mut merged = Vec::new();
    let mut fake = Vec::new();
    for i in 0..N {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        let t0 = sys.machine.now_ns();
        sys.read(a, va);
        let dt = (sys.machine.now_ns() - t0) as f64;
        if i % 2 == 0 {
            merged.push(dt);
        } else {
            fake.push(dt);
        }
    }
    let ks = vusion::stats::ks_two_sample(&merged, &fake);
    assert!(
        ks.same_distribution(0.05),
        "SB violated end-to-end: p = {}",
        ks.p_value
    );
}
