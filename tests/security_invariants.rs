//! End-to-end security invariants: the Same Behavior and Randomized
//! Allocation principles, checked at the PTE and allocator level (the
//! attack-level checks live in `vusion-attacks`).

use vusion::core::{EngineKind, VUsion, VUsionConfig};
use vusion::prelude::*;
use vusion::repro::Bundle;
use vusion::stats::ks_test_uniform;

const BASE: u64 = 0x10000;

/// Journal + base snapshot for a test system: any invariant failure dumps
/// a replayable bundle into `bench_logs/repro/` before panicking.
struct Guard {
    kind: EngineKind,
    cfg: MachineConfig,
    base: Vec<u8>,
}

impl Guard {
    fn arm<P: FusionPolicy>(sys: &mut System<P>, kind: EngineKind, cfg: MachineConfig) -> Self {
        sys.machine.enable_journal();
        sys.machine.clear_journal();
        Self {
            kind,
            cfg,
            base: sys.snapshot(),
        }
    }

    fn fail<P: FusionPolicy>(&self, sys: &System<P>, step: &str) -> ! {
        let bundle = Bundle::capture(
            self.kind,
            &self.cfg,
            self.base.clone(),
            sys,
            false,
            "security_invariants",
            step,
        );
        match bundle.dump() {
            Ok(path) => panic!("{step}\n  repro bundle: {}", path.display()),
            Err(e) => panic!("{step}\n  (repro bundle could not be written: {e})"),
        }
    }

    /// `assert!` that leaves a bundle behind on failure.
    fn check<P: FusionPolicy>(&self, sys: &System<P>, cond: bool, step: &str) {
        if !cond {
            self.fail(sys, step);
        }
    }
}

fn vusion_system(pool: usize) -> (System<VUsion>, Pid, Pid, Guard) {
    let cfg = MachineConfig::test_small();
    let mut m = Machine::new(cfg);
    let a = m.spawn("a").expect("spawn");
    let b = m.spawn("b").expect("spawn");
    for pid in [a, b] {
        m.mmap(pid, Vma::anon(VirtAddr(BASE), 64, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(BASE), 64);
    }
    let policy = VUsion::new(
        &mut m,
        VUsionConfig {
            pool_frames: pool,
            ..Default::default()
        },
    );
    let mut sys = System::new(m, policy);
    let guard = Guard::arm(&mut sys, EngineKind::VUsion, cfg);
    (sys, a, b, guard)
}

fn page(fill: u8) -> [u8; PAGE_SIZE as usize] {
    let mut p = [fill; PAGE_SIZE as usize];
    p[0] = fill.wrapping_add(1);
    p
}

/// SB at the PTE level: after a scan pass, *every* page that was considered
/// carries byte-identical flag bits — there is no PTE-visible difference
/// between really-merged and fake-merged pages.
#[test]
fn sb_ptes_are_flagwise_identical() {
    let (mut sys, a, b, guard) = vusion_system(256);
    // Pages 0..8: duplicates (will merge). Pages 8..16: unique (fake merge).
    for i in 0..8u64 {
        sys.write_page(a, VirtAddr(BASE + i * PAGE_SIZE), &page(i as u8 + 1));
        sys.write_page(b, VirtAddr(BASE + i * PAGE_SIZE), &page(i as u8 + 1));
    }
    for i in 8..16u64 {
        sys.write_page(a, VirtAddr(BASE + i * PAGE_SIZE), &page(i as u8 + 100));
    }
    sys.force_scans(16);
    let flags: Vec<PteFlags> = (0..16u64)
        .map(|i| {
            sys.machine
                .leaf(a, VirtAddr(BASE + i * PAGE_SIZE))
                .expect("mapped")
                .pte
                .flags()
        })
        .collect();
    guard.check(
        &sys,
        flags.windows(2).all(|w| w[0] == w[1]),
        &format!("PTE flags must be indistinguishable across merged/fake-merged pages: {flags:?}"),
    );
    // And they are all trapped + uncacheable.
    let leaf = sys.machine.leaf(a, VirtAddr(BASE)).expect("mapped");
    guard.check(
        &sys,
        leaf.pte.is_trapped(),
        "considered page is not trapped",
    );
    guard.check(
        &sys,
        leaf.pte.has(PteFlags::NO_CACHE),
        "considered page is cacheable despite PCD",
    );
}

/// SB: prefetch must not load any considered page into the cache (the PCD
/// bit), merged or not.
#[test]
fn sb_prefetch_is_inert_on_considered_pages() {
    let (mut sys, a, b, guard) = vusion_system(256);
    sys.write_page(a, VirtAddr(BASE), &page(1));
    sys.write_page(b, VirtAddr(BASE), &page(1)); // Merged.
    sys.write_page(a, VirtAddr(BASE + PAGE_SIZE), &page(2)); // Fake merged.
    sys.force_scans(16);
    for i in 0..2u64 {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        let pa = sys.machine.translate_quiet(a, va).expect("mapped");
        sys.machine.llc_mut().flush_frame(pa.frame());
        assert!(!sys.machine.llc().contains(pa));
        sys.prefetch(a, va);
        guard.check(
            &sys,
            !sys.machine.llc().contains(pa),
            &format!("prefetch leaked page {i} into the cache despite PCD"),
        );
    }
}

/// RA: the frames backing (fake-)merged pages never coincide with either
/// party's original frame, and the choices pass a uniformity test.
#[test]
fn ra_backing_frames_are_random_and_foreign() {
    let (mut sys, a, b, guard) = vusion_system(512);
    let mut originals = Vec::new();
    for i in 0..48u64 {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        sys.write_page(a, va, &page(i as u8));
        sys.write_page(b, va, &page(i as u8));
        originals.push((
            sys.machine.translate_quiet(a, va).expect("mapped").frame(),
            sys.machine.translate_quiet(b, va).expect("mapped").frame(),
        ));
    }
    sys.force_scans(30);
    // The invariant Flip Feng Shui cares about: the fused copy of page `i`
    // is never backed by either of page `i`'s own parties' frames (KSM
    // merges in place; VUsion never does). Released originals may re-enter
    // the random pool and back *unrelated* pages — that reuse is uniform
    // at probability 1/pool, which the KS test below checks.
    for (i, &(fa, fb)) in originals.iter().enumerate() {
        let va = VirtAddr(BASE + i as u64 * PAGE_SIZE);
        let f = sys.machine.translate_quiet(a, va).expect("mapped").frame();
        guard.check(
            &sys,
            f != fa,
            &format!("page {i} merged in place onto a's frame"),
        );
        guard.check(
            &sys,
            f != fb,
            &format!("page {i} merged in place onto b's frame"),
        );
    }
    // Uniformity of the RA trace.
    let trace: Vec<f64> = sys.policy.ra_trace().iter().map(|&f| f as f64).collect();
    assert!(trace.len() >= 48);
    let lo = trace.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = trace.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1.0;
    let ks = ks_test_uniform(&trace, lo, hi);
    guard.check(
        &sys,
        ks.same_distribution(0.01),
        &format!("RA trace not uniform: p = {}", ks.p_value),
    );
}

/// The contrast that motivates RA: KSM's unmerge allocations are instantly
/// predictable (LIFO buddy reuse).
#[test]
fn ksm_unmerge_allocation_is_predictable() {
    let cfg = MachineConfig::test_small();
    let mut sys = EngineKind::Ksm.build_system(cfg);
    // Armed before setup: the journal covers spawn/mmap/madvise too.
    let guard = Guard::arm(&mut sys, EngineKind::Ksm, cfg);
    let a = sys.machine.spawn("a").expect("spawn");
    let b = sys.machine.spawn("b").expect("spawn");
    for pid in [a, b] {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), 8, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 8);
    }
    sys.write_page(a, VirtAddr(BASE), &page(3));
    sys.write_page(b, VirtAddr(BASE), &page(3));
    let frame_b = sys
        .machine
        .translate_quiet(b, VirtAddr(BASE))
        .expect("mapped")
        .frame();
    sys.force_scans(16);
    // b's duplicate frame went back to the buddy allocator; the very next
    // allocation (b's own CoW) gets it straight back — LIFO predictability.
    sys.write(b, VirtAddr(BASE), 9);
    let frame_after = sys
        .machine
        .translate_quiet(b, VirtAddr(BASE))
        .expect("mapped")
        .frame();
    guard.check(
        &sys,
        frame_after == frame_b,
        "buddy LIFO reuse is the predictable behavior RA fixes",
    );
}

/// SB timing, end to end: merged and fake-merged pages fault with the same
/// distribution even when measured through the public API.
#[test]
fn sb_fault_timing_indistinguishable() {
    let (mut sys, a, b, guard) = vusion_system(512);
    const N: u64 = 60;
    for i in 0..N {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        sys.write_page(a, va, &page(i as u8));
        if i % 2 == 0 {
            sys.write_page(b, va, &page(i as u8)); // Even pages merge.
        }
    }
    sys.force_scans(24);
    let mut merged = Vec::new();
    let mut fake = Vec::new();
    for i in 0..N {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        let t0 = sys.machine.now_ns();
        sys.read(a, va);
        let dt = (sys.machine.now_ns() - t0) as f64;
        if i % 2 == 0 {
            merged.push(dt);
        } else {
            fake.push(dt);
        }
    }
    let ks = vusion::stats::ks_two_sample(&merged, &fake);
    guard.check(
        &sys,
        ks.same_distribution(0.05),
        &format!("SB violated end-to-end: p = {}", ks.p_value),
    );
}
