//! Resource accounting across the whole stack: no engine may leak or
//! double-free physical frames, whatever churn it goes through.

use vusion::prelude::*;

const BASE: u64 = 0x10000;

/// Total frames accounted for: allocated + free in the buddy + resident in
/// engine pools must equal the machine size. We verify the weaker but
/// sufficient invariant that repeated churn does not monotonically consume
/// memory (a leak) and never double-frees (which would panic).
fn churn(kind: EngineKind) -> Vec<usize> {
    let mut sys = kind.build_system(MachineConfig::test_small());
    let pids: Vec<Pid> = (0..2)
        .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), 32, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 32);
    }
    let mut allocated_after_round = Vec::new();
    for round in 0..8u8 {
        // Write identical content (merge bait), scan, then unmerge all by
        // touching everything.
        for &pid in &pids {
            for pg in 0..32u64 {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[round.wrapping_add(1); PAGE_SIZE as usize],
                );
            }
        }
        sys.force_scans(12);
        for &pid in &pids {
            for pg in 0..32u64 {
                sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), round ^ 0x55);
            }
        }
        sys.force_scans(12); // Drain deferred queues etc.
        allocated_after_round.push(sys.machine.allocated_frames());
    }
    allocated_after_round
}

#[test]
fn no_engine_leaks_frames_under_churn() {
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::KsmCoa,
        EngineKind::Wpf,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let series = churn(kind);
        let first = series[1]; // Round 0 includes warm-up allocations.
        let last = *series.last().expect("rounds");
        assert!(
            last <= first + 8,
            "{kind:?}: allocated frames grew {first} -> {last} across identical churn rounds: {series:?}"
        );
    }
}

#[test]
fn saved_pages_never_exceed_total_duplicates() {
    for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
        let mut sys = kind.build_system(MachineConfig::test_small());
        let a = sys.machine.spawn("a").expect("spawn");
        let b = sys.machine.spawn("b").expect("spawn");
        for pid in [a, b] {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), 16, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 16);
        }
        for pid in [a, b] {
            for pg in 0..16u64 {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[9u8; PAGE_SIZE as usize],
                );
            }
        }
        sys.force_scans(20);
        // 32 identical pages can save at most 31 frames.
        let saved = sys.policy.pages_saved();
        assert!(
            saved <= 31,
            "{kind:?} claims {saved} saved frames from 32 duplicates"
        );
        assert!(saved >= 20, "{kind:?} merged suspiciously little: {saved}");
    }
}

#[test]
fn memory_returns_after_total_unmerge() {
    for kind in [EngineKind::Ksm, EngineKind::VUsion] {
        let mut sys = kind.build_system(MachineConfig::test_small());
        let a = sys.machine.spawn("a").expect("spawn");
        let b = sys.machine.spawn("b").expect("spawn");
        for pid in [a, b] {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), 16, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 16);
        }
        for pid in [a, b] {
            for pg in 0..16u64 {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[4u8; PAGE_SIZE as usize],
                );
            }
        }
        let full = sys.machine.allocated_frames();
        sys.force_scans(20);
        assert!(
            sys.machine.allocated_frames() < full,
            "{kind:?} reclaimed nothing"
        );
        // Unique writes everywhere unmerge everything.
        for (k, pid) in [a, b].into_iter().enumerate() {
            for pg in 0..16u64 {
                sys.write(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    (k as u8 + 1) * 16 + pg as u8,
                );
            }
        }
        sys.force_scans(20); // Drain deferred frees.
        let back = sys.machine.allocated_frames();
        assert!(
            (back as i64 - full as i64).abs() <= 4,
            "{kind:?}: expected full repopulation, {full} -> {back}"
        );
        assert_eq!(
            sys.policy.pages_saved(),
            0,
            "{kind:?} still counts saved pages"
        );
    }
}
