//! Resource accounting across the whole stack: no engine may leak or
//! double-free physical frames, whatever churn it goes through.

use vusion::prelude::*;

const BASE: u64 = 0x10000;

/// Total frames accounted for: allocated + free in the buddy + resident in
/// engine pools must equal the machine size. We verify the weaker but
/// sufficient invariant that repeated churn does not monotonically consume
/// memory (a leak) and never double-frees (which would panic).
fn churn(kind: EngineKind) -> Vec<usize> {
    let mut sys = kind.build_system(MachineConfig::test_small());
    let pids: Vec<Pid> = (0..2)
        .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), 32, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 32);
    }
    let mut allocated_after_round = Vec::new();
    for round in 0..8u8 {
        // Write identical content (merge bait), scan, then unmerge all by
        // touching everything.
        for &pid in &pids {
            for pg in 0..32u64 {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[round.wrapping_add(1); PAGE_SIZE as usize],
                );
            }
        }
        sys.force_scans(12);
        for &pid in &pids {
            for pg in 0..32u64 {
                sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), round ^ 0x55);
            }
        }
        sys.force_scans(12); // Drain deferred queues etc.
        allocated_after_round.push(sys.machine.allocated_frames());
    }
    allocated_after_round
}

#[test]
fn no_engine_leaks_frames_under_churn() {
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::KsmCoa,
        EngineKind::Wpf,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let series = churn(kind);
        let first = series[1]; // Round 0 includes warm-up allocations.
        let last = *series.last().expect("rounds");
        assert!(
            last <= first + 8,
            "{kind:?}: allocated frames grew {first} -> {last} across identical churn rounds: {series:?}"
        );
    }
}

#[test]
fn saved_pages_never_exceed_total_duplicates() {
    for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
        let mut sys = kind.build_system(MachineConfig::test_small());
        let a = sys.machine.spawn("a").expect("spawn");
        let b = sys.machine.spawn("b").expect("spawn");
        for pid in [a, b] {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), 16, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 16);
        }
        for pid in [a, b] {
            for pg in 0..16u64 {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[9u8; PAGE_SIZE as usize],
                );
            }
        }
        sys.force_scans(20);
        // 32 identical pages can save at most 31 frames.
        let saved = sys.policy.pages_saved();
        assert!(
            saved <= 31,
            "{kind:?} claims {saved} saved frames from 32 duplicates"
        );
        assert!(saved >= 20, "{kind:?} merged suspiciously little: {saved}");
    }
}

/// Drives a mixed workload (demand faults, merges, unmerges, scans) and
/// returns the system for counter inspection. With `surface` the
/// side-channel recorder is armed from construction, so it observes every
/// fault the machine counts.
fn churn_system(kind: EngineKind, surface: bool) -> System<Box<dyn FusionPolicy>> {
    let mut sys = kind.build_system(MachineConfig::test_small());
    if surface {
        sys.machine.enable_surface();
    }
    let pids: Vec<Pid> = (0..2)
        .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), 48, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 48);
    }
    for round in 0..4u8 {
        for &pid in &pids {
            for pg in 0..48u64 {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[round.wrapping_add(1); PAGE_SIZE as usize],
                );
            }
        }
        sys.force_scans(10);
        // Reads and writes: CoA engines trap reads too, CoW only writes.
        for &pid in &pids {
            for pg in 0..48u64 {
                sys.read(pid, VirtAddr(BASE + pg * PAGE_SIZE));
            }
            for pg in 0..24u64 {
                sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), round ^ 0x3c);
            }
        }
        sys.force_scans(10);
    }
    sys
}

/// Every hardware fault the machine observes is resolved by exactly one
/// handler, and every kernel-handled fault performs exactly one fill or
/// copy. A degraded path that forgets a counter (or bumps two) breaks
/// these identities.
#[test]
fn fault_counter_identities() {
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::KsmCoa,
        EngineKind::KsmZeroOnly,
        EngineKind::Wpf,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let sys = churn_system(kind, false);
        let m = sys.machine.stats();
        let s = sys.stats();
        let hw_faults = m.faults_not_mapped + m.faults_trapped + m.faults_write_protected;
        let resolved = s.policy_faults + s.kernel_faults + s.unresolved_faults;
        assert_eq!(
            hw_faults, resolved,
            "{kind:?}: machine saw {hw_faults} faults but handlers accounted {resolved}"
        );
        assert!(hw_faults > 0, "{kind:?}: workload must fault");
        let kernel_work = m.demand_zero + m.demand_huge + m.demand_file + m.cow_copies;
        assert_eq!(
            s.kernel_faults, kernel_work,
            "{kind:?}: {} kernel-handled faults vs {} fills/copies",
            s.kernel_faults, kernel_work
        );
        assert_eq!(s.unresolved_faults, 0, "{kind:?}: workload must resolve");
    }
}

/// The side-channel surface recorder is an accounting mirror of the
/// machine's own fault counters: with the recorder armed from
/// construction, each fault kind's event total equals the corresponding
/// `MachineStats` counter, and the grand total equals what the fault
/// handlers resolved. A hook that misses a path (or records one twice)
/// breaks these identities.
#[test]
fn surface_fault_counts_match_machine_stats() {
    use vusion::kernel::FaultKind;
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::KsmCoa,
        EngineKind::Wpf,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let sys = churn_system(kind, true);
        let m = sys.machine.stats();
        let s = sys.stats();
        let surf = sys.machine.obs().surface();
        assert_eq!(
            surf.fault_kind_total(FaultKind::Minor),
            m.faults_not_mapped,
            "{kind:?}: minor-fault surface events vs machine counter"
        );
        assert_eq!(
            surf.fault_kind_total(FaultKind::Trap),
            m.faults_trapped,
            "{kind:?}: trap-fault surface events vs machine counter"
        );
        assert_eq!(
            surf.fault_kind_total(FaultKind::CowBreak),
            m.faults_write_protected,
            "{kind:?}: CoW-break surface events vs machine counter"
        );
        assert_eq!(
            surf.fault_event_total(),
            s.policy_faults + s.kernel_faults + s.unresolved_faults,
            "{kind:?}: total surface fault events vs resolved faults"
        );
        assert!(
            surf.fault_event_total() > 0,
            "{kind:?}: surfaced workload must fault"
        );
    }
}

/// The scanner's aggregated `ScanReport` must agree with each engine's own
/// statistics: every merge shows up exactly once on both sides.
#[test]
fn scan_report_matches_engine_stats() {
    const PAGES: u64 = 32;
    fn seed_duplicates<P: FusionPolicy>(sys: &mut System<P>, pids: &[Pid]) {
        for &pid in pids {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
        }
        for &pid in pids {
            for pg in 0..PAGES {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[(pg % 7) as u8 + 1; PAGE_SIZE as usize],
                );
            }
        }
        sys.force_scans(20);
    }
    {
        let m = Machine::new(MachineConfig::test_small());
        let mut sys = System::new(m, Ksm::new(KsmConfig::default()));
        let pids = [
            sys.machine.spawn("a").expect("spawn"),
            sys.machine.spawn("b").expect("spawn"),
        ];
        seed_duplicates(&mut sys, &pids);
        let t = sys.scan_totals();
        let ks = sys.policy.stats();
        // A promotion fuses the promoted candidate's mapping as well.
        assert_eq!(
            t.pages_merged,
            ks.merged + ks.promotions,
            "KSM scan report vs stats: {t:?} {ks:?}"
        );
        assert!(t.pages_merged > 0, "KSM must merge duplicates");
    }
    {
        let cfg = MachineConfig::test_small().with_reserved_top(256);
        let m = Machine::new(cfg);
        let wpf = Wpf::new(&m, WpfConfig::default()).expect("reserved region");
        let mut sys = System::new(m, wpf);
        let pids = [
            sys.machine.spawn("a").expect("spawn"),
            sys.machine.spawn("b").expect("spawn"),
        ];
        seed_duplicates(&mut sys, &pids);
        let t = sys.scan_totals();
        let ws = sys.policy.stats();
        assert_eq!(
            t.pages_merged, ws.merged,
            "WPF scan report vs stats: {t:?} {ws:?}"
        );
        assert!(t.pages_merged > 0, "WPF must merge duplicates");
    }
    {
        let mut m = Machine::new(MachineConfig::test_small());
        let policy = VUsion::new(
            &mut m,
            VUsionConfig {
                pool_frames: 1024,
                ..Default::default()
            },
        );
        let mut sys = System::new(m, policy);
        let pids = [
            sys.machine.spawn("a").expect("spawn"),
            sys.machine.spawn("b").expect("spawn"),
        ];
        seed_duplicates(&mut sys, &pids);
        let t = sys.scan_totals();
        let vs = sys.policy.stats();
        assert_eq!(
            t.pages_merged, vs.merged,
            "VUsion scan report vs stats: {t:?} {vs:?}"
        );
        assert_eq!(
            t.pages_fake_merged, vs.fake_merged,
            "VUsion fake merges: {t:?} {vs:?}"
        );
        assert_eq!(
            t.huge_pages_broken, vs.huge_broken,
            "VUsion THP breaks: {t:?} {vs:?}"
        );
        assert!(t.pages_merged > 0, "VUsion must merge duplicates");
        assert!(t.pages_fake_merged > 0, "VUsion must fake-merge uniques");
    }
}

/// Governor budget flow: every page the governor grants is either
/// consumed by an engine pass (and then shows up, page for page, in the
/// aggregated scan reports) or carried to the next wakeup by a parked
/// cursor — and drain-rung executions that released work are visible in
/// the machine's own deferred-drain counter.
#[test]
fn governor_budget_flow_identities() {
    let plan = FaultPlan {
        alloc_every_nth: 3,
        alloc_fail_prob: 0.25,
        ..FaultPlan::NONE
    };
    for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
        let cfg = MachineConfig::test_small()
            .with_seed(0xacc7)
            .with_fault_plan(plan);
        let mut sys = kind.build_system(cfg);
        // A tight ceiling so passes genuinely run out of budget: WPF's
        // 96-candidate hashing stage must suspend and resume.
        let throttled = PressureConfig {
            budget_min: 4,
            budget_max: 24,
            budget_add: 4,
            ..PressureConfig::standard()
        };
        sys.set_pressure_governor(throttled)
            .expect("throttled governor config validates");
        let pids: Vec<Pid> = (0..2)
            .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
            .collect();
        for &pid in &pids {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), 48, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 48);
        }
        for &pid in &pids {
            for pg in 0..48u64 {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[(pg % 5) as u8 + 1; PAGE_SIZE as usize],
                );
            }
        }
        sys.machine.arm_faults();
        for round in 0..4u8 {
            for &pid in &pids {
                for pg in 0..24u64 {
                    sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), round ^ 0x11);
                }
            }
            sys.force_scans(8);
        }
        let g = sys.pressure_governor().stats();
        let t = sys.scan_totals();
        assert!(g.budget_granted > 0, "{kind:?}: governor granted nothing");
        assert_eq!(
            g.budget_granted,
            g.budget_used + g.budget_carried,
            "{kind:?}: granted != used + carried: {g:?}"
        );
        assert_eq!(
            g.budget_used, t.budget_used,
            "{kind:?}: governor-accounted usage diverges from scan reports"
        );
        if matches!(kind, EngineKind::Wpf) {
            assert!(
                g.budget_carried > 0,
                "WPF's staged pass never suspended under a 24-page ceiling"
            );
        }
        assert!(
            sys.machine.stats().deferred_drains >= g.drain_rungs_effective,
            "{kind:?}: effective drain rungs exceed machine deferred_drains"
        );
    }
}

#[test]
fn memory_returns_after_total_unmerge() {
    for kind in [EngineKind::Ksm, EngineKind::VUsion] {
        let mut sys = kind.build_system(MachineConfig::test_small());
        let a = sys.machine.spawn("a").expect("spawn");
        let b = sys.machine.spawn("b").expect("spawn");
        for pid in [a, b] {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), 16, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 16);
        }
        for pid in [a, b] {
            for pg in 0..16u64 {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[4u8; PAGE_SIZE as usize],
                );
            }
        }
        let full = sys.machine.allocated_frames();
        sys.force_scans(20);
        assert!(
            sys.machine.allocated_frames() < full,
            "{kind:?} reclaimed nothing"
        );
        // Unique writes everywhere unmerge everything.
        for (k, pid) in [a, b].into_iter().enumerate() {
            for pg in 0..16u64 {
                sys.write(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    (k as u8 + 1) * 16 + pg as u8,
                );
            }
        }
        sys.force_scans(20); // Drain deferred frees.
        let back = sys.machine.allocated_frames();
        assert!(
            (back as i64 - full as i64).abs() <= 4,
            "{kind:?}: expected full repopulation, {full} -> {back}"
        );
        assert_eq!(
            sys.policy.pages_saved(),
            0,
            "{kind:?} still counts saved pages"
        );
    }
}
