//! Chaos testing: deterministic fault injection across every fusion
//! engine.
//!
//! Each run arms a seeded [`FaultPlan`] (allocation failures, checksum
//! corruption, mid-scan bit flips) *after* setup, then churns merge bait
//! and divergent writes through the engine while asserting, after every
//! round:
//!
//! * no panics anywhere (the run completing is itself the assertion);
//! * frame accounting stays sound ([`Machine::audit_frames`]: no mapped
//!   frame is free, no refcount underflow);
//! * no silent corruption: every page still translates, and its content
//!   matches a byte-exact oracle. A *failed* write is observable (the
//!   `try_write` error) and leaves the old content in place — it must
//!   never half-apply;
//! * memory does not leak across identical churn rounds;
//! * the security invariants survive injected failures: merged (Fused)
//!   pages stay trapped under VUsion and stay read-only under KSM/WPF.
//!
//! Every plan is driven by the machine's master seed, so any failure here
//! reproduces exactly from the printed plan name and seed.

use std::collections::BTreeMap;
use vusion::mem::PageType;
use vusion::prelude::*;
use vusion::repro::{assert_frames_sound, machine_digest, Bundle, KEEP_BUNDLES};
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

const BASE: u64 = 0x10000;
const PAGES: u64 = 24;
const PROCS: usize = 3;
const ROUNDS: u32 = 4;

const ENGINES: [EngineKind; 5] = [
    EngineKind::Ksm,
    EngineKind::KsmCoa,
    EngineKind::Wpf,
    EngineKind::VUsion,
    EngineKind::VUsionThp,
];

/// The seeded fault plans the sweep runs. At least eight, covering each
/// injector alone and in combination, light and heavy.
fn plans() -> [(&'static str, FaultPlan); 9] {
    [
        ("none", FaultPlan::NONE),
        ("every_3rd_alloc", FaultPlan::every_nth_alloc(3)),
        ("every_7th_alloc", FaultPlan::every_nth_alloc(7)),
        ("alloc_p10", FaultPlan::alloc_prob(0.10).expect("valid")),
        ("alloc_p35", FaultPlan::alloc_prob(0.35).expect("valid")),
        (
            "checksum_p25",
            FaultPlan {
                checksum_corrupt_prob: 0.25,
                ..FaultPlan::NONE
            },
        ),
        (
            "bitflip_p25",
            FaultPlan {
                scan_bitflip_prob: 0.25,
                ..FaultPlan::NONE
            },
        ),
        (
            "mixed_light",
            FaultPlan {
                alloc_fail_prob: 0.05,
                checksum_corrupt_prob: 0.05,
                scan_bitflip_prob: 0.05,
                ..FaultPlan::NONE
            },
        ),
        (
            "mixed_heavy",
            FaultPlan {
                alloc_every_nth: 5,
                alloc_fail_prob: 0.15,
                checksum_corrupt_prob: 0.15,
                scan_bitflip_prob: 0.15,
            },
        ),
    ]
}

/// Byte-exact oracle of what each (process, page) should contain.
type Oracle = BTreeMap<(usize, u64), [u8; PAGE_SIZE as usize]>;

struct ChaosRun {
    sys: System<Box<dyn FusionPolicy>>,
    pids: Vec<Pid>,
    oracle: Oracle,
    label: String,
    kind: EngineKind,
    cfg: MachineConfig,
    base_snapshot: Vec<u8>,
    crashes_armed: bool,
}

impl ChaosRun {
    /// Builds a system, populates every page with known content, and only
    /// then arms the fault plan — setup is never subject to injection.
    fn start(kind: EngineKind, plan_name: &str, plan: FaultPlan, seed: u64) -> Self {
        let cfg = MachineConfig::test_small()
            .with_seed(seed)
            .with_fault_plan(plan);
        Self::setup(kind.build_system(cfg), kind, cfg, plan_name, seed)
    }

    /// Spawns processes, populates pages, and arms the machine's fault
    /// plan on an already-built system. `cfg` is the config the system
    /// was built from; it travels into any failure bundle so a replay can
    /// rebuild the identical machine.
    fn setup(
        mut sys: System<Box<dyn FusionPolicy>>,
        kind: EngineKind,
        cfg: MachineConfig,
        plan_name: &str,
        seed: u64,
    ) -> Self {
        let pids: Vec<Pid> = (0..PROCS)
            .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
            .collect();
        for &pid in &pids {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
        }
        let mut oracle = Oracle::new();
        for (i, &pid) in pids.iter().enumerate() {
            for pg in 0..PAGES {
                // Duplicate-prone: only a handful of distinct fills.
                let fill = (pg % 4) as u8 + 1;
                let page = [fill; PAGE_SIZE as usize];
                sys.write_page(pid, VirtAddr(BASE + pg * PAGE_SIZE), &page);
                oracle.insert((i, pg), page);
            }
        }
        sys.machine.arm_faults();
        // Trace from here on: failure bundles attach the ring buffer's
        // tail as a Chrome trace, so a red chaos run ships its own
        // "what was the kernel doing" evidence.
        sys.machine.enable_tracing();
        // Journal from here on; the snapshot pairs with an empty journal,
        // so any later failure bundles as "this state, then these calls".
        sys.machine.enable_journal();
        sys.machine.clear_journal();
        let base_snapshot = sys.snapshot();
        Self {
            sys,
            pids,
            oracle,
            label: format!("{kind:?}/{plan_name}/seed {seed}"),
            kind,
            cfg,
            base_snapshot,
            crashes_armed: false,
        }
    }

    /// Arms the config's crash plan (post-setup, like the fault plan) and
    /// marks the fact so failure bundles re-arm it on replay.
    fn arm_crashes(&mut self) {
        self.sys.machine.arm_crashes();
        self.crashes_armed = true;
    }

    /// Packages the run's base snapshot + journal + current digest.
    fn bundle(&self, failing_step: &str) -> Bundle {
        Bundle::capture(
            self.kind,
            &self.cfg,
            self.base_snapshot.clone(),
            &self.sys,
            self.crashes_armed,
            &self.label,
            failing_step,
        )
    }

    /// Dumps a failure bundle into `bench_logs/repro/` and panics with the
    /// assertion message — every invariant failure in this suite leaves a
    /// replayable artifact behind.
    fn fail(&self, step: &str) -> ! {
        match self.bundle(step).dump() {
            Ok(path) => panic!("{step}\n  repro bundle: {}", path.display()),
            Err(e) => panic!("{step}\n  (repro bundle could not be written: {e})"),
        }
    }

    /// One churn round: random single-byte writes (tracked in the oracle
    /// only when they succeed), full-page rewrites of merge bait, scans.
    fn churn(&mut self, rng: &mut StdRng) {
        for _ in 0..96 {
            let p = rng.random_range(0..PROCS);
            let pg = rng.random_range(0..PAGES);
            let off = rng.random_range(0..PAGE_SIZE);
            let v = rng.random_range(0..8u8);
            let va = VirtAddr(BASE + pg * PAGE_SIZE + off);
            if self.sys.try_write(self.pids[p], va, v).is_ok() {
                self.oracle.get_mut(&(p, pg)).expect("tracked")[off as usize] = v;
            }
        }
        self.sys.force_scans(rng.random_range(2..8usize));
    }

    /// Asserts every invariant the run guarantees. Any failure dumps a
    /// replayable bundle before panicking.
    fn check(&mut self) {
        // Frame accounting is sound.
        let violations = self.sys.machine.audit_frames();
        if !violations.is_empty() {
            self.fail(&format!("{}: {violations:?}", self.label));
        }
        // No silent corruption: every page still translates and matches
        // the oracle byte for byte (failed writes must not half-apply).
        for (i, &pid) in self.pids.iter().enumerate() {
            for pg in 0..PAGES {
                let va = VirtAddr(BASE + pg * PAGE_SIZE);
                let Some(pa) = self.sys.machine.translate_quiet(pid, va) else {
                    self.fail(&format!("{}: p{i} page {pg} lost its mapping", self.label));
                };
                let got = self.sys.machine.mem().page(pa.frame());
                let want = &self.oracle[&(i, pg)];
                if got != want {
                    self.fail(&format!(
                        "{}: p{i} page {pg} diverged from the oracle",
                        self.label
                    ));
                }
            }
        }
        // Security invariants hold for whatever is merged right now:
        // shared Fused frames are trapped under VUsion (Same Behavior) and
        // never writable under any engine (CoW soundness).
        for pi in 0..self.pids.len() {
            let pid = self.pids[pi];
            for pg in 0..PAGES {
                let va = VirtAddr(BASE + pg * PAGE_SIZE);
                let Some(leaf) = self.sys.machine.leaf(pid, va) else {
                    continue;
                };
                if !leaf.pte.is_present() {
                    continue;
                }
                let frame = leaf.pte.frame();
                let info = self.sys.machine.mem().info(frame);
                if info.page_type != PageType::Fused || info.refcount < 2 {
                    continue;
                }
                if leaf.pte.has(PteFlags::WRITABLE) {
                    self.fail(&format!(
                        "{}: merged frame {frame:?} is writable",
                        self.label
                    ));
                }
            }
        }
    }
}

impl Drop for ChaosRun {
    /// Every chaos test ends with a frame-accounting audit, whether or
    /// not its body called [`ChaosRun::check`] on the final state.
    /// Skipped while unwinding so a failing assertion's own message (and
    /// repro bundle) is not masked by a double panic.
    fn drop(&mut self) {
        if !std::thread::panicking() {
            assert_frames_sound(&self.sys.machine, &self.label);
        }
    }
}

/// The main sweep: every plan over every engine. No run may panic, leak,
/// corrupt contents, or violate the merge security invariants —
/// regardless of which allocations fail or which scans get corrupted.
#[test]
fn engines_survive_seeded_fault_plans() {
    for (pi, (plan_name, plan)) in plans().into_iter().enumerate() {
        for (ki, kind) in ENGINES.into_iter().enumerate() {
            let seed = 0xc0de_0000 + (pi * 16 + ki) as u64;
            let mut run = ChaosRun::start(kind, plan_name, plan, seed);
            // Everything is populated and nothing merged yet: sharing can
            // only reduce this, so any round exceeding it leaked frames.
            let full = run.sys.machine.allocated_frames();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0);
            let mut allocated = Vec::new();
            for _ in 0..ROUNDS {
                run.churn(&mut rng);
                run.check();
                allocated.push(run.sys.machine.allocated_frames());
            }
            // Bounded memory: divergent writes may unshare back up to the
            // fully-populated level, but never past it (modulo transient
            // engine-held frames), even with injection forcing retry
            // paths.
            let last = *allocated.last().expect("rounds");
            assert!(
                last <= full + 16,
                "{}: allocated frames leaked past full population {full}: {allocated:?}",
                run.label
            );
        }
    }
}

/// The injectors actually fire, and the machine counts them: a chaos
/// sweep that never injects anything would be vacuous.
#[test]
fn fault_plans_inject_and_are_counted() {
    let mut checksum_or_flip_total = 0;
    for (plan_name, plan) in plans() {
        if !plan.is_active() {
            continue;
        }
        let alloc_plan = plan.alloc_every_nth > 0 || plan.alloc_fail_prob > 0.0;
        let mut injected_total = 0;
        for kind in ENGINES {
            let mut run = ChaosRun::start(kind, plan_name, plan, 0xab5e);
            let mut rng = StdRng::seed_from_u64(0xab5e);
            for _ in 0..ROUNDS {
                run.churn(&mut rng);
            }
            run.check();
            let stats = run.sys.machine.stats();
            injected_total += stats.injected_faults;
            if !alloc_plan {
                checksum_or_flip_total += stats.injected_faults;
            }
            if alloc_plan {
                assert!(
                    stats.injected_faults > 0,
                    "{}: alloc plan never fired",
                    run.label
                );
            }
        }
        assert!(
            injected_total > 0,
            "plan {plan_name} injected nothing across all engines"
        );
    }
    // The scan-side injectors (checksum corruption, bit flips) fired
    // somewhere in the sweep, not just the allocator one.
    assert!(
        checksum_or_flip_total > 0,
        "scan-side injection never fired"
    );
}

/// Graceful degradation is visible in the counters: under heavy
/// allocation failure VUsion drains its deferred-free queue to refill
/// the pool, and skips-and-retries the scan when even that runs dry —
/// instead of crashing. The pool buffers allocation failure by design
/// (a failed refill just shrinks it), so the test builds the engine with
/// a deliberately tiny pool; the default 256-frame pool would absorb the
/// whole plan without ever exposing the exhaustion path.
#[test]
fn degradation_counters_move_under_alloc_pressure() {
    let plan = FaultPlan {
        alloc_every_nth: 2,
        alloc_fail_prob: 0.8,
        ..FaultPlan::NONE
    };
    let mut scan_retries = 0;
    let mut deferred_drains = 0;
    for kind in [EngineKind::VUsion, EngineKind::VUsionThp] {
        for seed in 0..4u64 {
            let cfg = kind.adapt_machine(
                MachineConfig::test_small()
                    .with_seed(0xd15c ^ seed)
                    .with_fault_plan(plan),
            );
            let mut m = Machine::new(cfg);
            let policy = kind
                .build_policy(&mut m, 20_000_000, 8)
                .expect("vusion engines need no reserved region");
            let mut run = ChaosRun::setup(
                System::new(m, policy),
                kind,
                cfg,
                "alloc_heavy",
                0xd15c ^ seed,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..2 * ROUNDS {
                run.churn(&mut rng);
            }
            run.check();
            let stats = run.sys.machine.stats();
            scan_retries += stats.scan_retries;
            deferred_drains += stats.deferred_drains;
        }
    }
    assert!(
        scan_retries > 0,
        "no engine ever took the skip-and-retry path"
    );
    assert!(
        deferred_drains > 0,
        "VUsion never refilled its pool from the deferred-free queue"
    );
}

/// Satellite: the pressure governor under the OOM-burst ladder. Every
/// engine runs every [`FaultPlan::pressure_ladder`] plan with the
/// governor armed; after every round the full chaos invariant set
/// (`audit_frames`, content oracle, merge security) must still hold —
/// rung executions may drop caches and defer work, never soundness.
/// Across the sweep the governor must actually move: escalations and
/// de-escalations fire, budgets shrink under pressure and recover on a
/// calm tail, rungs fire in ladder order, and the budget-flow identity
/// holds on every single run.
#[test]
fn governor_degrades_gracefully_under_pressure_ladder() {
    let ladder = FaultPlan::pressure_ladder();
    let mut escalations_by_plan: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut total_de_escalations = 0;
    let mut total_shrinks = 0;
    let mut budget_shrank = false;
    let mut budget_recovered = false;
    for (pi, &(plan_name, plan)) in ladder.iter().enumerate() {
        for (ki, kind) in ENGINES.into_iter().enumerate() {
            let seed = 0x90e0_0000 + (pi * 16 + ki) as u64;
            let mut run = ChaosRun::start(kind, plan_name, plan, seed);
            run.sys
                .set_pressure_governor(PressureConfig::standard())
                .expect("standard governor config validates");
            let mut rng = StdRng::seed_from_u64(seed ^ 0x60);
            let mut min_budget = u64::MAX;
            for _ in 0..ROUNDS {
                run.churn(&mut rng);
                run.check();
                min_budget = min_budget.min(run.sys.pressure_governor().budget());
            }
            if min_budget < PressureConfig::standard().budget_max {
                budget_shrank = true;
            }
            // Calm tail: no writes, so no CoW allocations and (almost) no
            // injected failures — the band must cool down and the AIMD
            // budget must climb back from wherever pressure pushed it.
            run.sys.force_scans(24);
            run.check();
            let gov = run.sys.pressure_governor();
            let stats = gov.stats();
            if gov.budget() > min_budget {
                budget_recovered = true;
            }
            // Budget-flow identity, per run: every granted page was either
            // consumed by an engine pass or carried by a parked cursor.
            assert_eq!(
                stats.budget_granted,
                stats.budget_used + stats.budget_carried,
                "{}: budget flow identity broken",
                run.label
            );
            // Ladder order: rung 2 (shrink) and rung 3 (defer) always fire
            // together on a Critical entry, and deferral can only be
            // lifted as often as it was imposed.
            assert_eq!(
                stats.shrink_rungs, stats.defer_rungs,
                "{}: shrink and defer rungs must enter together",
                run.label
            );
            assert!(
                stats.defer_exits <= stats.defer_rungs,
                "{}: more defer exits than entries",
                run.label
            );
            // Drains count consistently: a drain rung that released work
            // is visible in the machine's deferred-drain counter too.
            assert!(
                run.sys.machine.stats().deferred_drains >= stats.drain_rungs_effective,
                "{}: effective drain rungs exceed machine deferred_drains",
                run.label
            );
            *escalations_by_plan.entry(plan_name).or_insert(0) += stats.escalations;
            total_de_escalations += stats.de_escalations;
            total_shrinks += stats.shrink_rungs;
        }
    }
    // The calm plan never escalates; every burst plan escalates somewhere.
    assert_eq!(escalations_by_plan["calm"], 0, "calm plan escalated");
    for &(plan_name, plan) in &ladder {
        if plan.is_active() {
            assert!(
                escalations_by_plan[plan_name] > 0,
                "plan {plan_name} never escalated the governor"
            );
        }
    }
    assert!(total_de_escalations > 0, "the band never cooled back down");
    assert!(total_shrinks > 0, "no run ever reached the shrink rung");
    assert!(budget_shrank, "budgets never shrank under pressure");
    assert!(budget_recovered, "budgets never recovered on the calm tail");
}

/// Hash-cache coherence, raw memory level: after any seeded interleaving
/// of content mutators — `write_byte`, `write_u64`, `write_page`,
/// `copy_page`, `zero_page`, and Rowhammer's `flip_bit` — the memoized
/// `hash_page` / `is_zero` answers always equal a fresh recomputation
/// over the frame's actual bytes. The cache is deliberately populated
/// *before* each mutation so a missed invalidation (a mutator that
/// forgets to bump the write generation) fails loudly rather than being
/// masked by a cold cache.
#[test]
fn hash_cache_stays_coherent_under_raw_mutation() {
    use vusion::mem::{content_hash, FrameId, PhysAddr, PhysMemory};
    const FRAMES: u64 = 32;
    let check = |mem: &PhysMemory, f: FrameId, op: &str, step: u32| {
        let fresh = content_hash(mem.page(f));
        assert_eq!(
            mem.hash_page(f),
            fresh,
            "step {step} ({op}): frame {f:?} served a stale cached hash"
        );
        let zero = mem.page(f).iter().all(|&b| b == 0);
        assert_eq!(
            mem.is_zero(f),
            zero,
            "step {step} ({op}): frame {f:?} served a stale zero bit"
        );
    };
    let mut mem = PhysMemory::new(FRAMES as usize);
    let mut rng = StdRng::seed_from_u64(0x4a5b_c0de);
    for step in 0..2000u32 {
        let f = FrameId(rng.random_range(0..FRAMES));
        // Warm the cache for the victim frame so the assertion below
        // exercises invalidation, not recomputation.
        let _ = mem.hash_page(f);
        let _ = mem.is_zero(f);
        let off = rng.random_range(0..PAGE_SIZE);
        match step % 6 {
            0 => {
                mem.write_byte(PhysAddr(f.0 * PAGE_SIZE + off), rng.random_range(0..=255u8));
                check(&mem, f, "write_byte", step);
            }
            1 => {
                let aligned = off & !7;
                mem.write_u64(
                    PhysAddr(f.0 * PAGE_SIZE + aligned),
                    rng.random_range(0..u64::MAX),
                );
                check(&mem, f, "write_u64", step);
            }
            2 => {
                let mut page = [0u8; PAGE_SIZE as usize];
                for b in page.iter_mut() {
                    *b = rng.random_range(0..4u8);
                }
                mem.write_page(f, &page);
                check(&mem, f, "write_page", step);
            }
            3 => {
                let src = FrameId(rng.random_range(0..FRAMES));
                let _ = mem.hash_page(src);
                mem.copy_page(src, f);
                check(&mem, f, "copy_page dst", step);
                check(&mem, src, "copy_page src", step);
            }
            4 => {
                mem.zero_page(f);
                check(&mem, f, "zero_page", step);
            }
            _ => {
                mem.flip_bit(PhysAddr(f.0 * PAGE_SIZE + off), rng.random_range(0..8u8));
                check(&mem, f, "flip_bit", step);
            }
        }
    }
    // Final full sweep: every frame, not just the last victims.
    for f in 0..FRAMES {
        check(&mem, FrameId(f), "final sweep", 2000);
    }
}

/// Hash-cache coherence, machine level: engines scan (and so populate
/// and consult the per-frame hash cache) while an armed fault plan
/// injects scan corruption and Rowhammer flips bits straight into mapped
/// DRAM between rounds. After every round, every frame's cached hash and
/// zero bit must equal a fresh recomputation — injected flips provably
/// invalidate cached hashes.
#[test]
fn hash_cache_stays_coherent_across_engines_and_injection() {
    use vusion::mem::{content_hash, PhysAddr};
    let plan = FaultPlan {
        alloc_fail_prob: 0.10,
        checksum_corrupt_prob: 0.25,
        scan_bitflip_prob: 0.25,
        ..FaultPlan::NONE
    };
    for (ki, kind) in ENGINES.into_iter().enumerate() {
        let seed = 0x4a5e_0000 + ki as u64;
        let mut run = ChaosRun::start(kind, "hash_coherence", plan, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..ROUNDS {
            run.churn(&mut rng);
            // Rowhammer between scans: flip bits in mapped data frames
            // (templated flips land in page contents, not page tables).
            for _ in 0..8 {
                let p = rng.random_range(0..PROCS);
                let pg = rng.random_range(0..PAGES);
                let va = VirtAddr(BASE + pg * PAGE_SIZE);
                let Some(pa) = run.sys.machine.translate_quiet(run.pids[p], va) else {
                    continue;
                };
                let addr = PhysAddr(pa.frame().0 * PAGE_SIZE + rng.random_range(0..PAGE_SIZE));
                let bit = rng.random_range(0..8u8);
                run.sys.machine.mem_mut().flip_bit(addr, bit);
            }
            // Scans walk the hammered memory through the cached paths.
            run.sys.force_scans(2);
            let mem = run.sys.machine.mem();
            for f in 0..mem.frame_count() as u64 {
                let f = vusion::mem::FrameId(f);
                assert_eq!(
                    mem.hash_page(f),
                    content_hash(mem.page(f)),
                    "{}: frame {f:?} served a stale hash after injection",
                    run.label
                );
                assert_eq!(
                    mem.is_zero(f),
                    mem.page(f).iter().all(|&b| b == 0),
                    "{}: frame {f:?} served a stale zero bit after injection",
                    run.label
                );
            }
        }
    }
}

/// Determinism: the same plan and seed produce the exact same injection
/// counts and the exact same final memory image — chaos failures are
/// reproducible by construction.
#[test]
fn chaos_runs_are_deterministic() {
    let plan = FaultPlan {
        alloc_fail_prob: 0.2,
        checksum_corrupt_prob: 0.2,
        scan_bitflip_prob: 0.2,
        ..FaultPlan::NONE
    };
    for kind in [EngineKind::Ksm, EngineKind::VUsion] {
        let image = |threads: usize| {
            let mut run = ChaosRun::start(kind, "repro", plan, 0x5eed);
            run.sys.set_scan_threads(threads);
            let mut rng = StdRng::seed_from_u64(0x5eed);
            for _ in 0..ROUNDS {
                run.churn(&mut rng);
            }
            let stats = run.sys.machine.stats();
            let mut bytes = Vec::new();
            for (i, &pid) in run.pids.iter().enumerate() {
                for pg in 0..PAGES {
                    let va = VirtAddr(BASE + pg * PAGE_SIZE);
                    let pa = run
                        .sys
                        .machine
                        .translate_quiet(pid, va)
                        .unwrap_or_else(|| panic!("p{i} page {pg} unmapped"));
                    bytes.extend_from_slice(run.sys.machine.mem().page(pa.frame()));
                }
            }
            (stats.injected_faults, stats.oom_events, bytes)
        };
        // Repeat runs match, and the scan-shard worker count changes
        // nothing: fault injection draws from the serial decide phase.
        let a = image(1);
        let b = image(1);
        assert_eq!(a.0, b.0, "{kind:?}: injection counts diverged");
        assert_eq!(a.1, b.1, "{kind:?}: OOM counts diverged");
        assert_eq!(a.2, b.2, "{kind:?}: final memory images diverged");
        for threads in [2, 4, 7] {
            let t = image(threads);
            assert_eq!(
                (a.0, a.1),
                (t.0, t.1),
                "{kind:?} @{threads} threads: injection counts diverged"
            );
            assert_eq!(
                a.2, t.2,
                "{kind:?} @{threads} threads: final memory images diverged"
            );
        }
    }
}

/// The oracle-free churn script used by the snapshot/replay tests: same
/// access pattern as [`ChaosRun::churn`], driven purely by the RNG so two
/// systems fed the same seed execute the identical call sequence.
fn churn_script(sys: &mut System<Box<dyn FusionPolicy>>, pids: &[Pid], rng: &mut StdRng) {
    for _ in 0..96 {
        let p = rng.random_range(0..PROCS);
        let pg = rng.random_range(0..PAGES);
        let off = rng.random_range(0..PAGE_SIZE);
        let v = rng.random_range(0..8u8);
        let _ = sys.try_write(pids[p], VirtAddr(BASE + pg * PAGE_SIZE + off), v);
    }
    sys.force_scans(rng.random_range(2..8usize));
}

/// Byte-identical convergence: equal digests, equal stats, equal frame
/// contents, and — the strongest form — equal serialized system state
/// (clock, RNG streams, engine internals, daemon deadlines included).
fn assert_identical(
    a: &System<Box<dyn FusionPolicy>>,
    b: &System<Box<dyn FusionPolicy>>,
    label: &str,
) {
    assert_eq!(
        a.machine.stats(),
        b.machine.stats(),
        "{label}: machine stats diverge"
    );
    let (ma, mb) = (a.machine.mem(), b.machine.mem());
    assert_eq!(ma.frame_count(), mb.frame_count(), "{label}: frame counts");
    for f in 0..ma.frame_count() {
        let f = FrameId(f as u64);
        assert!(
            ma.page(f) == mb.page(f),
            "{label}: frame {f:?} contents diverge"
        );
    }
    assert_eq!(
        machine_digest(&a.machine),
        machine_digest(&b.machine),
        "{label}: machine digests diverge"
    );
    assert_eq!(
        a.snapshot(),
        b.snapshot(),
        "{label}: serialized system state diverges"
    );
}

/// Satellite: snapshot determinism per engine. Freeze a mid-chaos run
/// (fault plan armed and firing), restore the snapshot into a freshly
/// built system, then drive both with the identical script: every
/// subsequent tick must match byte for byte, including the injector RNG
/// streams.
#[test]
fn snapshot_restore_resumes_identically() {
    let plan = FaultPlan {
        alloc_fail_prob: 0.10,
        checksum_corrupt_prob: 0.10,
        scan_bitflip_prob: 0.10,
        ..FaultPlan::NONE
    };
    for (ki, kind) in ENGINES.into_iter().enumerate() {
        let seed = 0x5a40_0000 + ki as u64;
        let mut run = ChaosRun::start(kind, "snapshot", plan, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        run.churn(&mut rng);
        run.churn(&mut rng);
        let frozen = run.sys.snapshot();
        let mut twin = run.kind.build_system(run.cfg);
        twin.restore(&frozen).expect("restore into a fresh system");
        // The worker count is host-side only — never serialized, so the
        // twin may resume under a different one and still match bytes.
        run.sys.set_scan_threads(4);
        twin.set_scan_threads(7);
        let pids = run.pids.clone();
        let mut ra = StdRng::seed_from_u64(seed ^ 2);
        let mut rb = StdRng::seed_from_u64(seed ^ 2);
        for _ in 0..2 {
            churn_script(&mut run.sys, &pids, &mut ra);
            churn_script(&mut twin, &pids, &mut rb);
        }
        assert_identical(&run.sys, &twin, &run.label);
    }
}

/// The tentpole acceptance sweep: every engine crashes at every site
/// (scan loop, merge, unmerge, re-randomization) at two depths — eight
/// seeded crash points per engine. Three runs per point:
///
/// * **X** (crashed): snapshot, arm the crash plan, churn. Crash branches
///   abandon work mid-flight; X must still pass `audit_frames` and the
///   content oracle — a crash may lose progress, never soundness.
/// * **Z** (control): the identical call script, crash plan never armed.
/// * **Y** (recovered): fresh system + `restore(X's snapshot)` +
///   `replay(X's journal)`. The journal records calls, not outcomes, and
///   crash arming is deliberately not journaled — so Y must converge to
///   **Z** byte-identically: same memory image, same stats, same
///   serialized state.
#[test]
fn crash_recovery_restores_byte_identical_state() {
    let mut fired_by_engine: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (ki, kind) in ENGINES.into_iter().enumerate() {
        for (si, site) in CrashSite::ALL.into_iter().enumerate() {
            for (ai, after) in [0u64, 3].into_iter().enumerate() {
                let seed = 0xc4a5_0000 + (ki * 16 + si * 2 + ai) as u64;
                let cfg = MachineConfig::test_small()
                    .with_seed(seed)
                    .with_crash_plan(CrashPlan::at(site, after));
                let label = format!("{kind:?}/{site:?}+{after}/seed {seed}");

                // X: the crashed run — scanning on 2 shard workers, so
                // the crash points (polled in the serial phase) land at
                // the exact spots a single-threaded run would hit.
                let mut x = ChaosRun::setup(kind.build_system(cfg), kind, cfg, "crash", seed);
                x.sys.set_scan_threads(2);
                x.arm_crashes();
                let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
                for _ in 0..2 {
                    x.churn(&mut rng);
                }
                *fired_by_engine.entry(kind.label()).or_insert(0) += x.sys.machine.crashes_fired();
                // A crash may abandon a scan's progress but never
                // soundness: accounting and contents must still hold.
                x.check();

                // Z: the identical script, never crashed.
                let mut z = ChaosRun::setup(kind.build_system(cfg), kind, cfg, "control", seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
                for _ in 0..2 {
                    z.churn(&mut rng);
                }

                // Y: restore X's base snapshot, replay X's journal —
                // recovering on 7 workers a run crashed on 2, judged
                // against a single-threaded control.
                let mut y = kind.build_system(cfg);
                y.set_scan_threads(7);
                y.restore(&x.base_snapshot).expect("restore base snapshot");
                y.replay(x.sys.machine.journal());
                assert!(
                    y.machine.audit_frames().is_empty(),
                    "{label}: replayed system fails the frame audit"
                );
                assert_identical(&y, &z.sys, &label);
            }
        }
    }
    // The sweep is not vacuous: every engine actually crashed somewhere
    // (the re-randomization site is VUsion-only, hence the aggregation
    // across sites).
    for kind in ENGINES {
        assert!(
            fired_by_engine.get(kind.label()).copied().unwrap_or(0) > 0,
            "{}: no crash site ever fired",
            kind.label()
        );
    }
}

/// Failure bundles round-trip through disk and reproduce the failing
/// state — including a mid-merge crash, the hardest case: the replay must
/// re-arm the crash plan and re-fire it at the same poll so the replayed
/// digest matches the digest recorded at "failure" time.
#[test]
fn failure_bundles_reproduce_crashed_runs() {
    let dir = std::path::PathBuf::from(format!("bench_logs/repro-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let seed = 0xb0bb;
    let plan = FaultPlan {
        alloc_fail_prob: 0.10,
        checksum_corrupt_prob: 0.10,
        scan_bitflip_prob: 0.10,
        ..FaultPlan::NONE
    };
    let cfg = MachineConfig::test_small()
        .with_seed(seed)
        .with_fault_plan(plan)
        .with_crash_plan(CrashPlan::at(CrashSite::MidMerge, 1));
    let mut run = ChaosRun::setup(
        EngineKind::VUsion.build_system(cfg),
        EngineKind::VUsion,
        cfg,
        "bundle",
        seed,
    );
    run.arm_crashes();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..2 {
        run.churn(&mut rng);
    }
    let fired = run.sys.machine.crashes_fired();
    assert!(fired > 0, "the crash plan must fire for this test to bite");

    // Dump as if an assertion had just failed, then reload and replay.
    let bundle = run.bundle("intentional failure (bundle round-trip test)");
    let path = bundle.dump_to(&dir).expect("dump bundle");
    let back = Bundle::load(&path).expect("load bundle");
    assert_eq!(back.seed, bundle.seed);
    assert_eq!(back.journal, bundle.journal, "journal must survive disk");
    assert_eq!(back.digest, bundle.digest);
    assert!(back.crashes_armed);
    let outcome = back.replay().expect("replay bundle");
    assert_eq!(
        outcome.crashes_fired, fired,
        "replay must re-fire the crash at the same poll"
    );
    assert!(
        outcome.reproduced(),
        "replayed digest {:#018x} != recorded {:#018x}",
        outcome.digest_replayed,
        outcome.digest_expected
    );
    assert!(outcome.audit_violations.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The bundle directory rotates: a flaky suite cannot fill the disk.
#[test]
fn bundle_rotation_caps_the_repro_directory() {
    let dir = std::path::PathBuf::from(format!("bench_logs/repro-rotate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = MachineConfig::test_small().with_seed(0x0e11);
    let run = ChaosRun::setup(
        EngineKind::Ksm.build_system(cfg),
        EngineKind::Ksm,
        cfg,
        "rotate",
        0x0e11,
    );
    let bundle = run.bundle("rotation test");
    for _ in 0..KEEP_BUNDLES + 3 {
        bundle.dump_to(&dir).expect("dump");
    }
    // Each bundle may ship a `.trace.json` sidecar; rotation removes the
    // pair together, so the directory holds at most KEEP pairs.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    let bundles = entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "vbun"))
        .count();
    assert!(
        bundles <= KEEP_BUNDLES,
        "rotation kept {bundles} bundles, cap is {KEEP_BUNDLES}"
    );
    assert!(
        entries.len() <= 2 * KEEP_BUNDLES,
        "rotation left {} files (cap {} bundle+sidecar pairs)",
        entries.len(),
        KEEP_BUNDLES
    );
    let _ = std::fs::remove_dir_all(&dir);
}
