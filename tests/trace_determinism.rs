//! Determinism of the observability layer: with a fixed seed and
//! workload, the trace ring buffer and the metrics snapshot must be
//! byte-identical across independent runs, and across a
//! snapshot/restore + journal-replay boundary. Timestamps come from the
//! simulated clock and ordering from the tracer's sequence counter, so
//! any wall-clock or iteration-order leak shows up here as a byte diff.

use vusion::mem::FrameAllocator;
use vusion::prelude::*;
use vusion::repro::Bundle;

const BASE: u64 = 0x40000;
const PAGES: u64 = 32;

/// Builds a traced system and drives the standard mixed workload:
/// duplicate writes, scans, then reads and partial writes (CoW + CoA
/// unmerges), then more scans. `threads` sets the scan-shard worker
/// count — a host-execution knob that must never reach any artifact.
fn traced_run(kind: EngineKind, seed: u64, threads: usize) -> (Vec<u8>, String, String, Vec<u8>) {
    let mut sys = kind.build_system(MachineConfig::test_small().with_seed(seed));
    sys.set_scan_threads(threads);
    sys.machine.enable_tracing();
    let pids: Vec<Pid> = (0..2)
        .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
    }
    for &pid in &pids {
        for pg in 0..PAGES {
            sys.write_page(
                pid,
                VirtAddr(BASE + pg * PAGE_SIZE),
                &[(pg % 5) as u8 + 1; PAGE_SIZE as usize],
            );
        }
    }
    sys.force_scans(12);
    for &pid in &pids {
        for pg in 0..PAGES {
            sys.read(pid, VirtAddr(BASE + pg * PAGE_SIZE));
        }
        for pg in 0..PAGES / 2 {
            sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), 0x5a);
        }
    }
    sys.force_scans(12);
    let trace = sys.machine.obs().tracer().export_bytes();
    let chrome = sys.machine.obs().tracer().chrome_trace_json();
    let metrics = sys.metrics_snapshot().to_json();
    let snapshot = sys.snapshot();
    (trace, chrome, metrics, snapshot)
}

/// Same seed + workload ⇒ byte-identical trace buffer, Chrome JSON and
/// metrics snapshot, for every engine.
#[test]
fn identical_runs_produce_identical_artifacts() {
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::Wpf,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let a = traced_run(kind, 0xfeed, 1);
        let b = traced_run(kind, 0xfeed, 1);
        assert!(!a.0.is_empty(), "{kind:?}: trace must record events");
        assert_eq!(a.0, b.0, "{kind:?}: trace buffers diverged");
        assert_eq!(a.1, b.1, "{kind:?}: Chrome trace JSON diverged");
        assert_eq!(a.2, b.2, "{kind:?}: metrics snapshots diverged");
        assert_eq!(a.3, b.3, "{kind:?}: snapshots diverged");
    }
}

/// The scan-shard worker count is pure host parallelism (DESIGN.md §13):
/// trace bytes, Chrome JSON, metrics, and the serialized system state
/// must be byte-identical at every thread count, for every engine — the
/// parallel phase computes only pure functions of page contents, and all
/// RNG draws, crash polls, and mutations stay in the serial phase.
#[test]
fn artifacts_identical_across_thread_counts() {
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::Wpf,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let one = traced_run(kind, 0xfeed, 1);
        assert!(!one.0.is_empty(), "{kind:?}: trace must record events");
        for threads in [2, 4, 7] {
            let t = traced_run(kind, 0xfeed, threads);
            assert_eq!(one.0, t.0, "{kind:?} @{threads} threads: trace diverged");
            assert_eq!(
                one.1, t.1,
                "{kind:?} @{threads} threads: Chrome JSON diverged"
            );
            assert_eq!(one.2, t.2, "{kind:?} @{threads} threads: metrics diverged");
            assert_eq!(one.3, t.3, "{kind:?} @{threads} threads: snapshot diverged");
        }
    }
}

/// A different seed must actually change something (guards against the
/// artifacts being trivially constant).
#[test]
fn different_seed_changes_the_trace() {
    let a = traced_run(EngineKind::VUsion, 1, 1);
    let b = traced_run(EngineKind::VUsion, 2, 1);
    assert_ne!(
        a.0, b.0,
        "VUsion trace must depend on the seed (rerandomization)"
    );
}

/// Drives the post-snapshot phase of the restore/replay test. Everything
/// here is journaled in the live run and re-executed by `System::replay`.
fn phase2<P: FusionPolicy>(sys: &mut System<P>, pids: &[Pid]) {
    for &pid in pids {
        for pg in 0..PAGES {
            sys.write_page(
                pid,
                VirtAddr(BASE + pg * PAGE_SIZE),
                &[7u8; PAGE_SIZE as usize],
            );
        }
    }
    sys.force_scans(10);
    for &pid in pids {
        for pg in 0..PAGES {
            sys.read(pid, VirtAddr(BASE + pg * PAGE_SIZE));
        }
    }
    sys.force_scans(5);
}

/// The trace of the live post-snapshot phase must equal the trace of the
/// same phase re-executed via restore + journal replay: observability is
/// part of the replay contract, not a bystander. The live run scans with
/// 4 shard workers and the replay with 7 — the knob is not part of the
/// snapshot, so replay on a machine with a different thread count must
/// still converge byte for byte.
#[test]
fn trace_survives_snapshot_restore_replay() {
    for kind in [EngineKind::Ksm, EngineKind::VUsion] {
        // Live run: set up, snapshot, then a traced phase 2.
        let cfg = MachineConfig::test_small().with_seed(0xabcd);
        let mut sys = kind.build_system(cfg);
        sys.set_scan_threads(4);
        let pids: Vec<Pid> = (0..2)
            .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
            .collect();
        for &pid in &pids {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
        }
        for &pid in &pids {
            for pg in 0..PAGES {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[3u8; PAGE_SIZE as usize],
                );
            }
        }
        sys.force_scans(8);
        sys.machine.enable_journal();
        sys.machine.clear_journal();
        let snapshot = sys.snapshot();
        // Trace exactly the delta after the snapshot.
        sys.machine.enable_tracing();
        phase2(&mut sys, &pids);
        let live_trace = sys.machine.obs().tracer().export_bytes();
        let live_metrics = sys.machine.obs().metrics().snapshot().to_json();
        let journal = sys.machine.journal().to_vec();
        assert!(!live_trace.is_empty(), "{kind:?}: phase 2 must trace");

        // Replayed run: fresh system, restore, trace, replay the journal —
        // under a different worker count than the live run.
        let mut replayed = kind.build_system(cfg);
        replayed.set_scan_threads(7);
        replayed.restore(&snapshot).expect("restore");
        replayed.machine.enable_tracing();
        replayed.replay(&journal);
        let replay_trace = replayed.machine.obs().tracer().export_bytes();
        let replay_metrics = replayed.machine.obs().metrics().snapshot().to_json();
        assert_eq!(
            live_trace, replay_trace,
            "{kind:?}: trace diverged across snapshot/restore + replay"
        );
        assert_eq!(
            live_metrics, replay_metrics,
            "{kind:?}: registry metrics diverged across snapshot/restore + replay"
        );
    }
}

/// A tight governor for determinism runs: small budgets so passes
/// genuinely suspend, standard thresholds otherwise.
fn tight_governor() -> PressureConfig {
    PressureConfig {
        budget_min: 4,
        budget_max: 16,
        budget_add: 4,
        ..PressureConfig::standard()
    }
}

/// Eats frames with a dedicated hog process until free memory sits just
/// under the governor's Elevated threshold, so the free-memory signal
/// (not only injected OOMs) drives escalation. Deterministic: the loop
/// is a pure function of machine state.
fn hog_memory<P: FusionPolicy>(sys: &mut System<P>) {
    let hog = sys.machine.spawn("hog").expect("spawn hog");
    sys.machine
        .mmap(hog, Vma::anon(VirtAddr(BASE), 3500, Protection::rw()));
    let total = sys.machine.config().frames - sys.machine.config().reserved_top_frames;
    let mut pg = 0u64;
    while sys.machine.buddy().free_frames() as u64 * 1000 / total >= 220 {
        sys.write_page(
            hog,
            VirtAddr(BASE + pg * PAGE_SIZE),
            &[0xaa; PAGE_SIZE as usize],
        );
        pg += 1;
    }
}

/// Like [`traced_run`], with the pressure governor armed over an
/// OOM-burst fault plan: escalations, rung executions, throttled budgets
/// and suspended cursors are all part of the run.
fn governed_run(kind: EngineKind, seed: u64, threads: usize) -> (Vec<u8>, String, String, Vec<u8>) {
    let plan = FaultPlan {
        alloc_every_nth: 3,
        alloc_fail_prob: 0.25,
        ..FaultPlan::NONE
    };
    let mut sys = kind.build_system(
        MachineConfig::test_small()
            .with_seed(seed)
            .with_fault_plan(plan),
    );
    sys.set_scan_threads(threads);
    sys.set_pressure_governor(tight_governor())
        .expect("tight governor config validates");
    sys.machine.enable_tracing();
    let pids: Vec<Pid> = (0..2)
        .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
    }
    for &pid in &pids {
        for pg in 0..PAGES {
            sys.write_page(
                pid,
                VirtAddr(BASE + pg * PAGE_SIZE),
                &[(pg % 5) as u8 + 1; PAGE_SIZE as usize],
            );
        }
    }
    hog_memory(&mut sys);
    sys.machine.arm_faults();
    sys.force_scans(9);
    for &pid in &pids {
        for pg in 0..PAGES {
            sys.read(pid, VirtAddr(BASE + pg * PAGE_SIZE));
        }
        for pg in 0..PAGES / 2 {
            sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), 0x5a);
        }
    }
    sys.force_scans(9);
    let trace = sys.machine.obs().tracer().export_bytes();
    let chrome = sys.machine.obs().tracer().chrome_trace_json();
    let metrics = sys.metrics_snapshot().to_json();
    let snapshot = sys.snapshot();
    (trace, chrome, metrics, snapshot)
}

/// Governor-active determinism: escalations, rung spans, throttled scan
/// budgets and parked cursors must all be byte-identical across repeat
/// runs and across every scan-shard thread count.
#[test]
fn governed_artifacts_identical_across_thread_counts() {
    for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
        let one = governed_run(kind, 0x6e55, 1);
        assert!(!one.0.is_empty(), "{kind:?}: governed run must trace");
        assert!(
            one.1.contains("pressure_escalation"),
            "{kind:?}: governed run never escalated — the sweep is vacuous"
        );
        assert!(
            one.2.contains("\"pressure.samples\""),
            "{kind:?}: enabled governor must fold pressure.* metrics"
        );
        let again = governed_run(kind, 0x6e55, 1);
        assert_eq!(one, again, "{kind:?}: repeat governed runs diverged");
        for threads in [2, 4, 7] {
            let t = governed_run(kind, 0x6e55, threads);
            assert_eq!(one.0, t.0, "{kind:?} @{threads} threads: trace diverged");
            assert_eq!(
                one.1, t.1,
                "{kind:?} @{threads} threads: Chrome JSON diverged"
            );
            assert_eq!(one.2, t.2, "{kind:?} @{threads} threads: metrics diverged");
            assert_eq!(one.3, t.3, "{kind:?} @{threads} threads: snapshot diverged");
        }
    }
}

/// A disabled governor is invisible: no `pressure.*` metric keys, no
/// pressure trace events, and byte-identical artifacts to a build that
/// never heard of the governor (zero-cost-when-off).
#[test]
fn disabled_governor_records_no_pressure_artifacts() {
    for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
        let (trace, chrome, metrics, _) = traced_run(kind, 0x0ff0, 1);
        assert!(!trace.is_empty(), "{kind:?}: run must trace");
        assert!(
            !chrome.contains("pressure"),
            "{kind:?}: disabled governor leaked trace events"
        );
        assert!(
            !metrics.contains("pressure."),
            "{kind:?}: disabled governor leaked pressure.* metrics"
        );
    }
}

/// Restore + replay across a snapshot taken mid-escalation, with a scan
/// pass suspended on a parked cursor: the governor band, the AIMD budget,
/// and the engine's in-flight pass state all travel through the snapshot,
/// so the replayed delta must trace and meter byte-identically — on a
/// different worker count than the live run.
#[test]
fn governed_trace_survives_restore_replay_mid_escalation() {
    let plan = FaultPlan {
        alloc_every_nth: 3,
        alloc_fail_prob: 0.25,
        ..FaultPlan::NONE
    };
    for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
        let cfg = MachineConfig::test_small()
            .with_seed(0x6e5d)
            .with_fault_plan(plan);
        let mut sys = kind.build_system(cfg);
        sys.set_scan_threads(4);
        sys.set_pressure_governor(tight_governor())
            .expect("tight governor config validates");
        let pids: Vec<Pid> = (0..2)
            .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
            .collect();
        for &pid in &pids {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
        }
        for &pid in &pids {
            for pg in 0..PAGES {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[3u8; PAGE_SIZE as usize],
                );
            }
        }
        hog_memory(&mut sys);
        sys.machine.arm_faults();
        // Push the band up and suspend a pass: budgets of at most 16
        // against the full candidate set cannot finish a staged pass in
        // one wake.
        for &pid in &pids {
            for pg in 0..PAGES {
                sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), 0x11);
            }
        }
        sys.force_scans(3);
        assert_ne!(
            sys.pressure_governor().band(),
            PressureBand::Nominal,
            "{kind:?}: snapshot must be taken mid-escalation"
        );
        if matches!(kind, EngineKind::Wpf) {
            // The staged pass is provably mid-flight: pages were hashed
            // under budget, but the merge stage (which only runs once the
            // whole candidate set is hashed) has not executed — the
            // snapshot below therefore carries a parked cursor, and the
            // byte-identical replay proves it traveled.
            let t = sys.scan_totals();
            assert!(t.pages_scanned > 0, "WPF hashed nothing before snapshot");
            assert_eq!(
                t.pages_merged, 0,
                "WPF completed a pass early; snapshot is not mid-pass"
            );
        }
        sys.machine.enable_journal();
        sys.machine.clear_journal();
        let snapshot = sys.snapshot();
        sys.machine.enable_tracing();
        phase2(&mut sys, &pids);
        let live_trace = sys.machine.obs().tracer().export_bytes();
        let live_metrics = sys.machine.obs().metrics().snapshot().to_json();
        let journal = sys.machine.journal().to_vec();
        assert!(!live_trace.is_empty(), "{kind:?}: phase 2 must trace");

        let mut replayed = kind.build_system(cfg);
        replayed.set_scan_threads(7);
        replayed.restore(&snapshot).expect("restore");
        replayed.machine.enable_tracing();
        replayed.replay(&journal);
        let replay_trace = replayed.machine.obs().tracer().export_bytes();
        let replay_metrics = replayed.machine.obs().metrics().snapshot().to_json();
        assert_eq!(
            live_trace, replay_trace,
            "{kind:?}: governed trace diverged across restore + replay"
        );
        assert_eq!(
            live_metrics, replay_metrics,
            "{kind:?}: governed metrics diverged across restore + replay"
        );
    }
}

/// Like [`traced_run`], with the side-channel surface recorder armed:
/// returns the canonical surface JSON artifact and the metrics snapshot.
fn surfaced_run(kind: EngineKind, seed: u64, threads: usize) -> (String, String) {
    let mut sys = kind.build_system(MachineConfig::test_small().with_seed(seed));
    sys.set_scan_threads(threads);
    sys.machine.enable_tracing();
    sys.machine.enable_surface();
    let pids: Vec<Pid> = (0..2)
        .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
    }
    for &pid in &pids {
        for pg in 0..PAGES {
            sys.write_page(
                pid,
                VirtAddr(BASE + pg * PAGE_SIZE),
                &[(pg % 5) as u8 + 1; PAGE_SIZE as usize],
            );
        }
    }
    sys.force_scans(12);
    for &pid in &pids {
        for pg in 0..PAGES {
            sys.read(pid, VirtAddr(BASE + pg * PAGE_SIZE));
        }
        for pg in 0..PAGES / 2 {
            sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), 0x5a);
        }
    }
    sys.force_scans(12);
    (sys.surface_json(), sys.metrics_snapshot().to_json())
}

/// The surface artifact is a canonical byte string: identical across
/// repeat runs and across every scan-shard worker count, for every
/// engine, and it actually records fault/transition activity.
#[test]
fn surface_artifact_identical_across_runs_and_thread_counts() {
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::Wpf,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let (surface, metrics) = surfaced_run(kind, 0xfeed, 1);
        assert!(
            surface.starts_with("{\"schema\":\"vusion-surface/v1\""),
            "{kind:?}: surface JSON missing schema header"
        );
        assert!(
            metrics.contains("surface.fault."),
            "{kind:?}: surfaced run must fold surface.* metrics"
        );
        let again = surfaced_run(kind, 0xfeed, 1);
        assert_eq!(surface, again.0, "{kind:?}: repeat surface runs diverged");
        assert_eq!(
            metrics, again.1,
            "{kind:?}: repeat surface metrics diverged"
        );
        for threads in [2, 4, 7] {
            let t = surfaced_run(kind, 0xfeed, threads);
            assert_eq!(
                surface, t.0,
                "{kind:?} @{threads} threads: surface diverged"
            );
            assert_eq!(
                metrics, t.1,
                "{kind:?} @{threads} threads: metrics diverged"
            );
        }
    }
}

/// A run that never enables the surface recorder must leave no trace of
/// it in any artifact: no `surface.*` metrics keys even with tracing on.
#[test]
fn disabled_surface_records_no_artifacts() {
    for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
        let (trace, _, metrics, _) = traced_run(kind, 0x0ff0, 1);
        assert!(!trace.is_empty(), "{kind:?}: run must trace");
        assert!(
            !metrics.contains("surface."),
            "{kind:?}: disabled surface recorder leaked surface.* metrics"
        );
    }
}

/// The surface of the live post-snapshot phase must equal the surface of
/// the same phase re-executed via restore + journal replay, on a
/// different scan-worker count — the recorder observes only replayed
/// machine events, so it is part of the replay contract too.
#[test]
fn surface_survives_snapshot_restore_replay() {
    for kind in [EngineKind::Ksm, EngineKind::VUsion] {
        let cfg = MachineConfig::test_small().with_seed(0xabcd);
        let mut sys = kind.build_system(cfg);
        sys.set_scan_threads(4);
        let pids: Vec<Pid> = (0..2)
            .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
            .collect();
        for &pid in &pids {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
        }
        for &pid in &pids {
            for pg in 0..PAGES {
                sys.write_page(
                    pid,
                    VirtAddr(BASE + pg * PAGE_SIZE),
                    &[3u8; PAGE_SIZE as usize],
                );
            }
        }
        sys.force_scans(8);
        sys.machine.enable_journal();
        sys.machine.clear_journal();
        let snapshot = sys.snapshot();
        // Record exactly the delta after the snapshot.
        sys.machine.enable_surface();
        phase2(&mut sys, &pids);
        let live_surface = sys.surface_json();
        let journal = sys.machine.journal().to_vec();

        let mut replayed = kind.build_system(cfg);
        replayed.set_scan_threads(7);
        replayed.restore(&snapshot).expect("restore");
        replayed.machine.enable_surface();
        replayed.replay(&journal);
        let replay_surface = replayed.surface_json();
        assert_eq!(
            live_surface, replay_surface,
            "{kind:?}: surface diverged across snapshot/restore + replay"
        );
    }
}

/// A failure bundle captured from a traced run carries the Chrome trace
/// tail, and it survives the sealed byte roundtrip.
#[test]
fn bundle_attaches_trace_tail() {
    let kind = EngineKind::VUsion;
    let cfg = MachineConfig::test_small().with_seed(0x7777);
    let mut sys = kind.build_system(cfg);
    sys.machine.enable_tracing();
    let pid = sys.machine.spawn("p0").expect("spawn");
    sys.machine
        .mmap(pid, Vma::anon(VirtAddr(BASE), 8, Protection::rw()));
    sys.machine.madvise_mergeable(pid, VirtAddr(BASE), 8);
    sys.machine.enable_journal();
    sys.machine.clear_journal();
    let base = sys.snapshot();
    for pg in 0..8u64 {
        sys.write_page(
            pid,
            VirtAddr(BASE + pg * PAGE_SIZE),
            &[1u8; PAGE_SIZE as usize],
        );
    }
    sys.force_scans(6);
    let bundle = Bundle::capture(kind, &cfg, base, &sys, false, "test", "assert");
    assert!(
        bundle.trace_tail.starts_with("{\"displayTimeUnit\"")
            && bundle.trace_tail.contains("\"traceEvents\":["),
        "bundle must embed Chrome trace JSON, got: {:.60}…",
        bundle.trace_tail
    );
    let roundtrip = Bundle::from_bytes(&bundle.to_bytes()).expect("roundtrip");
    assert_eq!(roundtrip.trace_tail, bundle.trace_tail);
    assert_eq!(roundtrip.digest, bundle.digest);
    // An untraced run attaches nothing.
    let mut quiet = kind.build_system(cfg);
    quiet.machine.enable_journal();
    quiet.machine.clear_journal();
    let qbase = quiet.snapshot();
    let qb = Bundle::capture(kind, &cfg, qbase, &quiet, false, "t", "a");
    assert!(qb.trace_tail.is_empty());
}
