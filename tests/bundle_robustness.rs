//! Repro bundles are loaded from disk — often from a CI artifact that
//! survived an upload, a download, and a workstation copy. Decoding must
//! therefore be total: truncated, bit-flipped, or plain wrong input
//! yields a typed error, never a panic or a silently-wrong bundle.

use vusion::prelude::*;
use vusion::repro::{latest_bundle, Bundle};

/// A real captured bundle to mutate.
fn sample_bundle() -> Bundle {
    let cfg = MachineConfig::test_small().with_seed(0xb0b);
    let mut sys = EngineKind::VUsion.build_system(cfg);
    let pid = sys.machine.spawn("p0").expect("spawn");
    sys.machine
        .mmap(pid, Vma::anon(VirtAddr(0x10000), 4, Protection::rw()));
    sys.machine.madvise_mergeable(pid, VirtAddr(0x10000), 4);
    sys.write_page(pid, VirtAddr(0x10000), &[3u8; PAGE_SIZE as usize]);
    sys.machine.enable_journal();
    sys.machine.clear_journal();
    let snap = sys.snapshot();
    sys.write_page(pid, VirtAddr(0x11000), &[5u8; PAGE_SIZE as usize]);
    sys.force_scans(2);
    Bundle::capture(EngineKind::VUsion, &cfg, snap, &sys, false, "test", "none")
}

#[test]
fn round_trip_is_lossless() {
    let bundle = sample_bundle();
    let bytes = bundle.to_bytes();
    let back = Bundle::from_bytes(&bytes).expect("round trip");
    assert_eq!(back.seed, bundle.seed);
    assert_eq!(back.digest, bundle.digest);
    assert_eq!(back.journal.len(), bundle.journal.len());
    assert_eq!(back.snapshot, bundle.snapshot);
    assert!(back.replay().expect("replay").reproduced());
}

#[test]
fn truncated_input_errors_at_every_length() {
    let bytes = sample_bundle().to_bytes();
    // Every strict prefix must fail cleanly — exhaustive over the header
    // region, sampled across the (large) snapshot body.
    for len in (0..bytes.len().min(256)).chain((256..bytes.len()).step_by(97)) {
        assert!(
            Bundle::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} bytes decoded successfully"
        );
    }
}

#[test]
fn bit_flips_never_panic_and_never_decode() {
    let bytes = sample_bundle().to_bytes();
    // Flip one bit at a spread of positions covering the sealed header,
    // the config fields, the snapshot, and the journal; the seal's
    // checksum must reject every one of them.
    for pos in (0..bytes.len()).step_by(61) {
        for bit in [0, 3, 7] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            assert!(
                Bundle::from_bytes(&corrupt).is_err(),
                "bit {bit} of byte {pos} flipped but the bundle still decoded"
            );
        }
    }
}

#[test]
fn wrong_magic_and_garbage_error_cleanly() {
    assert!(Bundle::from_bytes(&[]).is_err());
    assert!(Bundle::from_bytes(b"VSNP").is_err());
    assert!(Bundle::from_bytes(b"not a bundle at all").is_err());
    let mut bytes = sample_bundle().to_bytes();
    bytes[0..4].copy_from_slice(b"XXXX");
    assert!(Bundle::from_bytes(&bytes).is_err());
    // A valid seal around garbage payload must also fail (in the decoder,
    // not the unsealer).
    let sealed_garbage = vusion_snapshot::seal(&[0xff; 64]);
    assert!(Bundle::from_bytes(&sealed_garbage).is_err());
}

#[test]
fn latest_bundle_ignores_non_bundle_files() {
    let dir = std::env::temp_dir().join(format!("vusion-bundle-robust-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    // Non-bundle clutter: wrong extensions, a directory, a .vbun decoy
    // that is not even close to a bundle.
    std::fs::write(dir.join("coverage.json"), b"{}").expect("write");
    std::fs::write(dir.join("notes.txt"), b"hello").expect("write");
    std::fs::create_dir_all(dir.join("sub.vbun")).expect("mkdir decoy");
    assert_eq!(
        latest_bundle(&dir).expect("scan"),
        None,
        "clutter-only directory must yield no bundle"
    );

    let path = sample_bundle().dump_to(&dir).expect("dump");
    let found = latest_bundle(&dir).expect("scan").expect("bundle found");
    assert_eq!(found, path);
    let bytes = std::fs::read(found).expect("read");
    assert!(Bundle::from_bytes(&bytes).expect("decode").replay().is_ok());

    let _ = std::fs::remove_dir_all(&dir);
}
