//! Re-executes a chaos failure bundle.
//!
//! ```text
//! cargo run --example replay              # newest bundle in bench_logs/repro/
//! cargo run --example replay -- <path>    # a specific bundle
//! ```
//!
//! With no bundles on disk the example exits successfully after saying so
//! (CI runs it on green builds, where no failure has been dumped). A
//! reproduced failure exits 0 with the replayed digest matching; a bundle
//! that *fails to reproduce* exits 1 — that means the failure was not
//! captured deterministically and the bundle is a bug report against the
//! journal itself.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vusion::repro::{latest_bundle, Bundle, REPRO_DIR};

fn pick_bundle() -> Result<Option<PathBuf>, String> {
    if let Some(arg) = std::env::args().nth(1) {
        return Ok(Some(PathBuf::from(arg)));
    }
    let dir = Path::new(REPRO_DIR);
    if !dir.exists() {
        return Ok(None);
    }
    latest_bundle(dir).map_err(|e| format!("cannot list {REPRO_DIR}: {e}"))
}

fn run() -> Result<bool, String> {
    let Some(path) = pick_bundle()? else {
        println!("no failure bundles in {REPRO_DIR}; nothing to replay");
        return Ok(true);
    };
    let bundle = Bundle::load(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("bundle      {}", path.display());
    println!("engine      {}", bundle.kind.label());
    println!("seed        {:#018x}", bundle.seed);
    println!("journal     {} events", bundle.journal.len());
    println!("crash plan  armed={}", bundle.crashes_armed);
    println!("note        {}", bundle.note);
    println!("failed at   {}", bundle.failing_step);
    let outcome = bundle
        .replay()
        .map_err(|e| format!("replay failed to restore: {e}"))?;
    println!(
        "replayed    digest {:#018x} (expected {:#018x}), {} crash(es) fired",
        outcome.digest_replayed, outcome.digest_expected, outcome.crashes_fired
    );
    for v in &outcome.audit_violations {
        println!("audit       {v}");
    }
    if outcome.reproduced() {
        println!("reproduced: the bundle deterministically re-reaches the failing state");
        Ok(true)
    } else {
        println!("NOT reproduced: replay diverged from the recorded failing state");
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("replay: {e}");
            ExitCode::FAILURE
        }
    }
}
