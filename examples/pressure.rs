//! Pressure-governor escalation timeline for all three fusion engines.
//!
//! ```text
//! cargo run --example pressure
//! ```
//!
//! Runs each engine under the deterministic pressure governor
//! ([`System::set_pressure_governor`]) and records one timeline row per
//! scanner wakeup: the band, the AIMD scan budget, the free-memory
//! per-mille signal and the cumulative OOM count. KSM and WPF are pushed
//! up the bands by an OOM-storm fault plan (clustered injected allocation
//! failures) and cool back down on a calm tail; VUsion — whose
//! random-allocation pool absorbs scan-side OOMs by design — is pushed by
//! a memory hog that drops the free-frame signal below the elevated
//! threshold.
//!
//! The run also executes a **zero-cost-when-off control**: the identical
//! workload with the governor disabled must record no `pressure.*`
//! metrics and no pressure trace events (the example exits non-zero
//! otherwise).
//!
//! Output: the escalation timeline JSON on stdout, and the same document
//! at `bench_logs/pressure_timeline.json` (the CI artifact). Everything
//! is driven by the simulated clock, so the output is byte-identical run
//! to run.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

use vusion::mem::FrameAllocator;
use vusion::prelude::*;

const BASE: u64 = 0x10000;
const PAGES: u64 = 48;
const PROCS: usize = 2;
const HOG_BASE: u64 = 0x4000_0000;

/// Free-memory signal in per-mille of governable frames, as the governor
/// computes it.
fn free_pm<P: FusionPolicy>(sys: &System<P>) -> u64 {
    let cfg = sys.machine.config();
    let total = (cfg.frames - cfg.reserved_top_frames).max(1);
    sys.machine.buddy().free_frames() as u64 * 1000 / total
}

/// Spawns a hog process and dirties anonymous pages until the free-frame
/// signal sinks below `target_pm`.
fn hog_memory<P: FusionPolicy>(sys: &mut System<P>, target_pm: u64) {
    let hog = sys.machine.spawn("hog").expect("spawn hog");
    sys.machine
        .mmap(hog, Vma::anon(VirtAddr(HOG_BASE), 3500, Protection::rw()));
    let mut pg = 0u64;
    while free_pm(sys) >= target_pm && pg < 3500 {
        sys.write_page(
            hog,
            VirtAddr(HOG_BASE + pg * PAGE_SIZE),
            &[0xaa; PAGE_SIZE as usize],
        );
        pg += 1;
    }
}

/// The duplicate-heavy mergeable working set every engine runs.
fn populate<P: FusionPolicy>(sys: &mut System<P>) -> Vec<Pid> {
    let pids: Vec<Pid> = (0..PROCS)
        .map(|i| sys.machine.spawn(&format!("vm{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
        for pg in 0..PAGES {
            sys.write_page(
                pid,
                VirtAddr(BASE + pg * PAGE_SIZE),
                &[(pg % 5) as u8 + 1; PAGE_SIZE as usize],
            );
        }
    }
    pids
}

/// One deterministic churn round: every process rewrites a rotating half
/// of the working set (same value everywhere, so the pages re-merge and
/// the next round unmerges them again — each unmerge is a CoW
/// allocation the fault plan can fail).
fn churn<P: FusionPolicy>(sys: &mut System<P>, pids: &[Pid], round: u64) {
    for &pid in pids {
        for pg in 0..PAGES / 2 {
            let page = (pg * 2 + round) % PAGES;
            let _ = sys.try_write(pid, VirtAddr(BASE + page * PAGE_SIZE), 0x40 + round as u8);
        }
    }
}

struct Row {
    wake: u64,
    phase: &'static str,
    band: &'static str,
    budget: u64,
    free_pm: u64,
    oom_events: u64,
}

/// Runs the governed workload for one engine and returns the timeline.
fn timeline(kind: EngineKind, hog: bool) -> (Vec<Row>, PressureStats) {
    let plan = FaultPlan {
        alloc_every_nth: 2,
        alloc_fail_prob: 0.5,
        ..FaultPlan::NONE
    };
    let mut sys = kind.build_system(
        MachineConfig::test_small()
            .with_seed(0x9e55)
            .with_fault_plan(plan),
    );
    sys.set_pressure_governor(PressureConfig::standard())
        .expect("standard governor config validates");
    let pids = populate(&mut sys);
    if hog {
        hog_memory(&mut sys, 240);
    }

    let mut rows = Vec::new();
    let mut wake = 0u64;
    let mut record = |sys: &mut System<_>, phase: &'static str, n: usize| {
        for _ in 0..n {
            sys.force_scans(1);
            wake += 1;
            let g = sys.pressure_governor();
            rows.push(Row {
                wake,
                phase,
                band: g.band().label(),
                budget: g.budget(),
                free_pm: free_pm(sys),
                oom_events: sys.machine.stats().oom_events,
            });
        }
    };

    // Calm lead-in: faults not yet armed, the band must hold (KSM/WPF)
    // or reflect the hog (VUsion).
    record(&mut sys, "calm", 4);
    // Pressure: clustered injected allocation failures while the working
    // set merges and unmerges.
    sys.machine.arm_faults();
    for round in 0..6u64 {
        churn(&mut sys, &pids, round);
        record(&mut sys, "pressure", 2);
    }
    // Relief: no more writes, so no more CoW allocations for the armed
    // plan to fail — the band cools down after the dwell and the AIMD
    // budget climbs back.
    record(&mut sys, "relief", 12);

    (rows, sys.pressure_governor().stats())
}

/// The zero-cost-when-off control: identical workload, governor
/// disabled, no `pressure.*` artifacts allowed.
fn zero_cost_control(kind: EngineKind) -> Result<(), String> {
    let mut sys = kind.build_system(MachineConfig::test_small().with_seed(0x9e55));
    sys.machine.enable_tracing();
    let pids = populate(&mut sys);
    for round in 0..4u64 {
        churn(&mut sys, &pids, round);
        sys.force_scans(2);
    }
    let metrics = sys.metrics_snapshot().to_json();
    if metrics.contains("pressure.") {
        return Err(format!(
            "{}: disabled governor leaked pressure metrics",
            kind.slug()
        ));
    }
    let chrome = sys.machine.obs().tracer().chrome_trace_json();
    if chrome.contains("pressure") {
        return Err(format!(
            "{}: disabled governor leaked pressure trace events",
            kind.slug()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut doc = String::from("{\n  \"engines\": [\n");
    for (i, kind) in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion]
        .into_iter()
        .enumerate()
    {
        // VUsion's RA pool absorbs injected scan-side OOMs (that is the
        // point of the pool), so its pressure comes from the free-memory
        // signal instead.
        let hog = kind == EngineKind::VUsion;
        let (rows, stats) = timeline(kind, hog);
        if stats.escalations == 0 {
            eprintln!("{}: governor never escalated", kind.slug());
            return ExitCode::FAILURE;
        }
        if !hog && stats.de_escalations == 0 {
            eprintln!(
                "{}: governor never cooled down on the relief tail",
                kind.slug()
            );
            return ExitCode::FAILURE;
        }
        if let Err(e) = zero_cost_control(kind) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        if i > 0 {
            doc.push_str(",\n");
        }
        let _ = write!(
            doc,
            "    {{\n      \"engine\": \"{}\",\n      \"pressure_source\": \"{}\",\n      \"timeline\": [\n",
            kind.slug(),
            if hog { "free_memory_hog" } else { "oom_storm" },
        );
        for (j, r) in rows.iter().enumerate() {
            let _ = writeln!(
                doc,
                "        {{\"wake\": {}, \"phase\": \"{}\", \"band\": \"{}\", \"budget\": {}, \"free_pm\": {}, \"oom_events\": {}}}{}",
                r.wake, r.phase, r.band, r.budget, r.free_pm, r.oom_events,
                if j + 1 < rows.len() { "," } else { "" },
            );
        }
        let _ = write!(
            doc,
            "      ],\n      \"stats\": {{\"samples\": {}, \"escalations\": {}, \"de_escalations\": {}, \
             \"drain_rungs\": {}, \"shrink_rungs\": {}, \"defer_rungs\": {}, \
             \"budget_granted\": {}, \"budget_used\": {}, \"budget_carried\": {}}},\n      \
             \"zero_cost_when_off\": true\n    }}",
            stats.samples,
            stats.escalations,
            stats.de_escalations,
            stats.drain_rungs,
            stats.shrink_rungs,
            stats.defer_rungs,
            stats.budget_granted,
            stats.budget_used,
            stats.budget_carried,
        );
    }
    doc.push_str("\n  ]\n}\n");
    print!("{doc}");

    let out_dir = Path::new("bench_logs");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join("pressure_timeline.json");
    if let Err(e) = fs::write(&path, &doc) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}
