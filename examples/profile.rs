//! Cycle-attribution profiles for all three fusion engines.
//!
//! ```text
//! cargo run --example profile
//! ```
//!
//! Runs an identical traced workload (duplicate-heavy VM pages, scans,
//! then reads and writes that unmerge) under KSM, WPF and VUsion, prints
//! each engine's [`SystemReport`] — the per-phase cycle-attribution table
//! followed by the metrics snapshot — and writes, per engine, into
//! `bench_logs/`:
//!
//! * `profile_<engine>.trace.json` — Chrome `trace_event` JSON; open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! * `profile_<engine>.metrics.json` — the full metrics snapshot.
//! * `profile_<engine>.report.json` — engine + profile + metrics in one
//!   document (the [`SystemReport::to_json`] form).
//!
//! Everything is timestamped by the simulated cycle clock, so the output
//! is byte-identical run to run.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use vusion::prelude::*;

const BASE: u64 = 0x40000;
const PAGES: u64 = 64;
const PROCS: usize = 3;

/// The shared workload: duplicate-prone writes, merge scans, a read pass
/// (CoA traps under VUsion), partial unmerging writes, more scans.
fn drive<P: FusionPolicy>(sys: &mut System<P>) {
    let pids: Vec<Pid> = (0..PROCS)
        .map(|i| sys.machine.spawn(&format!("vm{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(BASE), PAGES, Protection::rw()));
        sys.machine.madvise_mergeable(pid, VirtAddr(BASE), PAGES);
    }
    for &pid in &pids {
        for pg in 0..PAGES {
            sys.write_page(
                pid,
                VirtAddr(BASE + pg * PAGE_SIZE),
                &[(pg % 6) as u8 + 1; PAGE_SIZE as usize],
            );
        }
    }
    sys.force_scans(16);
    for &pid in &pids {
        for pg in 0..PAGES {
            sys.read(pid, VirtAddr(BASE + pg * PAGE_SIZE));
        }
        for pg in 0..PAGES / 2 {
            sys.write(pid, VirtAddr(BASE + pg * PAGE_SIZE), 0xa5);
        }
    }
    sys.force_scans(16);
}

fn profile_engine(kind: EngineKind, out_dir: &Path) -> Result<(), String> {
    let mut sys = kind.build_system(MachineConfig::test_small().with_seed(0x9e3779b9));
    sys.machine.enable_tracing();
    drive(&mut sys);
    let report = sys.report();
    println!("{}", report.text());
    let slug = report.engine.clone();
    let chrome = sys.machine.obs().tracer().chrome_trace_json();
    for (suffix, body) in [
        ("trace.json", &chrome),
        ("metrics.json", &report.metrics.to_json()),
        ("report.json", &report.to_json()),
    ] {
        let path = out_dir.join(format!("profile_{slug}.{suffix}"));
        fs::write(&path, body).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    println!();
    Ok(())
}

fn main() -> ExitCode {
    let out_dir = Path::new("bench_logs");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
        if let Err(e) = profile_engine(kind, out_dir) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
