//! Differential side-channel surface report across the three engines.
//!
//! ```text
//! cargo run --example surface
//! ```
//!
//! Records one workload journal (duplicate + unique pages, settle,
//! probe each population) and replays it against KSM, WPF, and VUsion
//! with the [`vusion::kernel::SideChannelSurface`] recorder enabled,
//! then scores each channel's ability to distinguish fused from unfused
//! probe targets (see `vusion::diffsurface`). The run fails unless:
//!
//! * KSM and WPF show a distinguishing fault-latency surface (the
//!   paper's §2 attack premise), and
//! * every VUsion channel scores under the leakage threshold (the
//!   Share-XOR-Randomize defense claim), and
//! * every `surface_<engine>.json` artifact is byte-identical across a
//!   repeated run and scan-thread counts 1/2/4/7, and
//! * a surface-disabled control run emits no `surface.*` metrics keys.
//!
//! Output: the leakage report on stdout, plus `bench_logs/surface_<engine>.json`
//! and `bench_logs/surface_report.json` (the CI artifacts).

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use vusion::diffsurface::{self, WorkloadJournal};
use vusion::prelude::*;

fn main() -> ExitCode {
    // The report proper (thread count 1 is the canonical artifact).
    let report = diffsurface::run(1);
    let violations = report.violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("leakage violation: {v}");
        }
        return ExitCode::FAILURE;
    }

    // Determinism: a fresh journal + replay at several thread counts
    // must reproduce every artifact byte for byte.
    let journal = WorkloadJournal::record();
    for threads in [1, 2, 4, 7] {
        for base in &report.engines {
            let again = diffsurface::replay_engine(base.engine, &journal, threads);
            if again.surface_json != base.surface_json {
                eprintln!(
                    "{}: surface artifact differs at {threads} scan threads",
                    base.engine.slug()
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Zero-cost control: the same workload with the surface recorder
    // left off must contribute no surface.* metrics keys.
    {
        let mut sys = EngineKind::Ksm.build_system(MachineConfig::test_small());
        sys.machine.enable_tracing();
        let pid = sys.machine.spawn("control").expect("spawn");
        sys.machine
            .mmap(pid, Vma::anon(VirtAddr(0x40000), 8, Protection::rw()));
        for pg in 0..8u64 {
            sys.write_page(pid, VirtAddr(0x40000 + pg * PAGE_SIZE), &[3; 4096]);
        }
        sys.force_scans(4);
        let metrics = sys.metrics_snapshot().to_json();
        if metrics.contains("surface.") {
            eprintln!("disabled surface recorder leaked surface.* metrics keys");
            return ExitCode::FAILURE;
        }
    }

    let doc = report.to_json();
    println!("{doc}");

    let out_dir = Path::new("bench_logs");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for e in &report.engines {
        let path = out_dir.join(format!("surface_{}.json", e.engine.slug()));
        if let Err(err) = fs::write(&path, &e.surface_json) {
            eprintln!("cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    let path = out_dir.join("surface_report.json");
    if let Err(e) = fs::write(&path, &doc) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}
