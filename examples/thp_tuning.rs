//! Transparent-huge-page tuning: the §8 trade-off between fusion rate and
//! huge-page conservation, driven by an Apache-like server.
//!
//! ```sh
//! cargo run --release --example thp_tuning
//! ```

use vusion::prelude::*;
use vusion::workloads::apache::ApacheServer;
use vusion::workloads::images::ImageSpec;
use vusion_rng::rngs::StdRng;
use vusion_rng::SeedableRng;

fn run(kind: EngineKind) -> (usize, u64, f64) {
    let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
    let vm = ImageSpec::small(0, 1).boot(&mut sys, "server-vm");
    ImageSpec::small(0, 2).boot(&mut sys, "load-vm");
    let server = ApacheServer::default();
    let mut inst = server.start(&mut sys, &vm);
    let mut rng = StdRng::seed_from_u64(4);
    // Serve with the scanner (and khugepaged, for VUsion-THP) interleaved.
    for _ in 0..10 {
        for _ in 0..120 {
            inst.serve(&mut sys, &mut rng);
        }
        sys.idle(300_000_000);
    }
    let r = inst.run_load(&mut sys, 1200, 5);
    (
        sys.machine.count_huge_mappings(vm.pid),
        sys.policy.pages_saved(),
        r.req_per_s,
    )
}

fn main() {
    println!("engine x THP: huge pages conserved vs fusion rate vs throughput\n");
    println!(
        "{:<12} {:>11} {:>12} {:>12}",
        "engine", "huge pages", "pages saved", "req/s"
    );
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let (huge, saved, rps) = run(kind);
        println!(
            "{:<12} {:>11} {:>12} {:>12.0}",
            kind.label(),
            huge,
            saved,
            rps
        );
    }
    println!(
        "\nThe 'n' knob of the paper's section 8.1 lives in Khugepaged::with_min_active:\n\
         n = 1 maximizes huge pages (performance), larger n favors fusion (capacity)."
    );
}
