//! Cloud consolidation scenario: boot a fleet of diverse VM images and
//! compare how much memory each fusion engine reclaims — the Figure 10/11
//! story in miniature.
//!
//! ```sh
//! cargo run --release --example cloud_dedup
//! ```

use vusion::prelude::*;
use vusion::workloads::runner::{consumed_mib, sample_idle};

fn main() {
    let catalog = ImageCatalog::das4(0xda54);
    println!(
        "booting 8 VMs from a catalog of {} images under each engine...\n",
        catalog.len()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "engine", "boot MiB", "settled MiB", "pages saved"
    );
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::Wpf,
        EngineKind::VUsion,
    ] {
        let mut sys = kind.build_system(MachineConfig::guest_2g_scaled());
        for (i, spec) in catalog.pick(8, 1).into_iter().enumerate() {
            spec.scaled(1, 2).boot(&mut sys, &format!("vm{i}"));
        }
        let boot_mib = consumed_mib(&sys);
        // Let the machines idle for a simulated minute: scanners work
        // through the (mostly idle) guest memory.
        let samples = sample_idle(&mut sys, 60_000_000_000, 10_000_000_000);
        let end = samples.last().expect("sampled");
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>12}",
            kind.label(),
            boot_mib,
            end.mib,
            end.pages_saved
        );
    }
    println!(
        "\nVUsion reclaims nearly as much as KSM — while making fused and\n\
         non-fused pages indistinguishable and allocations unpredictable."
    );
}
