//! Attack demonstration: run the paper's signature attacks against the
//! insecure baselines and against VUsion.
//!
//! ```sh
//! cargo run --release --example attack_demo
//! ```

use vusion::attacks::{cow_timing, ffs_ksm, ffs_wpf, secret_leak};
use vusion::prelude::*;

fn main() {
    println!("== 1. Copy-on-write timing side channel (Dedup Est Machina-style) ==");
    for kind in [EngineKind::Ksm, EngineKind::VUsion] {
        let o = cow_timing::run(kind, cow_timing::CowTimingParams::default());
        println!(
            "  {:<8} KS p = {:>9.3e}  -> attacker {}",
            kind.label(),
            o.ks.p_value,
            if o.verdict.success {
                "DISTINGUISHES merged pages (secret leaked)"
            } else {
                "learns nothing"
            }
        );
    }

    println!("\n== 2. Secret extraction, byte by byte (Dedup Est Machina) ==");
    for kind in [EngineKind::Ksm, EngineKind::VUsion] {
        let o = secret_leak::run(kind, 42);
        println!(
            "  {:<8} victim byte = {}, attacker recovered {:?} -> {}",
            kind.label(),
            o.secret,
            o.recovered,
            if o.verdict.success {
                "SECRET LEAKED"
            } else {
                "nothing learned"
            }
        );
    }

    println!("\n== 3. Flip Feng Shui (Rowhammer on a fused page) ==");
    for kind in [EngineKind::Ksm, EngineKind::VUsion] {
        let o = ffs_ksm::run(kind);
        println!(
            "  {:<8} template={} bait_landed={} -> victim secret {}",
            kind.label(),
            o.template_found,
            o.bait_landed,
            if o.victim_corrupted {
                "CORRUPTED without a single write"
            } else {
                "intact"
            }
        );
    }

    println!("\n== 4. Reuse-based Flip Feng Shui against Windows Page Fusion ==");
    for kind in [EngineKind::Wpf, EngineKind::VUsion] {
        let o = ffs_wpf::run(kind);
        println!(
            "  {:<8} contiguous_run={} bait_landed={} -> victim secret {}",
            kind.label(),
            o.run_contiguous,
            o.bait_landed,
            if o.victim_corrupted {
                "CORRUPTED"
            } else {
                "intact"
            }
        );
    }

    println!(
        "\nSame Behavior + Randomized Allocation stop every attack;\n\
         run `cargo bench -p vusion-bench --bench tab1_attack_matrix` for the full Table 1 grid."
    );
}
