//! Quickstart: build a machine, run the secure VUsion engine, watch pages
//! fuse and unmerge.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vusion::prelude::*;

fn main() {
    // A small simulated machine with the VUsion engine attached.
    let mut sys = EngineKind::VUsion.build_system(MachineConfig::test_small());

    // Two "virtual machines" (processes whose memory is registered for
    // fusion, as KVM registers guest RAM).
    let vm_a = sys.machine.spawn("vm-a").expect("spawn");
    let vm_b = sys.machine.spawn("vm-b").expect("spawn");
    let base = VirtAddr(0x10000);
    for pid in [vm_a, vm_b] {
        sys.machine.mmap(pid, Vma::anon(base, 32, Protection::rw()));
        sys.machine.madvise_mergeable(pid, base, 32);
    }

    // Both VMs hold the same page content (say, a shared library page).
    let mut page = [0u8; PAGE_SIZE as usize];
    for (i, b) in page.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    sys.write_page(vm_a, base, &page);
    sys.write_page(vm_b, base, &page);

    let frames_before = sys.machine.allocated_frames();
    println!("before fusion: {} frames allocated", frames_before);

    // Let the scanner run a few wakeups (it only considers idle pages, and
    // it re-backs every candidate with a random frame — merged or not).
    sys.force_scans(14);

    println!(
        "after fusion:  {} frames allocated",
        sys.machine.allocated_frames()
    );
    println!("pages saved:   {}", sys.policy.pages_saved());

    let fa = sys.machine.leaf(vm_a, base).expect("mapped").pte;
    let fb = sys.machine.leaf(vm_b, base).expect("mapped").pte;
    println!(
        "vm-a PTE -> frame {:?}, trapped (S xor F): {}",
        fa.frame(),
        fa.is_trapped()
    );
    println!(
        "vm-b PTE -> frame {:?}, trapped (S xor F): {}",
        fb.frame(),
        fb.is_trapped()
    );
    assert_eq!(
        fa.frame(),
        fb.frame(),
        "the duplicates share one random frame"
    );

    // Reading unmerges transparently (copy-on-access), preserving content.
    let t0 = sys.machine.now_ns();
    let byte = sys.read(vm_a, base + 5);
    println!(
        "vm-a read byte {byte} in {} ns (copy-on-access: identical for merged and fake-merged pages)",
        sys.machine.now_ns() - t0
    );
    assert_eq!(byte, page[5]);

    // vm-b still sees its content, on the shared frame, untouched.
    assert_eq!(sys.read_page(vm_b, base), page);
    println!("done: contents preserved, no sharing observable, allocation randomized.");
}
