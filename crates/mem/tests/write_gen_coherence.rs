//! Regression suite for the write-generation contract (vlint rule W001):
//! the memoized per-frame content hashes and zero bits must stay coherent
//! through *every* public mutator — including the Rowhammer `flip_bit`
//! path — and across snapshot save/restore, where the cache is reset
//! wholesale instead of bumped per frame.

use vusion_mem::{content_hash, FrameId, PhysAddr, PhysMemory, PAGE_SIZE};
use vusion_snapshot::{Reader, Snapshot, Writer};

const FRAMES: usize = 4;

fn page(fill: u8) -> [u8; PAGE_SIZE as usize] {
    let mut p = [fill; PAGE_SIZE as usize];
    p[7] = fill.wrapping_add(3);
    p
}

/// Warms every memoized value so a later stale entry cannot hide behind
/// a cold cache.
fn warm(m: &PhysMemory) {
    for i in 0..m.frame_count() {
        let _ = m.hash_page(FrameId(i as u64));
        let _ = m.is_zero(FrameId(i as u64));
    }
}

/// The observable contract: memoization must be invisible. Every frame's
/// hash equals a fresh computation and every zero bit equals a fresh
/// scan.
fn assert_coherent(m: &PhysMemory, ctx: &str) {
    for i in 0..m.frame_count() {
        let f = FrameId(i as u64);
        assert_eq!(
            m.hash_page(f),
            content_hash(m.page(f)),
            "{ctx}: stale hash on frame {i}"
        );
        assert_eq!(
            m.is_zero(f),
            m.page(f).iter().all(|&b| b == 0),
            "{ctx}: stale zero bit on frame {i}"
        );
    }
}

#[test]
fn every_public_mutator_keeps_hashes_coherent() {
    let mut m = PhysMemory::new(FRAMES);
    warm(&m);

    m.write_byte(PhysAddr(3), 7);
    assert_coherent(&m, "write_byte");
    warm(&m);

    m.write_u64(PhysAddr(PAGE_SIZE + 16), 0xdead_beef_cafe_f00d);
    assert_coherent(&m, "write_u64");
    warm(&m);

    m.write_page(FrameId(2), &page(0x42));
    assert_coherent(&m, "write_page");
    warm(&m);

    m.copy_page(FrameId(2), FrameId(3));
    assert_coherent(&m, "copy_page");
    warm(&m);

    m.flip_bit(PhysAddr(2 * PAGE_SIZE + 9), 5);
    assert_coherent(&m, "flip_bit");
    warm(&m);

    m.zero_page(FrameId(2));
    assert_coherent(&m, "zero_page");

    // Writing a page back to all-zeroes dematerializes it; the cached
    // non-zero hash must not survive.
    m.write_page(FrameId(3), &[0; PAGE_SIZE as usize]);
    assert_coherent(&m, "write_page(zeroes)");
}

#[test]
fn snapshot_restore_drops_every_memoized_value() {
    let mut m = PhysMemory::new(FRAMES);
    m.write_page(FrameId(0), &page(0xAA));
    m.write_page(FrameId(1), &page(0x5A));
    warm(&m);

    let mut w = Writer::new();
    m.save(&mut w);
    let bytes = w.into_bytes();

    // Diverge after the save and re-warm: the hot cache now describes a
    // state the snapshot does not contain.
    m.write_page(FrameId(0), &page(0x11));
    m.flip_bit(PhysAddr(PAGE_SIZE + 3), 2);
    m.zero_page(FrameId(1));
    warm(&m);

    // In-place restore must reset the memoization wholesale (this is the
    // one mutation path that bumps no per-frame generation — see the
    // vlint W001 allowance in phys.rs).
    let mut r = Reader::new(&bytes);
    m.load(&mut r).expect("restore");
    assert_coherent(&m, "restore over hot cache");

    // And the restored image is byte- and hash-identical to the same
    // snapshot loaded into a fresh memory with cold caches.
    let mut fresh = PhysMemory::new(FRAMES);
    let mut r2 = Reader::new(&bytes);
    fresh.load(&mut r2).expect("restore into fresh");
    for i in 0..FRAMES {
        let f = FrameId(i as u64);
        assert_eq!(m.page(f), fresh.page(f), "content diverged on frame {i}");
        assert_eq!(
            m.hash_page(f),
            fresh.hash_page(f),
            "hash diverged on frame {i}"
        );
    }
}
