//! Property-based tests for the allocator substrate.

use proptest::prelude::*;
use vusion_mem::{
    BuddyAllocator, FrameAllocator, FrameId, LinearAllocator, PhysMemory, RandomPool,
};

proptest! {
    /// Any interleaving of allocs and frees never hands out a frame twice
    /// and never loses frames: at the end, freeing everything restores the
    /// full capacity.
    #[test]
    fn buddy_never_double_allocates(ops in proptest::collection::vec(0u8..4, 1..200)) {
        let mut b = BuddyAllocator::new(FrameId(0), 256);
        let mut live: Vec<FrameId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for op in ops {
            match op {
                0 | 1 => {
                    if let Some(f) = b.alloc() {
                        prop_assert!(seen.insert(f) || !live.contains(&f));
                        prop_assert!(!live.contains(&f), "frame {f:?} double-allocated");
                        live.push(f);
                    }
                }
                2 => {
                    if let Some(f) = live.pop() {
                        b.free(f);
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let f = live.remove(0);
                        b.free(f);
                    }
                }
            }
            prop_assert_eq!(b.free_frames(), 256 - live.len());
        }
        for f in live {
            b.free(f);
        }
        prop_assert_eq!(b.free_frames(), 256);
    }

    /// Mixed-order allocations stay within the managed range and aligned.
    #[test]
    fn buddy_orders_are_aligned(orders in proptest::collection::vec(0u8..5, 1..40)) {
        let mut b = BuddyAllocator::new(FrameId(0), 1024);
        let mut live = Vec::new();
        for o in orders {
            if let Some(f) = b.alloc_order(o) {
                prop_assert_eq!(f.0 % (1 << o), 0, "order-{} block misaligned", o);
                prop_assert!(f.0 + (1 << o) <= 1024);
                live.push((f, o));
            }
        }
        for (f, o) in live {
            b.free_order(f, o);
        }
        prop_assert_eq!(b.free_frames(), 1024);
    }

    /// The linear allocator's reservations never overlap and never exceed
    /// the managed range.
    #[test]
    fn linear_batches_disjoint(sizes in proptest::collection::vec(1usize..30, 1..10)) {
        let mut a = LinearAllocator::new(FrameId(0), 128);
        let mut all = std::collections::HashSet::new();
        for n in sizes {
            for f in a.reserve_batch(n, |_| false) {
                prop_assert!(f.0 < 128);
                prop_assert!(all.insert(f), "frame {f:?} reserved twice");
            }
        }
    }

    /// The random pool conserves frames: alloc/free sequences never lose or
    /// duplicate a frame.
    #[test]
    fn random_pool_conserves_frames(seed in any::<u64>(), ops in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut b = BuddyAllocator::new(FrameId(0), 128);
        let mut p = RandomPool::new(32, &mut b, seed);
        let mut live = Vec::new();
        for alloc in ops {
            if alloc {
                if let Some(f) = p.alloc_random(&mut b) {
                    prop_assert!(!live.contains(&f), "pool duplicated {f:?}");
                    live.push(f);
                }
            } else if let Some(f) = live.pop() {
                p.free_random(f, &mut b);
            }
        }
        // Total frames = backing free + pool resident + live must equal 128.
        prop_assert_eq!(b.free_frames() + p.resident() + live.len(), 128);
    }

    /// Page content survives arbitrary byte writes (memory is sound).
    #[test]
    fn phys_memory_bytes_roundtrip(writes in proptest::collection::vec((0u64..8, 0u64..4096, any::<u8>()), 1..100)) {
        let mut m = PhysMemory::new(8);
        let mut model = std::collections::HashMap::new();
        for (frame, off, val) in writes {
            let addr = FrameId(frame).addr(off);
            m.write_byte(addr, val);
            model.insert((frame, off), val);
        }
        for ((frame, off), val) in model {
            prop_assert_eq!(m.read_byte(FrameId(frame).addr(off)), val);
        }
    }

    /// `pages_equal` agrees with byte-wise comparison, including lazy zeros.
    #[test]
    fn pages_equal_matches_bytes(writes in proptest::collection::vec((0u64..2, 0u64..64, 0u8..3), 0..40)) {
        let mut m = PhysMemory::new(2);
        for (frame, off, val) in writes {
            m.write_byte(FrameId(frame).addr(off), val);
        }
        let eq = m.page(FrameId(0)).as_slice() == m.page(FrameId(1)).as_slice();
        prop_assert_eq!(m.pages_equal(FrameId(0), FrameId(1)), eq);
        if eq {
            prop_assert_eq!(m.hash_page(FrameId(0)), m.hash_page(FrameId(1)));
        }
    }
}
