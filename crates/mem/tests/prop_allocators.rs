//! Property-style tests for the allocator substrate, driven by the in-repo
//! seeded PRNG: each test sweeps many seeds and generates its inputs from
//! the seed, so failures reproduce exactly by seed.

// Tests assert setup preconditions with expect("why"); the crate-level
// expect_used deny targets simulation code, not its test harness.
#![allow(clippy::expect_used)]

use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

use vusion_mem::{
    BuddyAllocator, FrameAllocator, FrameId, LinearAllocator, PhysMemory, RandomPool,
};

const SEEDS: u64 = 48;

/// Any interleaving of allocs and frees never hands out a frame twice
/// and never loses frames: at the end, freeing everything restores the
/// full capacity.
#[test]
fn buddy_never_double_allocates() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_ops = rng.random_range(1..200usize);
        let mut b = BuddyAllocator::new(FrameId(0), 256);
        let mut live: Vec<FrameId> = Vec::new();
        for _ in 0..n_ops {
            match rng.random_range(0..4u8) {
                0 | 1 => {
                    if let Ok(f) = b.alloc() {
                        assert!(
                            !live.contains(&f),
                            "seed {seed}: frame {f:?} double-allocated"
                        );
                        live.push(f);
                    }
                }
                2 => {
                    if let Some(f) = live.pop() {
                        b.free(f).expect("free of live frame");
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let f = live.remove(0);
                        b.free(f).expect("free of live frame");
                    }
                }
            }
            assert_eq!(b.free_frames(), 256 - live.len(), "seed {seed}");
        }
        for f in live {
            b.free(f).expect("free of live frame");
        }
        assert_eq!(b.free_frames(), 256, "seed {seed}");
    }
}

/// Mixed-order allocations stay within the managed range and aligned.
#[test]
fn buddy_orders_are_aligned() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa11c);
        let n = rng.random_range(1..40usize);
        let mut b = BuddyAllocator::new(FrameId(0), 1024);
        let mut live = Vec::new();
        for _ in 0..n {
            let o = rng.random_range(0..5u8);
            if let Ok(f) = b.alloc_order(o) {
                assert_eq!(f.0 % (1 << o), 0, "seed {seed}: order-{o} block misaligned");
                assert!(f.0 + (1 << o) <= 1024, "seed {seed}");
                live.push((f, o));
            }
        }
        for (f, o) in live {
            b.free_order(f, o).expect("free");
        }
        assert_eq!(b.free_frames(), 1024, "seed {seed}");
    }
}

/// The linear allocator's reservations never overlap and never exceed
/// the managed range.
#[test]
fn linear_batches_disjoint() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11ea);
        let batches = rng.random_range(1..10usize);
        let mut a = LinearAllocator::new(FrameId(0), 128);
        let mut all = std::collections::BTreeSet::new();
        for _ in 0..batches {
            let n = rng.random_range(1..30usize);
            for f in a.reserve_batch(n, |_| false) {
                assert!(f.0 < 128, "seed {seed}");
                assert!(all.insert(f), "seed {seed}: frame {f:?} reserved twice");
            }
        }
    }
}

/// The random pool conserves frames: alloc/free sequences never lose or
/// duplicate a frame.
#[test]
fn random_pool_conserves_frames() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9001);
        let n_ops = rng.random_range(1..100usize);
        let mut b = BuddyAllocator::new(FrameId(0), 128);
        let mut p = RandomPool::new(32, &mut b, seed);
        let mut live = Vec::new();
        for _ in 0..n_ops {
            if rng.random_range(0..2u8) == 0 {
                if let Ok(f) = p.alloc_random(&mut b) {
                    assert!(!live.contains(&f), "seed {seed}: pool duplicated {f:?}");
                    live.push(f);
                }
            } else if let Some(f) = live.pop() {
                p.free_random(f, &mut b).expect("free");
            }
        }
        // Total frames = backing free + pool resident + live must equal 128.
        assert_eq!(
            b.free_frames() + p.resident() + live.len(),
            128,
            "seed {seed}"
        );
    }
}

/// The RA exclusion guarantee survives injected backing failures: even
/// while the backing allocator fails deterministically underneath it, the
/// pool never hands back the caller-templated frame, and exhaustion is a
/// clean typed error (never a panic, never a frame leak).
#[test]
fn random_pool_exclusion_under_injected_backing_failures() {
    use vusion_mem::{FaultInjector, FaultPlan, MmError};
    let plans = [
        FaultPlan::every_nth_alloc(2),
        FaultPlan::every_nth_alloc(3),
        FaultPlan::every_nth_alloc(7),
        FaultPlan::alloc_prob(0.5).expect("valid"),
        FaultPlan::alloc_prob(0.9).expect("valid"),
        FaultPlan::alloc_prob(1.0).expect("valid"),
    ];
    for (pi, plan) in plans.into_iter().enumerate() {
        for seed in 0..SEEDS {
            let mut b = BuddyAllocator::new(FrameId(0), 64);
            let mut p = RandomPool::new(16, &mut b, seed);
            b.set_fault_injector(FaultInjector::new(plan, seed ^ 0xfa17));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdeed);
            // The attacker-templated frame: drawn, then released.
            let marked = p.alloc_random(&mut b).expect("pool is pre-filled");
            p.free_random(marked, &mut b).expect("free");
            let mut held: Vec<FrameId> = Vec::new();
            for _ in 0..300 {
                if rng.random_range(0..3u8) < 2 {
                    match p.alloc_random_excluding(&mut b, Some(marked)) {
                        Ok(f) => {
                            assert_ne!(
                                f, marked,
                                "plan {pi} seed {seed}: templated frame reused under failure"
                            );
                            assert!(!held.contains(&f), "plan {pi} seed {seed}: duplicate");
                            held.push(f);
                        }
                        Err(e) => assert_eq!(
                            e,
                            MmError::PoolExhausted,
                            "plan {pi} seed {seed}: unexpected error"
                        ),
                    }
                } else if let Some(f) = held.pop() {
                    p.free_random(f, &mut b).expect("free");
                }
            }
            // No frame leaked or duplicated across the whole run. The
            // templated frame is still somewhere in the system.
            assert_eq!(
                b.free_frames() + p.resident() + held.len(),
                64,
                "plan {pi} seed {seed}: frames leaked"
            );
        }
    }
}

/// Page content survives arbitrary byte writes (memory is sound).
#[test]
fn phys_memory_bytes_roundtrip() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb17e);
        let writes = rng.random_range(1..100usize);
        let mut m = PhysMemory::new(8);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..writes {
            let frame = rng.random_range(0..8u64);
            let off = rng.random_range(0..4096u64);
            let val = rng.random_range(0..=255u64) as u8;
            let addr = FrameId(frame).addr(off);
            m.write_byte(addr, val);
            model.insert((frame, off), val);
        }
        for ((frame, off), val) in model {
            assert_eq!(m.read_byte(FrameId(frame).addr(off)), val, "seed {seed}");
        }
    }
}

/// `pages_equal` agrees with byte-wise comparison, including lazy zeros.
#[test]
fn pages_equal_matches_bytes() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe4a1);
        let writes = rng.random_range(0..40usize);
        let mut m = PhysMemory::new(2);
        for _ in 0..writes {
            let frame = rng.random_range(0..2u64);
            let off = rng.random_range(0..64u64);
            let val = rng.random_range(0..3u8);
            m.write_byte(FrameId(frame).addr(off), val);
        }
        let eq = m.page(FrameId(0)).as_slice() == m.page(FrameId(1)).as_slice();
        assert_eq!(m.pages_equal(FrameId(0), FrameId(1)), eq, "seed {seed}");
        if eq {
            assert_eq!(
                m.hash_page(FrameId(0)),
                m.hash_page(FrameId(1)),
                "seed {seed}"
            );
        }
    }
}
