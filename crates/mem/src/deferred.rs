//! Deferred-free queue (Fake Merging design decision ii, §7.1).
//!
//! Without care, a copy-on-access fault on a *fake-merged* page is slower
//! than on a merged page: the fake-merged page's old frame drops to zero
//! references inside the fault handler and interacts with the buddy
//! allocator, while a merged page's shared frame usually survives. VUsion
//! closes this timing channel by queueing frees and processing them in the
//! background; real merges queue a **dummy** request so both paths execute
//! the same instructions.

use std::collections::VecDeque;

use crate::addr::FrameId;

/// An entry in the deferred queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeferredOp {
    /// Release this frame to the allocator (fake-merge path).
    Free(FrameId),
    /// No-op placeholder queued by the real-merge path so that both paths
    /// perform identical work in the fault handler.
    Dummy,
}

/// FIFO queue of deferred operations, drained by the background scanner.
#[derive(Debug, Default)]
pub struct DeferredFreeQueue {
    ops: VecDeque<DeferredOp>,
    processed_frees: u64,
    processed_dummies: u64,
}

impl DeferredFreeQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a frame for background release.
    pub fn push_free(&mut self, frame: FrameId) {
        self.ops.push_back(DeferredOp::Free(frame));
    }

    /// Queues a dummy request (real-merge path).
    pub fn push_dummy(&mut self) {
        self.ops.push_back(DeferredOp::Dummy);
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drains up to `limit` operations, invoking `release` for each queued
    /// free. Returns the number of operations processed.
    pub fn drain(&mut self, limit: usize, mut release: impl FnMut(FrameId)) -> usize {
        let mut n = 0;
        while n < limit {
            let Some(op) = self.ops.pop_front() else {
                break;
            };
            match op {
                DeferredOp::Free(f) => {
                    release(f);
                    self.processed_frees += 1;
                }
                DeferredOp::Dummy => self.processed_dummies += 1,
            }
            n += 1;
        }
        n
    }

    /// Total frees processed so far.
    pub fn processed_frees(&self) -> u64 {
        self.processed_frees
    }

    /// Total dummies processed so far.
    pub fn processed_dummies(&self) -> u64 {
        self.processed_dummies
    }
}

impl vusion_snapshot::Snapshot for DeferredFreeQueue {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.usize(self.ops.len());
        for op in &self.ops {
            match op {
                DeferredOp::Free(f) => {
                    w.u8(0);
                    w.u64(f.0);
                }
                DeferredOp::Dummy => w.u8(1),
            }
        }
        w.u64(self.processed_frees);
        w.u64(self.processed_dummies);
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        let n = r.usize()?;
        self.ops.clear();
        for _ in 0..n {
            let op = match r.u8()? {
                0 => DeferredOp::Free(FrameId(r.u64()?)),
                1 => DeferredOp::Dummy,
                _ => return Err(vusion_snapshot::SnapshotError::Corrupt("deferred op")),
            };
            self.ops.push_back(op);
        }
        self.processed_frees = r.u64()?;
        self.processed_dummies = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = DeferredFreeQueue::new();
        q.push_free(FrameId(1));
        q.push_free(FrameId(2));
        let mut seen = Vec::new();
        q.drain(10, |f| seen.push(f));
        assert_eq!(seen, vec![FrameId(1), FrameId(2)]);
    }

    #[test]
    fn drain_respects_limit() {
        let mut q = DeferredFreeQueue::new();
        for i in 0..5 {
            q.push_free(FrameId(i));
        }
        let mut seen = Vec::new();
        assert_eq!(q.drain(2, |f| seen.push(f)), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn dummies_do_not_release_frames() {
        let mut q = DeferredFreeQueue::new();
        q.push_dummy();
        q.push_free(FrameId(9));
        q.push_dummy();
        let mut seen = Vec::new();
        assert_eq!(q.drain(10, |f| seen.push(f)), 3);
        assert_eq!(seen, vec![FrameId(9)]);
        assert_eq!(q.processed_dummies(), 2);
        assert_eq!(q.processed_frees(), 1);
    }

    #[test]
    fn push_cost_is_identical_shape() {
        // Both paths enqueue exactly one entry — the SB property at the
        // queue level.
        let mut q = DeferredFreeQueue::new();
        q.push_free(FrameId(0));
        let after_free = q.len();
        q.push_dummy();
        let after_dummy = q.len();
        assert_eq!(after_dummy - after_free, after_free);
    }

    #[test]
    fn empty_drain_is_noop() {
        let mut q = DeferredFreeQueue::new();
        assert_eq!(q.drain(10, |_| panic!("nothing to release")), 0);
        assert!(q.is_empty());
    }
}
