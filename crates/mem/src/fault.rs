//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *which* faults to inject; a [`FaultInjector`]
//! (plan + seeded RNG + counters) decides *when*. Everything is driven by
//! the machine's master seed, so a chaos run is exactly reproducible: the
//! same seed and plan produce the same injected failures at the same
//! points, which is what lets `tests/chaos.rs` assert engine behavior
//! under failure rather than merely observing crashes.
//!
//! Injected allocation failures are deliberately indistinguishable from
//! genuine OOM ([`crate::MmError::OutOfFrames`]): the paper's Same
//! Behavior principle demands that callers take the same degradation path
//! either way, and the tests verify exactly that.

use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

/// Which faults to inject, and how often. The default plan injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Fail every Nth allocation (0 disables the counter-based injector).
    pub alloc_every_nth: u64,
    /// Fail each allocation independently with this probability.
    pub alloc_fail_prob: f64,
    /// Corrupt each scan-time checksum read with this probability
    /// (modeling a guest racing the scanner mid-checksum).
    pub checksum_corrupt_prob: f64,
    /// Perturb each scan-time content comparison with this probability
    /// (modeling a bit flip observed mid-scan).
    pub scan_bitflip_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::NONE
    }
}

impl FaultPlan {
    /// The no-injection plan.
    pub const NONE: FaultPlan = FaultPlan {
        alloc_every_nth: 0,
        alloc_fail_prob: 0.0,
        checksum_corrupt_prob: 0.0,
        scan_bitflip_prob: 0.0,
    };

    /// Fail every `n`th allocation.
    pub fn every_nth_alloc(n: u64) -> Self {
        FaultPlan {
            alloc_every_nth: n,
            ..Self::NONE
        }
    }

    /// Fail each allocation with probability `p`.
    pub fn alloc_prob(p: f64) -> Self {
        FaultPlan {
            alloc_fail_prob: p,
            ..Self::NONE
        }
    }

    /// Whether this plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.alloc_every_nth > 0
            || self.alloc_fail_prob > 0.0
            || self.checksum_corrupt_prob > 0.0
            || self.scan_bitflip_prob > 0.0
    }
}

/// Counts of faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Allocations forced to fail.
    pub injected_allocs: u64,
    /// Checksum reads corrupted.
    pub injected_checksums: u64,
    /// Scan-time comparisons perturbed.
    pub injected_bitflips: u64,
}

impl InjectionStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.injected_allocs + self.injected_checksums + self.injected_bitflips
    }
}

/// A seeded fault source: deterministic for a given `(plan, seed)` pair.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    alloc_calls: u64,
    stats: InjectionStats,
}

impl FaultInjector {
    /// Creates an injector. Callers derive `seed` from the machine's
    /// master seed (xor'ed with a per-site salt so the buddy injector and
    /// the scan injector draw independent streams).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            rng: StdRng::seed_from_u64(seed),
            alloc_calls: 0,
            stats: InjectionStats::default(),
        }
    }

    /// The plan this injector follows.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Counters of injected faults.
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// Decides whether the current allocation should fail.
    pub fn should_fail_alloc(&mut self) -> bool {
        if !self.plan.is_active() {
            return false;
        }
        self.alloc_calls += 1;
        let nth = self.plan.alloc_every_nth > 0
            && self.alloc_calls.is_multiple_of(self.plan.alloc_every_nth);
        let prob =
            self.plan.alloc_fail_prob > 0.0 && self.rng.random_bool(self.plan.alloc_fail_prob);
        if nth || prob {
            self.stats.injected_allocs += 1;
            true
        } else {
            false
        }
    }

    /// Possibly corrupts a checksum read during a scan. Returns the value
    /// the scanner should see.
    pub fn corrupt_checksum(&mut self, sum: u64) -> u64 {
        if self.plan.checksum_corrupt_prob > 0.0
            && self.rng.random_bool(self.plan.checksum_corrupt_prob)
        {
            self.stats.injected_checksums += 1;
            // Flip one pseudo-random bit of the checksum.
            sum ^ (1u64 << self.rng.random_range(0..64u64))
        } else {
            sum
        }
    }

    /// Decides whether the scanner observes a transient bit flip on the
    /// page it is currently examining (making its content comparison
    /// unreliable this round).
    pub fn scan_bitflip(&mut self) -> bool {
        if self.plan.scan_bitflip_prob > 0.0 && self.rng.random_bool(self.plan.scan_bitflip_prob) {
            self.stats.injected_bitflips += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::NONE, 1);
        for _ in 0..1000 {
            assert!(!inj.should_fail_alloc());
            assert_eq!(inj.corrupt_checksum(42), 42);
            assert!(!inj.scan_bitflip());
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn every_nth_is_exact() {
        let mut inj = FaultInjector::new(FaultPlan::every_nth_alloc(5), 1);
        let fails: Vec<bool> = (0..20).map(|_| inj.should_fail_alloc()).collect();
        let expect: Vec<bool> = (1..=20).map(|i| i % 5 == 0).collect();
        assert_eq!(fails, expect);
        assert_eq!(inj.stats().injected_allocs, 4);
    }

    #[test]
    fn probability_injection_is_deterministic_per_seed() {
        let plan = FaultPlan::alloc_prob(0.3);
        let mut a = FaultInjector::new(plan, 9);
        let mut b = FaultInjector::new(plan, 9);
        let fa: Vec<bool> = (0..200).map(|_| a.should_fail_alloc()).collect();
        let fb: Vec<bool> = (0..200).map(|_| b.should_fail_alloc()).collect();
        assert_eq!(fa, fb);
        let hits = fa.iter().filter(|&&x| x).count();
        assert!((30..90).contains(&hits), "p=0.3 injected {hits}/200");
    }

    #[test]
    fn checksum_corruption_changes_value() {
        let plan = FaultPlan {
            checksum_corrupt_prob: 1.0,
            ..FaultPlan::NONE
        };
        let mut inj = FaultInjector::new(plan, 3);
        let corrupted = inj.corrupt_checksum(0xdead_beef);
        assert_ne!(corrupted, 0xdead_beef);
        assert_eq!(inj.stats().injected_checksums, 1);
    }

    #[test]
    fn bitflip_counting() {
        let plan = FaultPlan {
            scan_bitflip_prob: 1.0,
            ..FaultPlan::NONE
        };
        let mut inj = FaultInjector::new(plan, 3);
        assert!(inj.scan_bitflip());
        assert_eq!(inj.stats().injected_bitflips, 1);
    }
}
