//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *which* faults to inject; a [`FaultInjector`]
//! (plan + seeded RNG + counters) decides *when*. Everything is driven by
//! the machine's master seed, so a chaos run is exactly reproducible: the
//! same seed and plan produce the same injected failures at the same
//! points, which is what lets `tests/chaos.rs` assert engine behavior
//! under failure rather than merely observing crashes.
//!
//! Injected allocation failures are deliberately indistinguishable from
//! genuine OOM ([`crate::MmError::OutOfFrames`]): the paper's Same
//! Behavior principle demands that callers take the same degradation path
//! either way, and the tests verify exactly that.

use std::fmt;

use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};
use vusion_snapshot::{Reader, Snapshot, SnapshotError, Writer};

/// A [`FaultPlan`] field was given a value that cannot describe a real
/// injection plan (a probability outside `[0, 1]`, or NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// A probability field is not a finite value in `[0, 1]`.
    InvalidProbability {
        /// Which field was rejected.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidProbability { field, value } => {
                write!(f, "fault plan: {field} = {value} is not in [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Whether `p` is a usable probability: finite and in `[0, 1]`.
fn valid_prob(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

/// Which faults to inject, and how often. The default plan injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Fail every Nth allocation (0 disables the counter-based injector).
    pub alloc_every_nth: u64,
    /// Fail each allocation independently with this probability.
    pub alloc_fail_prob: f64,
    /// Corrupt each scan-time checksum read with this probability
    /// (modeling a guest racing the scanner mid-checksum).
    pub checksum_corrupt_prob: f64,
    /// Perturb each scan-time content comparison with this probability
    /// (modeling a bit flip observed mid-scan).
    pub scan_bitflip_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::NONE
    }
}

impl FaultPlan {
    /// The no-injection plan.
    pub const NONE: FaultPlan = FaultPlan {
        alloc_every_nth: 0,
        alloc_fail_prob: 0.0,
        checksum_corrupt_prob: 0.0,
        scan_bitflip_prob: 0.0,
    };

    /// Fail every `n`th allocation.
    pub fn every_nth_alloc(n: u64) -> Self {
        FaultPlan {
            alloc_every_nth: n,
            ..Self::NONE
        }
    }

    /// Fail each allocation with probability `p`. Rejects `p` outside
    /// `[0, 1]` (and NaN) with a typed error rather than silently
    /// producing a degenerate plan that clamps at injection time.
    pub fn alloc_prob(p: f64) -> Result<Self, FaultPlanError> {
        if !valid_prob(p) {
            return Err(FaultPlanError::InvalidProbability {
                field: "alloc_fail_prob",
                value: p,
            });
        }
        Ok(FaultPlan {
            alloc_fail_prob: p,
            ..Self::NONE
        })
    }

    /// Checks every probability field: finite and in `[0, 1]`. Plans
    /// built by struct literal should be validated before arming; the
    /// constructors ([`Self::alloc_prob`]) already are.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (field, value) in [
            ("alloc_fail_prob", self.alloc_fail_prob),
            ("checksum_corrupt_prob", self.checksum_corrupt_prob),
            ("scan_bitflip_prob", self.scan_bitflip_prob),
        ] {
            if !valid_prob(value) {
                return Err(FaultPlanError::InvalidProbability { field, value });
            }
        }
        Ok(())
    }

    /// Whether this plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.alloc_every_nth > 0
            || self.alloc_fail_prob > 0.0
            || self.checksum_corrupt_prob > 0.0
            || self.scan_bitflip_prob > 0.0
    }

    /// The canonical campaign plan ladder: each injector alone and in
    /// combination, light and heavy — the enumeration DST campaigns sweep
    /// against every engine, crash site and seed. Every plan validates.
    pub fn campaign_ladder() -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("none", FaultPlan::NONE),
            ("every_5th_alloc", FaultPlan::every_nth_alloc(5)),
            (
                "alloc_p15",
                FaultPlan {
                    alloc_fail_prob: 0.15,
                    ..FaultPlan::NONE
                },
            ),
            (
                "scan_side_p20",
                FaultPlan {
                    checksum_corrupt_prob: 0.20,
                    scan_bitflip_prob: 0.20,
                    ..FaultPlan::NONE
                },
            ),
            (
                "mixed_heavy",
                FaultPlan {
                    alloc_every_nth: 7,
                    alloc_fail_prob: 0.10,
                    checksum_corrupt_prob: 0.10,
                    scan_bitflip_prob: 0.10,
                },
            ),
        ]
    }

    /// OOM-burst plans for pressure-governor sweeps: escalating allocation
    /// failure intensity, from an occasional miss to a sustained storm.
    /// Paired with real allocation pressure (a workload that eats frames),
    /// these drive the governor through its whole escalation ladder while
    /// the chaos suite checks that every rung degrades gracefully.
    pub fn pressure_ladder() -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("calm", FaultPlan::NONE),
            ("oom_trickle", FaultPlan::every_nth_alloc(16)),
            (
                "oom_burst",
                FaultPlan {
                    alloc_every_nth: 3,
                    alloc_fail_prob: 0.25,
                    ..FaultPlan::NONE
                },
            ),
            (
                "oom_storm",
                FaultPlan {
                    alloc_every_nth: 2,
                    alloc_fail_prob: 0.50,
                    ..FaultPlan::NONE
                },
            ),
        ]
    }

    /// Deterministic plan mutation: perturbs one field, drawn from `rng`,
    /// into a new *valid* plan. Campaigns use this to grow the plan space
    /// beyond the hand-written ladder while staying exactly reproducible
    /// from the seed that drove the mutation.
    pub fn mutated(self, rng: &mut StdRng) -> FaultPlan {
        let mut plan = self;
        // Probabilities are drawn on a coarse lattice (multiples of 0.05)
        // so mutated plans have short, printable descriptions and two
        // mutations can collide back to a previously seen plan.
        let lattice = |rng: &mut StdRng| f64::from(rng.random_range(0..=10u32)) * 0.05;
        match rng.random_range(0..4u32) {
            0 => plan.alloc_every_nth = rng.random_range(0..12u64),
            1 => plan.alloc_fail_prob = lattice(rng),
            2 => plan.checksum_corrupt_prob = lattice(rng),
            _ => plan.scan_bitflip_prob = lattice(rng),
        }
        plan
    }

    /// Serializes the plan into a snapshot payload.
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.alloc_every_nth);
        w.f64(self.alloc_fail_prob);
        w.f64(self.checksum_corrupt_prob);
        w.f64(self.scan_bitflip_prob);
    }

    /// Reads a plan previously written by [`Self::save`].
    pub fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            alloc_every_nth: r.u64()?,
            alloc_fail_prob: r.f64()?,
            checksum_corrupt_prob: r.f64()?,
            scan_bitflip_prob: r.f64()?,
        })
    }
}

/// A point in engine code where a crash can be injected. Mirrors the
/// interruption points a host reboot could hit under real KSM load: the
/// scanner loop itself, and the three state transitions that move frames
/// between shared and exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Top of a scan pass, between pages.
    MidScan,
    /// Inside a merge, after the target frame has been chosen.
    MidMerge,
    /// Inside a copy-on-write break-away, after the private frame was
    /// allocated but before the mapping moved.
    MidUnmerge,
    /// Inside VUsion's per-round backing-frame re-randomization.
    MidRerandomization,
}

impl CrashSite {
    /// All injectable sites, for sweep tests.
    pub const ALL: [CrashSite; 4] = [
        CrashSite::MidScan,
        CrashSite::MidMerge,
        CrashSite::MidUnmerge,
        CrashSite::MidRerandomization,
    ];

    /// Stable lowercase label (coverage keys, report rows).
    pub fn label(self) -> &'static str {
        match self {
            CrashSite::MidScan => "mid_scan",
            CrashSite::MidMerge => "mid_merge",
            CrashSite::MidUnmerge => "mid_unmerge",
            CrashSite::MidRerandomization => "mid_rerandomization",
        }
    }

    /// Snapshot wire tag. Public so the exhaustiveness test (and any
    /// external tooling) can assert that every variant round-trips: a new
    /// crash site cannot ship without wire support.
    pub fn tag(self) -> u8 {
        match self {
            CrashSite::MidScan => 0,
            CrashSite::MidMerge => 1,
            CrashSite::MidUnmerge => 2,
            CrashSite::MidRerandomization => 3,
        }
    }

    /// Inverse of [`Self::tag`]; rejects unknown tags.
    pub fn from_tag(t: u8) -> Result<Self, SnapshotError> {
        Ok(match t {
            0 => CrashSite::MidScan,
            1 => CrashSite::MidMerge,
            2 => CrashSite::MidUnmerge,
            3 => CrashSite::MidRerandomization,
            _ => return Err(SnapshotError::Corrupt("unknown crash site")),
        })
    }
}

/// Which crash to inject, mirroring [`FaultPlan`]: the `after`-th time the
/// engine polls the configured site, the operation is killed mid-flight.
/// Counter-based (no RNG), so a crash point is a stable coordinate across
/// runs with the same seed. The default plan crashes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrashPlan {
    /// Site to crash at; `None` disables injection.
    pub site: Option<CrashSite>,
    /// Crash on the `after`-th poll of `site` (1-based).
    pub after: u64,
}

impl CrashPlan {
    /// The no-crash plan.
    pub const NONE: CrashPlan = CrashPlan {
        site: None,
        after: 0,
    };

    /// Crash the `after`-th time `site` is reached.
    pub fn at(site: CrashSite, after: u64) -> Self {
        CrashPlan {
            site: Some(site),
            after: after.max(1),
        }
    }

    /// Whether this plan can fire at all.
    pub fn is_active(&self) -> bool {
        self.site.is_some()
    }

    /// Serializes the plan into a snapshot payload.
    pub fn save(&self, w: &mut Writer) {
        match self.site {
            None => w.u8(0xff),
            Some(s) => w.u8(s.tag()),
        }
        w.u64(self.after);
    }

    /// Reads a plan previously written by [`Self::save`].
    pub fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let tag = r.u8()?;
        let site = if tag == 0xff {
            None
        } else {
            Some(CrashSite::from_tag(tag)?)
        };
        Ok(Self {
            site,
            after: r.u64()?,
        })
    }
}

/// One-shot crash trigger: counts polls of the configured site and fires
/// exactly once. Inert (zero-cost, no RNG) when the plan is `NONE`, so
/// leaving the polls compiled into engine hot paths never perturbs a
/// normal run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashInjector {
    plan: CrashPlan,
    polls: u64,
    fired: u64,
}

impl CrashInjector {
    /// Creates an injector following `plan`.
    pub fn new(plan: CrashPlan) -> Self {
        Self {
            plan,
            polls: 0,
            fired: 0,
        }
    }

    /// The plan this injector follows.
    pub fn plan(&self) -> CrashPlan {
        self.plan
    }

    /// How many crashes have fired (0 or 1).
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Polls the injector at `site`. Returns `true` exactly once: on the
    /// `after`-th poll of the configured site. Polls at other sites do not
    /// advance the counter, so a plan's coordinate is independent of how
    /// many unrelated sites execute.
    pub fn should_crash(&mut self, site: CrashSite) -> bool {
        if self.plan.site != Some(site) || self.fired > 0 {
            return false;
        }
        self.polls += 1;
        if self.polls >= self.plan.after {
            self.fired = 1;
            true
        } else {
            false
        }
    }
}

impl Snapshot for CrashInjector {
    fn save(&self, w: &mut Writer) {
        self.plan.save(w);
        w.u64(self.polls);
        w.u64(self.fired);
    }

    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.plan = CrashPlan::load(r)?;
        self.polls = r.u64()?;
        self.fired = r.u64()?;
        Ok(())
    }
}

/// Counts of faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Allocations forced to fail.
    pub injected_allocs: u64,
    /// Checksum reads corrupted.
    pub injected_checksums: u64,
    /// Scan-time comparisons perturbed.
    pub injected_bitflips: u64,
}

impl InjectionStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.injected_allocs + self.injected_checksums + self.injected_bitflips
    }
}

/// A seeded fault source: deterministic for a given `(plan, seed)` pair.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    alloc_calls: u64,
    stats: InjectionStats,
}

impl FaultInjector {
    /// Creates an injector. Callers derive `seed` from the machine's
    /// master seed (xor'ed with a per-site salt so the buddy injector and
    /// the scan injector draw independent streams).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            rng: StdRng::seed_from_u64(seed),
            alloc_calls: 0,
            stats: InjectionStats::default(),
        }
    }

    /// The plan this injector follows.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Counters of injected faults.
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// Decides whether the current allocation should fail.
    pub fn should_fail_alloc(&mut self) -> bool {
        if !self.plan.is_active() {
            return false;
        }
        self.alloc_calls += 1;
        let nth = self.plan.alloc_every_nth > 0
            && self.alloc_calls.is_multiple_of(self.plan.alloc_every_nth);
        let prob =
            self.plan.alloc_fail_prob > 0.0 && self.rng.random_bool(self.plan.alloc_fail_prob);
        if nth || prob {
            self.stats.injected_allocs += 1;
            true
        } else {
            false
        }
    }

    /// Possibly corrupts a checksum read during a scan. Returns the value
    /// the scanner should see.
    pub fn corrupt_checksum(&mut self, sum: u64) -> u64 {
        if self.plan.checksum_corrupt_prob > 0.0
            && self.rng.random_bool(self.plan.checksum_corrupt_prob)
        {
            self.stats.injected_checksums += 1;
            // Flip one pseudo-random bit of the checksum.
            sum ^ (1u64 << self.rng.random_range(0..64u64))
        } else {
            sum
        }
    }

    /// Decides whether the scanner observes a transient bit flip on the
    /// page it is currently examining (making its content comparison
    /// unreliable this round).
    pub fn scan_bitflip(&mut self) -> bool {
        if self.plan.scan_bitflip_prob > 0.0 && self.rng.random_bool(self.plan.scan_bitflip_prob) {
            self.stats.injected_bitflips += 1;
            true
        } else {
            false
        }
    }
}

impl Snapshot for FaultInjector {
    fn save(&self, w: &mut Writer) {
        self.plan.save(w);
        let s = self.rng.state();
        for x in s {
            w.u64(x);
        }
        w.u64(self.alloc_calls);
        w.u64(self.stats.injected_allocs);
        w.u64(self.stats.injected_checksums);
        w.u64(self.stats.injected_bitflips);
    }

    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.plan = FaultPlan::load(r)?;
        let s = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        self.rng = StdRng::from_state(s);
        self.alloc_calls = r.u64()?;
        self.stats = InjectionStats {
            injected_allocs: r.u64()?,
            injected_checksums: r.u64()?,
            injected_bitflips: r.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::NONE, 1);
        for _ in 0..1000 {
            assert!(!inj.should_fail_alloc());
            assert_eq!(inj.corrupt_checksum(42), 42);
            assert!(!inj.scan_bitflip());
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn every_nth_is_exact() {
        let mut inj = FaultInjector::new(FaultPlan::every_nth_alloc(5), 1);
        let fails: Vec<bool> = (0..20).map(|_| inj.should_fail_alloc()).collect();
        let expect: Vec<bool> = (1..=20).map(|i| i % 5 == 0).collect();
        assert_eq!(fails, expect);
        assert_eq!(inj.stats().injected_allocs, 4);
    }

    #[test]
    fn alloc_prob_rejects_degenerate_probabilities() {
        // Regression: out-of-range probabilities used to be accepted and
        // only clamped (or not) deep inside the RNG at injection time.
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = FaultPlan::alloc_prob(bad).expect_err("must reject");
            assert!(
                matches!(
                    err,
                    FaultPlanError::InvalidProbability {
                        field: "alloc_fail_prob",
                        ..
                    }
                ),
                "{bad}: {err}"
            );
            assert!(err.to_string().contains("alloc_fail_prob"), "{err}");
        }
        for ok in [0.0, 0.5, 1.0] {
            let plan = FaultPlan::alloc_prob(ok).expect("in-range probability");
            assert_eq!(plan.alloc_fail_prob, ok);
            plan.validate().expect("constructed plans validate");
        }
    }

    #[test]
    fn validate_checks_every_probability_field() {
        FaultPlan::NONE.validate().expect("NONE is valid");
        for (field, plan) in [
            (
                "checksum_corrupt_prob",
                FaultPlan {
                    checksum_corrupt_prob: 2.0,
                    ..FaultPlan::NONE
                },
            ),
            (
                "scan_bitflip_prob",
                FaultPlan {
                    scan_bitflip_prob: -1.0,
                    ..FaultPlan::NONE
                },
            ),
        ] {
            let err = plan.validate().expect_err("must reject");
            assert_eq!(
                err,
                match err {
                    FaultPlanError::InvalidProbability { value, .. } =>
                        FaultPlanError::InvalidProbability { field, value },
                }
            );
        }
    }

    #[test]
    fn crash_site_tags_round_trip_exhaustively() {
        // Compile-time exhaustiveness: adding a CrashSite variant breaks
        // this match, forcing ALL (and the wire tags) to be extended.
        fn counted(site: CrashSite) -> usize {
            match site {
                CrashSite::MidScan
                | CrashSite::MidMerge
                | CrashSite::MidUnmerge
                | CrashSite::MidRerandomization => 1,
            }
        }
        assert_eq!(
            CrashSite::ALL.iter().map(|&s| counted(s)).sum::<usize>(),
            CrashSite::ALL.len()
        );
        // Every variant survives tag()/from_tag(), tags are dense and
        // unique, and labels are distinct (coverage keys rely on this).
        let mut tags = Vec::new();
        let mut labels = Vec::new();
        for site in CrashSite::ALL {
            assert_eq!(CrashSite::from_tag(site.tag()).expect("round trip"), site);
            tags.push(site.tag());
            labels.push(site.label());
        }
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), CrashSite::ALL.len(), "duplicate wire tags");
        assert_eq!(*sorted.last().expect("nonempty") as usize + 1, sorted.len());
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CrashSite::ALL.len(), "duplicate labels");
        // Tags beyond the dense range are rejected, never mapped.
        assert!(CrashSite::from_tag(CrashSite::ALL.len() as u8).is_err());
        assert!(CrashSite::from_tag(0xfe).is_err());
    }

    #[test]
    fn campaign_ladder_plans_all_validate() {
        let ladder = FaultPlan::campaign_ladder();
        assert!(ladder.len() >= 4, "campaigns need at least 4 plans");
        let mut names: Vec<&str> = ladder.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ladder.len(), "duplicate plan names");
        for (name, plan) in &ladder {
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        // The ladder is not all-inert: at least one plan per injector.
        assert!(ladder.iter().any(|(_, p)| p.alloc_every_nth > 0));
        assert!(ladder.iter().any(|(_, p)| p.alloc_fail_prob > 0.0));
        assert!(ladder.iter().any(|(_, p)| p.checksum_corrupt_prob > 0.0));
        assert!(ladder.iter().any(|(_, p)| p.scan_bitflip_prob > 0.0));
    }

    #[test]
    fn pressure_ladder_plans_validate_and_escalate() {
        let ladder = FaultPlan::pressure_ladder();
        assert!(ladder.len() >= 3, "need calm plus escalating burst plans");
        let mut names: Vec<&str> = ladder.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ladder.len(), "duplicate plan names");
        for (name, plan) in &ladder {
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            // Pressure plans exercise the allocator only: scan-side
            // injectors would conflate merge misbehavior with OOM.
            assert_eq!(plan.checksum_corrupt_prob, 0.0, "{name}");
            assert_eq!(plan.scan_bitflip_prob, 0.0, "{name}");
        }
        assert_eq!(ladder[0].1, FaultPlan::NONE, "ladder starts calm");
        assert!(ladder.last().expect("nonempty").1.alloc_fail_prob >= 0.5);
    }

    #[test]
    fn mutation_is_deterministic_and_stays_valid() {
        let mut a = StdRng::seed_from_u64(0x917a);
        let mut b = StdRng::seed_from_u64(0x917a);
        let mut pa = FaultPlan::NONE;
        let mut pb = FaultPlan::NONE;
        let mut changed = 0;
        for _ in 0..64 {
            let next_a = pa.mutated(&mut a);
            let next_b = pb.mutated(&mut b);
            assert_eq!(next_a, next_b, "same seed must mutate identically");
            next_a.validate().expect("mutations stay valid");
            if next_a != pa {
                changed += 1;
            }
            pa = next_a;
            pb = next_b;
        }
        assert!(changed > 16, "mutation almost never changes the plan");
    }

    #[test]
    fn probability_injection_is_deterministic_per_seed() {
        let plan = FaultPlan::alloc_prob(0.3).expect("valid probability");
        let mut a = FaultInjector::new(plan, 9);
        let mut b = FaultInjector::new(plan, 9);
        let fa: Vec<bool> = (0..200).map(|_| a.should_fail_alloc()).collect();
        let fb: Vec<bool> = (0..200).map(|_| b.should_fail_alloc()).collect();
        assert_eq!(fa, fb);
        let hits = fa.iter().filter(|&&x| x).count();
        assert!((30..90).contains(&hits), "p=0.3 injected {hits}/200");
    }

    #[test]
    fn checksum_corruption_changes_value() {
        let plan = FaultPlan {
            checksum_corrupt_prob: 1.0,
            ..FaultPlan::NONE
        };
        let mut inj = FaultInjector::new(plan, 3);
        let corrupted = inj.corrupt_checksum(0xdead_beef);
        assert_ne!(corrupted, 0xdead_beef);
        assert_eq!(inj.stats().injected_checksums, 1);
    }

    #[test]
    fn crash_injector_fires_once_at_coordinate() {
        let mut inj = CrashInjector::new(CrashPlan::at(CrashSite::MidMerge, 3));
        // Polls at other sites never advance the counter.
        assert!(!inj.should_crash(CrashSite::MidScan));
        assert!(!inj.should_crash(CrashSite::MidMerge));
        assert!(!inj.should_crash(CrashSite::MidUnmerge));
        assert!(!inj.should_crash(CrashSite::MidMerge));
        assert!(inj.should_crash(CrashSite::MidMerge));
        assert_eq!(inj.fired(), 1);
        // One-shot: never fires again.
        for _ in 0..10 {
            assert!(!inj.should_crash(CrashSite::MidMerge));
        }
    }

    #[test]
    fn inert_crash_injector_never_fires() {
        let mut inj = CrashInjector::new(CrashPlan::NONE);
        for site in CrashSite::ALL {
            for _ in 0..100 {
                assert!(!inj.should_crash(site));
            }
        }
        assert_eq!(inj.fired(), 0);
    }

    #[test]
    fn injector_state_round_trips() {
        let mut inj = FaultInjector::new(FaultPlan::alloc_prob(0.4).expect("valid"), 11);
        for _ in 0..37 {
            let _ = inj.should_fail_alloc();
        }
        let mut w = Writer::new();
        inj.save(&mut w);
        let bytes = w.into_bytes();
        let mut copy = FaultInjector::new(FaultPlan::NONE, 0);
        copy.load(&mut Reader::new(&bytes)).expect("load");
        // The restored injector must continue the exact same stream.
        let a: Vec<bool> = (0..50).map(|_| inj.should_fail_alloc()).collect();
        let b: Vec<bool> = (0..50).map(|_| copy.should_fail_alloc()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn crash_plans_round_trip() {
        for plan in [
            CrashPlan::NONE,
            CrashPlan::at(CrashSite::MidScan, 1),
            CrashPlan::at(CrashSite::MidRerandomization, 42),
        ] {
            let mut w = Writer::new();
            plan.save(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(
                CrashPlan::load(&mut Reader::new(&bytes)).expect("load"),
                plan
            );
        }
    }

    #[test]
    fn bitflip_counting() {
        let plan = FaultPlan {
            scan_bitflip_prob: 1.0,
            ..FaultPlan::NONE
        };
        let mut inj = FaultInjector::new(plan, 3);
        assert!(inj.scan_bitflip());
        assert_eq!(inj.stats().injected_bitflips, 1);
    }
}
