//! Per-frame metadata: allocation state, reference counts, page types.
//!
//! The paper's Table 3 breaks down which kinds of pages contribute to page
//! fusion (page cache, buddy-free pages, kernel pages, rest); [`PageType`]
//! carries that classification. Reference counting mirrors Linux's
//! `struct page` refcount and drives unmerge semantics: a stable-tree page is
//! only released once its last sharer performs copy-on-write (§2.1).

/// Classification of what a frame currently backs, used for the Table 3
/// accounting and for the WPF linear allocator's "steal" heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageType {
    /// Frame is on a free list (the "buddy" row of Table 3: free pages are
    /// full of stale, often duplicate, data).
    #[default]
    Free,
    /// Anonymous user memory.
    Anon,
    /// File-backed page-cache memory (the largest fusion contributor).
    PageCache,
    /// Kernel data (page tables, slab, ...). Never fused.
    Kernel,
    /// A page-table frame. Never fused.
    PageTable,
    /// A fused page owned by the fusion engine (KSM stable-tree page or WPF
    /// AVL-tree page).
    Fused,
}

impl PageType {
    /// Every page type, in a fixed order usable as a dense array index via
    /// [`PageType::index`].
    pub const ALL: [PageType; 6] = [
        PageType::Free,
        PageType::Anon,
        PageType::PageCache,
        PageType::Kernel,
        PageType::PageTable,
        PageType::Fused,
    ];

    /// Inverse of [`PageType::index`], for snapshot decoding.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }

    /// Position of this type in [`PageType::ALL`].
    pub fn index(self) -> usize {
        match self {
            PageType::Free => 0,
            PageType::Anon => 1,
            PageType::PageCache => 2,
            PageType::Kernel => 3,
            PageType::PageTable => 4,
            PageType::Fused => 5,
        }
    }

    /// Whether a fusion scanner may consider this frame's content.
    pub fn fusable(self) -> bool {
        matches!(self, PageType::Anon | PageType::PageCache)
    }
}

/// Allocation state of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameState {
    /// Owned by an allocator free list.
    Free,
    /// Handed out to a user.
    Allocated,
}

/// Metadata for one physical frame (the simulation's `struct page`).
#[derive(Debug, Clone)]
pub struct FrameInfo {
    /// Allocation state.
    pub state: FrameState,
    /// What the frame backs.
    pub page_type: PageType,
    /// Number of mappings referencing this frame (CoW sharers).
    pub refcount: u32,
    /// Generation counter bumped on every allocation; lets attack code
    /// detect frame reuse across fusion passes.
    pub generation: u64,
    /// Write generation: bumped by every content mutation of the frame
    /// (`write_byte`, `write_u64`, `write_page`, `copy_page`, `zero_page`,
    /// `flip_bit` — so Rowhammer flips invalidate it like any other
    /// write). `PhysMemory` keys its content-hash / is-zero memoization on
    /// this, and engines use it to detect in-place changes of tree pages.
    pub write_gen: u64,
}

impl Default for FrameInfo {
    fn default() -> Self {
        Self {
            state: FrameState::Free,
            page_type: PageType::Free,
            refcount: 0,
            generation: 0,
            write_gen: 0,
        }
    }
}

impl FrameInfo {
    /// Marks the frame allocated for the given use and takes the first
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already allocated.
    pub fn on_alloc(&mut self, page_type: PageType) {
        assert_eq!(
            self.state,
            FrameState::Free,
            "allocating an allocated frame"
        );
        self.state = FrameState::Allocated;
        self.page_type = page_type;
        self.refcount = 1;
        self.generation += 1;
    }

    /// Marks the frame free again.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not allocated or still referenced.
    pub fn on_free(&mut self) {
        assert_eq!(self.state, FrameState::Allocated, "freeing a free frame");
        assert_eq!(self.refcount, 0, "freeing a referenced frame");
        self.state = FrameState::Free;
        self.page_type = PageType::Free;
    }

    /// Takes an additional reference (a new PTE now points here).
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    pub fn get(&mut self) {
        assert_eq!(
            self.state,
            FrameState::Allocated,
            "referencing a free frame"
        );
        self.refcount += 1;
    }

    /// Drops one reference; returns `true` when the count reaches zero and
    /// the frame should be released.
    ///
    /// # Panics
    ///
    /// Panics if there is no reference to drop.
    pub fn put(&mut self) -> bool {
        assert!(self.refcount > 0, "refcount underflow");
        self.refcount -= 1;
        self.refcount == 0
    }
}

impl vusion_snapshot::Snapshot for FrameInfo {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u8(match self.state {
            FrameState::Free => 0,
            FrameState::Allocated => 1,
        });
        w.u8(self.page_type.index() as u8);
        w.u32(self.refcount);
        w.u64(self.generation);
        w.u64(self.write_gen);
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        self.state = match r.u8()? {
            0 => FrameState::Free,
            1 => FrameState::Allocated,
            _ => return Err(vusion_snapshot::SnapshotError::Corrupt("frame state")),
        };
        self.page_type = PageType::from_index(r.u8()? as usize)
            .ok_or(vusion_snapshot::SnapshotError::Corrupt("page type"))?;
        self.refcount = r.u32()?;
        self.generation = r.u64()?;
        self.write_gen = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut f = FrameInfo::default();
        f.on_alloc(PageType::Anon);
        assert_eq!(f.state, FrameState::Allocated);
        assert_eq!(f.refcount, 1);
        assert!(f.put());
        f.on_free();
        assert_eq!(f.state, FrameState::Free);
        assert_eq!(f.page_type, PageType::Free);
    }

    #[test]
    fn generation_bumps_on_each_alloc() {
        let mut f = FrameInfo::default();
        f.on_alloc(PageType::Anon);
        assert!(f.put());
        f.on_free();
        f.on_alloc(PageType::PageCache);
        assert_eq!(f.generation, 2);
    }

    #[test]
    fn refcount_sharing() {
        let mut f = FrameInfo::default();
        f.on_alloc(PageType::Fused);
        f.get();
        f.get();
        assert_eq!(f.refcount, 3);
        assert!(!f.put());
        assert!(!f.put());
        assert!(f.put());
    }

    #[test]
    fn page_type_index_matches_all_order() {
        for (i, t) in PageType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn fusable_types() {
        assert!(PageType::Anon.fusable());
        assert!(PageType::PageCache.fusable());
        assert!(!PageType::Kernel.fusable());
        assert!(!PageType::PageTable.fusable());
        assert!(!PageType::Free.fusable());
    }

    #[test]
    #[should_panic(expected = "allocating an allocated frame")]
    fn double_alloc_panics() {
        let mut f = FrameInfo::default();
        f.on_alloc(PageType::Anon);
        f.on_alloc(PageType::Anon);
    }

    #[test]
    #[should_panic(expected = "freeing a referenced frame")]
    fn free_with_refs_panics() {
        let mut f = FrameInfo::default();
        f.on_alloc(PageType::Anon);
        f.on_free();
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn put_without_ref_panics() {
        let mut f = FrameInfo::default();
        f.on_alloc(PageType::Anon);
        f.put();
        f.put();
    }
}
