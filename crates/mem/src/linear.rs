//! Windows-style linear end-of-memory allocator.
//!
//! §2.2 of the paper: WPF backs fused pages with *new* allocations obtained
//! from `MiAllocatePagesForMdl`, "a specialized linear allocator [...] that
//! scans the physical address space from the end and tries to reserve as
//! many pages as necessary", allowing holes where pages cannot be reclaimed.
//!
//! The crucial (and insecure) property is that every fusion pass re-scans
//! from the end of memory, so frames released after a previous pass are
//! reused near-perfectly by the next pass — Figure 3 and the reuse-based
//! Flip Feng Shui attack of §5.2 are built on exactly this behaviour.

use std::collections::BTreeSet;

use crate::addr::FrameId;
use crate::error::MmError;
use crate::FrameAllocator;

/// Linear allocator over `[base, base + frames)`, allocating from the top.
pub struct LinearAllocator {
    base: u64,
    frames: u64,
    /// Relative indices currently handed out.
    taken: BTreeSet<u64>,
}

impl LinearAllocator {
    /// Creates an allocator over `frames` frames starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn new(base: FrameId, frames: u64) -> Self {
        assert!(frames > 0, "linear region must be non-empty");
        Self {
            base: base.0,
            frames,
            taken: BTreeSet::new(),
        }
    }

    /// Reserves up to `n` frames, scanning **from the end of memory
    /// downwards** and skipping frames for which `occupied` returns `true`
    /// (the "holes" of `MiAllocatePagesForMdl`). Returns the reserved frames
    /// in scan order (descending physical address).
    pub fn reserve_batch(
        &mut self,
        n: usize,
        mut occupied: impl FnMut(FrameId) -> bool,
    ) -> Vec<FrameId> {
        let mut out = Vec::with_capacity(n);
        let mut rel = self.frames;
        while rel > 0 && out.len() < n {
            rel -= 1;
            if self.taken.contains(&rel) {
                continue;
            }
            let frame = FrameId(self.base + rel);
            if occupied(frame) {
                continue;
            }
            self.taken.insert(rel);
            out.push(frame);
        }
        out
    }
}

impl vusion_snapshot::Snapshot for LinearAllocator {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u64(self.base);
        w.u64(self.frames);
        w.usize(self.taken.len());
        for &rel in &self.taken {
            w.u64(rel);
        }
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        if r.u64()? != self.base || r.u64()? != self.frames {
            return Err(vusion_snapshot::SnapshotError::Corrupt(
                "linear geometry mismatch",
            ));
        }
        self.taken.clear();
        let n = r.usize()?;
        for _ in 0..n {
            self.taken.insert(r.u64()?);
        }
        Ok(())
    }
}

impl FrameAllocator for LinearAllocator {
    fn alloc(&mut self) -> Result<FrameId, MmError> {
        self.reserve_batch(1, |_| false)
            .into_iter()
            .next()
            .ok_or(MmError::OutOfFrames)
    }

    fn free(&mut self, frame: FrameId) -> Result<(), MmError> {
        if frame.0 < self.base || frame.0 >= self.base + self.frames {
            return Err(MmError::ForeignFrame(frame));
        }
        let rel = frame.0 - self.base;
        if self.taken.remove(&rel) {
            Ok(())
        } else {
            Err(MmError::DoubleFree(frame))
        }
    }

    fn free_frames(&self) -> usize {
        (self.frames as usize) - self.taken.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_from_the_end() {
        let mut a = LinearAllocator::new(FrameId(0), 100);
        let batch = a.reserve_batch(3, |_| false);
        assert_eq!(batch, vec![FrameId(99), FrameId(98), FrameId(97)]);
    }

    #[test]
    fn holes_where_occupied() {
        let mut a = LinearAllocator::new(FrameId(0), 100);
        let batch = a.reserve_batch(3, |f| f.0 == 98);
        assert_eq!(batch, vec![FrameId(99), FrameId(97), FrameId(96)]);
    }

    #[test]
    fn near_perfect_reuse_across_passes() {
        // The Figure 3 property: frames freed after pass 1 are reused by
        // pass 2 in the same physical locations.
        let mut a = LinearAllocator::new(FrameId(0), 1000);
        let pass1 = a.reserve_batch(50, |_| false);
        for &f in &pass1 {
            a.free(f).expect("free");
        }
        let pass2 = a.reserve_batch(50, |_| false);
        assert_eq!(
            pass1, pass2,
            "linear allocator must exhibit deterministic reuse"
        );
    }

    #[test]
    fn batches_do_not_overlap() {
        let mut a = LinearAllocator::new(FrameId(0), 100);
        let b1 = a.reserve_batch(10, |_| false);
        let b2 = a.reserve_batch(10, |_| false);
        assert!(b1.iter().all(|f| !b2.contains(f)));
        assert_eq!(b2[0], FrameId(89));
    }

    #[test]
    fn exhaustion_returns_short_batch() {
        let mut a = LinearAllocator::new(FrameId(0), 5);
        let b = a.reserve_batch(10, |_| false);
        assert_eq!(b.len(), 5);
        assert_eq!(a.alloc(), Err(MmError::OutOfFrames));
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn free_frames_accounting() {
        let mut a = LinearAllocator::new(FrameId(10), 20);
        assert_eq!(a.free_frames(), 20);
        let f = a.alloc().expect("frame");
        assert_eq!(f, FrameId(29));
        assert_eq!(a.free_frames(), 19);
        a.free(f).expect("free");
        assert_eq!(a.free_frames(), 20);
    }

    #[test]
    fn double_free_is_reported() {
        let mut a = LinearAllocator::new(FrameId(0), 5);
        let f = a.alloc().expect("frame");
        a.free(f).expect("first free");
        assert_eq!(a.free(f), Err(MmError::DoubleFree(f)));
        assert_eq!(
            a.free(FrameId(999)),
            Err(MmError::ForeignFrame(FrameId(999)))
        );
        assert_eq!(a.free_frames(), 5);
    }
}
