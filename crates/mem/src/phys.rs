//! Physical memory: frame contents plus per-frame metadata.
//!
//! Frames are materialized lazily: an untouched frame is all-zeroes and
//! costs no host memory, which lets experiments simulate multi-gigabyte
//! guests cheaply (most guest memory is zero — and indeed zero pages are a
//! large fraction of fusion candidates, cf. Figure 4).

use crate::addr::{FrameId, PhysAddr, PAGE_SIZE};
use crate::frame::{FrameInfo, FrameState, PageType};

/// FNV-1a 64-bit hash of a page's content.
///
/// Used by the WPF engine's hash-sorted candidate list (§2.2) and by KSM's
/// "has the page changed since last scan" checksum.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const ZERO_PAGE: [u8; PAGE_SIZE as usize] = [0; PAGE_SIZE as usize];

/// Simulated physical memory: `n` frames of 4 KiB, with metadata.
pub struct PhysMemory {
    data: Vec<Option<Box<[u8; PAGE_SIZE as usize]>>>,
    info: Vec<FrameInfo>,
}

impl PhysMemory {
    /// Creates a physical memory of `frames` frames, all free and zeroed.
    pub fn new(frames: usize) -> Self {
        Self {
            data: (0..frames).map(|_| None).collect(),
            info: vec![FrameInfo::default(); frames],
        }
    }

    /// Total number of frames.
    pub fn frame_count(&self) -> usize {
        self.info.len()
    }

    fn idx(&self, frame: FrameId) -> usize {
        let i = frame.0 as usize;
        assert!(i < self.info.len(), "frame {i} out of range");
        i
    }

    /// Immutable metadata of a frame.
    pub fn info(&self, frame: FrameId) -> &FrameInfo {
        &self.info[self.idx(frame)]
    }

    /// Mutable metadata of a frame.
    pub fn info_mut(&mut self, frame: FrameId) -> &mut FrameInfo {
        let i = self.idx(frame);
        &mut self.info[i]
    }

    /// The 4096 content bytes of a frame.
    pub fn page(&self, frame: FrameId) -> &[u8; PAGE_SIZE as usize] {
        match &self.data[self.idx(frame)] {
            Some(b) => b,
            None => &ZERO_PAGE,
        }
    }

    /// Whether the frame is all zeroes (cheap check for the lazy case).
    pub fn is_zero(&self, frame: FrameId) -> bool {
        match &self.data[self.idx(frame)] {
            None => true,
            Some(b) => b.iter().all(|&x| x == 0),
        }
    }

    /// Reads one byte.
    pub fn read_byte(&self, addr: PhysAddr) -> u8 {
        self.page(addr.frame())[addr.page_offset() as usize]
    }

    /// Writes one byte, materializing the frame if needed.
    pub fn write_byte(&mut self, addr: PhysAddr, value: u8) {
        let i = self.idx(addr.frame());
        let page = self.data[i].get_or_insert_with(|| Box::new(ZERO_PAGE));
        page[addr.page_offset() as usize] = value;
    }

    /// Reads a little-endian u64 (must not cross a frame boundary).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a frame boundary.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let off = addr.page_offset() as usize;
        assert!(
            off + 8 <= PAGE_SIZE as usize,
            "u64 read crosses frame boundary"
        );
        let page = self.page(addr.frame());
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&page[off..off + 8]);
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian u64 (must not cross a frame boundary).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a frame boundary.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        let off = addr.page_offset() as usize;
        assert!(
            off + 8 <= PAGE_SIZE as usize,
            "u64 write crosses frame boundary"
        );
        let i = self.idx(addr.frame());
        let page = self.data[i].get_or_insert_with(|| Box::new(ZERO_PAGE));
        page[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Overwrites a frame's entire content.
    pub fn write_page(&mut self, frame: FrameId, bytes: &[u8; PAGE_SIZE as usize]) {
        let i = self.idx(frame);
        if bytes.iter().all(|&b| b == 0) {
            self.data[i] = None;
        } else {
            self.data[i] = Some(Box::new(*bytes));
        }
    }

    /// Copies the content of `src` into `dst`.
    pub fn copy_page(&mut self, src: FrameId, dst: FrameId) {
        let si = self.idx(src);
        let di = self.idx(dst);
        self.data[di] = self.data[si].clone();
    }

    /// Zeroes a frame (demand-zero allocation path).
    pub fn zero_page(&mut self, frame: FrameId) {
        let i = self.idx(frame);
        self.data[i] = None;
    }

    /// Whether two frames have identical content.
    pub fn pages_equal(&self, a: FrameId, b: FrameId) -> bool {
        match (&self.data[self.idx(a)], &self.data[self.idx(b)]) {
            (None, None) => true,
            (Some(x), Some(y)) => x == y,
            (None, Some(y)) => y.iter().all(|&v| v == 0),
            (Some(x), None) => x.iter().all(|&v| v == 0),
        }
    }

    /// Lexicographic comparison of two frames' content (the ordering KSM's
    /// content-indexed trees use).
    pub fn compare_pages(&self, a: FrameId, b: FrameId) -> std::cmp::Ordering {
        self.page(a).as_slice().cmp(self.page(b).as_slice())
    }

    /// FNV-1a hash of a frame's content.
    pub fn hash_page(&self, frame: FrameId) -> u64 {
        match &self.data[self.idx(frame)] {
            None => content_hash(&ZERO_PAGE),
            Some(b) => content_hash(b.as_slice()),
        }
    }

    /// Flips one bit of physical memory (a Rowhammer-induced fault). Returns
    /// the new value of the affected byte.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn flip_bit(&mut self, addr: PhysAddr, bit: u8) -> u8 {
        assert!(bit < 8, "bit index out of range");
        let old = self.read_byte(addr);
        let new = old ^ (1 << bit);
        self.write_byte(addr, new);
        new
    }

    /// Number of frames currently in the [`FrameState::Allocated`] state;
    /// drives the memory-consumption curves of Figures 10–12.
    pub fn allocated_frames(&self) -> usize {
        self.info
            .iter()
            .filter(|i| i.state == FrameState::Allocated)
            .count()
    }

    /// Counts allocated frames by page type (Table 3 accounting).
    pub fn allocated_by_type(&self) -> Vec<(PageType, usize)> {
        let mut counts: Vec<(PageType, usize)> = Vec::new();
        for info in &self.info {
            if info.state != FrameState::Allocated {
                continue;
            }
            match counts.iter_mut().find(|(t, _)| *t == info.page_type) {
                Some((_, c)) => *c += 1,
                None => counts.push((info.page_type, 1)),
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_start_zeroed_and_lazy() {
        let m = PhysMemory::new(4);
        assert!(m.is_zero(FrameId(0)));
        assert_eq!(m.read_byte(PhysAddr(100)), 0);
    }

    #[test]
    fn byte_write_read_roundtrip() {
        let mut m = PhysMemory::new(4);
        m.write_byte(PhysAddr(4096 + 17), 0xAB);
        assert_eq!(m.read_byte(PhysAddr(4096 + 17)), 0xAB);
        assert!(!m.is_zero(FrameId(1)));
        assert!(m.is_zero(FrameId(0)));
    }

    #[test]
    fn u64_roundtrip_little_endian() {
        let mut m = PhysMemory::new(1);
        m.write_u64(PhysAddr(8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(PhysAddr(8)), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_byte(PhysAddr(8)), 0xef);
    }

    #[test]
    fn copy_page_duplicates_content() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(5), 9);
        m.copy_page(FrameId(0), FrameId(1));
        assert!(m.pages_equal(FrameId(0), FrameId(1)));
        // Copies are independent afterwards.
        m.write_byte(PhysAddr(PAGE_SIZE + 5), 10);
        assert!(!m.pages_equal(FrameId(0), FrameId(1)));
    }

    #[test]
    fn zero_written_page_equals_lazy_zero() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(0), 1);
        m.write_byte(PhysAddr(0), 0);
        assert!(m.pages_equal(FrameId(0), FrameId(1)));
        assert_eq!(m.hash_page(FrameId(0)), m.hash_page(FrameId(1)));
    }

    #[test]
    fn compare_pages_is_lexicographic() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(0), 1);
        assert_eq!(
            m.compare_pages(FrameId(1), FrameId(0)),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            m.compare_pages(FrameId(0), FrameId(0)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn hash_differs_on_content() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(0), 1);
        assert_ne!(m.hash_page(FrameId(0)), m.hash_page(FrameId(1)));
    }

    #[test]
    fn flip_bit_toggles() {
        let mut m = PhysMemory::new(1);
        m.write_byte(PhysAddr(10), 0b0000_0100);
        let v = m.flip_bit(PhysAddr(10), 2);
        assert_eq!(v, 0);
        let v = m.flip_bit(PhysAddr(10), 7);
        assert_eq!(v, 0b1000_0000);
    }

    #[test]
    fn write_page_of_zeroes_dematerializes() {
        let mut m = PhysMemory::new(1);
        m.write_byte(PhysAddr(0), 7);
        m.write_page(FrameId(0), &[0; PAGE_SIZE as usize]);
        assert!(m.is_zero(FrameId(0)));
    }

    #[test]
    fn allocation_accounting() {
        let mut m = PhysMemory::new(3);
        m.info_mut(FrameId(0)).on_alloc(PageType::Anon);
        m.info_mut(FrameId(2)).on_alloc(PageType::PageCache);
        assert_eq!(m.allocated_frames(), 2);
        let by_type = m.allocated_by_type();
        assert!(by_type.contains(&(PageType::Anon, 1)));
        assert!(by_type.contains(&(PageType::PageCache, 1)));
    }

    #[test]
    #[should_panic(expected = "crosses frame boundary")]
    fn u64_across_boundary_panics() {
        let m = PhysMemory::new(2);
        let _ = m.read_u64(PhysAddr(PAGE_SIZE - 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_frame_panics() {
        let m = PhysMemory::new(1);
        let _ = m.page(FrameId(1));
    }
}
