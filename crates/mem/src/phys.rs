//! Physical memory: frame contents plus per-frame metadata.
//!
//! Frames are materialized lazily: an untouched frame is all-zeroes and
//! costs no host memory, which lets experiments simulate multi-gigabyte
//! guests cheaply (most guest memory is zero — and indeed zero pages are a
//! large fraction of fusion candidates, cf. Figure 4).
//!
//! Content hashes and zero checks are memoized per frame, keyed on the
//! frame's [`FrameInfo::write_gen`]: every mutator bumps the generation,
//! so any write — including a Rowhammer [`PhysMemory::flip_bit`] or an
//! injected fault — invalidates the cached values for free. The cache
//! changes wall-clock cost only; every observable value (`hash_page`,
//! `is_zero`, comparisons) is identical to a fresh computation, which the
//! chaos suite asserts under interleaved mutation.

use std::cell::Cell;
use std::cmp::Ordering;
use std::ops::{Deref, DerefMut};

use crate::addr::{FrameId, PhysAddr, PAGE_SIZE};
use crate::frame::{FrameInfo, FrameState, PageType};

const FNV_INIT: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a page's content.
///
/// Used by the WPF engine's hash-sorted candidate list (§2.2) and by KSM's
/// "has the page changed since last scan" checksum.
///
/// The byte-at-a-time FNV-1a semantics are preserved exactly — WPF's
/// hash-sort order decides frame adjacency, so changing a single hash
/// value would silently move the §5.2 attack's timing curves. The loop is
/// merely restructured to load memory 32 bytes at a time as four `u64`
/// lanes and fold the bytes from registers.
pub fn content_hash(bytes: &[u8]) -> u64 {
    #[inline(always)]
    fn fold_word(mut h: u64, word: u64) -> u64 {
        let mut shift = 0u32;
        while shift < 64 {
            h ^= (word >> shift) & 0xff;
            h = h.wrapping_mul(FNV_PRIME);
            shift += 8;
        }
        h
    }
    let mut h = FNV_INIT;
    let mut wide = bytes.chunks_exact(32);
    for chunk in &mut wide {
        let mut lanes = [0u64; 4];
        for (lane, w) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(w);
            *lane = u64::from_le_bytes(buf);
        }
        // The FNV chain is strictly sequential; the win is in the four
        // unrolled wide loads per iteration, not in reordering the folds.
        for lane in lanes {
            h = fold_word(h, lane);
        }
    }
    let tail = wide.remainder();
    let mut words = tail.chunks_exact(8);
    for chunk in &mut words {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        h = fold_word(h, u64::from_le_bytes(buf));
    }
    for &b in words.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a of 4096 zero bytes: each step xors in 0 (a no-op) and
/// multiplies by the prime, so the whole page folds to 4096 multiplies —
/// computable at compile time.
const fn zero_page_hash() -> u64 {
    let mut h = FNV_INIT;
    let mut i = 0;
    while i < PAGE_SIZE as usize {
        h = h.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    h
}

const ZERO_PAGE_HASH: u64 = zero_page_hash();

const ZERO_PAGE: [u8; PAGE_SIZE as usize] = [0; PAGE_SIZE as usize];

/// Wide all-zero check of a materialized page: 32 bytes per iteration,
/// OR-folding four `u64` lanes (4096 is a multiple of 32, so there is no
/// remainder to handle).
fn page_is_zero(page: &[u8; PAGE_SIZE as usize]) -> bool {
    page.chunks_exact(32).all(|c| {
        let mut acc = 0u64;
        for w in c.chunks_exact(8) {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(w);
            acc |= u64::from_ne_bytes(buf);
        }
        acc == 0
    })
}

/// Memoized derived values for one frame, valid only while the recorded
/// generation equals the frame's current [`FrameInfo::write_gen`].
#[derive(Clone, Copy, Default)]
struct FrameCache {
    hash: u64,
    hash_gen: u64,
    hash_valid: bool,
    zero: bool,
    zero_gen: u64,
    zero_valid: bool,
}

/// O(1) allocation accounting, maintained on every frame state
/// transition by [`FrameInfoMut`].
#[derive(Clone, Copy, Default)]
struct FrameCounts {
    allocated: usize,
    by_type: [usize; PageType::ALL.len()],
}

fn contribution(info: &FrameInfo) -> Option<PageType> {
    (info.state == FrameState::Allocated).then_some(info.page_type)
}

/// Mutable access to a frame's metadata. Dereferences to [`FrameInfo`];
/// on drop, any allocation-state or page-type transition made through it
/// is folded into the O(1) allocation counters.
pub struct FrameInfoMut<'a> {
    info: &'a mut FrameInfo,
    counts: &'a mut FrameCounts,
    was: Option<PageType>,
}

impl Deref for FrameInfoMut<'_> {
    type Target = FrameInfo;
    fn deref(&self) -> &FrameInfo {
        self.info
    }
}

impl DerefMut for FrameInfoMut<'_> {
    fn deref_mut(&mut self) -> &mut FrameInfo {
        self.info
    }
}

impl Drop for FrameInfoMut<'_> {
    fn drop(&mut self) {
        let now = contribution(self.info);
        if self.was == now {
            return;
        }
        if let Some(t) = self.was {
            self.counts.allocated -= 1;
            self.counts.by_type[t.index()] -= 1;
        }
        if let Some(t) = now {
            self.counts.allocated += 1;
            self.counts.by_type[t.index()] += 1;
        }
    }
}

/// Simulated physical memory: `n` frames of 4 KiB, with metadata.
pub struct PhysMemory {
    data: Vec<Option<Box<[u8; PAGE_SIZE as usize]>>>,
    info: Vec<FrameInfo>,
    // vlint: allow(S001, derived memo — load resets every entry to FrameCache::default)
    cache: Vec<Cell<FrameCache>>,
    // vlint: allow(S001, derived tallies — recounted from the frame table in load)
    counts: FrameCounts,
}

impl PhysMemory {
    /// Creates a physical memory of `frames` frames, all free and zeroed.
    pub fn new(frames: usize) -> Self {
        Self {
            data: (0..frames).map(|_| None).collect(),
            info: vec![FrameInfo::default(); frames],
            cache: (0..frames)
                .map(|_| Cell::new(FrameCache::default()))
                .collect(),
            counts: FrameCounts::default(),
        }
    }

    /// Total number of frames.
    pub fn frame_count(&self) -> usize {
        self.info.len()
    }

    /// Index of `frame`, validated against the frame count.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range — the simulator's bus fault.
    fn idx(&self, frame: FrameId) -> usize {
        let i = frame.0 as usize;
        assert!(i < self.info.len(), "frame {i} out of range");
        i
    }

    /// Bumps a frame's write generation, invalidating memoized values.
    fn touch(&mut self, i: usize) {
        self.info[i].write_gen = self.info[i].write_gen.wrapping_add(1);
    }

    /// The frame's cached content hash, if still valid at its current
    /// write generation.
    fn cached_hash(&self, i: usize) -> Option<u64> {
        let c = self.cache[i].get();
        (c.hash_valid && c.hash_gen == self.info[i].write_gen).then_some(c.hash)
    }

    /// Immutable metadata of a frame.
    pub fn info(&self, frame: FrameId) -> &FrameInfo {
        &self.info[self.idx(frame)]
    }

    /// Mutable metadata of a frame. The guard keeps the allocation
    /// counters in sync with whatever transition is performed through it.
    pub fn info_mut(&mut self, frame: FrameId) -> FrameInfoMut<'_> {
        let i = self.idx(frame);
        let was = contribution(&self.info[i]);
        FrameInfoMut {
            info: &mut self.info[i],
            counts: &mut self.counts,
            was,
        }
    }

    /// The 4096 content bytes of a frame.
    pub fn page(&self, frame: FrameId) -> &[u8; PAGE_SIZE as usize] {
        match &self.data[self.idx(frame)] {
            Some(b) => b,
            None => &ZERO_PAGE,
        }
    }

    /// Whether the frame is all zeroes (cheap check for the lazy case;
    /// memoized against the frame's write generation otherwise).
    pub fn is_zero(&self, frame: FrameId) -> bool {
        let i = self.idx(frame);
        match &self.data[i] {
            None => true,
            Some(b) => {
                let gen = self.info[i].write_gen;
                let mut c = self.cache[i].get();
                if c.zero_valid && c.zero_gen == gen {
                    return c.zero;
                }
                let z = page_is_zero(b);
                c.zero = z;
                c.zero_gen = gen;
                c.zero_valid = true;
                self.cache[i].set(c);
                z
            }
        }
    }

    /// Reads one byte.
    pub fn read_byte(&self, addr: PhysAddr) -> u8 {
        self.page(addr.frame())[addr.page_offset() as usize]
    }

    /// Writes one byte, materializing the frame if needed.
    pub fn write_byte(&mut self, addr: PhysAddr, value: u8) {
        let i = self.idx(addr.frame());
        let page = self.data[i].get_or_insert_with(|| Box::new(ZERO_PAGE));
        page[addr.page_offset() as usize] = value;
        self.touch(i);
    }

    /// Reads a little-endian u64 (must not cross a frame boundary).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a frame boundary.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let off = addr.page_offset() as usize;
        assert!(
            off + 8 <= PAGE_SIZE as usize,
            "u64 read crosses frame boundary"
        );
        let page = self.page(addr.frame());
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&page[off..off + 8]);
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian u64 (must not cross a frame boundary).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a frame boundary.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        let off = addr.page_offset() as usize;
        assert!(
            off + 8 <= PAGE_SIZE as usize,
            "u64 write crosses frame boundary"
        );
        let i = self.idx(addr.frame());
        let page = self.data[i].get_or_insert_with(|| Box::new(ZERO_PAGE));
        page[off..off + 8].copy_from_slice(&value.to_le_bytes());
        self.touch(i);
    }

    /// Overwrites a frame's entire content.
    pub fn write_page(&mut self, frame: FrameId, bytes: &[u8; PAGE_SIZE as usize]) {
        let i = self.idx(frame);
        if page_is_zero(bytes) {
            self.data[i] = None;
        } else {
            self.data[i] = Some(Box::new(*bytes));
        }
        self.touch(i);
    }

    /// Copies the content of `src` into `dst`.
    pub fn copy_page(&mut self, src: FrameId, dst: FrameId) {
        let si = self.idx(src);
        let di = self.idx(dst);
        self.data[di] = self.data[si].clone();
        self.touch(di);
        // The destination now holds exactly the source's bytes, so any
        // still-valid memoized value of the source seeds the destination
        // at its fresh generation (VUsion's fake merging and
        // re-randomization copy pages constantly).
        let sc = self.cache[si].get();
        let sgen = self.info[si].write_gen;
        let dgen = self.info[di].write_gen;
        let mut dc = FrameCache::default();
        if sc.hash_valid && sc.hash_gen == sgen {
            dc.hash = sc.hash;
            dc.hash_gen = dgen;
            dc.hash_valid = true;
        }
        if sc.zero_valid && sc.zero_gen == sgen {
            dc.zero = sc.zero;
            dc.zero_gen = dgen;
            dc.zero_valid = true;
        }
        self.cache[di].set(dc);
    }

    /// Zeroes a frame (demand-zero allocation path).
    pub fn zero_page(&mut self, frame: FrameId) {
        let i = self.idx(frame);
        self.data[i] = None;
        self.touch(i);
        // Content is now known exactly; memoize it outright.
        let gen = self.info[i].write_gen;
        self.cache[i].set(FrameCache {
            hash: ZERO_PAGE_HASH,
            hash_gen: gen,
            hash_valid: true,
            zero: true,
            zero_gen: gen,
            zero_valid: true,
        });
    }

    /// Whether two frames have identical content.
    pub fn pages_equal(&self, a: FrameId, b: FrameId) -> bool {
        let ia = self.idx(a);
        let ib = self.idx(b);
        if ia == ib {
            return true;
        }
        // Differing cached hashes prove inequality (equal bytes hash
        // equal). Equal hashes prove nothing — FNV collisions exist — so
        // anything else falls through to the authoritative byte compare.
        if let (Some(ha), Some(hb)) = (self.cached_hash(ia), self.cached_hash(ib)) {
            if ha != hb {
                return false;
            }
        }
        match (&self.data[ia], &self.data[ib]) {
            (None, None) => true,
            (Some(x), Some(y)) => x == y,
            (None, Some(y)) => page_is_zero(y),
            (Some(x), None) => page_is_zero(x),
        }
    }

    /// Lexicographic comparison of two frames' content (the ordering KSM's
    /// content-indexed trees use), word-wise: lexicographic byte order is
    /// exactly numeric order of big-endian `u64` words.
    pub fn compare_pages(&self, a: FrameId, b: FrameId) -> Ordering {
        let ia = self.idx(a);
        let ib = self.idx(b);
        if ia == ib || (self.data[ia].is_none() && self.data[ib].is_none()) {
            return Ordering::Equal;
        }
        let pa = self.page(a);
        let pb = self.page(b);
        // 32 bytes per iteration: a cheap wide equality check first, then
        // (only on the differing chunk) the four big-endian word compares
        // that decide the order.
        for (ca, cb) in pa.chunks_exact(32).zip(pb.chunks_exact(32)) {
            if ca == cb {
                continue;
            }
            for (wa, wb) in ca.chunks_exact(8).zip(cb.chunks_exact(8)) {
                let mut ba = [0u8; 8];
                let mut bb = [0u8; 8];
                ba.copy_from_slice(wa);
                bb.copy_from_slice(wb);
                let va = u64::from_be_bytes(ba);
                let vb = u64::from_be_bytes(bb);
                if va != vb {
                    return va.cmp(&vb);
                }
            }
        }
        Ordering::Equal
    }

    /// FNV-1a hash of a frame's content, memoized against the frame's
    /// write generation. Always equal to `content_hash(self.page(frame))`.
    pub fn hash_page(&self, frame: FrameId) -> u64 {
        let i = self.idx(frame);
        match &self.data[i] {
            None => ZERO_PAGE_HASH,
            Some(b) => {
                let gen = self.info[i].write_gen;
                let mut c = self.cache[i].get();
                if c.hash_valid && c.hash_gen == gen {
                    return c.hash;
                }
                let h = content_hash(b.as_slice());
                c.hash = h;
                c.hash_gen = gen;
                c.hash_valid = true;
                self.cache[i].set(c);
                h
            }
        }
    }

    /// Whether the frame's memoized content hash is valid at its current
    /// write generation (i.e. [`hash_page`] would be a cache hit). Shard
    /// planners use this to collect only the frames that actually need
    /// rehashing.
    ///
    /// [`hash_page`]: PhysMemory::hash_page
    pub fn has_cached_hash(&self, frame: FrameId) -> bool {
        let i = self.idx(frame);
        self.data[i].is_none() || self.cached_hash(i).is_some()
    }

    /// Seeds the memoized content hash of `frame` at its current write
    /// generation. The caller asserts `hash == content_hash(self.page(frame))`
    /// — shard workers compute hashes off a [`FrameReadView`] (which cannot
    /// touch the single-threaded memo cells) and the serial merge phase
    /// deposits them here, in enumeration order, so the subsequent scan
    /// logic hits the cache exactly as a single-threaded pass would.
    pub fn seed_hash(&self, frame: FrameId, hash: u64) {
        let i = self.idx(frame);
        debug_assert_eq!(
            hash,
            match &self.data[i] {
                None => ZERO_PAGE_HASH,
                Some(b) => content_hash(b.as_slice()),
            },
            "seeded hash does not match frame content"
        );
        if self.data[i].is_none() {
            return; // lazy-zero frames bypass the cache entirely
        }
        let mut c = self.cache[i].get();
        c.hash = hash;
        c.hash_gen = self.info[i].write_gen;
        c.hash_valid = true;
        self.cache[i].set(c);
    }

    /// A read-only, thread-shareable view of frame contents and metadata.
    ///
    /// [`PhysMemory`] itself is `!Sync` (the memo cells), so parallel scan
    /// shards borrow this view instead: it exposes exactly the pure
    /// functions of frame content (bytes, hash, zero-ness, write
    /// generation) and nothing that could observe or mutate memo state.
    pub fn read_view(&self) -> FrameReadView<'_> {
        FrameReadView {
            data: &self.data,
            info: &self.info,
        }
    }

    /// Flips one bit of physical memory (a Rowhammer-induced fault). Returns
    /// the new value of the affected byte. Goes through [`write_byte`],
    /// so the frame's write generation bumps and any cached hash of the
    /// victim frame is invalidated.
    ///
    /// [`write_byte`]: PhysMemory::write_byte
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn flip_bit(&mut self, addr: PhysAddr, bit: u8) -> u8 {
        assert!(bit < 8, "bit index out of range");
        let old = self.read_byte(addr);
        let new = old ^ (1 << bit);
        self.write_byte(addr, new);
        new
    }

    /// Number of frames currently in the [`FrameState::Allocated`] state;
    /// drives the memory-consumption curves of Figures 10–12. O(1):
    /// maintained on every state transition, reconciled against the
    /// O(frames) scan in debug builds.
    pub fn allocated_frames(&self) -> usize {
        debug_assert_eq!(
            self.counts.allocated,
            self.info
                .iter()
                .filter(|i| i.state == FrameState::Allocated)
                .count(),
            "allocated-frame counter out of sync with frame states"
        );
        self.counts.allocated
    }

    /// Counts allocated frames by page type (Table 3 accounting). O(types)
    /// from the transition-maintained counters; debug builds reconcile
    /// against a full frame scan.
    pub fn allocated_by_type(&self) -> Vec<(PageType, usize)> {
        #[cfg(debug_assertions)]
        {
            let mut slow = [0usize; PageType::ALL.len()];
            for info in &self.info {
                if info.state == FrameState::Allocated {
                    slow[info.page_type.index()] += 1;
                }
            }
            debug_assert_eq!(
                slow, self.counts.by_type,
                "per-type allocation counters out of sync with frame states"
            );
        }
        PageType::ALL
            .iter()
            .filter_map(|&t| {
                let c = self.counts.by_type[t.index()];
                (c > 0).then_some((t, c))
            })
            .collect()
    }
}

/// Read-only shard view over frame contents and metadata.
///
/// Holds only shared slices, so it is `Send + Sync` and can be borrowed by
/// scoped worker threads. Every method is a pure function of the frames'
/// current bytes — no memoization, no counters, no RNG — which is what
/// makes the sharded scan phase trivially deterministic: workers may run
/// in any interleaving and still compute the same values a serial pass
/// would.
#[derive(Clone, Copy)]
pub struct FrameReadView<'a> {
    data: &'a [Option<Box<[u8; PAGE_SIZE as usize]>>],
    info: &'a [FrameInfo],
}

impl FrameReadView<'_> {
    /// Total number of frames in the view.
    pub fn frame_count(&self) -> usize {
        self.info.len()
    }

    /// Index of `frame`, validated against the frame count.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range — the simulator's bus fault.
    fn idx(&self, frame: FrameId) -> usize {
        let i = frame.0 as usize;
        assert!(i < self.info.len(), "frame {i} out of range");
        i
    }

    /// The 4096 content bytes of a frame.
    pub fn page(&self, frame: FrameId) -> &[u8; PAGE_SIZE as usize] {
        match &self.data[self.idx(frame)] {
            Some(b) => b,
            None => &ZERO_PAGE,
        }
    }

    /// The frame's current write generation.
    pub fn write_gen(&self, frame: FrameId) -> u64 {
        self.info[self.idx(frame)].write_gen
    }

    /// FNV-1a hash of the frame's content, computed fresh (no memo cells
    /// are reachable from a view). Always equals
    /// `content_hash(self.page(frame))`.
    pub fn hash_page(&self, frame: FrameId) -> u64 {
        match &self.data[self.idx(frame)] {
            None => ZERO_PAGE_HASH,
            Some(b) => content_hash(b.as_slice()),
        }
    }

    /// Whether the frame is all zeroes.
    pub fn is_zero(&self, frame: FrameId) -> bool {
        match &self.data[self.idx(frame)] {
            None => true,
            Some(b) => page_is_zero(b),
        }
    }
}

impl vusion_snapshot::Snapshot for PhysMemory {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.usize(self.info.len());
        // Sparse frame contents: only materialized frames travel.
        let live = self.data.iter().filter(|d| d.is_some()).count();
        w.usize(live);
        for (i, d) in self.data.iter().enumerate() {
            if let Some(page) = d {
                w.usize(i);
                w.bytes(page.as_slice());
            }
        }
        for info in &self.info {
            info.save(w);
        }
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        use vusion_snapshot::SnapshotError;
        let frames = r.usize()?;
        if frames != self.info.len() {
            return Err(SnapshotError::Corrupt("frame count mismatch"));
        }
        for d in &mut self.data {
            *d = None;
        }
        let live = r.usize()?;
        for _ in 0..live {
            let i = r.usize()?;
            if i >= frames {
                return Err(SnapshotError::Corrupt("frame index out of range"));
            }
            let bytes = r.bytes(PAGE_SIZE as usize)?;
            let mut page = Box::new(ZERO_PAGE);
            page.copy_from_slice(bytes);
            self.data[i] = Some(page);
        }
        for info in &mut self.info {
            info.load(r)?;
        }
        // Memoized hashes and the O(1) allocation counters are derived
        // state: reset the former, recompute the latter.
        for c in &self.cache {
            c.set(FrameCache::default());
        }
        self.counts = FrameCounts::default();
        for info in &self.info {
            if let Some(t) = contribution(info) {
                self.counts.allocated += 1;
                self.counts.by_type[t.index()] += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_start_zeroed_and_lazy() {
        let m = PhysMemory::new(4);
        assert!(m.is_zero(FrameId(0)));
        assert_eq!(m.read_byte(PhysAddr(100)), 0);
    }

    #[test]
    fn byte_write_read_roundtrip() {
        let mut m = PhysMemory::new(4);
        m.write_byte(PhysAddr(4096 + 17), 0xAB);
        assert_eq!(m.read_byte(PhysAddr(4096 + 17)), 0xAB);
        assert!(!m.is_zero(FrameId(1)));
        assert!(m.is_zero(FrameId(0)));
    }

    #[test]
    fn u64_roundtrip_little_endian() {
        let mut m = PhysMemory::new(1);
        m.write_u64(PhysAddr(8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(PhysAddr(8)), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_byte(PhysAddr(8)), 0xef);
    }

    #[test]
    fn copy_page_duplicates_content() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(5), 9);
        m.copy_page(FrameId(0), FrameId(1));
        assert!(m.pages_equal(FrameId(0), FrameId(1)));
        // Copies are independent afterwards.
        m.write_byte(PhysAddr(PAGE_SIZE + 5), 10);
        assert!(!m.pages_equal(FrameId(0), FrameId(1)));
    }

    #[test]
    fn zero_written_page_equals_lazy_zero() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(0), 1);
        m.write_byte(PhysAddr(0), 0);
        assert!(m.pages_equal(FrameId(0), FrameId(1)));
        assert_eq!(m.hash_page(FrameId(0)), m.hash_page(FrameId(1)));
    }

    #[test]
    fn compare_pages_is_lexicographic() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(0), 1);
        assert_eq!(
            m.compare_pages(FrameId(1), FrameId(0)),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            m.compare_pages(FrameId(0), FrameId(0)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn compare_pages_orders_within_a_word() {
        // Bytes 0..8 fall in one u64; lexicographic order must still hold
        // byte-wise (big-endian word interpretation).
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(3), 2);
        m.write_byte(PhysAddr(PAGE_SIZE + 3), 1);
        m.write_byte(PhysAddr(PAGE_SIZE + 4), 0xFF);
        // Page 0: 00 00 00 02 ...; page 1: 00 00 00 01 FF ... → page 1 < page 0.
        assert_eq!(
            m.compare_pages(FrameId(1), FrameId(0)),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn hash_differs_on_content() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(0), 1);
        assert_ne!(m.hash_page(FrameId(0)), m.hash_page(FrameId(1)));
    }

    #[test]
    fn content_hash_matches_bytewise_reference() {
        // The chunked implementation must reproduce byte-at-a-time FNV-1a
        // exactly: WPF's sort order (and the §5.2 attack) depends on the
        // values, not just on hash equality.
        let reference = |bytes: &[u8]| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        let mut page = [0u8; PAGE_SIZE as usize];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31).wrapping_add(7);
        }
        assert_eq!(content_hash(&page), reference(&page));
        // Lengths that exercise the non-multiple-of-8 remainder path.
        for len in [0usize, 1, 7, 8, 9, 63, 100] {
            assert_eq!(content_hash(&page[..len]), reference(&page[..len]));
        }
        assert_eq!(content_hash(&ZERO_PAGE), ZERO_PAGE_HASH);
    }

    #[test]
    fn hash_cache_invalidated_by_every_mutator() {
        let mut m = PhysMemory::new(3);
        let f = FrameId(0);
        m.write_byte(PhysAddr(1), 3);
        let h1 = m.hash_page(f); // populate cache
        m.write_byte(PhysAddr(1), 4);
        assert_ne!(m.hash_page(f), h1);
        assert_eq!(m.hash_page(f), content_hash(m.page(f)));

        m.write_u64(PhysAddr(64), 0xdead_beef);
        assert_eq!(m.hash_page(f), content_hash(m.page(f)));

        let snapshot = *m.page(FrameId(1));
        m.write_page(f, &snapshot);
        assert_eq!(m.hash_page(f), content_hash(m.page(f)));

        m.write_byte(PhysAddr(2 * PAGE_SIZE + 9), 9);
        let _ = m.hash_page(FrameId(2));
        m.copy_page(FrameId(2), f);
        assert_eq!(m.hash_page(f), content_hash(m.page(f)));
        assert_eq!(m.hash_page(f), m.hash_page(FrameId(2)));

        let _ = m.hash_page(f);
        m.flip_bit(PhysAddr(17), 5);
        assert_eq!(m.hash_page(f), content_hash(m.page(f)));

        m.zero_page(f);
        assert_eq!(m.hash_page(f), ZERO_PAGE_HASH);
        assert!(m.is_zero(f));
    }

    #[test]
    fn is_zero_cache_tracks_writes() {
        let mut m = PhysMemory::new(1);
        m.write_byte(PhysAddr(100), 1);
        assert!(!m.is_zero(FrameId(0)));
        m.write_byte(PhysAddr(100), 0);
        assert!(m.is_zero(FrameId(0)));
        m.flip_bit(PhysAddr(100), 0);
        assert!(!m.is_zero(FrameId(0)));
    }

    #[test]
    fn flip_bit_toggles() {
        let mut m = PhysMemory::new(1);
        m.write_byte(PhysAddr(10), 0b0000_0100);
        let v = m.flip_bit(PhysAddr(10), 2);
        assert_eq!(v, 0);
        let v = m.flip_bit(PhysAddr(10), 7);
        assert_eq!(v, 0b1000_0000);
    }

    #[test]
    fn write_page_of_zeroes_dematerializes() {
        let mut m = PhysMemory::new(1);
        m.write_byte(PhysAddr(0), 7);
        m.write_page(FrameId(0), &[0; PAGE_SIZE as usize]);
        assert!(m.is_zero(FrameId(0)));
    }

    #[test]
    fn allocation_accounting() {
        let mut m = PhysMemory::new(3);
        m.info_mut(FrameId(0)).on_alloc(PageType::Anon);
        m.info_mut(FrameId(2)).on_alloc(PageType::PageCache);
        assert_eq!(m.allocated_frames(), 2);
        let by_type = m.allocated_by_type();
        assert!(by_type.contains(&(PageType::Anon, 1)));
        assert!(by_type.contains(&(PageType::PageCache, 1)));
    }

    #[test]
    fn allocation_counters_follow_transitions() {
        let mut m = PhysMemory::new(4);
        m.info_mut(FrameId(0)).on_alloc(PageType::Anon);
        m.info_mut(FrameId(1)).on_alloc(PageType::Fused);
        assert_eq!(m.allocated_frames(), 2);
        {
            let mut info = m.info_mut(FrameId(1));
            assert!(info.put());
            info.on_free();
        }
        assert_eq!(m.allocated_frames(), 1);
        assert_eq!(m.allocated_by_type(), vec![(PageType::Anon, 1)]);
        // Retyping in place must move the per-type counter too.
        m.info_mut(FrameId(0)).page_type = PageType::PageCache;
        assert_eq!(m.allocated_by_type(), vec![(PageType::PageCache, 1)]);
        assert_eq!(m.allocated_frames(), 1);
    }

    /// The pre-wide-op implementation (8-byte chunks), kept verbatim as a
    /// regression reference: the 32-byte-lane rewrite must reproduce its
    /// values bit-for-bit on every seeded page.
    fn content_hash_old(bytes: &[u8]) -> u64 {
        let mut h = FNV_INIT;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            let word = u64::from_le_bytes(w);
            let mut shift = 0u32;
            while shift < 64 {
                h ^= (word >> shift) & 0xff;
                h = h.wrapping_mul(FNV_PRIME);
                shift += 8;
            }
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    #[test]
    fn wide_ops_match_old_implementation_on_seeded_pages() {
        // Deterministic xorshift fill — no external RNG in unit tests.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for seed_page in 0..8 {
            let mut page = [0u8; PAGE_SIZE as usize];
            for chunk in page.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            if seed_page % 3 == 0 {
                // Long zero prefixes exercise the early-equal chunks.
                page[..1024].fill(0);
            }
            assert_eq!(content_hash(&page), content_hash_old(&page));
            for len in [0usize, 1, 7, 8, 31, 32, 33, 63, 100, 4095] {
                assert_eq!(content_hash(&page[..len]), content_hash_old(&page[..len]));
            }
            assert!(!page_is_zero(&page) || page.iter().all(|&b| b == 0));
        }
        assert_eq!(content_hash(&ZERO_PAGE), content_hash_old(&ZERO_PAGE));
        assert!(page_is_zero(&ZERO_PAGE));
    }

    #[test]
    fn read_view_is_sync_and_matches_memoized_values() {
        fn assert_sync<T: Sync + Send>(_: &T) {}
        let mut m = PhysMemory::new(4);
        m.write_byte(PhysAddr(5), 9);
        m.write_byte(PhysAddr(PAGE_SIZE + 1), 3);
        let view = m.read_view();
        assert_sync(&view);
        for f in 0..4u64 {
            let f = FrameId(f);
            assert_eq!(view.hash_page(f), m.hash_page(f));
            assert_eq!(view.is_zero(f), m.is_zero(f));
            assert_eq!(view.write_gen(f), m.info(f).write_gen);
            assert_eq!(view.page(f), m.page(f));
        }
        assert_eq!(view.frame_count(), m.frame_count());
    }

    #[test]
    fn seed_hash_populates_the_memo_cache() {
        let mut m = PhysMemory::new(2);
        m.write_byte(PhysAddr(7), 0x42);
        assert!(!m.has_cached_hash(FrameId(0)));
        let h = m.read_view().hash_page(FrameId(0));
        m.seed_hash(FrameId(0), h);
        assert!(m.has_cached_hash(FrameId(0)));
        assert_eq!(m.hash_page(FrameId(0)), h);
        // A later write invalidates the seeded value like any other.
        m.write_byte(PhysAddr(8), 1);
        assert!(!m.has_cached_hash(FrameId(0)));
        assert_eq!(m.hash_page(FrameId(0)), content_hash(m.page(FrameId(0))));
        // Lazy-zero frames are always "cached" (the hash is a constant).
        assert!(m.has_cached_hash(FrameId(1)));
        m.seed_hash(FrameId(1), ZERO_PAGE_HASH);
        assert_eq!(m.hash_page(FrameId(1)), ZERO_PAGE_HASH);
    }

    #[test]
    #[should_panic(expected = "crosses frame boundary")]
    fn u64_across_boundary_panics() {
        let m = PhysMemory::new(2);
        let _ = m.read_u64(PhysAddr(PAGE_SIZE - 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_frame_panics() {
        let m = PhysMemory::new(1);
        let _ = m.page(FrameId(1));
    }
}
