//! A Linux-style binary buddy allocator.
//!
//! This is the system-wide page allocator of the simulation. Two properties
//! matter for the paper:
//!
//! * **Order-9 allocations** back transparent huge pages (512 contiguous
//!   frames), which `khugepaged` requests.
//! * **LIFO free lists**: like Linux, a freed block is pushed on the head of
//!   its free list and the next allocation pops it right back. This
//!   *predictable reuse* is the memory-massaging primitive Flip Feng Shui
//!   exploits (§4.2) and the reason VUsion draws backing frames from a
//!   [`crate::RandomPool`] instead (§6.2: randomizing the system-wide
//!   allocator "has non-trivial performance and usability implications", so
//!   RA is enforced at the fusion system).
//!
//! Exhaustion and misuse are reported as [`MmError`], never as panics: the
//! chaos suite drives this allocator straight into OOM (optionally via an
//! attached [`FaultInjector`]) and the engines must degrade gracefully.

use std::collections::{BTreeMap, BTreeSet};

use crate::addr::FrameId;
use crate::error::MmError;
use crate::fault::{FaultInjector, InjectionStats};
use crate::FrameAllocator;

/// Largest supported order: blocks of `2^10 = 1024` frames (4 MiB).
pub const MAX_ORDER: u8 = 10;

/// Allocation statistics, exposed for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuddyStats {
    /// Successful allocations (any order).
    pub allocs: u64,
    /// Frees (any order).
    pub frees: u64,
    /// Block splits performed.
    pub splits: u64,
    /// Buddy coalesces performed.
    pub merges: u64,
}

/// Binary buddy allocator over the frame range `[base, base + frames)`.
pub struct BuddyAllocator {
    base: u64,
    frames: u64,
    /// Per-order LIFO stacks of block starts (relative to `base`). Entries
    /// may be stale (consumed by coalescing); `free_set` is authoritative.
    free_stacks: Vec<Vec<u64>>,
    /// Per-order set of genuinely free block starts.
    free_sets: Vec<BTreeSet<u64>>,
    /// Order of each outstanding allocation, for free-time validation.
    allocated: BTreeMap<u64, u8>,
    free_frames: u64,
    stats: BuddyStats,
    /// Optional deterministic failure source (chaos runs).
    injector: Option<FaultInjector>,
}

impl BuddyAllocator {
    /// Creates an allocator managing `frames` frames starting at `base`.
    ///
    /// The region need not be a power of two; it is carved greedily into
    /// maximal aligned blocks.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0` (a configuration error, not a runtime
    /// condition).
    pub fn new(base: FrameId, frames: u64) -> Self {
        assert!(frames > 0, "buddy region must be non-empty");
        let mut a = Self {
            base: base.0,
            frames,
            free_stacks: vec![Vec::new(); usize::from(MAX_ORDER) + 1],
            free_sets: vec![BTreeSet::new(); usize::from(MAX_ORDER) + 1],
            allocated: BTreeMap::new(),
            free_frames: frames,
            stats: BuddyStats::default(),
            injector: None,
        };
        // Carve the region into maximal aligned blocks, from high addresses
        // down, so the LIFO stack pops low addresses first.
        let mut carved: Vec<(u64, u8)> = Vec::new();
        let mut start = 0u64;
        while start < frames {
            let align_order = if start == 0 {
                MAX_ORDER
            } else {
                start.trailing_zeros().min(u32::from(MAX_ORDER)) as u8
            };
            let mut order = align_order;
            while (1u64 << order) > frames - start {
                order -= 1;
            }
            carved.push((start, order));
            start += 1 << order;
        }
        for &(s, o) in carved.iter().rev() {
            a.push_free(s, o);
        }
        a
    }

    /// First frame managed by this allocator.
    pub fn base(&self) -> FrameId {
        FrameId(self.base)
    }

    /// Number of frames managed (free or allocated).
    pub fn managed_frames(&self) -> u64 {
        self.frames
    }

    /// Allocation statistics.
    pub fn stats(&self) -> BuddyStats {
        self.stats
    }

    /// Attaches a deterministic fault injector: every subsequent
    /// allocation consults it and may fail with
    /// [`MmError::OutOfFrames`] even while frames remain.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Counters of faults injected into this allocator so far.
    pub fn injection_stats(&self) -> InjectionStats {
        self.injector
            .as_ref()
            .map(FaultInjector::stats)
            .unwrap_or_default()
    }

    fn push_free(&mut self, rel: u64, order: u8) {
        self.free_sets[usize::from(order)].insert(rel);
        self.free_stacks[usize::from(order)].push(rel);
    }

    /// Pops the most recently freed genuinely-free block of `order`.
    fn pop_free(&mut self, order: u8) -> Option<u64> {
        let o = usize::from(order);
        while let Some(rel) = self.free_stacks[o].pop() {
            if self.free_sets[o].remove(&rel) {
                return Some(rel);
            }
            // Stale entry: the block was coalesced away. Skip it.
        }
        None
    }

    fn check_managed(&self, frame: FrameId) -> Result<(), MmError> {
        if frame.0 >= self.base && frame.0 < self.base + self.frames {
            Ok(())
        } else {
            Err(MmError::ForeignFrame(frame))
        }
    }

    /// Allocates a block of `2^order` frames; returns its first frame.
    ///
    /// Fails with [`MmError::OutOfFrames`] on exhaustion (or injected
    /// failure) and on `order > MAX_ORDER`.
    pub fn alloc_order(&mut self, order: u8) -> Result<FrameId, MmError> {
        if order > MAX_ORDER {
            return Err(MmError::OutOfFrames);
        }
        if let Some(inj) = &mut self.injector {
            if inj.should_fail_alloc() {
                return Err(MmError::OutOfFrames);
            }
        }
        // Find the smallest order with a free block.
        let mut have = None;
        for o in order..=MAX_ORDER {
            if !self.free_sets[usize::from(o)].is_empty() {
                have = Some(o);
                break;
            }
        }
        let mut o = have.ok_or(MmError::OutOfFrames)?;
        let rel = self.pop_free(o).ok_or(MmError::OutOfFrames)?;
        // Split down to the requested order, keeping the upper halves free.
        while o > order {
            o -= 1;
            let upper = rel + (1 << o);
            self.push_free(upper, o);
            self.stats.splits += 1;
        }
        self.allocated.insert(rel, order);
        self.free_frames -= 1 << order;
        self.stats.allocs += 1;
        Ok(FrameId(self.base + rel))
    }

    /// Frees a block previously returned by [`Self::alloc_order`].
    ///
    /// Reports (instead of aborting on) misuse: [`MmError::DoubleFree`],
    /// [`MmError::ForeignFrame`], [`MmError::OrderMismatch`]. A failed
    /// free leaves the allocator state unchanged.
    pub fn free_order(&mut self, frame: FrameId, order: u8) -> Result<(), MmError> {
        self.check_managed(frame)?;
        let mut rel = frame.0 - self.base;
        let recorded = self
            .allocated
            .remove(&rel)
            .ok_or(MmError::DoubleFree(frame))?;
        if recorded != order {
            // Restore the record: a rejected free must not alter state.
            self.allocated.insert(rel, recorded);
            return Err(MmError::OrderMismatch {
                frame,
                recorded,
                claimed: order,
            });
        }
        self.free_frames += 1 << order;
        self.stats.frees += 1;
        // Coalesce with the buddy while it is free.
        let mut o = order;
        while o < MAX_ORDER {
            let buddy = rel ^ (1u64 << o);
            if buddy + (1 << o) > self.frames || !self.free_sets[usize::from(o)].remove(&buddy) {
                break;
            }
            self.stats.merges += 1;
            rel = rel.min(buddy);
            o += 1;
        }
        self.push_free(rel, o);
        Ok(())
    }

    /// Converts one recorded allocation of `2^order` frames into `2^order`
    /// independent order-0 allocations, so the frames can be freed
    /// individually. Used when a transparent huge page is broken up into
    /// base pages (KSM and VUsion both do this before fusing, §8.1).
    pub fn split_allocated(&mut self, frame: FrameId, order: u8) -> Result<(), MmError> {
        self.check_managed(frame)?;
        let rel = frame.0 - self.base;
        let recorded = self
            .allocated
            .remove(&rel)
            .ok_or(MmError::DoubleFree(frame))?;
        if recorded != order {
            self.allocated.insert(rel, recorded);
            return Err(MmError::OrderMismatch {
                frame,
                recorded,
                claimed: order,
            });
        }
        for i in 0..(1u64 << order) {
            self.allocated.insert(rel + i, 0);
        }
        Ok(())
    }

    /// Whether a specific frame is currently inside any free block.
    pub fn is_frame_free(&self, frame: FrameId) -> bool {
        if frame.0 < self.base || frame.0 >= self.base + self.frames {
            return false;
        }
        let rel = frame.0 - self.base;
        for o in 0..=MAX_ORDER {
            let block = rel & !((1u64 << o) - 1);
            if self.free_sets[usize::from(o)].contains(&block) {
                return true;
            }
        }
        false
    }
}

impl vusion_snapshot::Snapshot for BuddyAllocator {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u64(self.base);
        w.u64(self.frames);
        // Free stacks travel verbatim, stale entries included: the LIFO pop
        // order (and thus predictable reuse) must survive restore exactly.
        w.usize(self.free_stacks.len());
        for stack in &self.free_stacks {
            w.u64s(stack);
        }
        for set in &self.free_sets {
            w.usize(set.len());
            for &rel in set {
                w.u64(rel);
            }
        }
        w.usize(self.allocated.len());
        let mut allocs: Vec<(u64, u8)> = self.allocated.iter().map(|(&k, &v)| (k, v)).collect();
        allocs.sort_unstable();
        for (rel, order) in allocs {
            w.u64(rel);
            w.u8(order);
        }
        w.u64(self.free_frames);
        w.u64(self.stats.allocs);
        w.u64(self.stats.frees);
        w.u64(self.stats.splits);
        w.u64(self.stats.merges);
        match &self.injector {
            None => w.bool(false),
            Some(inj) => {
                w.bool(true);
                inj.save(w);
            }
        }
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        use vusion_snapshot::SnapshotError;
        if r.u64()? != self.base || r.u64()? != self.frames {
            return Err(SnapshotError::Corrupt("buddy geometry mismatch"));
        }
        let orders = r.usize()?;
        if orders != self.free_stacks.len() {
            return Err(SnapshotError::Corrupt("buddy order count mismatch"));
        }
        for stack in &mut self.free_stacks {
            *stack = r.u64s()?;
        }
        for set in &mut self.free_sets {
            set.clear();
            let n = r.usize()?;
            for _ in 0..n {
                set.insert(r.u64()?);
            }
        }
        self.allocated.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let rel = r.u64()?;
            let order = r.u8()?;
            self.allocated.insert(rel, order);
        }
        self.free_frames = r.u64()?;
        self.stats = BuddyStats {
            allocs: r.u64()?,
            frees: r.u64()?,
            splits: r.u64()?,
            merges: r.u64()?,
        };
        self.injector = if r.bool()? {
            let mut inj = FaultInjector::new(crate::fault::FaultPlan::NONE, 0);
            inj.load(r)?;
            Some(inj)
        } else {
            None
        };
        Ok(())
    }
}

impl FrameAllocator for BuddyAllocator {
    fn alloc(&mut self) -> Result<FrameId, MmError> {
        self.alloc_order(0)
    }

    fn free(&mut self, frame: FrameId) -> Result<(), MmError> {
        self.free_order(frame, 0)
    }

    fn free_frames(&self) -> usize {
        self.free_frames as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn allocates_distinct_frames() {
        let mut b = BuddyAllocator::new(FrameId(0), 64);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let f = b.alloc().expect("in range");
            assert!(seen.insert(f));
        }
        assert_eq!(b.alloc(), Err(MmError::OutOfFrames));
        assert_eq!(b.free_frames(), 0);
    }

    #[test]
    fn lifo_reuse_is_predictable() {
        // The property Flip Feng Shui relies on: free then realloc returns
        // the same frame.
        let mut b = BuddyAllocator::new(FrameId(0), 1024);
        let f = b.alloc().expect("frame");
        let _g = b.alloc().expect("frame");
        b.free(f).expect("free");
        let h = b.alloc().expect("frame");
        assert_eq!(f, h, "buddy must exhibit LIFO reuse");
    }

    #[test]
    fn coalescing_restores_full_blocks() {
        let mut b = BuddyAllocator::new(FrameId(0), 1024);
        let frames: Vec<_> = (0..1024).map(|_| b.alloc().expect("frame")).collect();
        for f in frames {
            b.free(f).expect("free");
        }
        assert_eq!(b.free_frames(), 1024);
        // After everything is freed and coalesced we can allocate MAX_ORDER.
        assert!(b.alloc_order(MAX_ORDER).is_ok());
    }

    #[test]
    fn order9_supports_huge_pages() {
        let mut b = BuddyAllocator::new(FrameId(0), 2048);
        let f = b.alloc_order(9).expect("huge block");
        assert_eq!(f.0 % 512, 0, "order-9 blocks are 2 MiB aligned");
        assert_eq!(b.free_frames(), 2048 - 512);
        b.free_order(f, 9).expect("free");
        assert_eq!(b.free_frames(), 2048);
    }

    #[test]
    fn non_power_of_two_region() {
        let mut b = BuddyAllocator::new(FrameId(0), 1000);
        let mut n = 0;
        while b.alloc().is_ok() {
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    #[test]
    fn base_offset_respected() {
        let mut b = BuddyAllocator::new(FrameId(4096), 16);
        let f = b.alloc().expect("frame");
        assert!(f.0 >= 4096 && f.0 < 4096 + 16);
    }

    #[test]
    fn is_frame_free_tracks_state() {
        let mut b = BuddyAllocator::new(FrameId(0), 16);
        assert!(b.is_frame_free(FrameId(3)));
        let f = b.alloc().expect("frame");
        assert!(!b.is_frame_free(f));
        b.free(f).expect("free");
        assert!(b.is_frame_free(f));
        assert!(!b.is_frame_free(FrameId(99)));
    }

    #[test]
    fn split_and_merge_stats() {
        let mut b = BuddyAllocator::new(FrameId(0), 1024);
        let f = b.alloc().expect("frame");
        assert_eq!(b.stats().splits, u64::from(MAX_ORDER));
        b.free(f).expect("free");
        assert_eq!(b.stats().merges, u64::from(MAX_ORDER));
    }

    #[test]
    fn split_allocated_allows_individual_frees() {
        let mut b = BuddyAllocator::new(FrameId(0), 2048);
        let huge = b.alloc_order(9).expect("huge block");
        b.split_allocated(huge, 9).expect("split");
        // Free every frame individually; coalescing restores the block.
        for i in 0..512u64 {
            b.free(FrameId(huge.0 + i)).expect("free");
        }
        assert_eq!(b.free_frames(), 2048);
        assert!(b.alloc_order(MAX_ORDER).is_ok());
    }

    #[test]
    fn split_wrong_order_is_reported() {
        let mut b = BuddyAllocator::new(FrameId(0), 2048);
        let huge = b.alloc_order(9).expect("huge block");
        assert_eq!(
            b.split_allocated(huge, 8),
            Err(MmError::OrderMismatch {
                frame: huge,
                recorded: 9,
                claimed: 8
            })
        );
        // The rejected split must not have consumed the record.
        b.free_order(huge, 9).expect("block still freeable");
        assert_eq!(b.free_frames(), 2048);
    }

    #[test]
    fn double_free_is_reported_not_fatal() {
        // Regression test for the former double-free panic: the error is
        // reported and the allocator stays fully usable.
        let mut b = BuddyAllocator::new(FrameId(0), 16);
        let f = b.alloc().expect("frame");
        b.free(f).expect("first free");
        assert_eq!(b.free(f), Err(MmError::DoubleFree(f)));
        assert_eq!(b.free_frames(), 16, "double free must not corrupt counts");
        // Allocator still works after the rejected free.
        let g = b.alloc().expect("frame after double free");
        b.free(g).expect("free");
    }

    #[test]
    fn wrong_order_free_is_reported() {
        let mut b = BuddyAllocator::new(FrameId(0), 16);
        let f = b.alloc_order(1).expect("block");
        assert_eq!(
            b.free_order(f, 0),
            Err(MmError::OrderMismatch {
                frame: f,
                recorded: 1,
                claimed: 0
            })
        );
        // The correct-order free still succeeds.
        b.free_order(f, 1).expect("free at recorded order");
        assert_eq!(b.free_frames(), 16);
    }

    #[test]
    fn foreign_frame_free_is_reported() {
        let mut b = BuddyAllocator::new(FrameId(0), 16);
        assert_eq!(
            b.free(FrameId(100)),
            Err(MmError::ForeignFrame(FrameId(100)))
        );
        assert_eq!(b.free_frames(), 16);
    }

    #[test]
    fn injected_failures_look_like_oom() {
        let mut b = BuddyAllocator::new(FrameId(0), 64);
        b.set_fault_injector(FaultInjector::new(FaultPlan::every_nth_alloc(3), 7));
        let results: Vec<bool> = (0..9).map(|_| b.alloc().is_ok()).collect();
        assert_eq!(
            results,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(b.injection_stats().injected_allocs, 3);
        // Injected failures must not consume frames.
        assert_eq!(b.free_frames(), 64 - 6);
    }
}
