//! The workspace-wide memory-management error taxonomy.
//!
//! VUsion's security argument requires that *failure* paths behave exactly
//! like success paths: an allocation failure that aborts the simulation (or
//! takes a visibly different code path) is itself a distinguishable signal.
//! Every allocator, page-table operation and fault handler therefore
//! reports failure through [`MmError`] instead of panicking, and callers
//! degrade gracefully — skip-and-retry in the scanners, countable OOM in
//! the fault dispatcher, deferred-queue refill in the RA pool.

use crate::addr::{FrameId, VirtAddr};
use vusion_snapshot::{Reader, SnapshotError, Writer};

/// Errors surfaced by the memory-management substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmError {
    /// The allocator has no frame to satisfy the request (genuine OOM or
    /// an injected failure — deliberately indistinguishable to callers).
    OutOfFrames,
    /// The randomized-allocation pool and its backing allocator are both
    /// empty, even after draining the deferred-free queue.
    PoolExhausted,
    /// A frame was freed twice.
    DoubleFree(FrameId),
    /// A frame outside the allocator's managed range was freed or split.
    ForeignFrame(FrameId),
    /// A block was freed or split with an order that does not match its
    /// allocation record.
    OrderMismatch {
        /// First frame of the block.
        frame: FrameId,
        /// Order recorded at allocation time.
        recorded: u8,
        /// Order the caller claimed.
        claimed: u8,
    },
    /// A page-table invariant was violated (walking an entry that is not a
    /// table, mapping over an existing mapping, misaligned huge mapping).
    BadPageTable(VirtAddr),
    /// A content checksum did not match between two reads of the same page
    /// during a scan — the page is volatile (or the read was corrupted by
    /// fault injection) and must not be merged this round.
    ChecksumMismatch(FrameId),
    /// A page fault could not be resolved by any handler (the simulated
    /// equivalent of SIGSEGV).
    UnresolvableFault(VirtAddr),
    /// A fault kept recurring on the same access beyond the retry budget.
    FaultLivelock(VirtAddr),
    /// An engine that needs a reserved physical region was attached to a
    /// machine configured without one.
    MissingReservedRegion,
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::OutOfFrames => write!(f, "out of physical frames"),
            MmError::PoolExhausted => {
                write!(f, "randomized pool exhausted (backing empty after drain)")
            }
            MmError::DoubleFree(frame) => write!(f, "double free of frame {}", frame.0),
            MmError::ForeignFrame(frame) => {
                write!(f, "frame {} is not managed by this allocator", frame.0)
            }
            MmError::OrderMismatch {
                frame,
                recorded,
                claimed,
            } => write!(
                f,
                "block at frame {} was allocated at order {recorded} but freed/split at order {claimed}",
                frame.0
            ),
            MmError::BadPageTable(va) => {
                write!(f, "page-table invariant violated at {:#x}", va.0)
            }
            MmError::ChecksumMismatch(frame) => {
                write!(f, "checksum mismatch on frame {}", frame.0)
            }
            MmError::UnresolvableFault(va) => {
                write!(f, "unresolvable fault (SIGSEGV) at {:#x}", va.0)
            }
            MmError::FaultLivelock(va) => write!(f, "fault livelock at {:#x}", va.0),
            MmError::MissingReservedRegion => {
                write!(f, "machine has no reserved top region")
            }
        }
    }
}

impl std::error::Error for MmError {}

impl MmError {
    /// Serializes the error for inclusion in a failure bundle, so the
    /// typed cause of a chaos failure survives the trip to disk.
    pub fn save(&self, w: &mut Writer) {
        match *self {
            MmError::OutOfFrames => w.u8(0),
            MmError::PoolExhausted => w.u8(1),
            MmError::DoubleFree(f) => {
                w.u8(2);
                w.u64(f.0);
            }
            MmError::ForeignFrame(f) => {
                w.u8(3);
                w.u64(f.0);
            }
            MmError::OrderMismatch {
                frame,
                recorded,
                claimed,
            } => {
                w.u8(4);
                w.u64(frame.0);
                w.u8(recorded);
                w.u8(claimed);
            }
            MmError::BadPageTable(va) => {
                w.u8(5);
                w.u64(va.0);
            }
            MmError::ChecksumMismatch(f) => {
                w.u8(6);
                w.u64(f.0);
            }
            MmError::UnresolvableFault(va) => {
                w.u8(7);
                w.u64(va.0);
            }
            MmError::FaultLivelock(va) => {
                w.u8(8);
                w.u64(va.0);
            }
            MmError::MissingReservedRegion => w.u8(9),
        }
    }

    /// Reads an error previously written by [`Self::save`].
    pub fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => MmError::OutOfFrames,
            1 => MmError::PoolExhausted,
            2 => MmError::DoubleFree(FrameId(r.u64()?)),
            3 => MmError::ForeignFrame(FrameId(r.u64()?)),
            4 => MmError::OrderMismatch {
                frame: FrameId(r.u64()?),
                recorded: r.u8()?,
                claimed: r.u8()?,
            },
            5 => MmError::BadPageTable(VirtAddr(r.u64()?)),
            6 => MmError::ChecksumMismatch(FrameId(r.u64()?)),
            7 => MmError::UnresolvableFault(VirtAddr(r.u64()?)),
            8 => MmError::FaultLivelock(VirtAddr(r.u64()?)),
            9 => MmError::MissingReservedRegion,
            _ => return Err(SnapshotError::Corrupt("unknown MmError variant")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MmError::OutOfFrames.to_string().contains("out of"));
        assert!(MmError::DoubleFree(FrameId(7)).to_string().contains('7'));
        assert!(MmError::UnresolvableFault(VirtAddr(0x1000))
            .to_string()
            .contains("SIGSEGV"));
        let e = MmError::OrderMismatch {
            frame: FrameId(8),
            recorded: 9,
            claimed: 0,
        };
        assert!(e.to_string().contains("order 9"));
    }

    #[test]
    fn every_variant_has_distinct_display() {
        let all = all_variants();
        let msgs: Vec<String> = all.iter().map(|e| e.to_string()).collect();
        for (i, a) in msgs.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &msgs[i + 1..] {
                assert_ne!(a, b, "two variants share a Display message");
            }
        }
        assert!(MmError::PoolExhausted.to_string().contains("pool"));
        assert!(MmError::BadPageTable(VirtAddr(0x2000))
            .to_string()
            .contains("0x2000"));
        assert!(MmError::FaultLivelock(VirtAddr(0x3000))
            .to_string()
            .contains("livelock"));
        assert!(MmError::ChecksumMismatch(FrameId(5))
            .to_string()
            .contains("checksum"));
        assert!(MmError::ForeignFrame(FrameId(9)).to_string().contains('9'));
        assert!(MmError::MissingReservedRegion
            .to_string()
            .contains("reserved"));
    }

    fn all_variants() -> Vec<MmError> {
        vec![
            MmError::OutOfFrames,
            MmError::PoolExhausted,
            MmError::DoubleFree(FrameId(7)),
            MmError::ForeignFrame(FrameId(65535)),
            MmError::OrderMismatch {
                frame: FrameId(8),
                recorded: 9,
                claimed: 0,
            },
            MmError::BadPageTable(VirtAddr(0xdead_b000)),
            MmError::ChecksumMismatch(FrameId(123)),
            MmError::UnresolvableFault(VirtAddr(0x1000)),
            MmError::FaultLivelock(VirtAddr(0x7fff_f000)),
            MmError::MissingReservedRegion,
        ]
    }

    #[test]
    fn every_variant_round_trips_through_snapshot_encoding() {
        for e in all_variants() {
            let mut w = Writer::new();
            e.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(MmError::load(&mut r).expect("load"), e);
            assert!(r.is_empty(), "{e:?} left trailing bytes");
        }
    }

    #[test]
    fn unknown_variant_tag_is_rejected() {
        let mut w = Writer::new();
        w.u8(200);
        let bytes = w.into_bytes();
        assert!(MmError::load(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MmError::OutOfFrames, MmError::OutOfFrames);
        assert_ne!(
            MmError::DoubleFree(FrameId(1)),
            MmError::DoubleFree(FrameId(2))
        );
    }
}
