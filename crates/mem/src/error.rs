//! The workspace-wide memory-management error taxonomy.
//!
//! VUsion's security argument requires that *failure* paths behave exactly
//! like success paths: an allocation failure that aborts the simulation (or
//! takes a visibly different code path) is itself a distinguishable signal.
//! Every allocator, page-table operation and fault handler therefore
//! reports failure through [`MmError`] instead of panicking, and callers
//! degrade gracefully — skip-and-retry in the scanners, countable OOM in
//! the fault dispatcher, deferred-queue refill in the RA pool.

use crate::addr::{FrameId, VirtAddr};

/// Errors surfaced by the memory-management substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmError {
    /// The allocator has no frame to satisfy the request (genuine OOM or
    /// an injected failure — deliberately indistinguishable to callers).
    OutOfFrames,
    /// The randomized-allocation pool and its backing allocator are both
    /// empty, even after draining the deferred-free queue.
    PoolExhausted,
    /// A frame was freed twice.
    DoubleFree(FrameId),
    /// A frame outside the allocator's managed range was freed or split.
    ForeignFrame(FrameId),
    /// A block was freed or split with an order that does not match its
    /// allocation record.
    OrderMismatch {
        /// First frame of the block.
        frame: FrameId,
        /// Order recorded at allocation time.
        recorded: u8,
        /// Order the caller claimed.
        claimed: u8,
    },
    /// A page-table invariant was violated (walking an entry that is not a
    /// table, mapping over an existing mapping, misaligned huge mapping).
    BadPageTable(VirtAddr),
    /// A content checksum did not match between two reads of the same page
    /// during a scan — the page is volatile (or the read was corrupted by
    /// fault injection) and must not be merged this round.
    ChecksumMismatch(FrameId),
    /// A page fault could not be resolved by any handler (the simulated
    /// equivalent of SIGSEGV).
    UnresolvableFault(VirtAddr),
    /// A fault kept recurring on the same access beyond the retry budget.
    FaultLivelock(VirtAddr),
    /// An engine that needs a reserved physical region was attached to a
    /// machine configured without one.
    MissingReservedRegion,
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::OutOfFrames => write!(f, "out of physical frames"),
            MmError::PoolExhausted => {
                write!(f, "randomized pool exhausted (backing empty after drain)")
            }
            MmError::DoubleFree(frame) => write!(f, "double free of frame {}", frame.0),
            MmError::ForeignFrame(frame) => {
                write!(f, "frame {} is not managed by this allocator", frame.0)
            }
            MmError::OrderMismatch {
                frame,
                recorded,
                claimed,
            } => write!(
                f,
                "block at frame {} was allocated at order {recorded} but freed/split at order {claimed}",
                frame.0
            ),
            MmError::BadPageTable(va) => {
                write!(f, "page-table invariant violated at {:#x}", va.0)
            }
            MmError::ChecksumMismatch(frame) => {
                write!(f, "checksum mismatch on frame {}", frame.0)
            }
            MmError::UnresolvableFault(va) => {
                write!(f, "unresolvable fault (SIGSEGV) at {:#x}", va.0)
            }
            MmError::FaultLivelock(va) => write!(f, "fault livelock at {:#x}", va.0),
            MmError::MissingReservedRegion => {
                write!(f, "machine has no reserved top region")
            }
        }
    }
}

impl std::error::Error for MmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MmError::OutOfFrames.to_string().contains("out of"));
        assert!(MmError::DoubleFree(FrameId(7)).to_string().contains('7'));
        assert!(MmError::UnresolvableFault(VirtAddr(0x1000))
            .to_string()
            .contains("SIGSEGV"));
        let e = MmError::OrderMismatch {
            frame: FrameId(8),
            recorded: 9,
            claimed: 0,
        };
        assert!(e.to_string().contains("order 9"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MmError::OutOfFrames, MmError::OutOfFrames);
        assert_ne!(
            MmError::DoubleFree(FrameId(1)),
            MmError::DoubleFree(FrameId(2))
        );
    }
}
