//! VUsion's Randomized Allocation (RA) pool.
//!
//! §7.1: "We reserve 128 MB of physical memory in a cache to add 15 bits of
//! entropy to physical memory allocations performed by VUsion during both
//! merging and unmerging." With a pool of 2¹⁵ = 32,768 frames, a specific
//! vulnerable frame released by the attacker is controllably reused with
//! probability only 2⁻¹⁵, defeating Flip Feng Shui templating.
//!
//! The pool sits in front of a backing allocator (the system buddy
//! allocator): every allocation draws a uniformly random pool slot and
//! refills it from the backing allocator; every free inserts the frame at a
//! random slot and evicts a random resident back to the backing allocator,
//! so recently freed frames enjoy no reuse preference whatsoever.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::addr::FrameId;
use crate::FrameAllocator;

/// Default pool capacity: 128 MiB of 4 KiB frames = 2¹⁵ frames.
pub const DEFAULT_POOL_FRAMES: usize = 32 * 1024;

/// Randomized frame pool in front of a backing allocator.
pub struct RandomPool {
    pool: Vec<FrameId>,
    capacity: usize,
    rng: StdRng,
}

impl RandomPool {
    /// Creates a pool of `capacity` frames, pre-filled from `backing`.
    ///
    /// If the backing allocator cannot supply `capacity` frames the pool is
    /// smaller (entropy degrades gracefully; tests use small pools).
    ///
    /// # Panics
    ///
    /// Panics if the backing allocator yields no frames at all.
    pub fn new(capacity: usize, backing: &mut dyn FrameAllocator, seed: u64) -> Self {
        let mut pool = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            match backing.alloc() {
                Some(f) => pool.push(f),
                None => break,
            }
        }
        assert!(!pool.is_empty(), "random pool requires at least one frame");
        Self {
            pool,
            capacity,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current number of frames resident in the pool.
    pub fn resident(&self) -> usize {
        self.pool.len()
    }

    /// Configured capacity (bits of entropy = log2(capacity)).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Draws a uniformly random frame, refilling the slot from `backing`.
    pub fn alloc_random(&mut self, backing: &mut dyn FrameAllocator) -> Option<FrameId> {
        if self.pool.is_empty() {
            return backing.alloc();
        }
        let idx = self.rng.random_range(0..self.pool.len());
        match backing.alloc() {
            Some(refill) => {
                let out = std::mem::replace(&mut self.pool[idx], refill);
                Some(out)
            }
            None => Some(self.pool.swap_remove(idx)),
        }
    }

    /// Returns a frame: it is inserted at a random pool slot; if the pool is
    /// over capacity a random resident is evicted to `backing` instead.
    pub fn free_random(&mut self, frame: FrameId, backing: &mut dyn FrameAllocator) {
        if self.pool.len() < self.capacity {
            // Insert at a random position to avoid positional bias.
            let idx = self.rng.random_range(0..=self.pool.len());
            self.pool.push(frame);
            let last = self.pool.len() - 1;
            self.pool.swap(idx, last);
        } else {
            let idx = self.rng.random_range(0..self.pool.len());
            let evicted = std::mem::replace(&mut self.pool[idx], frame);
            backing.free(evicted);
        }
    }

    /// Whether a frame is currently resident in the pool (test helper).
    pub fn contains(&self, frame: FrameId) -> bool {
        self.pool.contains(&frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buddy::BuddyAllocator;

    fn setup(pool_size: usize, frames: u64) -> (RandomPool, BuddyAllocator) {
        let mut b = BuddyAllocator::new(FrameId(0), frames);
        let p = RandomPool::new(pool_size, &mut b, 42);
        (p, b)
    }

    #[test]
    fn prefills_to_capacity() {
        let (p, b) = setup(64, 1024);
        assert_eq!(p.resident(), 64);
        assert_eq!(b.free_frames(), 1024 - 64);
    }

    #[test]
    fn alloc_returns_distinct_frames() {
        let (mut p, mut b) = setup(64, 1024);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let f = p.alloc_random(&mut b).expect("frame");
            assert!(seen.insert(f), "pool handed out a frame twice");
        }
    }

    #[test]
    fn freed_frame_rarely_reused_immediately() {
        // The anti-Flip-Feng-Shui property: free a frame, then allocate; the
        // probability of getting the same frame back must be ~1/capacity,
        // not ~1 as with the LIFO buddy allocator.
        let (mut p, mut b) = setup(256, 4096);
        let mut immediate_reuse = 0;
        for _ in 0..400 {
            let f = p.alloc_random(&mut b).expect("frame");
            p.free_random(f, &mut b);
            let g = p.alloc_random(&mut b).expect("frame");
            if f == g {
                immediate_reuse += 1;
            }
            p.free_random(g, &mut b);
        }
        // Expected ≈ 400/256 ≈ 1.6; allow generous slack but far below LIFO's 400.
        assert!(immediate_reuse <= 10, "reused {immediate_reuse}/400 times");
    }

    #[test]
    fn draws_are_roughly_uniform() {
        // Chi-square-free sanity check: draw many frames from a small pool
        // backed by an exhausted allocator and check each slot is hit.
        let mut b = BuddyAllocator::new(FrameId(0), 16);
        let mut p = RandomPool::new(16, &mut b, 7);
        assert_eq!(b.free_frames(), 0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2000 {
            let f = p.alloc_random(&mut b).expect("frame");
            *counts.entry(f).or_insert(0u32) += 1;
            p.free_random(f, &mut b);
        }
        assert_eq!(counts.len(), 16, "every pool slot must be drawable");
        for (_, c) in counts {
            assert!(c > 50, "draws badly non-uniform: {c}");
        }
    }

    #[test]
    fn degrades_to_backing_when_empty() {
        let mut b = BuddyAllocator::new(FrameId(0), 8);
        let mut p = RandomPool::new(4, &mut b, 1);
        // Drain the pool and the backing allocator.
        let mut got = 0;
        while p.alloc_random(&mut b).is_some() {
            got += 1;
        }
        assert_eq!(got, 8);
    }

    #[test]
    fn over_capacity_free_evicts_to_backing() {
        let mut b = BuddyAllocator::new(FrameId(0), 32);
        let mut p = RandomPool::new(8, &mut b, 3);
        let extra = b.alloc().expect("frame");
        let before = b.free_frames();
        p.free_random(extra, &mut b);
        assert_eq!(p.resident(), 8, "pool stays at capacity");
        assert_eq!(b.free_frames(), before + 1, "one frame evicted to backing");
    }
}
