//! VUsion's Randomized Allocation (RA) pool.
//!
//! §7.1: "We reserve 128 MB of physical memory in a cache to add 15 bits of
//! entropy to physical memory allocations performed by VUsion during both
//! merging and unmerging." With a pool of 2¹⁵ = 32,768 frames, a specific
//! vulnerable frame released by the attacker is controllably reused with
//! probability only 2⁻¹⁵, defeating Flip Feng Shui templating.
//!
//! The pool sits in front of a backing allocator (the system buddy
//! allocator): every allocation draws a uniformly random pool slot and
//! refills it from the backing allocator; every free inserts the frame at a
//! random slot and evicts a random resident back to the backing allocator,
//! so recently freed frames enjoy no reuse preference whatsoever.
//!
//! The RA guarantee must survive memory pressure: even when the backing
//! allocator fails (genuinely or through fault injection),
//! [`RandomPool::alloc_random_excluding`] never hands back the frame the
//! caller just released — exhaustion is reported as
//! [`MmError::PoolExhausted`] instead of quietly recycling the one frame an
//! attacker may have templated.

use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

use crate::addr::FrameId;
use crate::error::MmError;
use crate::FrameAllocator;

/// Default pool capacity: 128 MiB of 4 KiB frames = 2¹⁵ frames.
pub const DEFAULT_POOL_FRAMES: usize = 32 * 1024;

/// Randomized frame pool in front of a backing allocator.
pub struct RandomPool {
    pool: Vec<FrameId>,
    capacity: usize,
    rng: StdRng,
}

impl RandomPool {
    /// Creates a pool of `capacity` frames, pre-filled from `backing`.
    ///
    /// If the backing allocator cannot supply `capacity` frames the pool is
    /// smaller (entropy degrades gracefully; tests use small pools). An
    /// empty pool is permitted — allocations then fall through to the
    /// backing allocator directly.
    pub fn new(capacity: usize, backing: &mut dyn FrameAllocator, seed: u64) -> Self {
        let mut pool = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            match backing.alloc() {
                Ok(f) => pool.push(f),
                Err(_) => break,
            }
        }
        Self {
            pool,
            capacity,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current number of frames resident in the pool.
    pub fn resident(&self) -> usize {
        self.pool.len()
    }

    /// Configured capacity (bits of entropy = log2(capacity)).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tops the pool back up toward `capacity` from `backing` (used after
    /// the deferred-free queue is drained under memory pressure). Returns
    /// how many frames were absorbed.
    pub fn refill(&mut self, backing: &mut dyn FrameAllocator) -> usize {
        let mut absorbed = 0;
        while self.pool.len() < self.capacity {
            match backing.alloc() {
                Ok(f) => {
                    // Insert at a random slot so refilled frames enjoy no
                    // positional bias either.
                    let idx = self.rng.random_range(0..=self.pool.len());
                    self.pool.push(f);
                    let last = self.pool.len() - 1;
                    self.pool.swap(idx, last);
                    absorbed += 1;
                }
                Err(_) => break,
            }
        }
        absorbed
    }

    /// Draws a uniformly random frame, refilling the slot from `backing`.
    pub fn alloc_random(&mut self, backing: &mut dyn FrameAllocator) -> Result<FrameId, MmError> {
        self.alloc_random_excluding(backing, None)
    }

    /// Draws a uniformly random frame that is guaranteed not to be
    /// `exclude` (the frame the caller just released — handing it back
    /// would reintroduce exactly the predictable reuse RA exists to
    /// prevent). Fails with [`MmError::PoolExhausted`] when neither the
    /// pool nor the backing allocator can supply an admissible frame.
    pub fn alloc_random_excluding(
        &mut self,
        backing: &mut dyn FrameAllocator,
        exclude: Option<FrameId>,
    ) -> Result<FrameId, MmError> {
        let only_excluded = self.pool.len() == 1 && Some(self.pool[0]) == exclude;
        if self.pool.is_empty() || only_excluded {
            return self.alloc_from_backing(backing, exclude);
        }
        let mut idx = self.rng.random_range(0..self.pool.len());
        if Some(self.pool[idx]) == exclude {
            // Redraw uniformly over the remaining slots.
            let step = 1 + self.rng.random_range(0..self.pool.len() - 1);
            idx = (idx + step) % self.pool.len();
        }
        match backing.alloc() {
            Ok(refill) => Ok(std::mem::replace(&mut self.pool[idx], refill)),
            Err(_) => Ok(self.pool.swap_remove(idx)),
        }
    }

    /// Last-resort path: the pool cannot supply an admissible frame, so
    /// allocate straight from `backing`, still honoring `exclude`.
    fn alloc_from_backing(
        &mut self,
        backing: &mut dyn FrameAllocator,
        exclude: Option<FrameId>,
    ) -> Result<FrameId, MmError> {
        let first = backing.alloc().map_err(|_| MmError::PoolExhausted)?;
        if Some(first) != exclude {
            return Ok(first);
        }
        // The backing allocator (LIFO buddy) handed back exactly the frame
        // we must not reuse. Take a second frame and return the first.
        let second = backing.alloc();
        backing.free(first)?;
        second.map_err(|_| MmError::PoolExhausted)
    }

    /// Returns a frame: it is inserted at a random pool slot; if the pool is
    /// over capacity a random resident is evicted to `backing` instead.
    pub fn free_random(
        &mut self,
        frame: FrameId,
        backing: &mut dyn FrameAllocator,
    ) -> Result<(), MmError> {
        if self.pool.len() < self.capacity {
            // Insert at a random position to avoid positional bias.
            let idx = self.rng.random_range(0..=self.pool.len());
            self.pool.push(frame);
            let last = self.pool.len() - 1;
            self.pool.swap(idx, last);
            Ok(())
        } else {
            let idx = self.rng.random_range(0..self.pool.len());
            let evicted = std::mem::replace(&mut self.pool[idx], frame);
            backing.free(evicted)
        }
    }

    /// Whether a frame is currently resident in the pool (test helper).
    pub fn contains(&self, frame: FrameId) -> bool {
        self.pool.contains(&frame)
    }
}

impl vusion_snapshot::Snapshot for RandomPool {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        // Pool slots travel in order: draws index into the vector, so slot
        // order is load-bearing for determinism.
        w.usize(self.pool.len());
        for f in &self.pool {
            w.u64(f.0);
        }
        w.usize(self.capacity);
        for x in self.rng.state() {
            w.u64(x);
        }
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        let n = r.usize()?;
        self.pool.clear();
        for _ in 0..n {
            self.pool.push(FrameId(r.u64()?));
        }
        self.capacity = r.usize()?;
        let s = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        self.rng = StdRng::from_state(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buddy::BuddyAllocator;

    fn setup(pool_size: usize, frames: u64) -> (RandomPool, BuddyAllocator) {
        let mut b = BuddyAllocator::new(FrameId(0), frames);
        let p = RandomPool::new(pool_size, &mut b, 42);
        (p, b)
    }

    #[test]
    fn prefills_to_capacity() {
        let (p, b) = setup(64, 1024);
        assert_eq!(p.resident(), 64);
        assert_eq!(b.free_frames(), 1024 - 64);
    }

    #[test]
    fn alloc_returns_distinct_frames() {
        let (mut p, mut b) = setup(64, 1024);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let f = p.alloc_random(&mut b).expect("frame");
            assert!(seen.insert(f), "pool handed out a frame twice");
        }
    }

    #[test]
    fn freed_frame_rarely_reused_immediately() {
        // The anti-Flip-Feng-Shui property: free a frame, then allocate; the
        // probability of getting the same frame back must be ~1/capacity,
        // not ~1 as with the LIFO buddy allocator.
        let (mut p, mut b) = setup(256, 4096);
        let mut immediate_reuse = 0;
        for _ in 0..400 {
            let f = p.alloc_random(&mut b).expect("frame");
            p.free_random(f, &mut b).expect("free");
            let g = p.alloc_random(&mut b).expect("frame");
            if f == g {
                immediate_reuse += 1;
            }
            p.free_random(g, &mut b).expect("free");
        }
        // Expected ≈ 400/256 ≈ 1.6; allow generous slack but far below LIFO's 400.
        assert!(immediate_reuse <= 10, "reused {immediate_reuse}/400 times");
    }

    #[test]
    fn draws_are_roughly_uniform() {
        // Chi-square-free sanity check: draw many frames from a small pool
        // backed by an exhausted allocator and check each slot is hit.
        let mut b = BuddyAllocator::new(FrameId(0), 16);
        let mut p = RandomPool::new(16, &mut b, 7);
        assert_eq!(b.free_frames(), 0);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..2000 {
            let f = p.alloc_random(&mut b).expect("frame");
            *counts.entry(f).or_insert(0u32) += 1;
            p.free_random(f, &mut b).expect("free");
        }
        assert_eq!(counts.len(), 16, "every pool slot must be drawable");
        for (_, c) in counts {
            assert!(c > 50, "draws badly non-uniform: {c}");
        }
    }

    #[test]
    fn degrades_to_backing_when_empty() {
        let mut b = BuddyAllocator::new(FrameId(0), 8);
        let mut p = RandomPool::new(4, &mut b, 1);
        // Drain the pool and the backing allocator.
        let mut got = 0;
        while p.alloc_random(&mut b).is_ok() {
            got += 1;
        }
        assert_eq!(got, 8);
        assert_eq!(
            p.alloc_random(&mut b),
            Err(MmError::PoolExhausted),
            "exhaustion must be a clean typed error"
        );
    }

    #[test]
    fn over_capacity_free_evicts_to_backing() {
        let mut b = BuddyAllocator::new(FrameId(0), 32);
        let mut p = RandomPool::new(8, &mut b, 3);
        let extra = b.alloc().expect("frame");
        let before = b.free_frames();
        p.free_random(extra, &mut b).expect("free");
        assert_eq!(p.resident(), 8, "pool stays at capacity");
        assert_eq!(b.free_frames(), before + 1, "one frame evicted to backing");
    }

    #[test]
    fn refill_tops_up_from_backing() {
        let mut b = BuddyAllocator::new(FrameId(0), 64);
        let mut p = RandomPool::new(16, &mut b, 5);
        // Drain half the pool with the backing allocator exhausted.
        let held: Vec<FrameId> = (0..48).map(|_| b.alloc().expect("frame")).collect();
        for _ in 0..8 {
            p.alloc_random(&mut b).expect("frame");
        }
        assert_eq!(p.resident(), 8);
        for f in held {
            b.free(f).expect("free");
        }
        assert_eq!(p.refill(&mut b), 8);
        assert_eq!(p.resident(), 16);
    }

    #[test]
    fn exclusion_holds_even_under_backing_failure() {
        // Exhaust the backing allocator so the pool is the only source,
        // then verify the excluded frame is never drawn.
        let mut b = BuddyAllocator::new(FrameId(0), 8);
        let mut p = RandomPool::new(8, &mut b, 11);
        assert_eq!(b.free_frames(), 0);
        let marked = p.alloc_random(&mut b).expect("frame");
        p.free_random(marked, &mut b).expect("free");
        for _ in 0..200 {
            let f = p
                .alloc_random_excluding(&mut b, Some(marked))
                .expect("frame");
            assert_ne!(f, marked, "excluded frame handed back");
            p.free_random(f, &mut b).expect("free");
        }
    }

    #[test]
    fn exclusion_with_single_frame_reports_exhaustion() {
        // One frame total, and it is the excluded one: the pool must
        // report exhaustion rather than recycle the templated frame.
        let mut b = BuddyAllocator::new(FrameId(0), 1);
        let mut p = RandomPool::new(1, &mut b, 13);
        let only = p.alloc_random(&mut b).expect("frame");
        p.free_random(only, &mut b).expect("free");
        assert_eq!(
            p.alloc_random_excluding(&mut b, Some(only)),
            Err(MmError::PoolExhausted)
        );
        // The frame is still accounted for (not leaked).
        assert_eq!(p.resident() + b.free_frames(), 1);
    }
}
