//! Address and frame-number types.
//!
//! The simulation uses x86-64 conventions: 4 KiB base pages, 2 MiB huge
//! pages, 64-byte cache lines. Strong types keep physical and virtual
//! addresses from being mixed up — a classic source of bugs in MM code.

/// Size of a base page in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// Size of a huge page in bytes (2 MiB).
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;

/// Number of base frames per huge page (512 on x86-64).
pub const HUGE_PAGE_FRAMES: u64 = HUGE_PAGE_SIZE / PAGE_SIZE;

/// Size of a cache line in bytes.
pub const CACHE_LINE: u64 = 64;

/// Identifier of a physical frame (the physical page frame number, PFN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

impl FrameId {
    /// Physical address of the first byte of this frame.
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE)
    }

    /// Physical address `offset` bytes into this frame.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= PAGE_SIZE`.
    pub fn addr(self, offset: u64) -> PhysAddr {
        assert!(offset < PAGE_SIZE, "offset {offset} outside frame");
        PhysAddr(self.0 * PAGE_SIZE + offset)
    }

    /// Whether this frame is aligned to a huge-page boundary.
    pub fn is_huge_aligned(self) -> bool {
        self.0.is_multiple_of(HUGE_PAGE_FRAMES)
    }
}

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The frame containing this address.
    pub fn frame(self) -> FrameId {
        FrameId(self.0 / PAGE_SIZE)
    }

    /// Byte offset within the containing frame.
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Index of the cache line containing this address.
    pub fn line(self) -> u64 {
        self.0 / CACHE_LINE
    }
}

/// A virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The virtual page number containing this address.
    pub fn page(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Byte offset within the containing page.
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// First address of the containing page.
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// First address of the containing 2 MiB huge page.
    pub fn huge_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(HUGE_PAGE_SIZE - 1))
    }

    /// Whether this address is 2 MiB aligned.
    pub fn is_huge_aligned(self) -> bool {
        self.0.is_multiple_of(HUGE_PAGE_SIZE)
    }

    /// The four page-table indices (PML4, PDPT, PD, PT) of this address.
    pub fn pt_indices(self) -> [usize; 4] {
        let p = self.0;
        [
            ((p >> 39) & 0x1ff) as usize,
            ((p >> 30) & 0x1ff) as usize,
            ((p >> 21) & 0x1ff) as usize,
            ((p >> 12) & 0x1ff) as usize,
        ]
    }
}

impl std::ops::Add<u64> for VirtAddr {
    type Output = VirtAddr;
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl std::ops::Add<u64> for PhysAddr {
    type Output = PhysAddr;
    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 + rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_base_and_back() {
        let f = FrameId(7);
        assert_eq!(f.base(), PhysAddr(7 * 4096));
        assert_eq!(f.base().frame(), f);
        assert_eq!(f.addr(100).page_offset(), 100);
    }

    #[test]
    fn huge_alignment() {
        assert!(FrameId(0).is_huge_aligned());
        assert!(FrameId(512).is_huge_aligned());
        assert!(!FrameId(511).is_huge_aligned());
        assert!(VirtAddr(HUGE_PAGE_SIZE * 3).is_huge_aligned());
        assert!(!VirtAddr(HUGE_PAGE_SIZE * 3 + PAGE_SIZE).is_huge_aligned());
    }

    #[test]
    fn pt_indices_decompose_address() {
        // VA with PML4=1, PDPT=2, PD=3, PT=4.
        let va = VirtAddr((1u64 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 0x123);
        assert_eq!(va.pt_indices(), [1, 2, 3, 4]);
        assert_eq!(va.page_offset(), 0x123);
    }

    #[test]
    fn page_and_huge_base() {
        let va = VirtAddr(HUGE_PAGE_SIZE + 5 * PAGE_SIZE + 17);
        assert_eq!(va.page_base().0, HUGE_PAGE_SIZE + 5 * PAGE_SIZE);
        assert_eq!(va.huge_base().0, HUGE_PAGE_SIZE);
    }

    #[test]
    fn cache_line_index() {
        assert_eq!(PhysAddr(0).line(), 0);
        assert_eq!(PhysAddr(63).line(), 0);
        assert_eq!(PhysAddr(64).line(), 1);
        assert_eq!(PhysAddr(4096).line(), 64);
    }

    #[test]
    #[should_panic(expected = "outside frame")]
    fn frame_addr_rejects_large_offset() {
        let _ = FrameId(0).addr(PAGE_SIZE);
    }
}
