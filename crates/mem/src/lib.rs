//! Simulated physical memory substrate for the VUsion reproduction.
//!
//! The VUsion paper (SOSP'17) is a patch to the Linux memory-management
//! subsystem; its attacks and defenses are stated in terms of *physical
//! frames* and how they are allocated, shared, and reused. This crate builds
//! that substrate from scratch:
//!
//! * [`PhysMemory`] — a flat array of lazily materialized 4 KiB frames with
//!   per-frame metadata (reference counts, page types, flip templates).
//! * [`BuddyAllocator`] — a Linux-style binary buddy allocator with LIFO
//!   free lists. Its *predictable reuse* is exactly what the paper's
//!   Flip Feng Shui attack exploits and what Randomized Allocation defeats.
//! * [`LinearAllocator`] — Windows' `MiAllocatePagesForMdl`-style allocator
//!   that hands out mostly-contiguous frames from the end of physical
//!   memory; the substrate of the new reuse-based Flip Feng Shui attack (§5.2).
//! * [`RandomPool`] — VUsion's Randomized Allocation (`RA`) pool: 128 MiB of
//!   frames (2¹⁵ of them) out of which every merge/fake-merge backing frame
//!   is drawn uniformly at random (§7.1).
//! * [`DeferredFreeQueue`] — the deferred-free mechanism of Fake Merging
//!   decision (ii): frames freed during copy-on-access are queued and
//!   released in the background so the fault path takes the same time for
//!   merged and fake-merged pages.

pub mod addr;
pub mod buddy;
pub mod deferred;
pub mod error;
pub mod fault;
pub mod frame;
pub mod linear;
pub mod phys;
pub mod random_pool;

pub use addr::{FrameId, PhysAddr, VirtAddr, HUGE_PAGE_FRAMES, HUGE_PAGE_SIZE, PAGE_SIZE};
pub use buddy::{BuddyAllocator, BuddyStats};
pub use deferred::{DeferredFreeQueue, DeferredOp};
pub use error::MmError;
pub use fault::{
    CrashInjector, CrashPlan, CrashSite, FaultInjector, FaultPlan, FaultPlanError, InjectionStats,
};
pub use frame::{FrameInfo, FrameState, PageType};
pub use linear::LinearAllocator;
pub use phys::{content_hash, FrameInfoMut, FrameReadView, PhysMemory};
pub use random_pool::RandomPool;

/// A frame allocator: the interface fusion engines use to obtain backing
/// frames. Implemented by [`BuddyAllocator`], [`LinearAllocator`] and
/// [`RandomPool`].
///
/// All operations are fallible: exhaustion surfaces as
/// [`MmError::OutOfFrames`] and misuse (double free, foreign frame) as the
/// corresponding [`MmError`] variant, never as a panic — failure paths are
/// load-bearing for the Same Behavior argument and are exercised directly
/// by the chaos suite.
pub trait FrameAllocator {
    /// Allocates one 4 KiB frame.
    fn alloc(&mut self) -> Result<FrameId, MmError>;
    /// Returns one 4 KiB frame to the allocator.
    fn free(&mut self, frame: FrameId) -> Result<(), MmError>;
    /// Number of frames currently available without stealing/refilling.
    fn free_frames(&self) -> usize;
}
