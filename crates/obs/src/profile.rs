//! Span roll-up: the per-engine, per-phase cycle-attribution report.
//!
//! This is the "where did the share/unshare cost go" breakdown behind the
//! paper's Table 5: each closed span adds to a `(category, phase)` bucket,
//! and the report renders, per category (engine or subsystem), how many
//! times each phase ran and how many simulated cycles it consumed —
//! self (its own work) vs. total (including nested spans).

use std::collections::BTreeMap;

use crate::json::quote;
use crate::trace::SpanKind;

/// Accumulated statistics for one `(category, phase)` bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Spans closed.
    pub count: u64,
    /// Cycles charged while a span of this bucket was innermost.
    pub cycles_self: u64,
    /// Self cycles plus every nested child's total.
    pub cycles_total: u64,
    /// Simulated wall time spent inside spans of this bucket (end − begin
    /// timestamps; scanner-side spans show ~0 here because scan work does
    /// not advance the workload clock).
    pub sim_ns: u64,
    /// Largest single span's total cycles.
    pub max_cycles: u64,
}

/// Per-category, per-phase cycle attribution (a sorted map, so every
/// iteration — text, JSON — is deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    buckets: BTreeMap<(&'static str, SpanKind), PhaseStat>,
}

impl Profile {
    /// Adds one closed span.
    pub fn record(
        &mut self,
        cat: &'static str,
        kind: SpanKind,
        cycles_self: u64,
        cycles_total: u64,
        sim_ns: u64,
    ) {
        let stat = self.buckets.entry((cat, kind)).or_default();
        stat.count += 1;
        stat.cycles_self += cycles_self;
        stat.cycles_total += cycles_total;
        stat.sim_ns += sim_ns;
        stat.max_cycles = stat.max_cycles.max(cycles_total);
    }

    /// The bucket for `(cat, kind)`, if any span closed there.
    pub fn get(&self, cat: &str, kind: SpanKind) -> Option<&PhaseStat> {
        // BTreeMap keys are (&'static str, SpanKind); look up by value.
        self.buckets
            .iter()
            .find(|((c, k), _)| *c == cat && *k == kind)
            .map(|(_, v)| v)
    }

    /// Whether no span ever closed.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Categories present, sorted.
    pub fn categories(&self) -> Vec<&'static str> {
        let mut cats: Vec<&'static str> = self.buckets.keys().map(|(c, _)| *c).collect();
        cats.dedup();
        cats
    }

    /// All buckets, sorted by `(category, phase)`.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, SpanKind, &PhaseStat)> {
        self.buckets.iter().map(|(&(c, k), v)| (c, k, v))
    }

    /// Renders the attribution table, one section per category:
    ///
    /// ```text
    /// -- cycle attribution: vusion --
    /// phase             count     self-cyc    total-cyc   self%
    /// fault               120      150000       950000    15.8
    /// ```
    ///
    /// `self%` is the bucket's share of the category's summed self cycles.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for cat in self.categories() {
            let cat_self: u64 = self
                .iter()
                .filter(|(c, _, _)| *c == cat)
                .map(|(_, _, s)| s.cycles_self)
                .sum();
            out.push_str(&format!("-- cycle attribution: {cat} --\n"));
            out.push_str(&format!(
                "{:<16} {:>8} {:>12} {:>12} {:>7}\n",
                "phase", "count", "self-cyc", "total-cyc", "self%"
            ));
            for (c, kind, stat) in self.iter() {
                if c != cat {
                    continue;
                }
                let pct = if cat_self == 0 {
                    0.0
                } else {
                    stat.cycles_self as f64 / cat_self as f64 * 100.0
                };
                out.push_str(&format!(
                    "{:<16} {:>8} {:>12} {:>12} {:>7.1}\n",
                    kind.name(),
                    stat.count,
                    stat.cycles_self,
                    stat.cycles_total,
                    pct
                ));
            }
        }
        out
    }

    /// Renders the profile as JSON:
    /// `{"cat":{"phase":{"count":..,"cycles_self":..,...},...},...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first_cat = true;
        for cat in self.categories() {
            if !first_cat {
                out.push(',');
            }
            first_cat = false;
            out.push_str(&format!("{}:{{", quote(cat)));
            let mut first = true;
            for (c, kind, s) in self.iter() {
                if c != cat {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{}:{{\"count\":{},\"cycles_self\":{},\"cycles_total\":{},\
                     \"sim_ns\":{},\"max_cycles\":{}}}",
                    quote(kind.name()),
                    s.count,
                    s.cycles_self,
                    s.cycles_total,
                    s.sim_ns,
                    s.max_cycles
                ));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_tracks_max() {
        let mut p = Profile::default();
        p.record("ksm", SpanKind::Merge, 10, 30, 5);
        p.record("ksm", SpanKind::Merge, 20, 20, 5);
        let s = p.get("ksm", SpanKind::Merge).expect("bucket");
        assert_eq!(s.count, 2);
        assert_eq!(s.cycles_self, 30);
        assert_eq!(s.cycles_total, 50);
        assert_eq!(s.max_cycles, 30);
    }

    #[test]
    fn text_report_sections_per_category() {
        let mut p = Profile::default();
        p.record("vusion", SpanKind::FaultHandling, 100, 100, 1);
        p.record("kernel", SpanKind::DemandPaging, 50, 50, 1);
        let txt = p.text();
        assert!(txt.contains("cycle attribution: kernel"), "{txt}");
        assert!(txt.contains("cycle attribution: vusion"), "{txt}");
        assert!(txt.contains("demand_paging"), "{txt}");
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut p = Profile::default();
        p.record("b", SpanKind::Merge, 1, 1, 0);
        p.record("a", SpanKind::Unmerge, 2, 2, 0);
        let j = p.to_json();
        assert!(
            j.find("\"a\"").expect("a") < j.find("\"b\"").expect("b"),
            "{j}"
        );
        assert_eq!(j, p.clone().to_json());
    }
}
