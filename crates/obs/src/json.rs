//! Minimal hand-rolled JSON emission helpers (the workspace is
//! dependency-free by design; every JSON artifact is rendered by hand).
//!
//! Formatting is deterministic: strings escape the same way every time
//! and floats render through [`fmt_f64`], which uses Rust's shortest
//! round-trip representation — a pure function of the bit pattern.

/// Escapes `s` for inclusion in a JSON string literal (quotes included).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number: finite values use Rust's shortest
/// round-trip form (with a forced `.0` for integral values so the token
/// stays a float); non-finite values become `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Timestamp in microseconds with nanosecond precision (`ns / 1000` with
/// three decimals), rendered exactly — the Chrome `trace_event` `ts`
/// field wants microseconds, and integer arithmetic keeps it
/// byte-deterministic.
pub fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn f64_round_trip_and_integral() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn microseconds_keep_ns_precision() {
        assert_eq!(fmt_us(1_234_567), "1234.567");
        assert_eq!(fmt_us(999), "0.999");
    }
}
