//! The deterministic ring-buffer event tracer.
//!
//! Spans nest (a CoA copy inside a fault, a merge inside a scan pass) and
//! attribute simulated cycles two ways:
//!
//! * **self** — cycles charged while the span was the innermost open one;
//! * **total** — self plus the totals of every nested child.
//!
//! Cycles reach the tracer from two sources: the machine's `charge` (the
//! fault-side cost model, jitter included) and explicit scanner-side cost
//! reports (`scan pass` work runs on its own core and never advances the
//! workload clock, so engines report its modeled cost to the tracer
//! directly). Both are observability-only: with tracing disabled neither
//! touches an RNG nor the clock, so enabling tracing never changes
//! simulated behavior.

use vusion_snapshot::{fnv1a64, Writer};

use crate::json::{fmt_us, quote};
use crate::profile::Profile;

/// Phases of work a span can describe. Ordering is the report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One fault dispatch through policy and kernel handlers.
    FaultHandling,
    /// One scanner wakeup (KSM chunk, WPF full pass, VUsion chunk).
    ScanPass,
    /// A real merge (two frames become one).
    Merge,
    /// A fake merge (VUsion: page moved to a random frame, trapped).
    FakeMerge,
    /// An unmerge performed by an engine (fault- or scan-side).
    Unmerge,
    /// A copy-on-write copy in the kernel default handler.
    CowCopy,
    /// A copy-on-access copy (VUsion's unified share⊕fetch path).
    CoaCopy,
    /// A per-round rerandomization pass over fused frames.
    Rerandomize,
    /// Demand paging (zero fill, huge fill, page-cache fill).
    DemandPaging,
    /// Breaking a transparent huge page into base pages.
    ThpBreak,
    /// A khugepaged collapse scan.
    ThpCollapse,
    /// Draining the deferred-free queue under memory pressure.
    DeferredDrain,
    /// One reclaim-ladder rung executed by the pressure governor
    /// (deferred-queue drain, cache shrink, or zero-unmerge deferral).
    PressureRelief,
}

impl SpanKind {
    /// Every kind, in report order.
    pub const ALL: [SpanKind; 13] = [
        SpanKind::FaultHandling,
        SpanKind::ScanPass,
        SpanKind::Merge,
        SpanKind::FakeMerge,
        SpanKind::Unmerge,
        SpanKind::CowCopy,
        SpanKind::CoaCopy,
        SpanKind::Rerandomize,
        SpanKind::DemandPaging,
        SpanKind::ThpBreak,
        SpanKind::ThpCollapse,
        SpanKind::DeferredDrain,
        SpanKind::PressureRelief,
    ];

    /// Stable display name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::FaultHandling => "fault",
            SpanKind::ScanPass => "scan_pass",
            SpanKind::Merge => "merge",
            SpanKind::FakeMerge => "fake_merge",
            SpanKind::Unmerge => "unmerge",
            SpanKind::CowCopy => "cow_copy",
            SpanKind::CoaCopy => "coa_copy",
            SpanKind::Rerandomize => "rerandomize",
            SpanKind::DemandPaging => "demand_paging",
            SpanKind::ThpBreak => "thp_break",
            SpanKind::ThpCollapse => "thp_collapse",
            SpanKind::DeferredDrain => "deferred_drain",
            SpanKind::PressureRelief => "pressure_relief",
        }
    }

    fn code(self) -> u8 {
        match self {
            SpanKind::FaultHandling => 0,
            SpanKind::ScanPass => 1,
            SpanKind::Merge => 2,
            SpanKind::FakeMerge => 3,
            SpanKind::Unmerge => 4,
            SpanKind::CowCopy => 5,
            SpanKind::CoaCopy => 6,
            SpanKind::Rerandomize => 7,
            SpanKind::DemandPaging => 8,
            SpanKind::ThpBreak => 9,
            SpanKind::ThpCollapse => 10,
            SpanKind::DeferredDrain => 11,
            SpanKind::PressureRelief => 12,
        }
    }
}

/// Point events without duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstantKind {
    /// One TLB entry shot down (`invlpg` after a PTE rewrite).
    TlbShootdown,
    /// A full TLB flush (CR3 reload, THP break).
    TlbFlush,
    /// An LLC line flushed (`clflush`).
    LlcFlush,
    /// A scanner skip-and-retry under resource failure.
    ScanRetry,
    /// An allocation failure absorbed gracefully.
    Oom,
    /// A Rowhammer bit flip applied to memory.
    BitFlip,
    /// A crash-injection point fired.
    CrashPoint,
    /// The pressure governor escalated a band (`arg` = new band code).
    PressureEscalation,
    /// The pressure governor de-escalated a band (`arg` = new band code).
    PressureDeEscalation,
}

impl InstantKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            InstantKind::TlbShootdown => "tlb_shootdown",
            InstantKind::TlbFlush => "tlb_flush",
            InstantKind::LlcFlush => "llc_flush",
            InstantKind::ScanRetry => "scan_retry",
            InstantKind::Oom => "oom",
            InstantKind::BitFlip => "bit_flip",
            InstantKind::CrashPoint => "crash_point",
            InstantKind::PressureEscalation => "pressure_escalation",
            InstantKind::PressureDeEscalation => "pressure_de_escalation",
        }
    }

    fn code(self) -> u8 {
        match self {
            InstantKind::TlbShootdown => 0,
            InstantKind::TlbFlush => 1,
            InstantKind::LlcFlush => 2,
            InstantKind::ScanRetry => 3,
            InstantKind::Oom => 4,
            InstantKind::BitFlip => 5,
            InstantKind::CrashPoint => 6,
            InstantKind::PressureEscalation => 7,
            InstantKind::PressureDeEscalation => 8,
        }
    }
}

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened.
    Begin(SpanKind),
    /// A span closed; the event's `arg` carries its total cycles.
    End(SpanKind),
    /// A point event; `arg` is kind-specific (e.g. the crash site).
    Instant(InstantKind),
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// Global order (breaks ties between events at the same timestamp —
    /// scanner work does not advance the clock).
    pub seq: u64,
    /// Begin / end / instant.
    pub phase: Phase,
    /// Category: the engine or subsystem that emitted it
    /// ("ksm", "wpf", "vusion", "kernel", "mmu", "chaos", ...).
    pub cat: &'static str,
    /// Free argument (pages scanned, total cycles, crash site, ...).
    pub arg: u64,
}

struct OpenSpan {
    kind: SpanKind,
    cat: &'static str,
    begin_ns: u64,
    cycles_self: u64,
    cycles_children: u64,
}

/// The ring-buffer tracer. See the module docs for the cycle model.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    ring: Vec<TraceEvent>,
    head: usize,
    seq: u64,
    dropped: u64,
    stack: Vec<OpenSpan>,
    profile: Profile,
}

impl std::fmt::Debug for OpenSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OpenSpan({}/{})", self.cat, self.kind.name())
    }
}

/// Default ring capacity: enough for the tail of any chaos run without
/// unbounded growth (events are 48 bytes; 64 Ki events ≈ 3 MiB).
pub const DEFAULT_CAPACITY: usize = 65_536;

impl Tracer {
    /// A disabled tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether recording is on.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables recording with a ring of `capacity` events (allocated here,
    /// once — the hot path never allocates).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace ring capacity must be positive");
        self.enabled = true;
        if self.capacity != capacity {
            self.capacity = capacity;
            self.ring = Vec::with_capacity(capacity);
            self.head = 0;
        }
    }

    /// Disables recording; buffered events and the profile remain readable.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Forgets everything recorded: events, open spans, profile, dropped
    /// count, and the sequence counter (so a cleared tracer restarts
    /// byte-identically).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.seq = 0;
        self.dropped = 0;
        self.stack.clear();
        self.profile = Profile::default();
    }

    /// Events overwritten after the ring filled (the trace keeps the tail).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, phase: Phase, cat: &'static str, t_ns: u64, arg: u64) {
        let ev = TraceEvent {
            t_ns,
            seq: self.seq,
            phase,
            cat,
            arg,
        };
        self.seq += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Opens a span. No-op when disabled.
    pub fn begin(&mut self, cat: &'static str, kind: SpanKind, now_ns: u64) {
        if !self.enabled {
            return;
        }
        self.push(Phase::Begin(kind), cat, now_ns, 0);
        self.stack.push(OpenSpan {
            kind,
            cat,
            begin_ns: now_ns,
            cycles_self: 0,
            cycles_children: 0,
        });
    }

    /// Closes the innermost span, which must be of `kind` (enforced in
    /// debug builds; release builds close the innermost span regardless,
    /// so an engine bug degrades the trace rather than the run).
    pub fn end(&mut self, kind: SpanKind, now_ns: u64) {
        if !self.enabled {
            return;
        }
        let Some(span) = self.stack.pop() else {
            debug_assert!(false, "end({}) with no open span", kind.name());
            return;
        };
        debug_assert_eq!(
            span.kind,
            kind,
            "span nesting mismatch: ended {} inside {}",
            kind.name(),
            span.kind.name()
        );
        let total = span.cycles_self + span.cycles_children;
        if let Some(parent) = self.stack.last_mut() {
            parent.cycles_children += total;
        }
        self.profile.record(
            span.cat,
            span.kind,
            span.cycles_self,
            total,
            now_ns.saturating_sub(span.begin_ns),
        );
        self.push(Phase::End(span.kind), span.cat, now_ns, total);
    }

    /// Records a point event. No-op when disabled.
    pub fn instant(&mut self, cat: &'static str, kind: InstantKind, now_ns: u64, arg: u64) {
        if !self.enabled {
            return;
        }
        self.push(Phase::Instant(kind), cat, now_ns, arg);
    }

    /// Attributes `ns` simulated cycles to the innermost open span.
    /// No-op when disabled or outside any span.
    #[inline]
    pub fn on_cycles(&mut self, ns: u64) {
        if !self.enabled {
            return;
        }
        if let Some(span) = self.stack.last_mut() {
            span.cycles_self += ns;
        }
    }

    /// Buffered events in chronological order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// The rolled-up per-category, per-phase cycle attribution.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Packs the buffered events into a canonical byte string (little
    /// endian, chronological). Two runs with the same seed and workload
    /// produce identical bytes — the determinism tests compare these.
    pub fn export_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let events = self.events();
        w.usize(events.len());
        for ev in events {
            w.u64(ev.t_ns);
            w.u64(ev.seq);
            let (tag, code) = match ev.phase {
                Phase::Begin(k) => (0u8, k.code()),
                Phase::End(k) => (1u8, k.code()),
                Phase::Instant(k) => (2u8, k.code()),
            };
            w.u8(tag);
            w.u8(code);
            w.str(ev.cat);
            w.u64(ev.arg);
        }
        w.into_bytes()
    }

    /// FNV-1a digest of [`Self::export_bytes`] — a cheap equality token
    /// for asserting trace determinism.
    pub fn digest(&self) -> u64 {
        fnv1a64(&self.export_bytes())
    }

    /// Renders the buffer as Chrome `trace_event` JSON (load in
    /// `chrome://tracing` or <https://ui.perfetto.dev>). `ts` is in
    /// microseconds with nanosecond precision; all events share pid/tid 1
    /// (the simulation is single-threaded — concurrency is simulated, not
    /// real).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for ev in self.events() {
            if !first {
                out.push(',');
            }
            first = false;
            let (ph, name, extra) = match ev.phase {
                Phase::Begin(k) => ("B", k.name(), String::new()),
                Phase::End(k) => (
                    "E",
                    k.name(),
                    format!(",\"args\":{{\"cycles\":{}}}", ev.arg),
                ),
                Phase::Instant(k) => (
                    "i",
                    k.name(),
                    format!(",\"s\":\"t\",\"args\":{{\"arg\":{}}}", ev.arg),
                ),
            };
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":1{}}}",
                quote(name),
                quote(ev.cat),
                ph,
                fmt_us(ev.t_ns),
                extra
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::new();
        t.begin("x", SpanKind::Merge, 1);
        t.on_cycles(100);
        t.end(SpanKind::Merge, 2);
        t.instant("x", InstantKind::Oom, 3, 0);
        assert!(t.events().is_empty());
        assert_eq!(t.digest(), {
            let t2 = Tracer::new();
            t2.digest()
        });
    }

    #[test]
    fn self_and_total_cycles_attribute_through_nesting() {
        let mut t = Tracer::new();
        t.enable(64);
        t.begin("eng", SpanKind::FaultHandling, 0);
        t.on_cycles(100);
        t.begin("eng", SpanKind::CoaCopy, 10);
        t.on_cycles(900);
        t.end(SpanKind::CoaCopy, 50);
        t.on_cycles(25);
        t.end(SpanKind::FaultHandling, 60);
        let p = t.profile();
        let fault = p.get("eng", SpanKind::FaultHandling).expect("fault stat");
        assert_eq!(fault.cycles_self, 125);
        assert_eq!(fault.cycles_total, 1025);
        assert_eq!(fault.sim_ns, 60);
        let copy = p.get("eng", SpanKind::CoaCopy).expect("copy stat");
        assert_eq!(copy.cycles_self, 900);
        assert_eq!(copy.cycles_total, 900);
        // The end event carries the span's total cycles.
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].arg, 1025);
    }

    #[test]
    fn ring_keeps_the_tail() {
        let mut t = Tracer::new();
        t.enable(4);
        for i in 0..10 {
            t.instant("x", InstantKind::Oom, i, i);
        }
        let ev = t.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].t_ns, 6, "oldest surviving event");
        assert_eq!(ev[3].t_ns, 9, "newest event");
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn identical_sequences_digest_identically() {
        let run = || {
            let mut t = Tracer::new();
            t.enable(16);
            t.begin("a", SpanKind::ScanPass, 5);
            t.instant("a", InstantKind::ScanRetry, 5, 1);
            t.end(SpanKind::ScanPass, 5);
            t.digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_resets_sequence_for_byte_identity() {
        let mut t = Tracer::new();
        t.enable(16);
        t.instant("a", InstantKind::Oom, 1, 0);
        let first = t.export_bytes();
        t.clear();
        t.instant("a", InstantKind::Oom, 1, 0);
        assert_eq!(first, t.export_bytes());
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Tracer::new();
        t.enable(16);
        t.begin("ksm", SpanKind::Merge, 1_500);
        t.end(SpanKind::Merge, 2_500);
        let json = t.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"args\":{\"cycles\":0}"), "{json}");
    }
}
