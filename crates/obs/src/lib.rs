//! Observability: deterministic tracing, metrics, and cycle attribution.
//!
//! The paper's whole evaluation (§9, Tables 2–6) is an attribution
//! exercise — *where* did the share/unshare cost go? This crate provides
//! the three layers that answer it for the simulated machine:
//!
//! * [`Tracer`] — a ring-buffer event tracer with nestable spans
//!   (fault handling, scan passes, merges, unmerges, CoW/CoA copies,
//!   rerandomization) and instant events (TLB shootdowns, LLC flushes,
//!   OOMs). Events are timestamped by the **simulated cycle clock**,
//!   never wall clock, so a fixed seed yields a byte-identical trace.
//!   Export as Chrome `trace_event` JSON (`chrome://tracing`, Perfetto).
//! * [`MetricsRegistry`] / [`MetricsSnapshot`] — named counters, gauges
//!   and latency histograms (built on `vusion-stats` percentiles),
//!   snapshot-able to JSON and diffable between two points in a run.
//! * [`Profile`] — spans rolled up into a per-engine, per-phase
//!   cycle-attribution report (the Table 5 breakdown).
//! * [`Coverage`] — sorted hit counters for test-campaign coverage
//!   points (crash sites fired, span kinds exercised, fault kinds
//!   injected), merged deterministically and rendered as canonical JSON.
//!
//! ## Zero cost when disabled
//!
//! All recording funnels through [`Obs`], whose `enabled` flag is checked
//! before anything else happens. When disabled (the default), every hook
//! is a single predictable branch: no allocation, no clock reads, no map
//! lookups. Enabling allocates the ring buffer once, up front; the hot
//! path then writes into pre-allocated storage (the ring overwrites its
//! oldest entry when full, so the buffer always holds the trace *tail*).
//!
//! ## Determinism
//!
//! Timestamps come from the simulated clock, ordering from a per-tracer
//! sequence number, and every serialized form (event bytes, Chrome JSON,
//! metrics JSON) iterates sorted containers — two runs with the same seed
//! and workload produce byte-identical artifacts, which tests assert.

pub mod coverage;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod surface;
pub mod trace;

pub use coverage::Coverage;
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use profile::{PhaseStat, Profile};
pub use surface::{
    bucket_floor_ns, latency_bucket, DramOutcome, FaultKind, PageClass, SideChannelSurface,
    SurfaceExtras, SurfaceTransition, LATENCY_BUCKETS,
};
pub use trace::{InstantKind, Phase, SpanKind, TraceEvent, Tracer, DEFAULT_CAPACITY};

/// The observability hub a machine owns: one tracer, one metrics
/// registry, and one side-channel surface recorder. The tracer and
/// metrics share one enable flag; the surface has its own (a traced run
/// is not automatically a surfaced run — artifacts stay unchanged unless
/// explicitly asked for).
#[derive(Debug, Default)]
pub struct Obs {
    tracer: Tracer,
    metrics: MetricsRegistry,
    surface: SideChannelSurface,
}

impl Obs {
    /// A disabled hub (the default): every hook is a single branch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether recording is on. Inlined so disabled-path call sites reduce
    /// to one load + branch.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Turns recording on, pre-allocating a ring buffer of `capacity`
    /// events. Idempotent; re-enabling with a different capacity resizes
    /// and clears.
    pub fn enable(&mut self, capacity: usize) {
        self.tracer.enable(capacity);
    }

    /// Turns recording off. Recorded events, profile and metrics are kept
    /// (readable until [`Self::clear`]).
    pub fn disable(&mut self) {
        self.tracer.disable();
    }

    /// Drops all recorded events, profile stats, metrics and surface
    /// counters and resets the sequence counter — the trace restarts from
    /// a clean slate (used right after taking a snapshot, so the
    /// artifacts describe exactly the delta since it).
    pub fn clear(&mut self) {
        self.tracer.clear();
        self.metrics.clear();
        self.surface.clear();
    }

    /// Whether the side-channel surface recorder is on. Inlined: the
    /// disabled path is one load + branch.
    #[inline(always)]
    pub fn surface_enabled(&self) -> bool {
        self.surface.enabled()
    }

    /// Turns the side-channel surface recorder on, from a clean slate.
    pub fn enable_surface(&mut self) {
        self.surface.enable();
    }

    /// Turns the side-channel surface recorder off.
    pub fn disable_surface(&mut self) {
        self.surface.disable();
    }

    /// The surface recorder (read-only).
    pub fn surface(&self) -> &SideChannelSurface {
        &self.surface
    }

    /// The surface recorder, mutably.
    pub fn surface_mut(&mut self) -> &mut SideChannelSurface {
        &mut self.surface
    }

    /// The tracer (read-only).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The tracer, mutably.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The metrics registry (read-only).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The metrics registry, mutably.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_clear_resets() {
        let mut obs = Obs::new();
        assert!(!obs.enabled());
        obs.enable(16);
        assert!(obs.enabled());
        obs.tracer_mut().begin("t", SpanKind::Merge, 10);
        obs.tracer_mut().end(SpanKind::Merge, 20);
        obs.metrics_mut().inc("x", 1);
        obs.clear();
        assert!(obs.tracer().events().is_empty());
        assert_eq!(obs.metrics().snapshot().counters.len(), 0);
    }
}
