//! Coverage counters: what a test campaign actually exercised.
//!
//! A [`Coverage`] is a sorted multiset of dotted keys (`site.mid_merge.fired`,
//! `span.scan_pass`, `fault.alloc.injected`, ...) counting how often each
//! coverage point was hit. Campaign workers each build one per run;
//! the orchestrator merges them in a deterministic order and renders one
//! canonical JSON document, so two campaigns over the same work list are
//! byte-identical regardless of thread count — the same diffability
//! contract as [`crate::MetricsSnapshot`].
//!
//! The inverse query matters as much as the counts: [`Coverage::missing`]
//! names the expected coverage points that never fired, which is how a
//! campaign report says what it did *not* test.

use std::collections::BTreeMap;

use crate::json::quote;

/// A sorted map of coverage-point keys to hit counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    counters: BTreeMap<String, u64>,
}

impl Coverage {
    /// An empty coverage map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one hit of `key`.
    pub fn mark(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Records `n` hits of `key`. `n == 0` still registers the key (with
    /// count zero), which lets a run declare a point as *known but unhit*
    /// so it shows up in the report rather than silently not existing.
    pub fn add(&mut self, key: &str, n: u64) {
        match self.counters.get_mut(key) {
            Some(v) => *v += n,
            None => {
                self.counters.insert(key.to_string(), n);
            }
        }
    }

    /// The hit count for `key` (0 when never recorded).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Whether `key` was hit at least once.
    pub fn covered(&self, key: &str) -> bool {
        self.get(key) > 0
    }

    /// Folds `other` into `self` (key-wise addition). Merging is
    /// commutative and associative, but campaign orchestrators still merge
    /// in work-item order so intermediate logs are stable too.
    pub fn merge(&mut self, other: &Coverage) {
        for (k, &v) in &other.counters {
            self.add(k, v);
        }
    }

    /// Number of distinct keys recorded.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterates `(key, count)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The subset of `expected` keys that never fired (count zero or
    /// absent), sorted and deduplicated — the campaign's blind spots.
    pub fn missing<I, S>(&self, expected: I) -> Vec<String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out: Vec<String> = expected
            .into_iter()
            .filter(|k| !self.covered(k.as_ref()))
            .map(|k| k.as_ref().to_string())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Renders the map as canonical JSON: one object, keys sorted,
    /// byte-identical for equal logical content.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&quote(k));
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_add_get() {
        let mut c = Coverage::new();
        c.mark("a");
        c.mark("a");
        c.add("b", 5);
        c.add("z", 0);
        assert_eq!(c.get("a"), 2);
        assert_eq!(c.get("b"), 5);
        assert_eq!(c.get("z"), 0);
        assert_eq!(c.get("absent"), 0);
        assert!(c.covered("a"));
        assert!(!c.covered("z"), "zero-count keys are declared, not covered");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn merge_adds_keywise() {
        let mut a = Coverage::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Coverage::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn merge_order_does_not_change_json() {
        let mut parts = Vec::new();
        for i in 0..4u64 {
            let mut c = Coverage::new();
            c.add("shared", i);
            c.add(&format!("only.{i}"), 1);
            parts.push(c);
        }
        let mut fwd = Coverage::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Coverage::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.to_json(), rev.to_json());
    }

    #[test]
    fn missing_lists_unhit_expected_keys() {
        let mut c = Coverage::new();
        c.mark("site.mid_scan.fired");
        c.add("site.mid_merge.fired", 0);
        let miss = c.missing([
            "site.mid_scan.fired",
            "site.mid_merge.fired",
            "site.mid_unmerge.fired",
        ]);
        assert_eq!(miss, vec!["site.mid_merge.fired", "site.mid_unmerge.fired"]);
    }

    #[test]
    fn json_is_sorted_and_escaped() {
        let mut c = Coverage::new();
        c.add("b", 2);
        c.add("a", 1);
        assert_eq!(c.to_json(), "{\"a\":1,\"b\":2}");
    }
}
