//! The side-channel surface recorder: what an attacker could observe.
//!
//! VUsion's security claim (paper §4) is an *observability* claim — after
//! Share-XOR-Randomize, fault latencies, LLC sets, DRAM row buffers, and
//! TLB contents no longer distinguish fused from unfused pages. This
//! module records exactly those observables, per page class, as plain
//! integer counters keyed by the simulated clock's latencies, so the
//! resulting artifact is a canonical, diffable JSON document:
//! byte-identical across runs, scan-thread counts, and snapshot
//! restore+replay (asserted by `tests/trace_determinism.rs`).
//!
//! The recorder lives inside [`crate::Obs`] behind its own enable flag:
//! when off (the default) every hook is a single branch, and no
//! `surface.*` key reaches any artifact (the bench harness asserts this).
//!
//! Recording is strictly read-only with respect to the simulation: hooks
//! consume already-computed outcomes (a cache hit, an evicted line, a
//! fault latency) and touch no clock, RNG, or memo that feeds behavior —
//! enabling the surface never changes what the machine does.

use std::collections::BTreeMap;

use crate::json::quote;

/// Number of log2 latency buckets: bucket `b` counts samples in
/// `[2^b, 2^(b+1))` ns (bucket 0 also takes 0 ns). 24 buckets cover
/// 1 ns .. ~16 ms, far beyond any modeled fault cost.
pub const LATENCY_BUCKETS: usize = 24;

/// The page-class taxonomy the surface attributes events to
/// (DESIGN.md §15). Ground truth comes from the simulator itself —
/// refcounts and PTE trap bits — not from the observable, so the
/// recorded profiles answer "what does probing a page of class X look
/// like", which is precisely the attacker's inference target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PageClass {
    /// Genuinely deduplicated: the frame is mapped by more than one PTE
    /// (refcount > 1), whatever the engine calls it.
    Fused,
    /// A private page: one mapping, no trap bits.
    Unshared,
    /// All-zero content with a single mapping: a demand-zero fill event,
    /// or a standing private page whose content is all zeroes (the pages
    /// KSM's zero-page special case and WPF's zero dedup act on).
    Zero,
    /// VUsion's fake-merged state: trapped PTE over a frame with
    /// refcount 1 — marked shared for Same Behavior, but not
    /// deduplicated. Indistinguishability from [`PageClass::Fused`] is
    /// the defense claim under test.
    Trapped,
}

impl PageClass {
    /// Every class, in dense-index order.
    pub const ALL: [PageClass; 4] = [
        PageClass::Fused,
        PageClass::Unshared,
        PageClass::Zero,
        PageClass::Trapped,
    ];

    /// Dense array index.
    pub fn index(self) -> usize {
        match self {
            PageClass::Fused => 0,
            PageClass::Unshared => 1,
            PageClass::Zero => 2,
            PageClass::Trapped => 3,
        }
    }

    /// Stable snake_case name used in JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            PageClass::Fused => "fused",
            PageClass::Unshared => "unshared",
            PageClass::Zero => "zero",
            PageClass::Trapped => "trapped",
        }
    }
}

/// The fault kinds the surface splits latency histograms by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Demand fault on an unmapped page (zero fill, file read-in, ...).
    Minor,
    /// Write to a write-protected page: the CoW break the paper's §2
    /// attack times.
    CowBreak,
    /// VUsion's trap-on-access (reserved-bit) fault.
    Trap,
}

impl FaultKind {
    /// Every kind, in dense-index order.
    pub const ALL: [FaultKind; 3] = [FaultKind::Minor, FaultKind::CowBreak, FaultKind::Trap];

    /// Dense array index.
    pub fn index(self) -> usize {
        match self {
            FaultKind::Minor => 0,
            FaultKind::CowBreak => 1,
            FaultKind::Trap => 2,
        }
    }

    /// Stable snake_case name used in JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Minor => "minor",
            FaultKind::CowBreak => "cow_break",
            FaultKind::Trap => "trap",
        }
    }
}

/// A page-population transition an engine commits (merge paths are the
/// one place classes change outside fault handling, so engines report
/// them here and the surface artifact can relate event rates to how the
/// populations came to be).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfaceTransition {
    /// A page was deduplicated onto a shared frame.
    Merge,
    /// A page was marked shared without deduplication (VUsion's Same
    /// Behavior on unique pages).
    FakeMerge,
    /// A shared or fake-shared mapping was broken back to a private page.
    Unmerge,
}

impl SurfaceTransition {
    /// Dense array index.
    pub fn index(self) -> usize {
        match self {
            SurfaceTransition::Merge => 0,
            SurfaceTransition::FakeMerge => 1,
            SurfaceTransition::Unmerge => 2,
        }
    }

    /// Stable snake_case name used in JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            SurfaceTransition::Merge => "merge",
            SurfaceTransition::FakeMerge => "fake_merge",
            SurfaceTransition::Unmerge => "unmerge",
        }
    }
}

/// DRAM row-buffer outcome, mirrored here so the recorder stays
/// dependency-free (the kernel converts from the dram crate's enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramOutcome {
    /// Row already open.
    Hit,
    /// Bank had no open row.
    Empty,
    /// Another row was open (activation — the Rowhammer ingredient).
    Conflict,
}

impl DramOutcome {
    fn index(self) -> usize {
        match self {
            DramOutcome::Hit => 0,
            DramOutcome::Empty => 1,
            DramOutcome::Conflict => 2,
        }
    }
}

/// Snapshot-time context the kernel computes by walking live state —
/// standing populations and occupancies, as opposed to the recorder's
/// event counters.
#[derive(Debug, Clone, Default)]
pub struct SurfaceExtras {
    /// Mapped leaf entries per [`PageClass`] (dense index order).
    pub populations: [u64; 4],
    /// LLC sets currently holding lines of fused frames:
    /// `(set index, fused line count)`, sparse, sorted by set.
    pub llc_fused_occupancy: Vec<(u64, u64)>,
    /// Resident TLB entries machine-wide, split `[other, fused]`.
    pub tlb_occupancy: [u64; 2],
}

/// Log2 bucket of a latency sample.
pub fn latency_bucket(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    ((63 - ns.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// Representative latency of a bucket (its lower edge). Monotone in the
/// bucket index, which is all consumers reconstructing sample vectors
/// (e.g. the CoW-timing attack's KS test) need.
pub fn bucket_floor_ns(bucket: usize) -> u64 {
    1u64 << bucket
}

/// The deterministic side-channel surface recorder. All fields are plain
/// integer counters or sorted maps; rendering is canonical JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SideChannelSurface {
    enabled: bool,
    /// `[class][kind][bucket]` fault-latency histogram.
    fault: [[[u64; LATENCY_BUCKETS]; 3]; 4],
    /// Exact (unbucketed) sum of all fault latencies, in simulated ns.
    /// Not part of the rendered artifact — the canonical surface stays
    /// bucketed — but probes that price individual accesses (the
    /// CoW-timing attack) need full resolution, not bucket floors.
    fault_ns: u64,
    /// LLC access outcomes, split `[other, fused]` by the accessed frame.
    llc_hits: [u64; 2],
    llc_misses: [u64; 2],
    /// Evictions, split by the *evicted* line's frame class.
    llc_evictions: [u64; 2],
    /// Per-set fill counts for lines of fused frames (sparse).
    llc_fused_fill_sets: BTreeMap<u64, u64>,
    /// Per-set eviction counts of fused-frame lines (sparse).
    llc_fused_evict_sets: BTreeMap<u64, u64>,
    /// Per-bank row-buffer outcomes: `bank -> [other, fused] -> [hit,
    /// empty, conflict]` (sparse over banks).
    dram: BTreeMap<u64, [[u64; 3]; 2]>,
    /// TLB fills, split `[other, fused]` by the filled frame.
    tlb_fills: [u64; 2],
    /// TLB capacity evictions, split by the evicted entry's frame.
    tlb_evictions: [u64; 2],
    /// Engine-reported class transitions (merge / fake-merge / unmerge).
    transitions: [u64; 3],
}

impl SideChannelSurface {
    /// A disabled recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether recording is on. Inlined so disabled-path hooks reduce to
    /// one load + branch.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on from a clean slate (counters reset, so the
    /// surface describes exactly the window since enabling).
    pub fn enable(&mut self) {
        *self = Self {
            enabled: true,
            ..Self::default()
        };
    }

    /// Turns recording off; counters stay readable until [`Self::clear`].
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Zeroes every counter, keeping the enable flag.
    pub fn clear(&mut self) {
        let enabled = self.enabled;
        *self = Self {
            enabled,
            ..Self::default()
        };
    }

    // ------------------------------------------------------------------
    // Recording hooks (callers must check `enabled()` first; these are
    // unconditional so the branch stays at the instrumentation site).
    // ------------------------------------------------------------------

    /// Records one fault-handling latency sample.
    pub fn record_fault(&mut self, class: PageClass, kind: FaultKind, latency_ns: u64) {
        self.fault[class.index()][kind.index()][latency_bucket(latency_ns)] += 1;
        self.fault_ns += latency_ns;
    }

    /// Records an LLC access outcome. `fused` classifies the accessed
    /// frame; on a miss the line is filled, so fused misses also feed the
    /// per-set fill profile.
    pub fn record_llc_access(&mut self, fused: bool, hit: bool, set: u64) {
        if hit {
            self.llc_hits[fused as usize] += 1;
        } else {
            self.llc_misses[fused as usize] += 1;
            if fused {
                *self.llc_fused_fill_sets.entry(set).or_insert(0) += 1;
            }
        }
    }

    /// Records an LLC capacity eviction. `fused` classifies the *evicted*
    /// line's frame.
    pub fn record_llc_eviction(&mut self, fused: bool, set: u64) {
        self.llc_evictions[fused as usize] += 1;
        if fused {
            *self.llc_fused_evict_sets.entry(set).or_insert(0) += 1;
        }
    }

    /// Records a DRAM row-buffer outcome on `bank`.
    pub fn record_dram(&mut self, fused: bool, bank: u64, outcome: DramOutcome) {
        self.dram.entry(bank).or_insert([[0; 3]; 2])[fused as usize][outcome.index()] += 1;
    }

    /// Records a TLB fill of a leaf entry.
    pub fn record_tlb_fill(&mut self, fused: bool) {
        self.tlb_fills[fused as usize] += 1;
    }

    /// Records a TLB capacity eviction.
    pub fn record_tlb_eviction(&mut self, fused: bool) {
        self.tlb_evictions[fused as usize] += 1;
    }

    /// Records an engine-committed class transition.
    pub fn record_transition(&mut self, t: SurfaceTransition) {
        self.transitions[t.index()] += 1;
    }

    // ------------------------------------------------------------------
    // Read accessors
    // ------------------------------------------------------------------

    /// The latency histogram for one (class, kind) cell.
    pub fn fault_hist(&self, class: PageClass, kind: FaultKind) -> &[u64; LATENCY_BUCKETS] {
        &self.fault[class.index()][kind.index()]
    }

    /// Fault events recorded in one (class, kind) cell.
    pub fn fault_count(&self, class: PageClass, kind: FaultKind) -> u64 {
        self.fault_hist(class, kind).iter().sum()
    }

    /// Fault events of `kind` across all classes.
    pub fn fault_kind_total(&self, kind: FaultKind) -> u64 {
        PageClass::ALL
            .iter()
            .map(|&c| self.fault_count(c, kind))
            .sum()
    }

    /// All fault events recorded.
    pub fn fault_event_total(&self) -> u64 {
        FaultKind::ALL
            .iter()
            .map(|&k| self.fault_kind_total(k))
            .sum()
    }

    /// Exact sum of every recorded fault latency in simulated ns. Probes
    /// delta this around a single access to read that access's full-
    /// resolution handling cost (bucket floors would quantize away the
    /// fine structure the Figure 5/6 distributions depend on).
    pub fn fault_ns_total(&self) -> u64 {
        self.fault_ns
    }

    /// Bucketed totals over every class and kind — the raw material for
    /// reconstructing latency sample vectors.
    pub fn fault_bucket_totals(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for class in &self.fault {
            for kind in class {
                for (b, &c) in kind.iter().enumerate() {
                    out[b] += c;
                }
            }
        }
        out
    }

    /// `(hits, misses, evictions)`, each split `[other, fused]`.
    pub fn llc_counts(&self) -> ([u64; 2], [u64; 2], [u64; 2]) {
        (self.llc_hits, self.llc_misses, self.llc_evictions)
    }

    /// Row-buffer outcomes summed over banks: `[other, fused]` ×
    /// `[hit, empty, conflict]`.
    pub fn dram_totals(&self) -> [[u64; 3]; 2] {
        let mut out = [[0u64; 3]; 2];
        for per_bank in self.dram.values() {
            for (f, row) in per_bank.iter().enumerate() {
                for (o, &c) in row.iter().enumerate() {
                    out[f][o] += c;
                }
            }
        }
        out
    }

    /// `(fills, evictions)`, each split `[other, fused]`.
    pub fn tlb_counts(&self) -> ([u64; 2], [u64; 2]) {
        (self.tlb_fills, self.tlb_evictions)
    }

    /// Transition counts `[merge, fake_merge, unmerge]`.
    pub fn transition_counts(&self) -> [u64; 3] {
        self.transitions
    }

    /// Total events across every channel (faults + LLC + DRAM + TLB) —
    /// the campaign's per-engine "channel observed" coverage metric.
    pub fn channel_event_totals(&self) -> [u64; 4] {
        let (h, m, e) = self.llc_counts();
        let d = self.dram_totals();
        let (tf, te) = self.tlb_counts();
        [
            self.fault_event_total(),
            h.iter().sum::<u64>() + m.iter().sum::<u64>() + e.iter().sum::<u64>(),
            d.iter().flatten().sum(),
            tf.iter().sum::<u64>() + te.iter().sum::<u64>(),
        ]
    }

    // ------------------------------------------------------------------
    // Canonical JSON
    // ------------------------------------------------------------------

    /// Renders the surface as canonical JSON (`vusion-surface/v1`): fixed
    /// key order, sparse bucket/set pairs sorted ascending — equal logical
    /// content is byte-identical. `extras` carries the snapshot-time
    /// populations and occupancies only the kernel can compute.
    pub fn to_json(&self, extras: &SurfaceExtras) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"schema\":\"vusion-surface/v1\"");
        s.push_str(",\"populations\":{");
        for (i, class) in PageClass::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&quote(class.name()));
            s.push(':');
            s.push_str(&extras.populations[class.index()].to_string());
        }
        s.push('}');
        s.push_str(",\"fault_latency\":{");
        for (i, &class) in PageClass::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&quote(class.name()));
            s.push_str(":{");
            for (j, &kind) in FaultKind::ALL.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&quote(kind.name()));
                s.push_str(":{\"count\":");
                s.push_str(&self.fault_count(class, kind).to_string());
                s.push_str(",\"buckets\":");
                push_sparse(
                    &mut s,
                    self.fault_hist(class, kind)
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(b, &c)| (b as u64, c)),
                );
                s.push('}');
            }
            s.push('}');
        }
        s.push('}');
        s.push_str(",\"llc\":{");
        push_split(&mut s, "hits", self.llc_hits);
        s.push(',');
        push_split(&mut s, "misses", self.llc_misses);
        s.push(',');
        push_split(&mut s, "evictions", self.llc_evictions);
        s.push_str(",\"fused_fill_sets\":");
        push_sparse(
            &mut s,
            self.llc_fused_fill_sets.iter().map(|(&k, &v)| (k, v)),
        );
        s.push_str(",\"fused_evict_sets\":");
        push_sparse(
            &mut s,
            self.llc_fused_evict_sets.iter().map(|(&k, &v)| (k, v)),
        );
        s.push_str(",\"fused_occupancy\":");
        push_sparse(&mut s, extras.llc_fused_occupancy.iter().copied());
        s.push('}');
        s.push_str(",\"dram\":{\"banks\":[");
        for (i, (bank, rows)) in self.dram.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            s.push_str(&bank.to_string());
            s.push_str(",{\"other\":[");
            push_triple(&mut s, rows[0]);
            s.push_str("],\"fused\":[");
            push_triple(&mut s, rows[1]);
            s.push_str("]}]");
        }
        s.push_str("]}");
        s.push_str(",\"tlb\":{");
        push_split(&mut s, "fills", self.tlb_fills);
        s.push(',');
        push_split(&mut s, "evictions", self.tlb_evictions);
        s.push(',');
        push_split(&mut s, "occupancy", extras.tlb_occupancy);
        s.push('}');
        s.push_str(",\"transitions\":{\"merge\":");
        s.push_str(&self.transitions[0].to_string());
        s.push_str(",\"fake_merge\":");
        s.push_str(&self.transitions[1].to_string());
        s.push_str(",\"unmerge\":");
        s.push_str(&self.transitions[2].to_string());
        s.push_str("}}");
        s
    }
}

fn push_split(s: &mut String, key: &str, v: [u64; 2]) {
    s.push_str(&quote(key));
    s.push_str(":{\"fused\":");
    s.push_str(&v[1].to_string());
    s.push_str(",\"other\":");
    s.push_str(&v[0].to_string());
    s.push('}');
}

fn push_triple(s: &mut String, v: [u64; 3]) {
    s.push_str(&v[0].to_string());
    s.push(',');
    s.push_str(&v[1].to_string());
    s.push(',');
    s.push_str(&v[2].to_string());
}

fn push_sparse(s: &mut String, pairs: impl Iterator<Item = (u64, u64)>) {
    s.push('[');
    for (i, (k, v)) in pairs.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        s.push_str(&k.to_string());
        s.push(',');
        s.push_str(&v.to_string());
        s.push(']');
    }
    s.push(']');
}

impl crate::Obs {
    /// Routes one fault-handling latency sample into the metrics
    /// histogram (`fault.latency_ns`). Latency sampling is confined to
    /// this module — vlint rule O001 flags `observe` calls anywhere else —
    /// so every consumer (metrics, the surface recorder, the CoW-timing
    /// attack) reads the same measurement instead of re-deriving its own.
    pub fn observe_fault_latency(&mut self, latency_ns: f64) {
        self.metrics_mut().observe("fault.latency_ns", latency_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_saturation() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1023), 9);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
        for b in 0..LATENCY_BUCKETS {
            assert_eq!(latency_bucket(bucket_floor_ns(b)), b, "floor of {b}");
        }
    }

    #[test]
    fn record_and_count_faults() {
        let mut s = SideChannelSurface::new();
        s.enable();
        s.record_fault(PageClass::Fused, FaultKind::CowBreak, 2000);
        s.record_fault(PageClass::Fused, FaultKind::CowBreak, 2040);
        s.record_fault(PageClass::Unshared, FaultKind::Minor, 300);
        assert_eq!(s.fault_count(PageClass::Fused, FaultKind::CowBreak), 2);
        assert_eq!(s.fault_kind_total(FaultKind::CowBreak), 2);
        assert_eq!(s.fault_kind_total(FaultKind::Minor), 1);
        assert_eq!(s.fault_event_total(), 3);
        let totals = s.fault_bucket_totals();
        assert_eq!(totals.iter().sum::<u64>(), 3);
        assert_eq!(totals[latency_bucket(2000)], 2);
    }

    #[test]
    fn enable_resets_and_clear_keeps_flag() {
        let mut s = SideChannelSurface::new();
        assert!(!s.enabled());
        s.enable();
        s.record_tlb_fill(true);
        s.enable();
        assert_eq!(s.tlb_counts().0, [0, 0], "re-enable starts clean");
        s.record_tlb_fill(false);
        s.clear();
        assert!(s.enabled());
        assert_eq!(s.tlb_counts().0, [0, 0]);
    }

    #[test]
    fn json_is_canonical_and_stable() {
        let mut s = SideChannelSurface::new();
        s.enable();
        s.record_fault(PageClass::Trapped, FaultKind::Trap, 5000);
        s.record_llc_access(true, false, 17);
        s.record_llc_eviction(false, 3);
        s.record_dram(true, 2, DramOutcome::Conflict);
        s.record_tlb_fill(true);
        s.record_transition(SurfaceTransition::FakeMerge);
        let extras = SurfaceExtras {
            populations: [4, 10, 0, 6],
            llc_fused_occupancy: vec![(17, 1)],
            tlb_occupancy: [3, 1],
        };
        let a = s.to_json(&extras);
        let b = s.clone().to_json(&extras.clone());
        assert_eq!(a, b, "rendering must be pure");
        assert!(a.starts_with("{\"schema\":\"vusion-surface/v1\""));
        assert!(
            a.contains("\"populations\":{\"fused\":4,\"unshared\":10,\"zero\":0,\"trapped\":6}")
        );
        assert!(a.contains("\"trap\":{\"count\":1,\"buckets\":[[12,1]]}"));
        assert!(a.contains("\"fused_fill_sets\":[[17,1]]"));
        assert!(a.contains("\"fake_merge\":1"));
        // Balanced braces — cheap structural sanity for the hand renderer.
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced JSON: {a}"
        );
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn channel_totals_cover_all_four_channels() {
        let mut s = SideChannelSurface::new();
        s.enable();
        s.record_fault(PageClass::Fused, FaultKind::Trap, 10);
        s.record_llc_access(false, true, 0);
        s.record_dram(false, 0, DramOutcome::Hit);
        s.record_tlb_fill(false);
        s.record_tlb_eviction(true);
        assert_eq!(s.channel_event_totals(), [1, 1, 1, 2]);
    }
}
