//! The metrics registry: named counters, gauges, and latency histograms.
//!
//! This replaces "scattered counters" as the *reporting* surface: hot-path
//! structs (`MachineStats` and friends) stay as plain fields for speed,
//! and the kernel folds them into a [`MetricsSnapshot`] on demand, merged
//! with anything recorded live in the registry (latency histograms, engine
//! gauges). Snapshots serialize to JSON with sorted keys and subtract
//! (`diff`) so two points in a run describe the work between them.

use std::collections::BTreeMap;

use vusion_stats::percentile;

use crate::json::{fmt_f64, quote};

/// Bounded latency sample (a ring: the histogram summarizes the most
/// recent `cap` observations; `count` keeps the lifetime total).
#[derive(Debug, Clone)]
struct LatencySample {
    samples: Vec<f64>,
    pos: usize,
    cap: usize,
    count: u64,
}

/// How many samples a histogram retains (per metric).
pub const HISTOGRAM_WINDOW: usize = 4096;

impl LatencySample {
    fn new(cap: usize) -> Self {
        Self {
            samples: Vec::new(),
            pos: 0,
            cap,
            count: 0,
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        if self.samples.len() < self.cap {
            self.samples.push(v);
        } else {
            self.samples[self.pos] = v;
            self.pos = (self.pos + 1) % self.cap;
        }
    }
}

/// Point-in-time summary of one latency histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Lifetime observation count.
    pub count: u64,
    /// Minimum of the retained window.
    pub min: f64,
    /// Median of the retained window.
    pub p50: f64,
    /// 90th percentile of the retained window.
    pub p90: f64,
    /// 99th percentile of the retained window.
    pub p99: f64,
    /// Maximum of the retained window.
    pub max: f64,
    /// Mean of the retained window.
    pub mean: f64,
}

/// The live registry. Names are `&'static str` (subsystem-dot-metric,
/// e.g. `"fault.latency_ns"`); storage is sorted maps so every snapshot
/// iterates deterministically.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, LatencySample>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a counter (creating it at zero).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &'static str, value: i64) {
        self.gauges.insert(name, value);
    }

    /// Records one latency observation into `name`'s histogram.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| LatencySample::new(HISTOGRAM_WINDOW))
            .record(value);
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Freezes the registry into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (&k, &v) in &self.counters {
            snap.counters.insert(k.to_string(), v);
        }
        for (&k, &v) in &self.gauges {
            snap.gauges.insert(k.to_string(), v);
        }
        for (&k, s) in &self.histograms {
            if s.samples.is_empty() {
                continue;
            }
            let window = &s.samples;
            let mean = window.iter().sum::<f64>() / window.len() as f64;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &v in window {
                min = min.min(v);
                max = max.max(v);
            }
            snap.histograms.insert(
                k.to_string(),
                HistogramSummary {
                    count: s.count,
                    min,
                    p50: percentile(window, 50.0),
                    p90: percentile(window, 90.0),
                    p99: percentile(window, 99.0),
                    max,
                    mean,
                },
            );
        }
        snap
    }
}

/// A frozen view of the registry (plus whatever structured counters the
/// kernel folded in), serializable and diffable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Latency histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Sets a counter (kernel fold-in of structured stats).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The delta from `earlier` to `self`: counters subtract (saturating,
    /// so a cleared registry diffs to zero rather than wrapping), gauges
    /// keep the later value, histograms keep the later summary with the
    /// observation count subtracted.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (k, v) in &mut out.counters {
            if let Some(e) = earlier.counters.get(k) {
                *v = v.saturating_sub(*e);
            }
        }
        for (k, h) in &mut out.histograms {
            if let Some(e) = earlier.histograms.get(k) {
                h.count = h.count.saturating_sub(e.count);
            }
        }
        out
    }

    /// Renders the snapshot as JSON with sorted keys (deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{}", quote(k), v));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{}", quote(k), v));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{}:{{\"count\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
                 \"max\":{},\"mean\":{}}}",
                quote(k),
                h.count,
                fmt_f64(h.min),
                fmt_f64(h.p50),
                fmt_f64(h.p90),
                fmt_f64(h.p99),
                fmt_f64(h.max),
                fmt_f64(h.mean)
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut r = MetricsRegistry::new();
        r.inc("a.x", 3);
        r.inc("a.x", 2);
        r.set_gauge("g", -7);
        let s = r.snapshot();
        assert_eq!(s.counters["a.x"], 5);
        assert_eq!(s.gauges["g"], -7);
    }

    #[test]
    fn histogram_summary_percentiles() {
        let mut r = MetricsRegistry::new();
        for i in 1..=100 {
            r.observe("lat", i as f64);
        }
        let h = r.snapshot().histograms["lat"];
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.p50 - 50.5).abs() < 1e-9);
        assert!(h.p90 > h.p50 && h.p99 > h.p90);
    }

    #[test]
    fn diff_subtracts_counters() {
        let mut r = MetricsRegistry::new();
        r.inc("c", 10);
        let early = r.snapshot();
        r.inc("c", 5);
        r.observe("h", 1.0);
        let late = r.snapshot();
        let d = late.diff(&early);
        assert_eq!(d.counters["c"], 5);
        assert_eq!(d.histograms["h"].count, 1);
    }

    #[test]
    fn json_sorted_and_valid_shape() {
        let mut r = MetricsRegistry::new();
        r.inc("b.count", 1);
        r.inc("a.count", 2);
        r.observe("lat", 3.5);
        let j = r.snapshot().to_json();
        assert!(
            j.find("\"a.count\"").expect("a") < j.find("\"b.count\"").expect("b"),
            "{j}"
        );
        assert!(j.contains("\"p50\":3.5"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn histogram_window_is_bounded() {
        let mut r = MetricsRegistry::new();
        for i in 0..(HISTOGRAM_WINDOW + 100) {
            r.observe("h", i as f64);
        }
        let h = r.snapshot().histograms["h"];
        assert_eq!(h.count, (HISTOGRAM_WINDOW + 100) as u64);
        // The window dropped the oldest 100 samples.
        assert_eq!(h.min, 100.0);
    }
}
