//! Property-style tests for the content-indexed trees against a model
//! (BTreeSet) and their balance invariants, driven by the in-repo seeded
//! PRNG: each test sweeps many seeds so failures reproduce exactly by seed.

// Tests assert setup preconditions with expect("why"); the crate-level
// expect_used deny targets simulation code, not its test harness.
#![allow(clippy::expect_used)]

use std::cmp::Ordering;
use vusion_core::{ContentAvlTree, ContentRbTree};
use vusion_mem::FrameId;
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

const SEEDS: u64 = 96;

fn by_id(a: FrameId, b: FrameId) -> Ordering {
    a.0.cmp(&b.0)
}

#[derive(Debug, Clone, Copy)]
enum TreeOp {
    Insert(u64),
    Remove(u64),
    Find(u64),
}

fn ops(rng: &mut StdRng) -> Vec<TreeOp> {
    let n = rng.random_range(1..400usize);
    (0..n)
        .map(|_| {
            let k = rng.random_range(0..200u64);
            match rng.random_range(0..3u8) {
                0 => TreeOp::Insert(k),
                1 => TreeOp::Remove(k),
                _ => TreeOp::Find(k),
            }
        })
        .collect()
}

/// The red-black tree behaves exactly like a sorted map and keeps its
/// invariants through arbitrary operation sequences.
#[test]
fn rbtree_matches_model() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9b7e);
        let mut tree = ContentRbTree::new();
        let mut ids = std::collections::BTreeMap::new();
        let mut model = std::collections::BTreeSet::new();
        for op in ops(&mut rng) {
            match op {
                TreeOp::Insert(k) => {
                    let (id, inserted) = tree.insert(FrameId(k), k, by_id);
                    assert_eq!(inserted, model.insert(k), "seed {seed}");
                    ids.insert(k, id);
                }
                TreeOp::Remove(k) => {
                    if model.remove(&k) {
                        let id = ids.remove(&k).expect("tracked");
                        assert_eq!(tree.remove(id), k, "seed {seed}");
                    }
                }
                TreeOp::Find(k) => {
                    assert_eq!(
                        tree.find(FrameId(k), by_id).is_some(),
                        model.contains(&k),
                        "seed {seed}"
                    );
                }
            }
            assert_eq!(tree.len(), model.len(), "seed {seed}");
        }
        tree.assert_invariants();
    }
}

/// The AVL tree behaves exactly like a sorted map and keeps its
/// invariants through arbitrary operation sequences.
#[test]
fn avl_matches_model() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa71e);
        let mut tree = ContentAvlTree::new();
        let mut model = std::collections::BTreeSet::new();
        for op in ops(&mut rng) {
            match op {
                TreeOp::Insert(k) => {
                    let (_, inserted) = tree.insert(FrameId(k), k, by_id);
                    assert_eq!(inserted, model.insert(k), "seed {seed}");
                }
                TreeOp::Remove(k) => {
                    assert_eq!(
                        tree.remove(FrameId(k), by_id).is_some(),
                        model.remove(&k),
                        "seed {seed}"
                    );
                }
                TreeOp::Find(k) => {
                    assert_eq!(
                        tree.find(FrameId(k), by_id).is_some(),
                        model.contains(&k),
                        "seed {seed}"
                    );
                }
            }
            assert_eq!(tree.len(), model.len(), "seed {seed}");
        }
        tree.assert_invariants();
    }
}

/// Both trees agree with each other under identical content workloads
/// keyed by real page bytes.
#[test]
fn trees_agree_on_content() {
    use vusion_mem::{PhysAddr, PhysMemory};
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0de);
        let mut mem = PhysMemory::new(64);
        for f in 0..64u64 {
            // Deliberately create duplicate contents (key % 16).
            mem.write_u64(PhysAddr(f * 4096), f % 16);
        }
        let mut rb = ContentRbTree::new();
        let mut avl = ContentAvlTree::new();
        let n = rng.random_range(1..100usize);
        for _ in 0..n {
            let k = rng.random_range(0..64u64);
            let cmp = |a: FrameId, b: FrameId| mem.compare_pages(a, b);
            let (_, rb_new) = rb.insert(FrameId(k), (), cmp);
            let cmp = |a: FrameId, b: FrameId| mem.compare_pages(a, b);
            let (_, avl_new) = avl.insert(FrameId(k), (), cmp);
            assert_eq!(
                rb_new, avl_new,
                "seed {seed}: trees disagreed on duplicate detection"
            );
        }
        assert_eq!(rb.len(), avl.len(), "seed {seed}");
        rb.assert_invariants();
        avl.assert_invariants();
    }
}
