//! Property tests for the content-indexed trees against a model (BTreeMap)
//! and their balance invariants.

use proptest::prelude::*;
use std::cmp::Ordering;
use vusion_core::{ContentAvlTree, ContentRbTree};
use vusion_mem::FrameId;

fn by_id(a: FrameId, b: FrameId) -> Ordering {
    a.0.cmp(&b.0)
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64),
    Remove(u64),
    Find(u64),
}

fn ops() -> impl Strategy<Value = Vec<TreeOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..200).prop_map(TreeOp::Insert),
            (0u64..200).prop_map(TreeOp::Remove),
            (0u64..200).prop_map(TreeOp::Find),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The red-black tree behaves exactly like a sorted map and keeps its
    /// invariants through arbitrary operation sequences.
    #[test]
    fn rbtree_matches_model(ops in ops()) {
        let mut tree = ContentRbTree::new();
        let mut ids = std::collections::HashMap::new();
        let mut model = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                TreeOp::Insert(k) => {
                    let (id, inserted) = tree.insert(FrameId(k), k, by_id);
                    prop_assert_eq!(inserted, model.insert(k));
                    ids.insert(k, id);
                }
                TreeOp::Remove(k) => {
                    if model.remove(&k) {
                        let id = ids.remove(&k).expect("tracked");
                        prop_assert_eq!(tree.remove(id), k);
                    }
                }
                TreeOp::Find(k) => {
                    prop_assert_eq!(tree.find(FrameId(k), by_id).is_some(), model.contains(&k));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.assert_invariants();
    }

    /// The AVL tree behaves exactly like a sorted map and keeps its
    /// invariants through arbitrary operation sequences.
    #[test]
    fn avl_matches_model(ops in ops()) {
        let mut tree = ContentAvlTree::new();
        let mut model = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                TreeOp::Insert(k) => {
                    let (_, inserted) = tree.insert(FrameId(k), k, by_id);
                    prop_assert_eq!(inserted, model.insert(k));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(FrameId(k), by_id).is_some(), model.remove(&k));
                }
                TreeOp::Find(k) => {
                    prop_assert_eq!(tree.find(FrameId(k), by_id).is_some(), model.contains(&k));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.assert_invariants();
    }

    /// Both trees agree with each other under identical content workloads
    /// keyed by real page bytes.
    #[test]
    fn trees_agree_on_content(keys in proptest::collection::vec(0u64..64, 1..100)) {
        use vusion_mem::{PhysAddr, PhysMemory};
        let mut mem = PhysMemory::new(64);
        for f in 0..64u64 {
            // Deliberately create duplicate contents (key % 16).
            mem.write_u64(PhysAddr(f * 4096), f % 16);
        }
        let mut rb = ContentRbTree::new();
        let mut avl = ContentAvlTree::new();
        for &k in &keys {
            let cmp = |a: FrameId, b: FrameId| mem.compare_pages(a, b);
            let (_, rb_new) = rb.insert(FrameId(k), (), cmp);
            let cmp = |a: FrameId, b: FrameId| mem.compare_pages(a, b);
            let (_, avl_new) = avl.insert(FrameId(k), (), cmp);
            prop_assert_eq!(rb_new, avl_new, "trees disagreed on duplicate detection");
        }
        prop_assert_eq!(rb.len(), avl.len());
        rb.assert_invariants();
        avl.assert_invariants();
    }
}
