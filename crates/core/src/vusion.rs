//! The VUsion secure page-fusion engine (§6–§8 of the paper).
//!
//! **Same Behavior (SB).** Every page the scanner considers for fusion —
//! merged or not — gets *all* access removed: the PTE keeps `PRESENT` but
//! gains the reserved-bit trap and `PCD` (share xor fetch, §7.1). Pages
//! with no duplicate are **fake merged**: copied to a fresh random frame
//! and trapped exactly like real merges. The next access to either kind
//! takes the *identical* copy-on-access path: allocate a random frame,
//! copy, remap, push one entry on the deferred-free queue (a real free for
//! fake-merged pages, a dummy for merged ones — §7.1 decision ii). There
//! is no unstable tree (decision i): trapped pages cannot change, so a
//! single content tree suffices. Each full scan round the backing frame of
//! every tree page is re-randomized (decision iii) so even a page-coloring
//! attack on the fault handler learns nothing across scans.
//!
//! **Randomized Allocation (RA).** All backing frames come from a
//! [`RandomPool`]; released frames return to random pool slots. A
//! templated vulnerable frame is reused with probability `1/pool` (§7.1:
//! 2⁻¹⁵ at the paper's 128 MiB pool size).
//!
//! **Working-set estimation (§7.2).** Only pages whose ACCESSED bit stayed
//! clear since the previous scan round are considered, so the page-fault
//! tax falls almost entirely on idle pages.
//!
//! **THP (§8).** Huge pages are broken before fusing. With
//! `thp_enhancements`, only *idle* huge pages are broken, and
//! [`FusionPolicy::prepare_collapse`] lets the (secured) `khugepaged`
//! fake-unmerge sub-pages before re-collapsing hot ranges.

use std::collections::BTreeMap;

use vusion_kernel::{
    FusionPolicy, Machine, PageFault, Pid, ScanReport, SpanKind, SurfaceTransition,
};
use vusion_mem::{
    CrashSite, DeferredFreeQueue, FrameId, MmError, PageType, RandomPool, VirtAddr,
    HUGE_PAGE_FRAMES, PAGE_SIZE,
};
use vusion_mmu::{GuestTag, Pte, PteFlags, VmaBacking};

use crate::rbtree::{ContentRbTree, NodeId};
use crate::scan_cache::{CandidateCache, HashIndex};
use crate::shard::{self, ShardRunner};
use crate::TagCounts;

/// VUsion tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct VUsionConfig {
    /// Pages scanned per wakeup (default 100, matching KSM).
    pub pages_per_scan: usize,
    /// Wakeup period in ns (default 20 ms, matching KSM).
    pub scan_period_ns: u64,
    /// Random-pool size in frames. The paper reserves 128 MiB = 2¹⁵
    /// frames; scaled experiments use smaller pools (entropy =
    /// log2(pool_frames) bits).
    pub pool_frames: usize,
    /// §8 THP enhancements: break only idle huge pages and cooperate with
    /// the secured khugepaged ("VUsion THP" in the evaluation).
    pub thp_enhancements: bool,
    /// Deferred-free operations processed per scanner wakeup.
    pub deferred_drain_per_wake: usize,
    /// Maximum RA trace length retained for the §9.1 uniformity test.
    pub ra_trace_cap: usize,
    /// ABLATION (insecure): skip the Caching-Disabled bit on trapped PTEs.
    /// Re-opens the prefetch side channel of Gruss et al. (§7.1).
    pub ablate_pcd: bool,
    /// ABLATION (insecure): free dead frames synchronously in the fault
    /// handler instead of deferring. Re-opens the merged-vs-fake-merged
    /// timing asymmetry of §7.1 decision (ii).
    pub ablate_deferred_free: bool,
    /// ABLATION (insecure): keep tree pages on the same backing frame
    /// across scan rounds. Re-opens the cross-scan page-coloring channel of
    /// §7.1 decision (iii).
    pub ablate_rerandomize: bool,
    /// Worker threads for the shard-local (read-only) pre-hash phase. A
    /// host knob: never serialized, and every observable byte is identical
    /// at any value.
    pub scan_threads: usize,
}

impl Default for VUsionConfig {
    fn default() -> Self {
        Self {
            pages_per_scan: 100,
            scan_period_ns: 20_000_000,
            pool_frames: 4096,
            thp_enhancements: false,
            deferred_drain_per_wake: 512,
            ra_trace_cap: 1 << 16,
            ablate_pcd: false,
            ablate_deferred_free: false,
            ablate_rerandomize: false,
            scan_threads: 1,
        }
    }
}

impl VUsionConfig {
    /// Paper-scale pool: 128 MiB ⇒ 15 bits of entropy.
    pub fn paper_pool(mut self) -> Self {
        self.pool_frames = vusion_mem::random_pool::DEFAULT_POOL_FRAMES;
        self
    }

    /// Enables the §8 THP enhancements.
    pub fn with_thp(mut self) -> Self {
        self.thp_enhancements = true;
        self
    }
}

/// VUsion counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VUsionStats {
    /// Real merges.
    pub merged: u64,
    /// Fake merges.
    pub fake_merged: u64,
    /// Copy-on-access unmerges (reads and writes alike).
    pub coa_unmerges: u64,
    /// Pages skipped because they were in the working set.
    pub skipped_active: u64,
    /// Huge pages broken.
    pub huge_broken: u64,
    /// Huge pages left intact because they were active (THP mode).
    pub huge_conserved: u64,
    /// Backing frames re-randomized at round boundaries.
    pub rerandomized: u64,
    /// Sub-pages fake-unmerged on behalf of khugepaged.
    pub collapse_unmerges: u64,
    /// Full scan rounds completed.
    pub full_rounds: u64,
}

/// The VUsion engine.
pub struct VUsion {
    cfg: VUsionConfig,
    /// The single content tree (no unstable tree — §7.1 decision i).
    /// Value: the mappings sharing the node's frame.
    tree: ContentRbTree<Vec<(Pid, VirtAddr)>>,
    /// Reverse map: tree frame → node.
    // vlint: allow(S001, derived reverse map — rebuilt from the content tree in load)
    tree_index: BTreeMap<FrameId, NodeId>,
    /// Content-hash filter over the tree pages (wall-clock only).
    tree_hashes: HashIndex,
    /// Cached mergeable-page list, invalidated by the layout epoch.
    candidates: CandidateCache,
    /// Reverse map: trapped page → node.
    page_state: BTreeMap<(usize, u64), NodeId>,
    pool: RandomPool,
    deferred: DeferredFreeQueue,
    cursor: u64,
    saved: u64,
    /// Per-wake page budget granted by the pressure governor. Never
    /// serialized: the governor re-grants before every wakeup.
    // vlint: allow(S001, host-only wake-scoped grant — the governor re-issues it before every wakeup)
    budget: Option<u64>,
    /// Reclaim-ladder rung 3: while set, frame-allocating scan work (fake
    /// merges, rerandomization rounds) is deferred until pressure clears.
    defer_zero: bool,
    /// Frames handed out by RA, for the §9.1 uniformity test.
    ra_trace: Vec<u64>,
    tags: TagCounts,
    stats: VUsionStats,
    /// Shard runner for the parallel pre-hash phase. VUsion has no
    /// dirty-driven skip list: `scan_one`'s accessed-bit test-and-clear is
    /// the working-set estimator and must run on every visit.
    // vlint: allow(S001, host-only thread pool — worker count changes wall-clock time only)
    runner: ShardRunner,
}

impl VUsion {
    /// Creates the engine, drawing the random pool from the machine's
    /// buddy allocator.
    pub fn new(m: &mut Machine, cfg: VUsionConfig) -> Self {
        let seed = m.config().seed ^ u64::from_le_bytes(*b"vusionra");
        let pool = RandomPool::new(cfg.pool_frames, m.buddy_mut(), seed);
        Self {
            cfg,
            tree: ContentRbTree::new(),
            tree_index: BTreeMap::new(),
            tree_hashes: HashIndex::default(),
            candidates: CandidateCache::default(),
            page_state: BTreeMap::new(),
            pool,
            deferred: DeferredFreeQueue::new(),
            cursor: 0,
            saved: 0,
            budget: None,
            defer_zero: false,
            ra_trace: Vec::new(),
            tags: TagCounts::default(),
            stats: VUsionStats::default(),
            runner: ShardRunner::new(cfg.scan_threads),
        }
    }

    /// Counters.
    pub fn stats(&self) -> VUsionStats {
        self.stats
    }

    /// Table 3 accounting.
    pub fn tag_counts(&self) -> TagCounts {
        self.tags
    }

    /// Frames chosen by Randomized Allocation so far (§9.1 RA test).
    pub fn ra_trace(&self) -> &[u64] {
        &self.ra_trace
    }

    /// Pool residency (test helper).
    pub fn pool_resident(&self) -> usize {
        self.pool.resident()
    }

    /// Whether a page is currently under fusion management (trapped).
    pub fn is_managed(&self, pid: Pid, va: VirtAddr) -> bool {
        self.page_state.contains_key(&(pid.0, va.page()))
    }

    fn trace_alloc(&mut self, frame: FrameId) {
        if self.ra_trace.len() < self.cfg.ra_trace_cap {
            self.ra_trace.push(frame.0);
        }
    }

    /// Draws a random backing frame (RA). On exhaustion the deferred-free
    /// queue is force-drained back into the pool (the emergency version of
    /// decision ii's background half) before [`MmError::PoolExhausted`] is
    /// reported.
    fn ra_alloc(&mut self, m: &mut Machine, page_type: PageType) -> Result<FrameId, MmError> {
        let f = match self.pool.alloc_random(m.buddy_mut()) {
            Ok(f) => f,
            Err(_) => {
                let mut dead = Vec::new();
                self.deferred.drain(usize::MAX, |f| dead.push(f));
                let drained = !dead.is_empty();
                for d in dead {
                    self.ra_release(m, d);
                }
                if drained {
                    m.note_deferred_drain();
                }
                match self.pool.alloc_random(m.buddy_mut()) {
                    Ok(f) => f,
                    Err(e) => {
                        m.note_oom();
                        return Err(e);
                    }
                }
            }
        };
        m.mem_mut().info_mut(f).on_alloc(page_type);
        self.trace_alloc(f);
        Ok(f)
    }

    /// Returns a dead (refcount 0, still `Allocated`) frame to the pool.
    fn ra_release(&mut self, m: &mut Machine, frame: FrameId) {
        m.mem_mut().info_mut(frame).on_free();
        m.mem_mut().zero_page(frame);
        let _ = self.pool.free_random(frame, m.buddy_mut());
    }

    /// The uniform trapped-PTE flags of (fake-)merged pages: present but
    /// reserved-trapped and uncacheable. No permission bits matter.
    fn trapped_flags(&self) -> PteFlags {
        let mut f = PteFlags::PRESENT | PteFlags::USER | PteFlags::RESERVED;
        if !self.cfg.ablate_pcd {
            f |= PteFlags::NO_CACHE;
        }
        f
    }

    /// Guest tag and page-cache key of a mapping.
    fn vma_info(m: &Machine, pid: Pid, va: VirtAddr) -> (GuestTag, Option<(u64, u64)>) {
        match m.process(pid).space.find_vma(va) {
            Some(vma) => {
                let key = match vma.backing {
                    VmaBacking::File {
                        file_id,
                        offset_pages,
                    } => Some((file_id, offset_pages + (va.0 - vma.start.0) / PAGE_SIZE)),
                    VmaBacking::Anon => None,
                };
                (vma.tag, key)
            }
            None => (GuestTag::Other, None),
        }
    }

    /// Drops the page-cache reference if `frame` is the cached copy of the
    /// file page at `(pid, va)`.
    fn drop_cache_ref(m: &mut Machine, pid: Pid, va: VirtAddr, frame: FrameId) {
        let (_, key) = Self::vma_info(m, pid, va);
        if let Some((file_id, page)) = key {
            let p = m.process_mut(pid);
            if p.page_cache.get(&(file_id, page)) == Some(&frame) {
                p.page_cache_evict(file_id, page);
                m.mem_mut().info_mut(frame).put();
            }
        }
    }

    /// Releases a candidate's old frame to the pool (refcount must reach 0).
    fn release_candidate(&mut self, m: &mut Machine, pid: Pid, va: VirtAddr, frame: FrameId) {
        Self::drop_cache_ref(m, pid, va, frame);
        if m.mem_mut().info_mut(frame).put() {
            self.ra_release(m, frame);
        }
    }

    /// One page through the S⊕F pipeline.
    fn scan_one(&mut self, m: &mut Machine, pid: Pid, va: VirtAddr, report: &mut ScanReport) {
        report.pages_scanned += 1;
        if self.page_state.contains_key(&(pid.0, va.page())) {
            return; // Already under management.
        }
        let Some(mut leaf) = m.leaf(pid, va) else {
            return;
        };
        if m.observed_scan_flip() {
            // Injected bit flip: the page comparison is unreliable this
            // round, so skip and retry later.
            m.note_scan_retry();
            return;
        }
        if leaf.huge {
            // Act once per THP per round (at its head): the scanner visits
            // all 512 candidate VAs, but the idle test must not be repeated
            // — the first test-and-clear would make the second visit
            // mistake a hot huge page for an idle one.
            if va.page_base() != va.huge_base() {
                return;
            }
            if self.cfg.thp_enhancements {
                // Break only *idle* huge pages (§8.1): an active THP stays.
                let was_accessed = {
                    let (mem, _buddy, procs) = m.mm_parts();
                    let was = procs[pid.0]
                        .space
                        .tables_mut()
                        .test_and_clear_accessed(mem, va.huge_base())
                        .unwrap_or(true);
                    // Linux's idle tracking flushes the TLB after clearing
                    // the bit, or cached translations would hide accesses.
                    procs[pid.0].tlb.invalidate(va.huge_base());
                    was
                };
                if was_accessed {
                    self.stats.huge_conserved += 1;
                    report.pages_skipped_active += 1;
                    return;
                }
            }
            if m.break_thp(pid, va).is_err() {
                // Could not split (PT allocation failed): retry later.
                m.note_scan_retry();
                return;
            }
            self.stats.huge_broken += 1;
            report.huge_pages_broken += 1;
            let Some(l) = m.leaf(pid, va) else {
                return;
            };
            leaf = l;
        }
        if !leaf.pte.is_present() || leaf.pte.is_trapped() {
            return;
        }
        // Working-set estimation (§7.2): consider only idle pages.
        let was_accessed = {
            let (mem, _buddy, procs) = m.mm_parts();
            let was = procs[pid.0]
                .space
                .tables_mut()
                .test_and_clear_accessed(mem, va.page_base())
                .unwrap_or(true);
            // TLB shootdown, as Linux's idle page tracking performs.
            procs[pid.0].tlb.invalidate(va.page_base());
            was
        };
        if was_accessed {
            self.stats.skipped_active += 1;
            report.pages_skipped_active += 1;
            return;
        }
        let frame = leaf.pte.frame();
        if self.tree_index.contains_key(&frame) {
            return; // This frame already backs a tree page elsewhere.
        }
        // Accounting guard, as in KSM: sole mapping (+ cache ref for file).
        let (tag, cache_key) = Self::vma_info(m, pid, va);
        let max_refs = if cache_key.is_some() { 2 } else { 1 };
        if m.mem().info(frame).refcount > max_refs {
            return;
        }
        // Single content tree: match ⇒ real merge, no match ⇒ fake merge.
        // The hash filter only skips the descent when no tree page can be
        // content-equal; a positive is confirmed by the authoritative find.
        let mem = m.mem();
        let found = if self.tree_hashes.may_contain(mem, frame) {
            self.tree.find(frame, |a, b| mem.compare_pages(a, b))
        } else {
            None
        };
        match found {
            Some(node) => {
                m.trace_begin("vusion", SpanKind::Merge);
                let shared = self.tree.frame(node);
                m.mem_mut().info_mut(shared).get();
                if m.crash_now(CrashSite::MidMerge)
                    || m.set_leaf(pid, va, Pte::new(shared, self.trapped_flags()))
                        .is_err()
                {
                    // The mapping vanished under us — or the scanner died
                    // mid-merge: undo and retry later.
                    m.mem_mut().info_mut(shared).put();
                    m.note_scan_retry();
                    m.trace_end(SpanKind::Merge);
                    return;
                }
                self.tree.value_mut(node).push((pid, va));
                self.page_state.insert((pid.0, va.page()), node);
                self.release_candidate(m, pid, va, frame);
                let costs = m.costs();
                m.scan_cost(costs.pte_update + costs.buddy_interaction);
                m.trace_end(SpanKind::Merge);
                m.surface_transition(SurfaceTransition::Merge);
                self.tags.record(tag);
                self.saved += 1;
                self.stats.merged += 1;
                report.pages_merged += 1;
            }
            None => {
                if self.defer_zero {
                    // Rung 3 active: a fake merge would draw a pool frame
                    // under critical pressure. Leave the page unmanaged —
                    // it is revisited once the band drops.
                    return;
                }
                m.trace_begin("vusion", SpanKind::FakeMerge);
                // Fake merge: fresh random backing frame, same trap.
                let Ok(new) = self.ra_alloc(m, PageType::Fused) else {
                    // Pool exhausted even after the emergency drain: the
                    // page stays unmanaged and is retried next round.
                    m.note_scan_retry();
                    m.trace_end(SpanKind::FakeMerge);
                    return;
                };
                m.mem_mut().copy_page(frame, new);
                if m.crash_now(CrashSite::MidMerge)
                    || m.set_leaf(pid, va, Pte::new(new, self.trapped_flags()))
                        .is_err()
                {
                    if m.mem_mut().info_mut(new).put() {
                        self.ra_release(m, new);
                    }
                    m.note_scan_retry();
                    m.trace_end(SpanKind::FakeMerge);
                    return;
                }
                let mem = m.mem();
                let (node, inserted) = self
                    .tree
                    .insert(new, vec![(pid, va)], |a, b| mem.compare_pages(a, b));
                debug_assert!(inserted, "tree had no match a moment ago");
                self.tree_index.insert(new, node);
                self.tree_hashes.insert(m.mem(), new);
                self.page_state.insert((pid.0, va.page()), node);
                self.release_candidate(m, pid, va, frame);
                let costs = m.costs();
                m.scan_cost(costs.copy_page + costs.pte_update + costs.buddy_interaction);
                m.trace_end(SpanKind::FakeMerge);
                m.surface_transition(SurfaceTransition::FakeMerge);
                self.stats.fake_merged += 1;
                report.pages_fake_merged += 1;
            }
        }
    }

    /// Removes one mapping from a node; shared bookkeeping of the CoA path
    /// and khugepaged-driven unmerges. Returns the node's frame and whether
    /// it died (last mapping gone).
    fn detach_mapping(
        &mut self,
        m: &mut Machine,
        pid: Pid,
        va: VirtAddr,
        node: NodeId,
    ) -> (FrameId, bool) {
        let shared = self.tree.frame(node);
        let mappings = self.tree.value_mut(node);
        let before = mappings.len();
        mappings.retain(|&(p, v)| !(p == pid && v.page() == va.page()));
        debug_assert_eq!(mappings.len() + 1, before, "mapping must be tracked");
        if before > 1 {
            self.saved -= 1;
        }
        let died = m.mem_mut().info_mut(shared).put();
        if self.cfg.ablate_deferred_free {
            // ABLATION: the insecure variant frees synchronously; the
            // caller charges the allocator interaction only on the dying
            // (fake-merged) path — exactly the channel decision (ii)
            // closes.
            if died {
                self.tree.remove(node);
                self.tree_index.remove(&shared);
                self.tree_hashes.remove(shared);
                self.ra_release(m, shared);
            }
        } else if died {
            // Last user: the frame itself dies — but through the deferred
            // queue, so the fault path cost is identical (decision ii).
            self.tree.remove(node);
            self.tree_index.remove(&shared);
            self.tree_hashes.remove(shared);
            self.deferred.push_free(shared);
        } else {
            self.deferred.push_dummy();
        }
        (shared, died)
    }

    /// Copy-on-access: the single code path every trapped page takes.
    ///
    /// Failure (pool exhaustion, a vanished VMA) leaves the page merged
    /// and unhandled; the faulting access retries, indistinguishably from
    /// a slow success — the Same Behavior principle extended to errors.
    fn copy_on_access(&mut self, m: &mut Machine, fault: &PageFault) -> bool {
        let Some(&node) = self.page_state.get(&(fault.pid.0, fault.va.page())) else {
            return false;
        };
        // The page is ours: from here on the work is a CoA attempt (span
        // opened only now, so foreign trapped faults never pollute it).
        m.trace_begin("vusion", SpanKind::CoaCopy);
        let handled = self.copy_on_access_owned(m, fault, node);
        m.trace_end(SpanKind::CoaCopy);
        handled
    }

    /// The CoA copy proper, once ownership is established.
    fn copy_on_access_owned(&mut self, m: &mut Machine, fault: &PageFault, node: NodeId) -> bool {
        let shared = self.tree.frame(node);
        let Some(vma) = m.process(fault.pid).space.find_vma(fault.va).copied() else {
            return false;
        };
        // RA on unmerge too (§7.1): the private copy is a random frame.
        let Ok(new) = self.ra_alloc(m, PageType::Anon) else {
            return false;
        };
        if m.crash_now(CrashSite::MidUnmerge) {
            // Died after drawing the private copy: recovery returns it to
            // the pool; the page stays merged and the access retries.
            if m.mem_mut().info_mut(new).put() {
                self.ra_release(m, new);
            }
            return false;
        }
        m.mem_mut().copy_page(shared, new);
        let mut flags = PteFlags::PRESENT | PteFlags::USER | PteFlags::ACCESSED;
        if vma.prot.write {
            flags |= PteFlags::WRITABLE;
        }
        if fault.kind == vusion_kernel::AccessKind::Write {
            flags |= PteFlags::DIRTY;
        }
        if m.set_leaf(fault.pid, fault.va.page_base(), Pte::new(new, flags))
            .is_err()
        {
            if m.mem_mut().info_mut(new).put() {
                self.ra_release(m, new);
            }
            return false;
        }
        self.page_state.remove(&(fault.pid.0, fault.va.page()));
        let (_, died) = self.detach_mapping(m, fault.pid, fault.va, node);
        let costs = m.costs();
        if self.cfg.ablate_deferred_free {
            // ABLATION: asymmetric cost — dying (fake-merged) pages pay the
            // allocator; surviving shared pages do not.
            m.charge(
                costs.copy_page + costs.pte_update + if died { costs.buddy_interaction } else { 0 },
            );
        } else {
            // Identical charge on both the merged and fake-merged paths.
            m.charge(costs.copy_page + costs.pte_update + costs.deferred_queue_push);
        }
        m.surface_transition(SurfaceTransition::Unmerge);
        self.stats.coa_unmerges += 1;
        true
    }

    /// Scanner-side unmerge (no fault, no charge) for khugepaged (§8.2).
    /// Returns `false` (changing nothing) if no private copy could be made.
    fn unmerge_quiet(&mut self, m: &mut Machine, pid: Pid, va: VirtAddr, node: NodeId) -> bool {
        let shared = self.tree.frame(node);
        let Ok(new) = self.ra_alloc(m, PageType::Anon) else {
            return false;
        };
        m.mem_mut().copy_page(shared, new);
        let writable = m
            .process(pid)
            .space
            .find_vma(va)
            .map(|v| v.prot.write)
            .unwrap_or(false);
        let mut flags = PteFlags::PRESENT | PteFlags::USER;
        if writable {
            flags |= PteFlags::WRITABLE;
        }
        if m.set_leaf(pid, va.page_base(), Pte::new(new, flags))
            .is_err()
        {
            if m.mem_mut().info_mut(new).put() {
                self.ra_release(m, new);
            }
            return false;
        }
        self.page_state.remove(&(pid.0, va.page()));
        let _ = self.detach_mapping(m, pid, va, node);
        m.surface_transition(SurfaceTransition::Unmerge);
        self.stats.collapse_unmerges += 1;
        true
    }

    /// Decision iii: re-randomize the backing frame of every tree page so
    /// a cross-scan page-coloring attack on the fault handler sees a fresh
    /// color each round.
    fn rerandomize_round(&mut self, m: &mut Machine) {
        m.trace_begin("vusion", SpanKind::Rerandomize);
        for node in self.tree.ids() {
            if m.crash_now(CrashSite::MidRerandomization) {
                // Died between nodes: pages re-randomized so far keep
                // their new frames, the rest keep their old ones — every
                // intermediate state is a valid tree.
                m.note_scan_retry();
                continue;
            }
            let old = self.tree.frame(node);
            let mappings = self.tree.value(node).clone();
            let Ok(new) = self.ra_alloc(m, PageType::Fused) else {
                // Pool exhausted: keep the old backing frame this round
                // (weaker randomization, never a crash) and retry later.
                m.note_scan_retry();
                continue;
            };
            m.mem_mut().copy_page(old, new);
            // Transfer one reference per mapping.
            for _ in 1..mappings.len() {
                m.mem_mut().info_mut(new).get();
            }
            let mut moved: Vec<(Pid, VirtAddr)> = Vec::new();
            let mut all_moved = true;
            for &(pid, va) in &mappings {
                let repointed = match m.leaf(pid, va) {
                    Some(leaf) => m.set_leaf(pid, va, leaf.pte.with_frame(new)).is_ok(),
                    None => false,
                };
                if repointed {
                    moved.push((pid, va));
                } else {
                    all_moved = false;
                    break;
                }
            }
            if !all_moved {
                // A mapping vanished mid-transfer: point everything back at
                // the old frame and give the new one back.
                for &(pid, va) in &moved {
                    if let Some(leaf) = m.leaf(pid, va) {
                        let _ = m.set_leaf(pid, va, leaf.pte.with_frame(old));
                    }
                }
                for _ in 1..mappings.len() {
                    let _ = m.mem_mut().info_mut(new).put();
                }
                if m.mem_mut().info_mut(new).put() {
                    self.ra_release(m, new);
                }
                m.note_scan_retry();
                continue;
            }
            for _ in 0..mappings.len() {
                m.mem_mut().info_mut(old).put();
            }
            self.tree.set_frame(node, new);
            self.tree_index.remove(&old);
            self.tree_index.insert(new, node);
            // `copy_page` seeded the new frame's hash cache from the old
            // frame's, so this re-index is a cache hit, not a re-hash.
            self.tree_hashes.replace_frame(m.mem(), old, new);
            self.ra_release(m, old);
            let costs = m.costs();
            m.scan_cost(costs.copy_page + costs.pte_update);
            self.stats.rerandomized += 1;
        }
        m.trace_end(SpanKind::Rerandomize);
    }

    /// Snapshot of the mergeable page list.
    fn mergeable_pages(m: &Machine) -> Vec<(Pid, VirtAddr)> {
        let mut out = Vec::new();
        for pidx in 0..m.process_count() {
            let pid = Pid(pidx);
            for vma in m.process(pid).space.mergeable_vmas() {
                for va in vma.page_addrs() {
                    out.push((pid, va));
                }
            }
        }
        out
    }
}

impl vusion_snapshot::Snapshot for VUsion {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.usize(self.cfg.pages_per_scan);
        w.u64(self.cfg.scan_period_ns);
        w.usize(self.cfg.pool_frames);
        w.bool(self.cfg.thp_enhancements);
        w.usize(self.cfg.deferred_drain_per_wake);
        w.usize(self.cfg.ra_trace_cap);
        w.bool(self.cfg.ablate_pcd);
        w.bool(self.cfg.ablate_deferred_free);
        w.bool(self.cfg.ablate_rerandomize);
        self.tree.save_with(w, |mappings, w| {
            w.usize(mappings.len());
            for &(pid, va) in mappings {
                w.usize(pid.0);
                w.u64(va.0);
            }
        });
        self.tree_hashes.save(w);
        self.candidates.save(w);
        let mut pages: Vec<((usize, u64), usize)> =
            self.page_state.iter().map(|(&k, &v)| (k, v.0)).collect();
        pages.sort_unstable();
        w.usize(pages.len());
        for ((pid, page), node) in pages {
            w.usize(pid);
            w.u64(page);
            w.usize(node);
        }
        self.pool.save(w);
        self.deferred.save(w);
        w.u64(self.cursor);
        w.u64(self.saved);
        w.u64s(&self.ra_trace);
        self.tags.save(w);
        w.u64(self.stats.merged);
        w.u64(self.stats.fake_merged);
        w.u64(self.stats.coa_unmerges);
        w.u64(self.stats.skipped_active);
        w.u64(self.stats.huge_broken);
        w.u64(self.stats.huge_conserved);
        w.u64(self.stats.rerandomized);
        w.u64(self.stats.collapse_unmerges);
        w.u64(self.stats.full_rounds);
        w.bool(self.defer_zero);
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        self.cfg.pages_per_scan = r.usize()?;
        self.cfg.scan_period_ns = r.u64()?;
        self.cfg.pool_frames = r.usize()?;
        self.cfg.thp_enhancements = r.bool()?;
        self.cfg.deferred_drain_per_wake = r.usize()?;
        self.cfg.ra_trace_cap = r.usize()?;
        self.cfg.ablate_pcd = r.bool()?;
        self.cfg.ablate_deferred_free = r.bool()?;
        self.cfg.ablate_rerandomize = r.bool()?;
        self.tree = ContentRbTree::load_with(r, |r| {
            let count = r.usize()?;
            let mut mappings = Vec::with_capacity(count);
            for _ in 0..count {
                mappings.push((Pid(r.usize()?), VirtAddr(r.u64()?)));
            }
            Ok(mappings)
        })?;
        // Slot-exact tree restore keeps NodeIds valid, so both reverse
        // maps can be rebuilt (tree_index) or reloaded (page_state).
        self.tree_index = self
            .tree
            .ids()
            .into_iter()
            .map(|id| (self.tree.frame(id), id))
            .collect();
        self.tree_hashes = HashIndex::load(r)?;
        self.candidates = CandidateCache::load(r)?;
        let pages = r.usize()?;
        self.page_state = BTreeMap::new();
        for _ in 0..pages {
            let key = (r.usize()?, r.u64()?);
            self.page_state.insert(key, NodeId(r.usize()?));
        }
        self.pool.load(r)?;
        self.deferred.load(r)?;
        self.cursor = r.u64()?;
        self.saved = r.u64()?;
        self.ra_trace = r.u64s()?;
        self.tags = TagCounts::load(r)?;
        self.stats = VUsionStats {
            merged: r.u64()?,
            fake_merged: r.u64()?,
            coa_unmerges: r.u64()?,
            skipped_active: r.u64()?,
            huge_broken: r.u64()?,
            huge_conserved: r.u64()?,
            rerandomized: r.u64()?,
            collapse_unmerges: r.u64()?,
            full_rounds: r.u64()?,
        };
        self.defer_zero = r.bool()?;
        Ok(())
    }
}

impl vusion_snapshot::EngineState for VUsion {
    fn engine_tag(&self) -> &'static str {
        "vusion"
    }
}

impl FusionPolicy for VUsion {
    fn name(&self) -> &'static str {
        "vusion"
    }

    fn scan(&mut self, m: &mut Machine) -> ScanReport {
        let mut report = ScanReport::default();
        // Background half of deferred free (decision ii).
        let drain = self.cfg.deferred_drain_per_wake;
        let mut dead = Vec::new();
        self.deferred.drain(drain, |f| dead.push(f));
        if !dead.is_empty() {
            m.trace_begin("vusion", SpanKind::DeferredDrain);
            let costs = m.costs();
            for f in dead {
                self.ra_release(m, f);
                m.scan_cost(costs.buddy_interaction);
            }
            m.trace_end(SpanKind::DeferredDrain);
        }
        // Re-sync hash-filter entries whose frames changed between scans
        // (Rowhammer flips — trapped tree pages see no guest writes).
        self.tree_hashes.refresh(m.mem());
        let (pages, _) = self.candidates.take(m, Self::mergeable_pages);
        if pages.is_empty() {
            self.candidates.put_back(pages);
            return report;
        }
        // Shard phase: pre-hash this wakeup's visit window in parallel off
        // a read-only view, so the serial decide phase below hits the hash
        // memo-cache exactly as a warmed single-threaded pass would. Huge
        // and trapped mappings are left out — they are broken or skipped
        // before any hash is taken.
        // Steady-state fast-out: when every candidate is already under
        // management (fake- or real-merged, trapped), the window below
        // would collect nothing — skip its per-page lookups. The test
        // depends only on serial engine state, so the decision (and the
        // trace) is identical at any thread count.
        let limit = match self.budget {
            Some(b) => b as usize,
            None => self.cfg.pages_per_scan,
        };
        let all_managed = self.page_state.len() >= pages.len();
        let window = if all_managed {
            0
        } else {
            limit.min(pages.len())
        };
        let mut visit_frames = Vec::with_capacity(window);
        for i in 0..window {
            let idx = ((self.cursor + i as u64) % pages.len() as u64) as usize;
            let (pid, va) = pages[idx];
            if self.page_state.contains_key(&(pid.0, va.page())) {
                continue; // Already under management.
            }
            if let Some(leaf) = m.leaf(pid, va) {
                if !leaf.huge && leaf.pte.is_present() && !leaf.pte.is_trapped() {
                    visit_frames.push(leaf.pte.frame());
                }
            }
        }
        shard::prehash_frames(m, &self.runner, &visit_frames);
        for _ in 0..limit {
            if m.crash_now(CrashSite::MidScan) {
                // The daemon dies between pages: work already done this
                // wakeup stays committed, nothing is left in flight.
                break;
            }
            report.budget_used += 1;
            let idx = (self.cursor % pages.len() as u64) as usize;
            let (pid, va) = pages[idx];
            self.scan_one(m, pid, va, &mut report);
            self.cursor += 1;
            if self.cursor.is_multiple_of(pages.len() as u64) {
                // Rung 3 defers the round's rerandomization too: it draws
                // one pool frame per tree page.
                if !self.cfg.ablate_rerandomize && !self.defer_zero {
                    self.rerandomize_round(m);
                }
                self.stats.full_rounds += 1;
            }
        }
        self.candidates.put_back(pages);
        report
    }

    fn handle_fault(&mut self, m: &mut Machine, fault: &PageFault) -> bool {
        match fault.reason {
            vusion_kernel::FaultReason::Trapped => self.copy_on_access(m, fault),
            _ => false,
        }
    }

    fn prepare_collapse(&mut self, m: &mut Machine, pid: Pid, huge_base: VirtAddr) -> bool {
        if !self.cfg.thp_enhancements {
            // The plain §7 implementation must not let khugepaged collapse
            // managed pages; without the §8 machinery, veto anything
            // containing them.
            for i in 0..HUGE_PAGE_FRAMES {
                let va = VirtAddr(huge_base.0 + i * PAGE_SIZE);
                if self.page_state.contains_key(&(pid.0, va.page())) {
                    return false;
                }
            }
            return true;
        }
        // §8.2: fake-unmerge every managed sub-page, then allow. If any
        // sub-page cannot be privatized (pool exhausted), veto the collapse
        // — khugepaged retries the range later.
        for i in 0..HUGE_PAGE_FRAMES {
            let va = VirtAddr(huge_base.0 + i * PAGE_SIZE);
            if let Some(&node) = self.page_state.get(&(pid.0, va.page())) {
                if !self.unmerge_quiet(m, pid, va, node) {
                    return false;
                }
            }
        }
        true
    }

    fn pages_saved(&self) -> u64 {
        self.saved
    }

    fn scan_period_ns(&self) -> u64 {
        self.cfg.scan_period_ns
    }

    fn set_scan_threads(&mut self, threads: usize) {
        self.cfg.scan_threads = threads.max(1);
        self.runner.set_threads(threads);
    }

    fn set_scan_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    fn pressure_drain(&mut self, m: &mut Machine) -> u64 {
        let mut dead = Vec::new();
        let n = self.deferred.drain(usize::MAX, |f| dead.push(f));
        for f in dead {
            self.ra_release(m, f);
        }
        if n > 0 {
            m.note_deferred_drain();
        }
        n as u64
    }

    fn pressure_shrink(&mut self, _m: &mut Machine) -> u64 {
        self.candidates.shed()
    }

    fn set_zero_unmerge_deferral(&mut self, on: bool) {
        self.defer_zero = on;
    }

    fn save_state(&self, w: &mut vusion_snapshot::Writer) {
        vusion_snapshot::Snapshot::save(self, w)
    }

    fn restore_state(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        vusion_snapshot::Snapshot::load(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_kernel::{MachineConfig, System};
    use vusion_mmu::{Protection, Vma};

    const BASE: u64 = 0x10000;

    fn system(cfg: VUsionConfig) -> (System<VUsion>, Pid, Pid) {
        let mut m = Machine::new(MachineConfig::test_small());
        let a = m.spawn("attacker").expect("spawn");
        let v = m.spawn("victim").expect("spawn");
        for pid in [a, v] {
            m.mmap(pid, Vma::anon(VirtAddr(BASE), 64, Protection::rw()));
            m.madvise_mergeable(pid, VirtAddr(BASE), 64);
        }
        let policy = VUsion::new(&mut m, cfg);
        (System::new(m, policy), a, v)
    }

    fn small_cfg() -> VUsionConfig {
        VUsionConfig {
            pool_frames: 256,
            ..Default::default()
        }
    }

    fn page(fill: u8) -> [u8; PAGE_SIZE as usize] {
        let mut p = [0u8; PAGE_SIZE as usize];
        for (i, b) in p.iter_mut().enumerate() {
            *b = fill ^ (i % 17) as u8;
        }
        p
    }

    /// Scans enough rounds for idle detection + fusion.
    fn settle(s: &mut System<VUsion>) {
        s.force_scans(12);
    }

    #[test]
    fn duplicates_really_merge() {
        let (mut s, a, v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(1));
        s.write_page(v, VirtAddr(BASE), &page(1));
        settle(&mut s);
        assert_eq!(s.policy.pages_saved(), 1);
        let fa = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        let fv = s.machine.leaf(v, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert_eq!(fa, fv, "duplicates share one frame");
    }

    #[test]
    fn merged_frame_is_nobodys_original() {
        // RA: unlike KSM, the shared frame must be a fresh random frame,
        // not either party's.
        let (mut s, a, v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(2));
        s.write_page(v, VirtAddr(BASE), &page(2));
        let fa = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        let fv = s.machine.leaf(v, VirtAddr(BASE)).expect("leaf").pte.frame();
        settle(&mut s);
        let shared = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert_ne!(shared, fa, "attacker's frame must not back the fused page");
        assert_ne!(shared, fv, "victim's frame must not back the fused page");
    }

    #[test]
    fn all_considered_pages_are_trapped_identically() {
        // SB: merged and fake-merged pages have byte-identical PTE flags.
        let (mut s, a, v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(3)); // Will merge (dup below).
        s.write_page(v, VirtAddr(BASE), &page(3));
        s.write_page(a, VirtAddr(BASE + PAGE_SIZE), &page(99)); // Unique: fake merge.
        settle(&mut s);
        let merged = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte;
        let fake = s
            .machine
            .leaf(a, VirtAddr(BASE + PAGE_SIZE))
            .expect("leaf")
            .pte;
        assert_eq!(merged.flags(), fake.flags(), "SB: identical PTE flags");
        assert!(merged.is_trapped() && merged.has(PteFlags::NO_CACHE));
        assert!(s.policy.stats().fake_merged >= 1);
        assert!(s.policy.stats().merged >= 1);
    }

    #[test]
    fn read_takes_copy_on_access_and_preserves_content() {
        let (mut s, a, v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(4));
        s.write_page(v, VirtAddr(BASE), &page(4));
        settle(&mut s);
        assert!(s.policy.is_managed(a, VirtAddr(BASE)));
        // A *read* unmerges (S⊕F), content intact.
        assert_eq!(s.read(a, VirtAddr(BASE + 7)), page(4)[7]);
        assert!(!s.policy.is_managed(a, VirtAddr(BASE)));
        assert_eq!(s.policy.stats().coa_unmerges, 1);
        // Victim's copy still trapped and intact.
        assert_eq!(s.read_page(v, VirtAddr(BASE)), page(4));
    }

    #[test]
    fn write_after_fusion_preserves_isolation() {
        let (mut s, a, v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(5));
        s.write_page(v, VirtAddr(BASE), &page(5));
        settle(&mut s);
        s.write(v, VirtAddr(BASE), 0xEE);
        assert_eq!(s.read(v, VirtAddr(BASE)), 0xEE);
        assert_eq!(s.read(a, VirtAddr(BASE)), page(5)[0], "attacker unaffected");
    }

    #[test]
    fn active_pages_are_not_considered() {
        let (mut s, a, v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(6));
        s.write_page(v, VirtAddr(BASE), &page(6));
        // Keep both pages hot: touch them between scans.
        for _ in 0..10 {
            s.read(a, VirtAddr(BASE));
            s.read(v, VirtAddr(BASE));
            s.force_scans(1);
        }
        assert_eq!(
            s.policy.stats().merged,
            0,
            "working-set pages stay untouched"
        );
        assert!(s.policy.stats().skipped_active > 0);
        assert!(!s
            .machine
            .leaf(a, VirtAddr(BASE))
            .expect("leaf")
            .pte
            .is_trapped());
    }

    #[test]
    fn unique_pages_get_fake_merged_and_new_random_frame() {
        let (mut s, a, _v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(7));
        let before = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        settle(&mut s);
        let after = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert_ne!(before, after, "fake merge re-backs the page");
        assert!(s
            .machine
            .leaf(a, VirtAddr(BASE))
            .expect("leaf")
            .pte
            .is_trapped());
        // And the content survives the round trip.
        assert_eq!(s.read_page(a, VirtAddr(BASE)), page(7));
    }

    #[test]
    fn backing_frames_rerandomize_each_round() {
        let (mut s, a, _v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(8));
        settle(&mut s);
        let f1 = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        // Drive full rounds without touching the page.
        let rounds_before = s.policy.stats().full_rounds;
        s.force_scans(30);
        assert!(s.policy.stats().full_rounds > rounds_before);
        let f2 = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert_ne!(f1, f2, "decision iii: new backing frame each round");
        assert!(s.policy.stats().rerandomized > 0);
        assert_eq!(s.read_page(a, VirtAddr(BASE)), page(8), "content preserved");
    }

    #[test]
    fn deferred_queue_carries_frees_and_dummies() {
        let (mut s, a, v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(9));
        s.write_page(v, VirtAddr(BASE), &page(9));
        s.write_page(a, VirtAddr(BASE + PAGE_SIZE), &page(42));
        settle(&mut s);
        // CoA on a merged page (dummy) and on a fake-merged page (free).
        s.read(a, VirtAddr(BASE));
        s.read(a, VirtAddr(BASE + PAGE_SIZE));
        s.force_scans(2); // Drains the queue.
        assert!(
            s.policy.deferred.processed_dummies() >= 1,
            "merged CoA queues a dummy"
        );
        assert!(
            s.policy.deferred.processed_frees() >= 1,
            "fake-merged CoA queues a free"
        );
    }

    #[test]
    fn frames_are_conserved_through_full_lifecycle() {
        let (mut s, a, v) = system(small_cfg());
        for i in 0..8u64 {
            s.write_page(a, VirtAddr(BASE + i * PAGE_SIZE), &page(10));
            s.write_page(v, VirtAddr(BASE + i * PAGE_SIZE), &page(10));
        }
        settle(&mut s);
        assert_eq!(s.policy.pages_saved(), 15, "16 duplicates → 1 frame");
        // Unmerge everything by touching it.
        for i in 0..8u64 {
            s.read(a, VirtAddr(BASE + i * PAGE_SIZE));
            s.read(v, VirtAddr(BASE + i * PAGE_SIZE));
        }
        assert_eq!(s.policy.pages_saved(), 0);
        // Contents intact everywhere.
        for i in 0..8u64 {
            assert_eq!(s.read_page(a, VirtAddr(BASE + i * PAGE_SIZE)), page(10));
            assert_eq!(s.read_page(v, VirtAddr(BASE + i * PAGE_SIZE)), page(10));
        }
    }

    #[test]
    fn ra_trace_collects_allocations() {
        let (mut s, a, v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(11));
        s.write_page(v, VirtAddr(BASE), &page(11));
        settle(&mut s);
        s.read(a, VirtAddr(BASE));
        assert!(!s.policy.ra_trace().is_empty());
    }

    #[test]
    fn prepare_collapse_fake_unmerges_in_thp_mode() {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("p").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(BASE), 64, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(BASE), 64);
        let policy = VUsion::new(
            &mut m,
            VUsionConfig {
                pool_frames: 128,
                thp_enhancements: true,
                ..Default::default()
            },
        );
        let mut s = System::new(m, policy);
        s.write_page(pid, VirtAddr(BASE), &page(12));
        s.force_scans(12);
        assert!(s.policy.is_managed(pid, VirtAddr(BASE)));
        let ok = s.policy.prepare_collapse(&mut s.machine, pid, VirtAddr(0));
        assert!(ok);
        // Nothing in that range; now the range that actually has the page.
        let hb = VirtAddr(BASE).huge_base();
        assert!(s.policy.prepare_collapse(&mut s.machine, pid, hb));
        assert!(
            !s.policy.is_managed(pid, VirtAddr(BASE)),
            "sub-page fake-unmerged"
        );
        assert!(s.policy.stats().collapse_unmerges >= 1);
    }

    #[test]
    fn plain_mode_vetoes_collapse_of_managed_ranges() {
        let (mut s, a, _v) = system(small_cfg());
        s.write_page(a, VirtAddr(BASE), &page(13));
        settle(&mut s);
        assert!(s.policy.is_managed(a, VirtAddr(BASE)));
        let hb = VirtAddr(BASE).huge_base();
        assert!(!s.policy.prepare_collapse(&mut s.machine, a, hb));
        assert!(s.policy.is_managed(a, VirtAddr(BASE)), "page stays managed");
    }
}
