//! A content-indexed AVL tree, from scratch.
//!
//! Windows Page Fusion "stores the metadata about the already merged pages
//! in multiple AVL trees that have the same functionality as KSM's stable
//! tree" (§2.2). As with [`crate::rbtree`], keys are the 4 KiB contents of
//! referenced frames, so every comparing operation takes a `cmp` closure.

use std::cmp::Ordering;

use vusion_mem::FrameId;

use crate::rbtree::NodeId;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<V> {
    frame: FrameId,
    value: Option<V>,
    left: usize,
    right: usize,
    height: i32,
}

/// An AVL tree keyed by page content.
pub struct ContentAvlTree<V> {
    nodes: Vec<Node<V>>,
    root: usize,
    free: Vec<usize>,
    len: usize,
}

impl<V> Default for ContentAvlTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ContentAvlTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every node.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    fn is_live(&self, idx: usize) -> bool {
        idx < self.nodes.len() && self.nodes[idx].value.is_some()
    }

    /// The frame a node references.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn frame(&self, id: NodeId) -> FrameId {
        assert!(self.is_live(id.0), "stale node id");
        self.nodes[id.0].frame
    }

    /// The value stored at a node.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn value(&self, id: NodeId) -> &V {
        assert!(self.is_live(id.0), "stale node id");
        match self.nodes[id.0].value.as_ref() {
            Some(v) => v,
            // is_live above checked value.is_some().
            None => unreachable!("live node has a value"),
        }
    }

    /// The value stored at a node, mutably.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn value_mut(&mut self, id: NodeId) -> &mut V {
        assert!(self.is_live(id.0), "stale node id");
        match self.nodes[id.0].value.as_mut() {
            Some(v) => v,
            // is_live above checked value.is_some().
            None => unreachable!("live node has a value"),
        }
    }

    fn height(&self, idx: usize) -> i32 {
        if idx == NIL {
            0
        } else {
            self.nodes[idx].height
        }
    }

    fn update_height(&mut self, idx: usize) {
        let h = 1 + self
            .height(self.nodes[idx].left)
            .max(self.height(self.nodes[idx].right));
        self.nodes[idx].height = h;
    }

    fn balance_factor(&self, idx: usize) -> i32 {
        self.height(self.nodes[idx].left) - self.height(self.nodes[idx].right)
    }

    fn rotate_right(&mut self, y: usize) -> usize {
        let x = self.nodes[y].left;
        self.nodes[y].left = self.nodes[x].right;
        self.nodes[x].right = y;
        self.update_height(y);
        self.update_height(x);
        x
    }

    fn rotate_left(&mut self, x: usize) -> usize {
        let y = self.nodes[x].right;
        self.nodes[x].right = self.nodes[y].left;
        self.nodes[y].left = x;
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rebalance(&mut self, idx: usize) -> usize {
        self.update_height(idx);
        let bf = self.balance_factor(idx);
        if bf > 1 {
            if self.balance_factor(self.nodes[idx].left) < 0 {
                let l = self.nodes[idx].left;
                self.nodes[idx].left = self.rotate_left(l);
            }
            self.rotate_right(idx)
        } else if bf < -1 {
            if self.balance_factor(self.nodes[idx].right) > 0 {
                let r = self.nodes[idx].right;
                self.nodes[idx].right = self.rotate_right(r);
            }
            self.rotate_left(idx)
        } else {
            idx
        }
    }

    /// Searches for a node with content equal to `probe`'s.
    pub fn find(
        &self,
        probe: FrameId,
        mut cmp: impl FnMut(FrameId, FrameId) -> Ordering,
    ) -> Option<NodeId> {
        let mut cur = self.root;
        while cur != NIL {
            match cmp(probe, self.nodes[cur].frame) {
                Ordering::Equal => return Some(NodeId(cur)),
                Ordering::Less => cur = self.nodes[cur].left,
                Ordering::Greater => cur = self.nodes[cur].right,
            }
        }
        None
    }

    /// Inserts a node for `frame` unless an equal-content node exists.
    /// Returns `(id, true)` on insert or `(existing, false)` on a match.
    pub fn insert(
        &mut self,
        frame: FrameId,
        value: V,
        mut cmp: impl FnMut(FrameId, FrameId) -> Ordering,
    ) -> (NodeId, bool) {
        let mut found = None;
        let root = self.root;
        let new_root = self.insert_rec(root, frame, &mut Some(value), &mut cmp, &mut found);
        self.root = new_root;
        match found {
            Some((id, inserted)) => (id, inserted),
            // vlint: allow(E001, insert_rec always stages found before returning — reaching this arm is corruption worth stopping on)
            None => unreachable!("insert always resolves"),
        }
    }

    fn insert_rec(
        &mut self,
        idx: usize,
        frame: FrameId,
        value: &mut Option<V>,
        cmp: &mut impl FnMut(FrameId, FrameId) -> Ordering,
        found: &mut Option<(NodeId, bool)>,
    ) -> usize {
        if idx == NIL {
            let Some(v) = value.take() else {
                // The recursion reaches NIL at most once per insert, so
                // the staged value is still present.
                // vlint: allow(E001, the recursion reaches NIL at most once per insert)
                unreachable!("insert consumes its value exactly once");
            };
            let node = Node {
                frame,
                value: Some(v),
                left: NIL,
                right: NIL,
                height: 1,
            };
            let new = if let Some(slot) = self.free.pop() {
                self.nodes[slot] = node;
                slot
            } else {
                self.nodes.push(node);
                self.nodes.len() - 1
            };
            self.len += 1;
            *found = Some((NodeId(new), true));
            return new;
        }
        match cmp(frame, self.nodes[idx].frame) {
            Ordering::Equal => {
                *found = Some((NodeId(idx), false));
                idx
            }
            Ordering::Less => {
                let l = self.nodes[idx].left;
                let nl = self.insert_rec(l, frame, value, cmp, found);
                self.nodes[idx].left = nl;
                self.rebalance(idx)
            }
            Ordering::Greater => {
                let r = self.nodes[idx].right;
                let nr = self.insert_rec(r, frame, value, cmp, found);
                self.nodes[idx].right = nr;
                self.rebalance(idx)
            }
        }
    }

    /// Removes the node whose content equals `probe`'s, returning its value.
    pub fn remove(
        &mut self,
        probe: FrameId,
        mut cmp: impl FnMut(FrameId, FrameId) -> Ordering,
    ) -> Option<V> {
        let mut removed = None;
        let root = self.root;
        self.root = self.remove_rec(root, probe, &mut cmp, &mut removed);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(
        &mut self,
        idx: usize,
        probe: FrameId,
        cmp: &mut impl FnMut(FrameId, FrameId) -> Ordering,
        removed: &mut Option<V>,
    ) -> usize {
        if idx == NIL {
            return NIL;
        }
        match cmp(probe, self.nodes[idx].frame) {
            Ordering::Less => {
                let l = self.nodes[idx].left;
                let nl = self.remove_rec(l, probe, cmp, removed);
                self.nodes[idx].left = nl;
                self.rebalance(idx)
            }
            Ordering::Greater => {
                let r = self.nodes[idx].right;
                let nr = self.remove_rec(r, probe, cmp, removed);
                self.nodes[idx].right = nr;
                self.rebalance(idx)
            }
            Ordering::Equal => {
                *removed = self.nodes[idx].value.take();
                let (l, r) = (self.nodes[idx].left, self.nodes[idx].right);
                self.free.push(idx);
                if l == NIL {
                    return r;
                }
                if r == NIL {
                    return l;
                }
                // Two children: replace with in-order successor.
                let succ = {
                    let mut s = r;
                    while self.nodes[s].left != NIL {
                        s = self.nodes[s].left;
                    }
                    s
                };
                let succ_frame = self.nodes[succ].frame;
                let succ_value = self.nodes[succ].value.take();
                // Detach the successor from the right subtree.
                let mut detached = None;
                let nr = self.detach_min(r, &mut detached);
                debug_assert_eq!(detached, Some(succ));
                // Reuse the detached successor slot as the new subtree root.
                self.free.retain(|&f| f != idx); // idx is being reused below.
                self.nodes[idx].frame = succ_frame;
                self.nodes[idx].value = succ_value;
                self.nodes[idx].right = nr;
                // Left child unchanged.
                self.free.push(succ);
                self.rebalance(idx)
            }
        }
    }

    fn detach_min(&mut self, idx: usize, detached: &mut Option<usize>) -> usize {
        if self.nodes[idx].left == NIL {
            *detached = Some(idx);
            return self.nodes[idx].right;
        }
        let l = self.nodes[idx].left;
        let nl = self.detach_min(l, detached);
        self.nodes[idx].left = nl;
        self.rebalance(idx)
    }

    /// Serializes the arena slot-for-slot, including the free list, so
    /// [`Self::load_with`] reproduces identical [`NodeId`]s and slot-reuse
    /// order.
    pub fn save_with(
        &self,
        w: &mut vusion_snapshot::Writer,
        mut save_value: impl FnMut(&V, &mut vusion_snapshot::Writer),
    ) {
        w.usize(self.nodes.len());
        for n in &self.nodes {
            w.u64(n.frame.0);
            w.usize(n.left);
            w.usize(n.right);
            w.u32(n.height as u32);
            match &n.value {
                Some(v) => {
                    w.bool(true);
                    save_value(v, w);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.root);
        w.usize(self.free.len());
        for &slot in &self.free {
            w.usize(slot);
        }
        w.usize(self.len);
    }

    /// Rebuilds a tree written by [`Self::save_with`].
    pub fn load_with(
        r: &mut vusion_snapshot::Reader<'_>,
        mut load_value: impl FnMut(
            &mut vusion_snapshot::Reader<'_>,
        ) -> Result<V, vusion_snapshot::SnapshotError>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        let count = r.usize()?;
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            let frame = FrameId(r.u64()?);
            let left = r.usize()?;
            let right = r.usize()?;
            let height = r.u32()? as i32;
            let value = if r.bool()? {
                Some(load_value(r)?)
            } else {
                None
            };
            nodes.push(Node {
                frame,
                value,
                left,
                right,
                height,
            });
        }
        let root = r.usize()?;
        let free_count = r.usize()?;
        let mut free = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            free.push(r.usize()?);
        }
        let len = r.usize()?;
        Ok(Self {
            nodes,
            root,
            free,
            len,
        })
    }

    /// Verifies AVL invariants (heights correct, |balance| ≤ 1). Returns
    /// the tree height.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_invariants(&self) -> i32 {
        self.check(self.root)
    }

    /// # Panics
    ///
    /// Panics if the subtree violates the AVL height or balance invariant.
    fn check(&self, idx: usize) -> i32 {
        if idx == NIL {
            return 0;
        }
        let lh = self.check(self.nodes[idx].left);
        let rh = self.check(self.nodes[idx].right);
        assert_eq!(self.nodes[idx].height, 1 + lh.max(rh), "stale height");
        assert!((lh - rh).abs() <= 1, "AVL balance violated");
        1 + lh.max(rh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_id(a: FrameId, b: FrameId) -> Ordering {
        a.0.cmp(&b.0)
    }

    #[test]
    fn insert_find_remove() {
        let mut t = ContentAvlTree::new();
        let (a, ins) = t.insert(FrameId(10), "ten", by_id);
        assert!(ins);
        t.insert(FrameId(5), "five", by_id);
        t.insert(FrameId(15), "fifteen", by_id);
        assert_eq!(t.len(), 3);
        assert_eq!(t.find(FrameId(10), by_id), Some(a));
        assert_eq!(t.remove(FrameId(10), by_id), Some("ten"));
        assert_eq!(t.find(FrameId(10), by_id), None);
        assert_eq!(t.len(), 2);
        t.assert_invariants();
    }

    #[test]
    fn duplicate_returns_existing() {
        let mut t = ContentAvlTree::new();
        let (a, _) = t.insert(FrameId(1), 1u32, by_id);
        let (b, inserted) = t.insert(FrameId(1), 2u32, by_id);
        assert_eq!(a, b);
        assert!(!inserted);
        assert_eq!(*t.value(a), 1);
    }

    #[test]
    fn ascending_insert_is_logarithmic() {
        let mut t = ContentAvlTree::new();
        for i in 0..1024u64 {
            t.insert(FrameId(i), (), by_id);
        }
        let h = t.assert_invariants();
        // AVL height ≤ 1.44 log2(n+2): for 1024 nodes that is ≤ 15.
        assert!(h <= 15, "height {h} too large for 1024 nodes");
    }

    #[test]
    fn interleaved_ops_keep_invariants() {
        let mut t = ContentAvlTree::new();
        let mut present = std::collections::BTreeSet::new();
        let mut x = 999u64;
        for step in 0..4000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let key = x >> 45;
            if step % 3 != 2 {
                t.insert(FrameId(key), key, by_id);
                present.insert(key);
            } else if let Some(&k) = present.iter().next() {
                assert_eq!(t.remove(FrameId(k), by_id), Some(k));
                present.remove(&k);
            }
            if step % 237 == 0 {
                t.assert_invariants();
            }
        }
        t.assert_invariants();
        assert_eq!(t.len(), present.len());
        for &k in &present {
            assert!(t.find(FrameId(k), by_id).is_some(), "key {k} lost");
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = ContentAvlTree::new();
        t.insert(FrameId(1), (), by_id);
        assert_eq!(t.remove(FrameId(2), by_id), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_node_with_two_children() {
        let mut t = ContentAvlTree::new();
        for k in [50u64, 25, 75, 10, 30, 60, 90, 27, 35] {
            t.insert(FrameId(k), k, by_id);
        }
        assert_eq!(t.remove(FrameId(25), by_id), Some(25));
        t.assert_invariants();
        for k in [50u64, 75, 10, 30, 60, 90, 27, 35] {
            assert!(t.find(FrameId(k), by_id).is_some(), "{k} lost");
        }
        assert_eq!(t.find(FrameId(25), by_id), None);
    }

    #[test]
    fn clear_empties() {
        let mut t = ContentAvlTree::new();
        for i in 0..10u64 {
            t.insert(FrameId(i), (), by_id);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.find(FrameId(3), by_id), None);
    }

    #[test]
    fn content_comparator_with_memory() {
        use vusion_mem::{PhysAddr, PhysMemory};
        let mut mem = PhysMemory::new(3);
        mem.write_byte(PhysAddr(0), 7);
        mem.write_byte(PhysAddr(2 * 4096), 7); // Frame 2 equals frame 0.
        let mut t = ContentAvlTree::new();
        let cmp = |a: FrameId, b: FrameId| mem.compare_pages(a, b);
        let (n0, _) = t.insert(FrameId(0), "x", cmp);
        let (n2, inserted) = t.insert(FrameId(2), "y", cmp);
        assert!(!inserted);
        assert_eq!(n0, n2);
    }
}
