//! A content-indexed red-black tree, from scratch.
//!
//! KSM's stable and unstable trees are red-black trees that "use the
//! contents of the pages to balance themselves" (§2.1): the key of a node
//! is the 4 KiB content of the physical frame it references, compared
//! lexicographically. Because the tree cannot own the frames, every
//! comparing operation takes a `cmp` closure (the engines pass
//! [`vusion_mem::PhysMemory::compare_pages`]).
//!
//! The implementation is an arena-based CLRS red-black tree with parent
//! pointers, full insert/delete fixups, and a structural invariant checker
//! used by the property tests.

use std::cmp::Ordering;

use vusion_mem::FrameId;

/// Handle to a tree node. Stable until the node is removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug)]
struct Node<V> {
    frame: FrameId,
    value: Option<V>, // None marks a freed arena slot.
    left: usize,
    right: usize,
    parent: usize,
    color: Color,
}

/// A red-black tree whose keys are page contents.
pub struct ContentRbTree<V> {
    nodes: Vec<Node<V>>,
    root: usize,
    free: Vec<usize>,
    len: usize,
}

impl<V> Default for ContentRbTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ContentRbTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every node.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    /// The frame a node references.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn frame(&self, id: NodeId) -> FrameId {
        assert!(self.is_live(id.0), "stale node id");
        self.nodes[id.0].frame
    }

    /// Repoints a node at a different frame **with identical content** (the
    /// VUsion re-randomization of backing frames, §7.1 decision iii). The
    /// caller guarantees content equality, so ordering is unaffected.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn set_frame(&mut self, id: NodeId, frame: FrameId) {
        assert!(self.is_live(id.0), "stale node id");
        self.nodes[id.0].frame = frame;
    }

    /// The value stored at a node.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn value(&self, id: NodeId) -> &V {
        assert!(self.is_live(id.0), "stale node id");
        match self.nodes[id.0].value.as_ref() {
            Some(v) => v,
            // is_live above checked value.is_some().
            None => unreachable!("live node has a value"),
        }
    }

    /// The value stored at a node, mutably.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn value_mut(&mut self, id: NodeId) -> &mut V {
        assert!(self.is_live(id.0), "stale node id");
        match self.nodes[id.0].value.as_mut() {
            Some(v) => v,
            // is_live above checked value.is_some().
            None => unreachable!("live node has a value"),
        }
    }

    fn is_live(&self, idx: usize) -> bool {
        idx < self.nodes.len() && self.nodes[idx].value.is_some()
    }

    /// Searches for a node whose frame content equals `probe`'s, using
    /// `cmp(probe, node_frame)`.
    pub fn find(
        &self,
        probe: FrameId,
        mut cmp: impl FnMut(FrameId, FrameId) -> Ordering,
    ) -> Option<NodeId> {
        let mut cur = self.root;
        while cur != NIL {
            match cmp(probe, self.nodes[cur].frame) {
                Ordering::Equal => return Some(NodeId(cur)),
                Ordering::Less => cur = self.nodes[cur].left,
                Ordering::Greater => cur = self.nodes[cur].right,
            }
        }
        None
    }

    /// Inserts a node for `frame` unless an equal-content node exists.
    /// Returns `(id, true)` on insert or `(existing, false)` on a match.
    pub fn insert(
        &mut self,
        frame: FrameId,
        value: V,
        mut cmp: impl FnMut(FrameId, FrameId) -> Ordering,
    ) -> (NodeId, bool) {
        let mut parent = NIL;
        let mut cur = self.root;
        let mut went_left = false;
        while cur != NIL {
            parent = cur;
            match cmp(frame, self.nodes[cur].frame) {
                Ordering::Equal => return (NodeId(cur), false),
                Ordering::Less => {
                    cur = self.nodes[cur].left;
                    went_left = true;
                }
                Ordering::Greater => {
                    cur = self.nodes[cur].right;
                    went_left = false;
                }
            }
        }
        let idx = self.alloc_node(frame, value, parent);
        if parent == NIL {
            self.root = idx;
        } else if went_left {
            self.nodes[parent].left = idx;
        } else {
            self.nodes[parent].right = idx;
        }
        self.len += 1;
        self.insert_fixup(idx);
        (NodeId(idx), true)
    }

    fn alloc_node(&mut self, frame: FrameId, value: V, parent: usize) -> usize {
        let node = Node {
            frame,
            value: Some(value),
            left: NIL,
            right: NIL,
            parent,
            color: Color::Red,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn color(&self, idx: usize) -> Color {
        if idx == NIL {
            Color::Black
        } else {
            self.nodes[idx].color
        }
    }

    fn rotate_left(&mut self, x: usize) {
        let y = self.nodes[x].right;
        debug_assert_ne!(y, NIL);
        self.nodes[x].right = self.nodes[y].left;
        if self.nodes[y].left != NIL {
            let l = self.nodes[y].left;
            self.nodes[l].parent = x;
        }
        self.nodes[y].parent = self.nodes[x].parent;
        let p = self.nodes[x].parent;
        if p == NIL {
            self.root = y;
        } else if self.nodes[p].left == x {
            self.nodes[p].left = y;
        } else {
            self.nodes[p].right = y;
        }
        self.nodes[y].left = x;
        self.nodes[x].parent = y;
    }

    fn rotate_right(&mut self, x: usize) {
        let y = self.nodes[x].left;
        debug_assert_ne!(y, NIL);
        self.nodes[x].left = self.nodes[y].right;
        if self.nodes[y].right != NIL {
            let r = self.nodes[y].right;
            self.nodes[r].parent = x;
        }
        self.nodes[y].parent = self.nodes[x].parent;
        let p = self.nodes[x].parent;
        if p == NIL {
            self.root = y;
        } else if self.nodes[p].right == x {
            self.nodes[p].right = y;
        } else {
            self.nodes[p].left = y;
        }
        self.nodes[y].right = x;
        self.nodes[x].parent = y;
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while self.color(self.nodes[z].parent) == Color::Red {
            let p = self.nodes[z].parent;
            let g = self.nodes[p].parent;
            if p == self.nodes[g].left {
                let u = self.nodes[g].right;
                if self.color(u) == Color::Red {
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    z = g;
                } else {
                    if z == self.nodes[p].right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.rotate_right(g);
                }
            } else {
                let u = self.nodes[g].left;
                if self.color(u) == Color::Red {
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    z = g;
                } else {
                    if z == self.nodes[p].left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.rotate_left(g);
                }
            }
        }
        let r = self.root;
        self.nodes[r].color = Color::Black;
    }

    fn minimum(&self, mut x: usize) -> usize {
        while self.nodes[x].left != NIL {
            x = self.nodes[x].left;
        }
        x
    }

    fn transplant(&mut self, u: usize, v: usize) {
        let p = self.nodes[u].parent;
        if p == NIL {
            self.root = v;
        } else if u == self.nodes[p].left {
            self.nodes[p].left = v;
        } else {
            self.nodes[p].right = v;
        }
        if v != NIL {
            self.nodes[v].parent = p;
        }
    }

    /// Removes a node, returning its value.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn remove(&mut self, id: NodeId) -> V {
        assert!(self.is_live(id.0), "stale node id");
        let z = id.0;
        let fix_parent; // Parent of the (possibly NIL) node that moved into place.
        let x;
        let mut removed_color = self.nodes[z].color;
        if self.nodes[z].left == NIL {
            x = self.nodes[z].right;
            fix_parent = self.nodes[z].parent;
            self.transplant(z, x);
        } else if self.nodes[z].right == NIL {
            x = self.nodes[z].left;
            fix_parent = self.nodes[z].parent;
            self.transplant(z, x);
        } else {
            let y = self.minimum(self.nodes[z].right);
            removed_color = self.nodes[y].color;
            x = self.nodes[y].right;
            if self.nodes[y].parent == z {
                fix_parent = y;
            } else {
                fix_parent = self.nodes[y].parent;
                self.transplant(y, x);
                self.nodes[y].right = self.nodes[z].right;
                let r = self.nodes[y].right;
                self.nodes[r].parent = y;
            }
            self.transplant(z, y);
            self.nodes[y].left = self.nodes[z].left;
            let l = self.nodes[y].left;
            self.nodes[l].parent = y;
            self.nodes[y].color = self.nodes[z].color;
        }
        if removed_color == Color::Black {
            self.delete_fixup(x, fix_parent);
        }
        self.len -= 1;
        self.free.push(z);
        match self.nodes[z].value.take() {
            Some(v) => v,
            // Callers hold a NodeId to a live node; a live node's value
            // slot is always populated.
            None => unreachable!("live node has a value"),
        }
    }

    fn delete_fixup(&mut self, mut x: usize, mut parent: usize) {
        while x != self.root && self.color(x) == Color::Black {
            if parent == NIL {
                break;
            }
            if x == self.nodes[parent].left {
                let mut w = self.nodes[parent].right;
                if self.color(w) == Color::Red {
                    self.nodes[w].color = Color::Black;
                    self.nodes[parent].color = Color::Red;
                    self.rotate_left(parent);
                    w = self.nodes[parent].right;
                }
                if self.color(self.nodes[w].left) == Color::Black
                    && self.color(self.nodes[w].right) == Color::Black
                {
                    self.nodes[w].color = Color::Red;
                    x = parent;
                    parent = self.nodes[x].parent;
                } else {
                    if self.color(self.nodes[w].right) == Color::Black {
                        let wl = self.nodes[w].left;
                        if wl != NIL {
                            self.nodes[wl].color = Color::Black;
                        }
                        self.nodes[w].color = Color::Red;
                        self.rotate_right(w);
                        w = self.nodes[parent].right;
                    }
                    self.nodes[w].color = self.nodes[parent].color;
                    self.nodes[parent].color = Color::Black;
                    let wr = self.nodes[w].right;
                    if wr != NIL {
                        self.nodes[wr].color = Color::Black;
                    }
                    self.rotate_left(parent);
                    x = self.root;
                    parent = NIL;
                }
            } else {
                let mut w = self.nodes[parent].left;
                if self.color(w) == Color::Red {
                    self.nodes[w].color = Color::Black;
                    self.nodes[parent].color = Color::Red;
                    self.rotate_right(parent);
                    w = self.nodes[parent].left;
                }
                if self.color(self.nodes[w].right) == Color::Black
                    && self.color(self.nodes[w].left) == Color::Black
                {
                    self.nodes[w].color = Color::Red;
                    x = parent;
                    parent = self.nodes[x].parent;
                } else {
                    if self.color(self.nodes[w].left) == Color::Black {
                        let wr = self.nodes[w].right;
                        if wr != NIL {
                            self.nodes[wr].color = Color::Black;
                        }
                        self.nodes[w].color = Color::Red;
                        self.rotate_left(w);
                        w = self.nodes[parent].left;
                    }
                    self.nodes[w].color = self.nodes[parent].color;
                    self.nodes[parent].color = Color::Black;
                    let wl = self.nodes[w].left;
                    if wl != NIL {
                        self.nodes[wl].color = Color::Black;
                    }
                    self.rotate_right(parent);
                    x = self.root;
                    parent = NIL;
                }
            }
        }
        if x != NIL {
            self.nodes[x].color = Color::Black;
        }
    }

    /// Ids of all live nodes (unordered).
    pub fn ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.is_live(i))
            .map(NodeId)
            .collect()
    }

    /// Serializes the arena slot-for-slot — node indices, colors, and the
    /// free list verbatim — so [`Self::load_with`] reproduces identical
    /// [`NodeId`]s and engine-side reverse maps survive a restore.
    pub fn save_with(
        &self,
        w: &mut vusion_snapshot::Writer,
        mut save_value: impl FnMut(&V, &mut vusion_snapshot::Writer),
    ) {
        w.usize(self.nodes.len());
        for n in &self.nodes {
            w.u64(n.frame.0);
            w.usize(n.left);
            w.usize(n.right);
            w.usize(n.parent);
            w.u8(match n.color {
                Color::Red => 0,
                Color::Black => 1,
            });
            match &n.value {
                Some(v) => {
                    w.bool(true);
                    save_value(v, w);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.root);
        w.usize(self.free.len());
        for &slot in &self.free {
            w.usize(slot);
        }
        w.usize(self.len);
    }

    /// Rebuilds a tree written by [`Self::save_with`].
    pub fn load_with(
        r: &mut vusion_snapshot::Reader<'_>,
        mut load_value: impl FnMut(
            &mut vusion_snapshot::Reader<'_>,
        ) -> Result<V, vusion_snapshot::SnapshotError>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        let count = r.usize()?;
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            let frame = FrameId(r.u64()?);
            let left = r.usize()?;
            let right = r.usize()?;
            let parent = r.usize()?;
            let color = match r.u8()? {
                0 => Color::Red,
                1 => Color::Black,
                _ => return Err(vusion_snapshot::SnapshotError::Corrupt("bad node color")),
            };
            let value = if r.bool()? {
                Some(load_value(r)?)
            } else {
                None
            };
            nodes.push(Node {
                frame,
                value,
                left,
                right,
                parent,
                color,
            });
        }
        let root = r.usize()?;
        let free_count = r.usize()?;
        let mut free = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            free.push(r.usize()?);
        }
        let len = r.usize()?;
        Ok(Self {
            nodes,
            root,
            free,
            len,
        })
    }

    /// Verifies the red-black invariants (test/debug helper):
    /// root is black, no red node has a red child, and every root-to-leaf
    /// path has the same black height. Returns the black height.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_invariants(&self) -> usize {
        if self.root == NIL {
            return 0;
        }
        assert_eq!(
            self.nodes[self.root].color,
            Color::Black,
            "root must be black"
        );
        assert_eq!(self.nodes[self.root].parent, NIL, "root has no parent");
        self.check(self.root)
    }

    /// # Panics
    ///
    /// Panics if the subtree violates a red-black invariant (coloring,
    /// parent pointers, or black height).
    fn check(&self, idx: usize) -> usize {
        if idx == NIL {
            return 1;
        }
        let n = &self.nodes[idx];
        if n.color == Color::Red {
            assert_eq!(
                self.color(n.left),
                Color::Black,
                "red node with red left child"
            );
            assert_eq!(
                self.color(n.right),
                Color::Black,
                "red node with red right child"
            );
        }
        if n.left != NIL {
            assert_eq!(self.nodes[n.left].parent, idx, "broken parent pointer");
        }
        if n.right != NIL {
            assert_eq!(self.nodes[n.right].parent, idx, "broken parent pointer");
        }
        let lh = self.check(n.left);
        let rh = self.check(n.right);
        assert_eq!(lh, rh, "unequal black heights");
        lh + usize::from(n.color == Color::Black)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compare frames by their numeric id — a stand-in for content
    /// comparison in structural tests.
    fn by_id(a: FrameId, b: FrameId) -> Ordering {
        a.0.cmp(&b.0)
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let mut t = ContentRbTree::new();
        let (a, ins) = t.insert(FrameId(5), "five", by_id);
        assert!(ins);
        let (b, ins) = t.insert(FrameId(3), "three", by_id);
        assert!(ins);
        assert_eq!(t.len(), 2);
        assert_eq!(t.find(FrameId(5), by_id), Some(a));
        assert_eq!(t.find(FrameId(3), by_id), Some(b));
        assert_eq!(t.find(FrameId(9), by_id), None);
        assert_eq!(t.remove(a), "five");
        assert_eq!(t.find(FrameId(5), by_id), None);
        assert_eq!(t.len(), 1);
        t.assert_invariants();
    }

    #[test]
    fn duplicate_insert_returns_existing() {
        let mut t = ContentRbTree::new();
        let (a, _) = t.insert(FrameId(5), 1u32, by_id);
        let (b, inserted) = t.insert(FrameId(5), 2u32, by_id);
        assert_eq!(a, b);
        assert!(!inserted);
        assert_eq!(*t.value(a), 1, "original value preserved");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ascending_insert_stays_balanced() {
        let mut t = ContentRbTree::new();
        for i in 0..1000u64 {
            t.insert(FrameId(i), i, by_id);
            if i % 100 == 0 {
                t.assert_invariants();
            }
        }
        let bh = t.assert_invariants();
        // A balanced RB tree of 1000 nodes has black height ≤ ~1+log2(1001).
        assert!(bh <= 11, "black height {bh} suggests imbalance");
        for i in 0..1000u64 {
            assert!(t.find(FrameId(i), by_id).is_some());
        }
    }

    #[test]
    fn interleaved_insert_delete_keeps_invariants() {
        let mut t = ContentRbTree::new();
        let mut ids = Vec::new();
        // Pseudo-random but deterministic sequence.
        let mut x = 12345u64;
        for step in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x >> 40;
            if step % 3 != 2 {
                let (id, inserted) = t.insert(FrameId(key), key, by_id);
                if inserted {
                    ids.push((id, key));
                }
            } else if !ids.is_empty() {
                let pos = (x as usize) % ids.len();
                let (id, key) = ids.swap_remove(pos);
                assert_eq!(t.remove(id), key);
            }
            if step % 171 == 0 {
                t.assert_invariants();
            }
        }
        t.assert_invariants();
        // Everything still present is findable.
        for &(id, key) in &ids {
            assert_eq!(t.find(FrameId(key), by_id), Some(id));
        }
    }

    #[test]
    fn remove_all_empties_tree() {
        let mut t = ContentRbTree::new();
        let ids: Vec<_> = (0..100u64)
            .map(|i| t.insert(FrameId(i), (), by_id).0)
            .collect();
        for id in ids {
            t.remove(id);
            t.assert_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.find(FrameId(50), by_id), None);
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut t = ContentRbTree::new();
        let (a, _) = t.insert(FrameId(1), (), by_id);
        t.remove(a);
        let (b, _) = t.insert(FrameId(2), (), by_id);
        assert_eq!(a.0, b.0, "freed slot reused");
    }

    #[test]
    fn set_frame_repoints_without_reorder() {
        let mut t = ContentRbTree::new();
        let (id, _) = t.insert(FrameId(5), (), by_id);
        // Content-equal relocation: the engines guarantee the new frame
        // compares equal; for the structural test we simply don't search.
        t.set_frame(id, FrameId(500));
        assert_eq!(t.frame(id), FrameId(500));
        t.assert_invariants();
    }

    #[test]
    fn ids_lists_live_nodes() {
        let mut t = ContentRbTree::new();
        let (a, _) = t.insert(FrameId(1), (), by_id);
        let (b, _) = t.insert(FrameId(2), (), by_id);
        t.remove(a);
        let ids = t.ids();
        assert_eq!(ids, vec![b]);
    }

    #[test]
    #[should_panic(expected = "stale node id")]
    fn stale_id_panics() {
        let mut t = ContentRbTree::new();
        let (a, _) = t.insert(FrameId(1), (), by_id);
        t.remove(a);
        let _ = t.value(a);
    }

    #[test]
    fn content_comparator_with_memory() {
        // End-to-end with real page contents.
        use vusion_mem::{PhysAddr, PhysMemory};
        let mut mem = PhysMemory::new(4);
        mem.write_byte(PhysAddr(0), 2); // Frame 0 content "2..."
        mem.write_byte(PhysAddr(4096), 1); // Frame 1 content "1..."
        mem.write_byte(PhysAddr(2 * 4096), 2); // Frame 2 equals frame 0.
        let mut t = ContentRbTree::new();
        let cmp = |a: FrameId, b: FrameId| mem.compare_pages(a, b);
        let (n0, ins0) = t.insert(FrameId(0), "first", cmp);
        assert!(ins0);
        let (_n1, ins1) = t.insert(FrameId(1), "second", cmp);
        assert!(ins1);
        let (n2, ins2) = t.insert(FrameId(2), "dup", cmp);
        assert!(!ins2, "equal content must match");
        assert_eq!(n0, n2);
        assert_eq!(t.find(FrameId(2), cmp), Some(n0));
    }
}
