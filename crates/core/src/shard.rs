//! Deterministic sharded execution of the read-only scan phase.
//!
//! The engines split every scan pass into two phases:
//!
//! 1. **Shard phase (parallel, read-only).** Work items are partitioned
//!    by `index % threads` — the same pre-partitioned idiom
//!    `crates/campaign` uses for whole-run fan-out — and each shard runs
//!    on a scoped worker thread against a [`FrameReadView`], which
//!    exposes only pure functions of frame content. Workers never touch
//!    an RNG, an injector, a trace buffer, or the memo cells.
//! 2. **Serial merge/commit phase.** Shard results are folded back in
//!    enumeration order (item 0, 1, 2, …, regardless of which shard
//!    computed them), and every observable action — tree mutation,
//!    injector draw, crash poll, trace event, counter bump — happens
//!    here, in exactly the order a single-threaded pass would take.
//!
//! The consequence, asserted by `tests/trace_determinism.rs`, is that
//! traces, metrics snapshots, and snapshots are byte-identical at any
//! thread count: parallelism changes wall-clock time and nothing else.

use std::collections::BTreeSet;

use vusion_kernel::Machine;
use vusion_mem::FrameId;

/// Runs pre-partitioned work on scoped worker threads and returns the
/// results in enumeration order.
#[derive(Debug, Clone)]
pub struct ShardRunner {
    threads: usize,
}

impl Default for ShardRunner {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

impl ShardRunner {
    /// A runner with `threads` workers (0 is clamped to 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reconfigures the worker count (0 is clamped to 1). A host
    /// knob: results never depend on it.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Maps `work` over `items` and returns the results in enumeration
    /// order. Shard `t` owns the items whose index ≡ `t (mod threads)` —
    /// the partition is fixed before any thread starts, there is no work
    /// stealing or shared queue, and the reduction slots each result back
    /// by its index, so the output is independent of scheduling.
    ///
    /// `work` must be a pure function of `(index, item)` — it receives no
    /// way to reach the machine's RNGs, injectors, or tracer, and the
    /// borrow checker keeps it from mutating shared state.
    ///
    /// # Panics
    ///
    /// Propagates a worker-thread panic (a panicking `work` is a
    /// programming error; the shard runner does not absorb it).
    pub fn run<I, T, F>(&self, items: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let threads = self.threads.min(items.len());
        if threads <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| work(i, item))
                .collect();
        }
        // vlint: allow(T001, this is the approved shard runner — the one place engine-side worker threads may be spawned)
        let shards: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let work = &work;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        items
                            .iter()
                            .enumerate()
                            .skip(t)
                            .step_by(threads)
                            .map(|(i, item)| (i, work(i, item)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(shard) => shard,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        // Deterministic enumeration-order reduction: the indices across
        // all shards are exactly 0..items.len(), so sorting by index
        // restores enumeration order regardless of which worker computed
        // each result.
        let mut flat: Vec<(usize, T)> = shards.into_iter().flatten().collect();
        flat.sort_by_key(|&(i, _)| i);
        flat.into_iter().map(|(_, value)| value).collect()
    }
}

/// Modeled cost of hashing one 4 KiB page: 64 cache lines at LLC-hit
/// latency. Observability-only — it reaches the tracer via
/// [`Machine::scan_cost_shards`] and never advances the workload clock.
fn hash_page_cost(m: &Machine) -> u64 {
    64 * m.costs().llc_hit
}

/// Pre-hashes `frames` for an imminent scan pass: the frames whose
/// memoized hash is stale are partitioned across the runner's shards,
/// hashed in parallel off a read-only view, and the results are seeded
/// into the memo cache in enumeration order. The subsequent (serial) scan
/// logic then hits the cache on every `hash_page`/`observed_hash`,
/// exactly as a warmed single-threaded pass would — hash values are pure
/// functions of content, so behavior is bit-identical at any thread
/// count.
///
/// The modeled cost of the hashing work is attributed per shard and
/// folded deterministically. Returns the number of frames hashed.
pub(crate) fn prehash_frames(m: &mut Machine, runner: &ShardRunner, frames: &[FrameId]) -> usize {
    let need: Vec<FrameId> = {
        let mem = m.mem();
        let mut seen = BTreeSet::new();
        frames
            .iter()
            .copied()
            .filter(|&f| !mem.has_cached_hash(f) && seen.insert(f))
            .collect()
    };
    if need.is_empty() {
        return 0;
    }
    {
        let mem = m.mem();
        let view = mem.read_view();
        let hashes = runner.run(&need, |_, &f| view.hash_page(f));
        for (&f, &h) in need.iter().zip(hashes.iter()) {
            mem.seed_hash(f, h);
        }
    }
    // Cost is attributed over *logical* shards (`index %
    // LOGICAL_SCAN_SHARDS` of the deterministic `need` enumeration), not
    // over worker threads: logical shard l owns ceil((n - l) / L) items,
    // so the per-shard breakdown — and its fold into the trace total — is
    // byte-identical at any `--threads` value.
    let shards = vusion_kernel::LOGICAL_SCAN_SHARDS;
    let per_page = hash_page_cost(m);
    let per_shard: Vec<u64> = (0..shards)
        .map(|l| ((need.len() + shards - 1 - l) / shards) as u64 * per_page)
        .collect();
    m.scan_cost_shards(&per_shard);
    need.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_kernel::MachineConfig;
    use vusion_mem::{PhysAddr, VirtAddr, PAGE_SIZE};
    use vusion_mmu::{Protection, Vma};

    #[test]
    fn run_preserves_enumeration_order_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 7, 16, 200] {
            let runner = ShardRunner::new(threads);
            let got = runner.run(&items, |i, &x| {
                assert_eq!(items[i], x, "index/item pairing must hold");
                x * 3 + 1
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn run_handles_empty_and_singleton_inputs() {
        let runner = ShardRunner::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(runner.run(&empty, |_, &x| x).is_empty());
        assert_eq!(runner.run(&[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let mut r = ShardRunner::new(0);
        assert_eq!(r.threads(), 1);
        r.set_threads(0);
        assert_eq!(r.threads(), 1);
        r.set_threads(4);
        assert_eq!(r.threads(), 4);
    }

    #[test]
    fn prehash_seeds_exactly_the_stale_frames() {
        let mut m = vusion_kernel::Machine::new(MachineConfig::test_small());
        let pid = m.spawn("p").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 8, Protection::rw()));
        let mut frames = Vec::new();
        for pg in 0..8u64 {
            let va = VirtAddr(0x10000 + pg * PAGE_SIZE);
            while let Err(fault) = m.write(pid, va, (pg as u8) + 1) {
                assert!(m.default_fault(&fault), "demand-paging must resolve");
            }
            frames.push(m.leaf(pid, va).expect("leaf").pte.frame());
        }
        // Warm two frames through the normal memoized path.
        let _ = m.mem().hash_page(frames[0]);
        let _ = m.mem().hash_page(frames[1]);
        for threads in [1, 4] {
            let runner = ShardRunner::new(threads);
            // Duplicates in the input must not double-count.
            let mut input = frames.clone();
            input.push(frames[2]);
            let hashed = prehash_frames(&mut m, &runner, &input);
            // First pass: all but the two warmed frames. Second pass: only
            // the frame invalidated at the bottom of the previous iteration.
            assert_eq!(hashed, if threads == 1 { 6 } else { 1 });
            for &f in &frames {
                assert!(m.mem().has_cached_hash(f));
                assert_eq!(m.mem().hash_page(f), m.mem().read_view().hash_page(f));
            }
            // Invalidate one frame; the next prehash rehashes only it.
            m.mem_mut()
                .write_byte(PhysAddr(frames[2].0 * PAGE_SIZE + 7), 0x55);
        }
        let runner = ShardRunner::new(7);
        assert_eq!(prehash_frames(&mut m, &runner, &frames), 1);
    }
}
