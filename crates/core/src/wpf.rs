//! Windows Page Fusion, as reverse-engineered in §2.2 of the paper.
//!
//! WPF has no opt-in: every 15 minutes it scans *all* anonymous memory,
//! computes a hash of every candidate page, sorts the candidates by hash,
//! and merges duplicates. Unlike KSM it backs fused pages with **new**
//! physical pages obtained from `MiAllocatePagesForMdl`, a linear
//! allocator that reserves mostly-contiguous frames from the end of
//! physical memory (holes where frames are in use).
//!
//! Two properties matter for the paper's §5.2 attack:
//!
//! * the *order* in which backing frames are assigned follows the sorted
//!   hash order, so an attacker who controls page contents controls the
//!   physical adjacency of fused pages (enabling double-sided Rowhammer
//!   without huge pages), and
//! * frames released by copy-on-write unmerges go back to the linear
//!   allocator, which re-reserves from the end of memory on the next pass —
//!   near-perfect reuse (Figure 3), hence reuse-based Flip Feng Shui.

use std::collections::BTreeMap;

use vusion_kernel::{
    FusionPolicy, Machine, PageFault, Pid, ScanReport, SpanKind, SurfaceTransition,
};
use vusion_mem::{
    CrashSite, FrameAllocator, FrameId, LinearAllocator, MmError, PageType, VirtAddr, PAGE_SIZE,
};
use vusion_mmu::{GuestTag, Pte, PteFlags, VmaBacking};

use crate::avl::ContentAvlTree;
use crate::scan_cache::{CandidateCache, DirtyTracker, HashIndex};
use crate::shard::{self, ShardRunner};
use crate::TagCounts;

/// WPF tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WpfConfig {
    /// Full-pass period in ns. Windows uses 15 minutes; scaled experiments
    /// configure seconds.
    pub pass_period_ns: u64,
    /// Worker threads for the shard-local (read-only) hashing stage. A
    /// host knob: never serialized, and every observable byte is identical
    /// at any value.
    pub scan_threads: usize,
}

impl Default for WpfConfig {
    fn default() -> Self {
        Self {
            pass_period_ns: 900_000_000_000,
            scan_threads: 1,
        }
    }
}

/// WPF counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WpfStats {
    /// Pages merged onto AVL-tree pages.
    pub merged: u64,
    /// Copy-on-write unmerges.
    pub unmerged: u64,
    /// New backing frames reserved by the linear allocator.
    pub tree_pages_allocated: u64,
    /// Full passes completed.
    pub passes: u64,
}

/// A suspended fusion pass. WPF's pass is staged (hash everything, then
/// sort/group/merge); when a governor budget runs out mid-hashing the
/// cursor and the rows hashed so far park here and the next wakeup
/// resumes where it stopped. The merge stages run only once every
/// candidate has been hashed, so a suspended pass mutates nothing.
struct PassState {
    /// Index of the next candidate to hash.
    cursor: u64,
    /// Candidate count the pass started with. A mismatch on resume means
    /// the candidate set moved under the suspended pass; the pass
    /// restarts from scratch rather than mixing stale and fresh rows.
    total: u64,
    /// `(hash, pid, va, frame)` rows accumulated so far, in visit order.
    hashed: Vec<(u64, u64, u64, u64)>,
}

/// The WPF engine.
pub struct Wpf {
    cfg: WpfConfig,
    /// The stable AVL tree: fused content → mapping count.
    avl: ContentAvlTree<u32>,
    /// Frames owned by the AVL tree.
    avl_index: BTreeMap<FrameId, ()>,
    /// Content-hash pre-filter over the AVL tree's pages.
    avl_hashes: HashIndex,
    /// Cached page enumeration (every VMA page of every process), rebuilt
    /// only when the layout epoch moves.
    candidates: CandidateCache,
    /// The `MiAllocatePagesForMdl` stand-in.
    linear: LinearAllocator,
    /// Mappings currently pointing at tree frames. Frames saved =
    /// `merged_live - live tree pages`.
    merged_live: u64,
    tags: TagCounts,
    stats: WpfStats,
    /// Backing frames assigned last pass, in assignment order (for the
    /// Figure 3 reuse experiment).
    last_pass_frames: Vec<FrameId>,
    /// Dirty-driven pass list: candidates recorded at the end of a
    /// *completed* pass. When every current candidate is clean and no
    /// tree page changed, the whole pass is a provable no-op.
    dirty: DirtyTracker,
    /// Shard runner for the parallel hashing stage.
    // vlint: allow(S001, host-only thread pool — worker count changes wall-clock time only)
    runner: ShardRunner,
    /// Suspended pass, if the previous wakeup's budget ran out mid-stage.
    pass: Option<PassState>,
    /// Per-wake page budget granted by the pressure governor. Never
    /// serialized: the governor re-grants before every wakeup.
    // vlint: allow(S001, host-only wake-scoped grant — the governor re-issues it before every wakeup)
    budget: Option<u64>,
    /// Reclaim-ladder rung 3: while set, no new tree pages are reserved
    /// from the linear allocator; merges onto existing tree pages (which
    /// free memory) still proceed.
    defer_zero: bool,
}

impl Wpf {
    /// Creates the engine. The machine must have a reserved top region
    /// ([`vusion_kernel::MachineConfig::with_reserved_top`]) for the linear
    /// allocator, or [`MmError::MissingReservedRegion`] is reported.
    pub fn new(m: &Machine, cfg: WpfConfig) -> Result<Self, MmError> {
        let Some((base, frames)) = m.reserved_region() else {
            return Err(MmError::MissingReservedRegion);
        };
        Ok(Self {
            cfg,
            avl: ContentAvlTree::new(),
            avl_index: BTreeMap::new(),
            avl_hashes: HashIndex::default(),
            candidates: CandidateCache::default(),
            linear: LinearAllocator::new(base, frames),
            merged_live: 0,
            tags: TagCounts::default(),
            stats: WpfStats::default(),
            last_pass_frames: Vec::new(),
            dirty: DirtyTracker::default(),
            runner: ShardRunner::new(cfg.scan_threads),
            pass: None,
            budget: None,
            defer_zero: false,
        })
    }

    /// Counters.
    pub fn stats(&self) -> WpfStats {
        self.stats
    }

    /// Table 3 accounting.
    pub fn tag_counts(&self) -> TagCounts {
        self.tags
    }

    /// Backing frames assigned during the most recent pass, in assignment
    /// order (descending physical addresses — Figure 3's tell-tale).
    pub fn last_pass_frames(&self) -> &[FrameId] {
        &self.last_pass_frames
    }

    fn vma_info(m: &Machine, pid: Pid, va: VirtAddr) -> (GuestTag, Option<(u64, u64)>) {
        match m.process(pid).space.find_vma(va) {
            Some(vma) => {
                let key = match vma.backing {
                    VmaBacking::File {
                        file_id,
                        offset_pages,
                    } => Some((file_id, offset_pages + (va.0 - vma.start.0) / PAGE_SIZE)),
                    VmaBacking::Anon => None,
                };
                (vma.tag, key)
            }
            None => (GuestTag::Other, None),
        }
    }

    fn drop_cache_ref(m: &mut Machine, pid: Pid, va: VirtAddr, frame: FrameId) {
        let (_, key) = Self::vma_info(m, pid, va);
        if let Some((file_id, page)) = key {
            let p = m.process_mut(pid);
            if p.page_cache.get(&(file_id, page)) == Some(&frame) {
                p.page_cache_evict(file_id, page);
                let _ = m.put_frame(frame);
            }
        }
    }

    /// Repoints `(pid, va)` at tree frame `tree_frame`, releasing its old
    /// frame to the system. Returns `false` (and changes nothing) if the
    /// mapping vanished under the scan.
    fn merge_onto(
        &mut self,
        m: &mut Machine,
        pid: Pid,
        va: VirtAddr,
        old: FrameId,
        tree_frame: FrameId,
    ) -> bool {
        m.mem_mut().info_mut(tree_frame).get();
        if m.set_leaf(
            pid,
            va,
            Pte::new(tree_frame, PteFlags::PRESENT | PteFlags::USER),
        )
        .is_err()
        {
            m.mem_mut().info_mut(tree_frame).put();
            m.note_scan_retry();
            return false;
        }
        let (tag, _) = Self::vma_info(m, pid, va);
        Self::drop_cache_ref(m, pid, va, old);
        let _ = m.put_frame(old);
        let costs = m.costs();
        m.scan_cost(costs.pte_update + costs.buddy_interaction);
        m.surface_transition(SurfaceTransition::Merge);
        self.tags.record(tag);
        self.merged_live += 1;
        self.stats.merged += 1;
        true
    }

    /// Every VMA page of every process — WPF has no opt-in.
    fn all_pages(m: &Machine) -> Vec<(Pid, VirtAddr)> {
        let mut out = Vec::new();
        for pidx in 0..m.process_count() {
            let pid = Pid(pidx);
            for vma in m.process(pid).space.vmas() {
                for va in vma.page_addrs() {
                    out.push((pid, va));
                }
            }
        }
        out
    }

    /// One full fusion pass (§2.2).
    fn full_pass(&mut self, m: &mut Machine) -> ScanReport {
        let mut report = ScanReport::default();
        self.last_pass_frames.clear();
        // Tree pages can change in place between passes (Rowhammer on a
        // fused page — the §5.2 attack). Note whether any did *before*
        // re-syncing the hash pre-filter: a changed tree page can turn a
        // previously singleton candidate into a merge, so it disqualifies
        // the all-clean fast path below.
        let tree_dirty = !self.avl_hashes.stale_frames(m.mem()).is_empty();
        self.avl_hashes.refresh(m.mem());
        // 1. Enumerate candidate pages of every process (no opt-in),
        // read-only. The page enumeration is cached against the layout
        // epoch; the per-page leaf checks still run every pass.
        let (pages, rebuilt) = self.candidates.take(m, Self::all_pages);
        if rebuilt {
            // (pid, va) keys may be stale after a layout change.
            self.dirty.clear();
        }
        let mut cands: Vec<(Pid, VirtAddr, FrameId)> = Vec::new();
        let mut all_clean = true;
        for &(pid, va) in &pages {
            let Some(leaf) = m.leaf(pid, va) else {
                continue;
            };
            if leaf.huge || !leaf.pte.is_present() || leaf.pte.is_trapped() {
                continue;
            }
            let frame = leaf.pte.frame();
            if self.avl_index.contains_key(&frame) {
                continue; // Already fused.
            }
            let (_, cache_key) = Self::vma_info(m, pid, va);
            let max_refs = if cache_key.is_some() { 2 } else { 1 };
            if m.mem().info(frame).refcount > max_refs {
                continue;
            }
            all_clean = all_clean && self.dirty.is_clean(m.mem(), pid, va, frame);
            cands.push((pid, va, frame));
        }
        self.candidates.put_back(pages);
        if all_clean && !tree_dirty && !cands.is_empty() && self.pass.is_none() {
            // Dirty-driven fast path: every candidate is byte-for-byte the
            // page the previous completed pass declined to merge, and no
            // tree page changed — re-running the sort/group/merge stages
            // would provably reproduce "no merges". A suspended pass
            // disqualifies it: those rows were hashed under older contents.
            report.pages_skipped_clean = cands.len() as u64;
            let _ = m.crash_now(CrashSite::MidScan);
            self.stats.passes += 1;
            return report;
        }
        // Resume the suspended pass, or start a fresh one. A layout-epoch
        // rebuild or a candidate-count drift invalidates the parked rows.
        let mut pass = match self.pass.take() {
            Some(p) if !rebuilt && p.total == cands.len() as u64 => p,
            _ => PassState {
                cursor: 0,
                total: cands.len() as u64,
                hashed: Vec::new(),
            },
        };
        let start = pass.cursor as usize;
        let limit = match self.budget {
            Some(b) => b as usize,
            None => usize::MAX,
        };
        let end = start.saturating_add(limit).min(cands.len());
        // Shard phase: hash this wakeup's window in parallel off a
        // read-only view; the serial stage below then hits the memo cache
        // exactly as a warmed single-threaded pass would.
        let frames: Vec<FrameId> = cands[start..end].iter().map(|&(_, _, f)| f).collect();
        shard::prehash_frames(m, &self.runner, &frames);
        for &(pid, va, frame) in &cands[start..end] {
            report.pages_scanned += 1;
            report.budget_used += 1;
            pass.hashed
                .push((m.mem().hash_page(frame), pid.0 as u64, va.0, frame.0));
            pass.cursor += 1;
        }
        if m.crash_now(CrashSite::MidScan) {
            // The pass dies after the read-only hashing stage: nothing has
            // been mutated yet, nothing is marked seen, and the suspended
            // state is dropped — the next pass redoes the whole decision.
            return report;
        }
        if (pass.cursor as usize) < cands.len() {
            // Budget exhausted mid-stage: park the cursor and yield. The
            // sort/group/merge stages run only on a fully hashed set.
            self.pass = Some(pass);
            return report;
        }
        let mut candidates: Vec<(u64, usize, u64, FrameId)> = pass
            .hashed
            .iter()
            .map(|&(h, p, v, f)| (h, p as usize, v, FrameId(f)))
            .collect(); // (hash, pid, va, frame)
                        // 2. Sort by hash (the order that drives backing-frame adjacency).
        candidates.sort();
        // 3. Walk hash groups, verify content equality, plan merges.
        struct Group {
            members: Vec<(Pid, VirtAddr, FrameId)>,
            existing: Option<FrameId>,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut i = 0;
        while i < candidates.len() {
            let mut j = i + 1;
            while j < candidates.len() && candidates[j].0 == candidates[i].0 {
                j += 1;
            }
            // Within one hash bucket, split by actual content (collisions).
            let mut bucket: Vec<(Pid, VirtAddr, FrameId)> = candidates[i..j]
                .iter()
                .map(|&(_, p, v, f)| (Pid(p), VirtAddr(v), f))
                .collect();
            while let Some(first) = bucket.first().copied() {
                let mem = m.mem();
                let (same, rest): (Vec<_>, Vec<_>) = bucket
                    .into_iter()
                    .partition(|&(_, _, f)| mem.pages_equal(f, first.2));
                bucket = rest;
                let existing = {
                    let mem = m.mem();
                    if self.avl_hashes.may_contain(mem, first.2) {
                        self.avl
                            .find(first.2, |a, b| mem.compare_pages(a, b))
                            .map(|id| self.avl.frame(id))
                    } else {
                        None
                    }
                };
                if existing.is_some() || same.len() >= 2 {
                    groups.push(Group {
                        members: same,
                        existing,
                    });
                }
            }
            i = j;
        }
        // 4. Batch-reserve new backing frames (the MiAllocatePagesForMdl
        // call with the exact count WPF knows it needs). Under reclaim
        // rung 3 the reservation is deferred entirely: new tree pages
        // would consume frames mid-crisis, so only merges onto existing
        // tree pages (which free memory) proceed this pass.
        let new_groups = if self.defer_zero {
            0
        } else {
            groups.iter().filter(|g| g.existing.is_none()).count()
        };
        let batch = {
            let mem = m.mem();
            self.linear.reserve_batch(new_groups, |f| {
                mem.info(f).state == vusion_mem::FrameState::Allocated
            })
        };
        let mut batch_iter = batch.into_iter();
        // 5. Merge, assigning new frames in hash order. A pass that could
        // not finish its merge plan (crash, linear-region exhaustion) must
        // not mark anything seen: the skipped work has to be retried.
        let mut complete = true;
        for group in groups {
            if m.crash_now(CrashSite::MidMerge) {
                // Died between groups: merges committed so far stand;
                // frames reserved for the remaining groups are returned
                // below.
                complete = false;
                break;
            }
            m.trace_begin("wpf", SpanKind::Merge);
            let is_new = group.existing.is_none();
            let tree_frame = match group.existing {
                Some(f) => f,
                None => {
                    let Some(f) = batch_iter.next() else {
                        m.trace_end(SpanKind::Merge);
                        complete = false;
                        continue; // Linear region exhausted.
                    };
                    let src = group.members[0].2;
                    m.mem_mut().info_mut(f).on_alloc(PageType::Fused);
                    m.mem_mut().copy_page(src, f);
                    let costs = m.costs();
                    m.scan_cost(costs.copy_page);
                    // The first merge consumes the allocation's reference.
                    let mem = m.mem();
                    let (id, inserted) = self.avl.insert(f, 0, |a, b| mem.compare_pages(a, b));
                    debug_assert!(inserted);
                    let _ = id;
                    self.avl_index.insert(f, ());
                    self.avl_hashes.insert(m.mem(), f);
                    self.last_pass_frames.push(f);
                    self.stats.tree_pages_allocated += 1;
                    f
                }
            };
            let mut consumed_initial_ref = !is_new;
            for &(pid, va, old) in group.members.iter() {
                // Re-validate the mapping (it may have CoW'd since hashing).
                let still = m
                    .leaf(pid, va)
                    .map(|l| l.pte.is_present() && l.pte.frame() == old)
                    .unwrap_or(false);
                if !still {
                    continue;
                }
                if !consumed_initial_ref {
                    // The new tree frame's initial reference stands in for
                    // the first successfully merged mapping.
                    if m.set_leaf(
                        pid,
                        va,
                        Pte::new(tree_frame, PteFlags::PRESENT | PteFlags::USER),
                    )
                    .is_err()
                    {
                        m.note_scan_retry();
                        continue;
                    }
                    consumed_initial_ref = true;
                    let (tag, _) = Self::vma_info(m, pid, va);
                    Self::drop_cache_ref(m, pid, va, old);
                    let _ = m.put_frame(old);
                    let costs = m.costs();
                    m.scan_cost(costs.pte_update + costs.buddy_interaction);
                    m.surface_transition(SurfaceTransition::Merge);
                    self.tags.record(tag);
                    self.merged_live += 1;
                    self.stats.merged += 1;
                    report.pages_merged += 1;
                } else {
                    if !self.merge_onto(m, pid, va, old, tree_frame) {
                        continue;
                    }
                    report.pages_merged += 1;
                }
                if let Some(id) = {
                    let mem = m.mem();
                    self.avl.find(tree_frame, |a, b| mem.compare_pages(a, b))
                } {
                    *self.avl.value_mut(id) += 1;
                }
            }
            if is_new && !consumed_initial_ref {
                // Nothing merged onto the freshly reserved frame (every
                // member CoW'd away or its PTE write failed): roll back the
                // reservation so the frame is not leaked.
                self.avl_index.remove(&tree_frame);
                self.avl_hashes.remove(tree_frame);
                let removed = {
                    let mem = m.mem();
                    self.avl.remove(tree_frame, |a, b| mem.compare_pages(a, b))
                };
                debug_assert!(removed.is_some());
                self.last_pass_frames.pop();
                self.stats.tree_pages_allocated -= 1;
                m.mem_mut().info_mut(tree_frame).on_free();
                m.mem_mut().zero_page(tree_frame);
                let _ = self.linear.free(tree_frame);
            }
            m.trace_end(SpanKind::Merge);
        }
        // Batch frames never consumed (a mid-pass crash) were reserved but
        // never mapped: hand them straight back to the linear allocator.
        for f in batch_iter {
            let _ = self.linear.free(f);
        }
        if complete {
            // Record the pass's terminal decisions: every candidate whose
            // mapping survived unmerged was declined (singleton or failed
            // validation with a vanished mapping — the `still` check below
            // excludes the latter). It stays skippable until its frame or
            // mapping moves, or a dirty page / changed tree page appears.
            for &(pid, va, frame) in &cands {
                let still = m
                    .leaf(pid, va)
                    .map(|l| !l.huge && l.pte.is_present() && l.pte.frame() == frame)
                    .unwrap_or(false);
                if still && !self.avl_index.contains_key(&frame) {
                    self.dirty.mark_seen(m.mem(), pid, va, frame);
                }
            }
        }
        self.stats.passes += 1;
        report
    }

    /// Copy-on-write unmerge; dead tree frames return to the linear
    /// allocator (the predictable-reuse weakness).
    fn unmerge(&mut self, m: &mut Machine, fault: &PageFault) -> bool {
        let Some(leaf) = m.leaf(fault.pid, fault.va) else {
            return false;
        };
        let tree_frame = leaf.pte.frame();
        if !self.avl_index.contains_key(&tree_frame) {
            return false;
        }
        let Some(vma) = m.process(fault.pid).space.find_vma(fault.va).copied() else {
            return false;
        };
        // The page is ours: from here on the work is an unmerge attempt
        // (span opened only now, so foreign CoW faults never pollute it).
        m.trace_begin("wpf", SpanKind::Unmerge);
        let handled = self.unmerge_owned(m, fault, tree_frame, vma);
        m.trace_end(SpanKind::Unmerge);
        handled
    }

    /// The unmerge proper, once ownership is established.
    fn unmerge_owned(
        &mut self,
        m: &mut Machine,
        fault: &PageFault,
        tree_frame: FrameId,
        vma: vusion_mmu::Vma,
    ) -> bool {
        let Ok(new) = m.alloc_frame(PageType::Anon) else {
            return false; // OOM: stay merged; the access retries later.
        };
        if m.crash_now(CrashSite::MidUnmerge) {
            // Died after allocating the private copy: recovery frees it;
            // the page is still merged and the access simply retries.
            let _ = m.put_frame(new);
            return false;
        }
        m.mem_mut().copy_page(tree_frame, new);
        let costs = m.costs();
        m.charge(costs.copy_page + costs.pte_update + costs.buddy_interaction);
        let mut flags = PteFlags::PRESENT | PteFlags::USER | PteFlags::ACCESSED | PteFlags::DIRTY;
        if vma.prot.write {
            flags |= PteFlags::WRITABLE;
        }
        if m.set_leaf(fault.pid, fault.va.page_base(), Pte::new(new, flags))
            .is_err()
        {
            let _ = m.put_frame(new);
            return false;
        }
        if m.mem_mut().info_mut(tree_frame).put() {
            // Last sharer gone: the frame goes back to the linear
            // allocator and will be re-reserved, from the end of memory,
            // on the next pass (Figure 3).
            self.avl_index.remove(&tree_frame);
            self.avl_hashes.remove(tree_frame);
            let removed = {
                let mem = m.mem();
                self.avl.remove(tree_frame, |a, b| mem.compare_pages(a, b))
            };
            if removed.is_none() {
                // The frame's content changed in place (a Rowhammer flip on
                // a fused page — the §5.2 attack does exactly this), so the
                // content-keyed search can no longer locate the node.
                // Rebuild the tree from the index so no stale node keeps
                // pointing at the freed frame.
                let frames: Vec<FrameId> = self.avl_index.keys().copied().collect();
                self.avl.clear();
                self.avl_hashes.clear();
                for f in frames {
                    let mem = m.mem();
                    self.avl.insert(f, 0, |a, b| mem.compare_pages(a, b));
                    self.avl_hashes.insert(mem, f);
                }
            }
            m.mem_mut().info_mut(tree_frame).on_free();
            m.mem_mut().zero_page(tree_frame);
            let _ = self.linear.free(tree_frame);
        }
        self.merged_live -= 1;
        m.surface_transition(SurfaceTransition::Unmerge);
        self.stats.unmerged += 1;
        true
    }
}

impl vusion_snapshot::Snapshot for Wpf {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u64(self.cfg.pass_period_ns);
        self.avl.save_with(w, |v, w| w.u32(*v));
        let mut owned: Vec<u64> = self.avl_index.keys().map(|f| f.0).collect();
        owned.sort_unstable();
        w.u64s(&owned);
        self.avl_hashes.save(w);
        self.candidates.save(w);
        self.dirty.save(w);
        self.linear.save(w);
        w.u64(self.merged_live);
        self.tags.save(w);
        w.u64(self.stats.merged);
        w.u64(self.stats.unmerged);
        w.u64(self.stats.tree_pages_allocated);
        w.u64(self.stats.passes);
        let last: Vec<u64> = self.last_pass_frames.iter().map(|f| f.0).collect();
        w.u64s(&last);
        w.bool(self.defer_zero);
        match &self.pass {
            Some(p) => {
                w.bool(true);
                w.u64(p.cursor);
                w.u64(p.total);
                let mut flat = Vec::with_capacity(p.hashed.len() * 4);
                for &(h, pid, va, f) in &p.hashed {
                    flat.extend_from_slice(&[h, pid, va, f]);
                }
                w.u64s(&flat);
            }
            None => w.bool(false),
        }
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        self.cfg.pass_period_ns = r.u64()?;
        self.avl = ContentAvlTree::load_with(r, |r| r.u32())?;
        self.avl_index = r.u64s()?.into_iter().map(|f| (FrameId(f), ())).collect();
        self.avl_hashes = HashIndex::load(r)?;
        self.candidates = CandidateCache::load(r)?;
        self.dirty = DirtyTracker::load(r)?;
        self.linear.load(r)?;
        self.merged_live = r.u64()?;
        self.tags = TagCounts::load(r)?;
        self.stats = WpfStats {
            merged: r.u64()?,
            unmerged: r.u64()?,
            tree_pages_allocated: r.u64()?,
            passes: r.u64()?,
        };
        self.last_pass_frames = r.u64s()?.into_iter().map(FrameId).collect();
        self.defer_zero = r.bool()?;
        self.pass = if r.bool()? {
            let cursor = r.u64()?;
            let total = r.u64()?;
            let flat = r.u64s()?;
            if flat.len() % 4 != 0 {
                return Err(vusion_snapshot::SnapshotError::Corrupt(
                    "wpf pass rows not a multiple of 4",
                ));
            }
            let hashed = flat
                .chunks_exact(4)
                .map(|c| (c[0], c[1], c[2], c[3]))
                .collect();
            Some(PassState {
                cursor,
                total,
                hashed,
            })
        } else {
            None
        };
        Ok(())
    }
}

impl vusion_snapshot::EngineState for Wpf {
    fn engine_tag(&self) -> &'static str {
        "wpf"
    }
}

impl FusionPolicy for Wpf {
    fn name(&self) -> &'static str {
        "wpf"
    }

    fn scan(&mut self, m: &mut Machine) -> ScanReport {
        self.full_pass(m)
    }

    fn handle_fault(&mut self, m: &mut Machine, fault: &PageFault) -> bool {
        match fault.reason {
            vusion_kernel::FaultReason::WriteProtected => self.unmerge(m, fault),
            _ => false,
        }
    }

    fn prepare_collapse(&mut self, m: &mut Machine, pid: Pid, huge_base: VirtAddr) -> bool {
        for i in 0..vusion_mem::HUGE_PAGE_FRAMES {
            let va = VirtAddr(huge_base.0 + i * PAGE_SIZE);
            if let Some(leaf) = m.leaf(pid, va) {
                if self.avl_index.contains_key(&leaf.pte.frame()) {
                    return false;
                }
            }
        }
        true
    }

    fn pages_saved(&self) -> u64 {
        // Every mapping onto a tree frame frees one duplicate; every live
        // tree frame cost one new allocation.
        self.merged_live.saturating_sub(self.avl_index.len() as u64)
    }

    fn scan_period_ns(&self) -> u64 {
        self.cfg.pass_period_ns
    }

    fn set_scan_threads(&mut self, threads: usize) {
        self.cfg.scan_threads = threads.max(1);
        self.runner.set_threads(threads);
    }

    fn set_scan_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    fn pressure_shrink(&mut self, _m: &mut Machine) -> u64 {
        // Drop rebuildable transients: the candidate enumeration, the
        // dirty-driven pass list, and any suspended pass's hashed rows
        // (the next wakeup simply restarts the pass).
        let parked = self.pass.take().map(|p| p.hashed.len() as u64).unwrap_or(0);
        self.candidates.shed() + self.dirty.shed() + parked
    }

    fn set_zero_unmerge_deferral(&mut self, on: bool) {
        self.defer_zero = on;
    }

    fn save_state(&self, w: &mut vusion_snapshot::Writer) {
        vusion_snapshot::Snapshot::save(self, w)
    }

    fn restore_state(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        vusion_snapshot::Snapshot::load(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_kernel::{MachineConfig, System};
    use vusion_mmu::{Protection, Vma};

    const BASE: u64 = 0x10000;

    fn system() -> (System<Wpf>, Pid, Pid) {
        let mut m = Machine::new(MachineConfig::test_small().with_reserved_top(512));
        let a = m.spawn("a").expect("spawn");
        let b = m.spawn("b").expect("spawn");
        for pid in [a, b] {
            // No madvise: WPF scans everything.
            m.mmap(pid, Vma::anon(VirtAddr(BASE), 64, Protection::rw()));
        }
        let policy = Wpf::new(&m, WpfConfig::default()).expect("wpf");
        (System::new(m, policy), a, b)
    }

    fn page(fill: u8) -> [u8; PAGE_SIZE as usize] {
        let mut p = [0u8; PAGE_SIZE as usize];
        for (i, b) in p.iter_mut().enumerate() {
            *b = fill ^ (i % 19) as u8;
        }
        p
    }

    #[test]
    fn duplicates_merge_onto_new_frame() {
        let (mut s, a, b) = system();
        s.write_page(a, VirtAddr(BASE), &page(1));
        s.write_page(b, VirtAddr(BASE), &page(1));
        let fa = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        let fb = s.machine.leaf(b, VirtAddr(BASE)).expect("leaf").pte.frame();
        s.force_scans(1);
        let shared = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert_eq!(
            shared,
            s.machine.leaf(b, VirtAddr(BASE)).expect("leaf").pte.frame()
        );
        // Unlike KSM: a *new* frame, from the reserved end-of-memory region.
        assert_ne!(shared, fa);
        assert_ne!(shared, fb);
        let (res_base, _) = s.machine.reserved_region().expect("reserved");
        assert!(
            shared.0 >= res_base.0,
            "backing frame comes from the linear region"
        );
        assert_eq!(s.policy.pages_saved(), 1);
    }

    #[test]
    fn no_opt_in_required() {
        let (mut s, a, b) = system();
        s.write_page(a, VirtAddr(BASE + PAGE_SIZE), &page(2));
        s.write_page(b, VirtAddr(BASE + PAGE_SIZE), &page(2));
        s.force_scans(1);
        assert!(
            s.policy.stats().merged >= 2,
            "WPF scans all memory without madvise"
        );
    }

    #[test]
    fn backing_frames_descend_from_end_of_memory() {
        let (mut s, a, b) = system();
        // Three distinct duplicate pairs → three new tree frames.
        for (i, fill) in [(0u64, 3u8), (1, 4), (2, 5)] {
            s.write_page(a, VirtAddr(BASE + i * PAGE_SIZE), &page(fill));
            s.write_page(b, VirtAddr(BASE + i * PAGE_SIZE), &page(fill));
        }
        s.force_scans(1);
        let frames = s.policy.last_pass_frames().to_vec();
        assert_eq!(frames.len(), 3);
        assert!(
            frames.windows(2).all(|w| w[0].0 > w[1].0),
            "descending from the end: {frames:?}"
        );
    }

    #[test]
    fn hash_order_controls_adjacency() {
        // §5.2: the attacker orders fused pages in physical memory by
        // choosing contents. Verify assignment follows sorted hash order.
        let (mut s, a, b) = system();
        let mut fills: Vec<u8> = vec![7, 8, 9, 10];
        for (i, &fill) in fills.iter().enumerate() {
            s.write_page(a, VirtAddr(BASE + i as u64 * PAGE_SIZE), &page(fill));
            s.write_page(b, VirtAddr(BASE + i as u64 * PAGE_SIZE), &page(fill));
        }
        s.force_scans(1);
        let frames = s.policy.last_pass_frames().to_vec();
        assert_eq!(frames.len(), 4);
        // Recompute the expected hash order.
        fills.sort_by_key(|&f| vusion_mem::content_hash(&page(f)));
        // The k-th assigned (and thus k-th-highest) frame corresponds to
        // the k-th smallest hash; verify via content.
        for (k, &fill) in fills.iter().enumerate() {
            assert_eq!(
                s.machine.mem().page(frames[k]),
                &page(fill),
                "frame assignment must follow hash order"
            );
        }
    }

    #[test]
    fn cow_unmerge_returns_frame_to_linear_region() {
        let (mut s, a, b) = system();
        s.write_page(a, VirtAddr(BASE), &page(6));
        s.write_page(b, VirtAddr(BASE), &page(6));
        s.force_scans(1);
        let shared = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        // Both writers CoW away; the tree frame dies.
        s.write(a, VirtAddr(BASE), 1);
        s.write(b, VirtAddr(BASE), 2);
        assert_eq!(s.policy.pages_saved(), 0);
        assert_eq!(
            s.machine.mem().info(shared).state,
            vusion_mem::FrameState::Free
        );
        // Next pass with the same duplicate content reuses the same frame
        // (near-perfect reuse, Figure 3).
        s.write_page(a, VirtAddr(BASE + 8 * PAGE_SIZE), &page(60));
        s.write_page(b, VirtAddr(BASE + 8 * PAGE_SIZE), &page(60));
        s.force_scans(1);
        let reused = s
            .machine
            .leaf(a, VirtAddr(BASE + 8 * PAGE_SIZE))
            .expect("leaf")
            .pte
            .frame();
        assert_eq!(
            reused, shared,
            "linear allocator reuses the freed frame deterministically"
        );
    }

    #[test]
    fn content_preserved_through_merge_and_unmerge() {
        let (mut s, a, b) = system();
        s.write_page(a, VirtAddr(BASE), &page(11));
        s.write_page(b, VirtAddr(BASE), &page(11));
        s.force_scans(1);
        assert_eq!(s.read_page(a, VirtAddr(BASE)), page(11));
        s.write(b, VirtAddr(BASE), 0xAB);
        assert_eq!(s.read(b, VirtAddr(BASE)), 0xAB);
        assert_eq!(s.read_page(a, VirtAddr(BASE))[1..], page(11)[1..]);
        assert_eq!(s.read(a, VirtAddr(BASE)), page(11)[0]);
    }

    #[test]
    fn second_pass_merges_onto_existing_tree_page() {
        let (mut s, a, b) = system();
        s.write_page(a, VirtAddr(BASE), &page(12));
        s.write_page(b, VirtAddr(BASE), &page(12));
        s.force_scans(1);
        let allocated_first = s.policy.stats().tree_pages_allocated;
        // A third copy appears later.
        s.write_page(a, VirtAddr(BASE + 4 * PAGE_SIZE), &page(12));
        s.force_scans(1);
        assert_eq!(
            s.policy.stats().tree_pages_allocated,
            allocated_first,
            "no new tree page needed"
        );
        let f1 = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        let f2 = s
            .machine
            .leaf(a, VirtAddr(BASE + 4 * PAGE_SIZE))
            .expect("leaf")
            .pte
            .frame();
        assert_eq!(f1, f2);
        assert_eq!(s.policy.pages_saved(), 2);
    }

    #[test]
    fn singleton_pages_are_not_merged() {
        let (mut s, a, _b) = system();
        s.write_page(a, VirtAddr(BASE), &page(13));
        s.force_scans(1);
        assert_eq!(s.policy.stats().merged, 0);
        assert!(!s
            .machine
            .leaf(a, VirtAddr(BASE))
            .expect("leaf")
            .pte
            .is_trapped());
    }
}
