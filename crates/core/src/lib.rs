//! Page-fusion engines: the paper's contribution and both baselines.
//!
//! Three engines implement [`vusion_kernel::FusionPolicy`]:
//!
//! * [`Ksm`] — Linux Kernel Same-page Merging as described in §2.1: opt-in
//!   via `madvise`, round-robin scan of N pages every T ms, a *stable*
//!   red-black tree of write-protected fused pages and an *unstable* tree of
//!   unprotected candidates, merge-in-place (one sharer's frame backs the
//!   fused page — the Flip Feng Shui weakness), copy-on-write unmerge (the
//!   timing-side-channel weakness).
//! * [`Wpf`] — Windows Page Fusion as reverse-engineered in §2.2: no opt-in,
//!   periodic full passes, hash-sorted candidate list, per-process merging
//!   into AVL trees whose pages come from a *new* allocation by a linear
//!   end-of-memory allocator (`MiAllocatePagesForMdl`) — which defeats plain
//!   Flip Feng Shui but falls to the reuse-based variant of §5.2.
//! * [`VUsion`] — the secure design of §6–§8: **Same Behavior** via
//!   share-xor-fetch (reserved-bit + PCD traps on every page considered for
//!   fusion) and Fake Merging (identical code paths, deferred frees, per-scan
//!   re-randomized backing frames); **Randomized Allocation** via a random
//!   frame pool; working-set estimation via idle-page tracking; secure THP
//!   handling (break-before-fuse, idle-gated collapse).
//!
//! The two balanced search trees are implemented from scratch in
//! [`rbtree`] and [`avl`]; both order nodes by the *content* of the
//! physical page they reference.

pub mod avl;
pub mod engine;
pub mod ksm;
pub mod rbtree;
mod scan_cache;
pub mod shard;
pub mod vusion;
pub mod wpf;

pub use avl::ContentAvlTree;
pub use engine::{default_pool_frames, EngineKind};
pub use ksm::{Ksm, KsmConfig, KsmStats};
pub use rbtree::{ContentRbTree, NodeId};
pub use shard::ShardRunner;
pub use vusion::{VUsion, VUsionConfig, VUsionStats};
pub use wpf::{Wpf, WpfConfig, WpfStats};

/// Fusion accounting by guest page type (Table 3 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagCounts {
    /// Guest page-cache pages merged.
    pub page_cache: u64,
    /// Guest-buddy (free) pages merged.
    pub guest_buddy: u64,
    /// Guest kernel pages merged.
    pub guest_kernel: u64,
    /// Everything else.
    pub rest: u64,
}

impl TagCounts {
    /// Records one merged page of the given guest tag.
    pub fn record(&mut self, tag: vusion_mmu::GuestTag) {
        match tag {
            vusion_mmu::GuestTag::PageCache => self.page_cache += 1,
            vusion_mmu::GuestTag::GuestBuddy => self.guest_buddy += 1,
            vusion_mmu::GuestTag::GuestKernel => self.guest_kernel += 1,
            vusion_mmu::GuestTag::Other => self.rest += 1,
        }
    }

    /// Appends the four counters to a snapshot.
    pub fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u64(self.page_cache);
        w.u64(self.guest_buddy);
        w.u64(self.guest_kernel);
        w.u64(self.rest);
    }

    /// Reads counters written by [`Self::save`].
    pub fn load(
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        Ok(Self {
            page_cache: r.u64()?,
            guest_buddy: r.u64()?,
            guest_kernel: r.u64()?,
            rest: r.u64()?,
        })
    }

    /// Total pages recorded.
    pub fn total(&self) -> u64 {
        self.page_cache + self.guest_buddy + self.guest_kernel + self.rest
    }

    /// Percentage breakdown `(page cache, buddy, kernel, rest)` as in
    /// Table 3.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.page_cache as f64 * 100.0 / t,
            self.guest_buddy as f64 * 100.0 / t,
            self.guest_kernel as f64 * 100.0 / t,
            self.rest as f64 * 100.0 / t,
        )
    }
}
