//! Linux Kernel Same-page Merging, as described in §2.1 of the paper.
//!
//! The scanner visits `N` pages of the registered (mergeable) VMAs every
//! `T` ms, round-robin. Each page is first checked against the **stable
//! tree** of already-fused, write-protected pages; then against the
//! **unstable tree** of unprotected candidates (which is dropped every full
//! scan round, since its keys can change under it); unmatched pages enter
//! the unstable tree. Merging points the scanned PTE at the existing copy
//! *in place* — one sharing party's physical frame backs the fused page,
//! which is the Flip Feng Shui weakness (§4.2) — and releases the duplicate
//! to the buddy allocator, whose LIFO reuse is the other half of that
//! attack. Unmerging is plain copy-on-write, observable through the timing
//! side channel of §4.1.
//!
//! Two experiment variants from the paper are supported:
//! `unmerge_on_read` (the copy-on-access modification of Figure 4) and
//! `zero_only` (zero-page-only fusion, also Figure 4).

use std::collections::{BTreeMap, BTreeSet};

use vusion_kernel::{
    FusionPolicy, Machine, PageFault, Pid, ScanReport, SpanKind, SurfaceTransition,
};
use vusion_mem::{CrashSite, FrameId, VirtAddr, PAGE_SIZE};
use vusion_mmu::{GuestTag, Pte, PteFlags, VmaBacking};

use crate::rbtree::{ContentRbTree, NodeId};
use crate::scan_cache::{CandidateCache, DirtyTracker, HashIndex};
use crate::shard::{self, ShardRunner};
use crate::TagCounts;

/// KSM tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct KsmConfig {
    /// Pages scanned per wakeup (`N`, default 100).
    pub pages_per_scan: usize,
    /// Wakeup period in ns (`T`, default 20 ms ⇒ 5000 pages/s).
    pub scan_period_ns: u64,
    /// Figure 4 variant: unmerge on *any* fault, not just writes
    /// (copy-on-access). Merged PTEs get the reserved-bit trap.
    pub unmerge_on_read: bool,
    /// Figure 4 variant: merge only zero pages.
    pub zero_only: bool,
    /// Worker threads for the shard-local (read-only) scan phase. A host
    /// knob: never serialized, and every observable byte is identical at
    /// any value.
    pub scan_threads: usize,
}

impl Default for KsmConfig {
    fn default() -> Self {
        Self {
            pages_per_scan: 100,
            scan_period_ns: 20_000_000,
            unmerge_on_read: false,
            zero_only: false,
            scan_threads: 1,
        }
    }
}

/// KSM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KsmStats {
    /// Pages merged onto a stable page.
    pub merged: u64,
    /// Copy-on-write (or copy-on-access) unmerges.
    pub unmerged: u64,
    /// Stable-tree promotions from the unstable tree.
    pub promotions: u64,
    /// Full scan rounds completed.
    pub full_rounds: u64,
    /// Transparent huge pages broken for scanning.
    pub huge_broken: u64,
    /// Pages skipped because their checksum was still unstable.
    pub checksum_skips: u64,
}

#[derive(Debug, Clone, Copy)]
struct UnstableEntry {
    pid: Pid,
    va: VirtAddr,
    frame: FrameId,
}

/// The KSM engine.
pub struct Ksm {
    cfg: KsmConfig,
    /// Stable tree: fused, write-protected pages. Value = mapping count.
    stable: ContentRbTree<u32>,
    /// Reverse map: stable frame → tree node.
    // vlint: allow(S001, derived reverse map — rebuilt from the stable tree in load)
    stable_index: BTreeMap<FrameId, NodeId>,
    /// Content-hash pre-filter over the stable tree's pages.
    stable_hashes: HashIndex,
    /// Unstable tree: unprotected candidates. Unlike §2.1's
    /// drop-every-round tree, it persists across rounds so clean pages can
    /// be skipped without losing late-arriving duplicates; entries whose
    /// content changed are evicted surgically at the top of each wakeup,
    /// and the whole tree is dropped when the candidate list is rebuilt.
    unstable: ContentRbTree<UnstableEntry>,
    /// Reverse map: unstable frame → tree node (for surgical eviction).
    // vlint: allow(S001, derived reverse map — rebuilt from the unstable tree in load)
    unstable_index: BTreeMap<FrameId, NodeId>,
    /// Content-hash pre-filter over the unstable tree's pages.
    unstable_hashes: HashIndex,
    /// Dirty-driven pass list: pages whose mapping and content are
    /// unchanged since their last terminal decision are skipped.
    dirty: DirtyTracker,
    /// Shard runner for the parallel pre-hash phase.
    // vlint: allow(S001, host-only thread pool — worker count changes wall-clock time only)
    runner: ShardRunner,
    /// Per-page content checksum from the previous encounter. Entries are
    /// evicted when their page leaves the candidate list (unmapped VMA,
    /// exited process), so the map is bounded by the candidate set.
    checksums: BTreeMap<(usize, u64), u64>,
    /// Cached candidate list, rebuilt only when the VMA layout changes.
    candidates: CandidateCache,
    /// Global page cursor over the concatenated mergeable VMAs.
    cursor: u64,
    /// Per-wake page budget granted by the pressure governor. Never
    /// serialized: the governor re-grants before every wakeup.
    // vlint: allow(S001, host-only wake-scoped grant — the governor re-issues it before every wakeup)
    budget: Option<u64>,
    /// Reclaim-ladder rung 3: while set, THP breaks (which consume
    /// page-table frames) are deferred until pressure clears.
    defer_zero: bool,
    /// Mappings currently pointing at stable frames. Frames saved =
    /// `merged_live - stable pages` (the stable frame is one party's own).
    merged_live: u64,
    tags: TagCounts,
    stats: KsmStats,
}

impl Ksm {
    /// Creates a KSM engine.
    pub fn new(cfg: KsmConfig) -> Self {
        Self {
            cfg,
            stable: ContentRbTree::new(),
            stable_index: BTreeMap::new(),
            stable_hashes: HashIndex::default(),
            unstable: ContentRbTree::new(),
            unstable_index: BTreeMap::new(),
            unstable_hashes: HashIndex::default(),
            dirty: DirtyTracker::default(),
            runner: ShardRunner::new(cfg.scan_threads),
            checksums: BTreeMap::new(),
            candidates: CandidateCache::default(),
            cursor: 0,
            budget: None,
            defer_zero: false,
            merged_live: 0,
            tags: TagCounts::default(),
            stats: KsmStats::default(),
        }
    }

    /// Default-configured engine.
    pub fn default_engine() -> Self {
        Self::new(KsmConfig::default())
    }

    /// Counters.
    pub fn stats(&self) -> KsmStats {
        self.stats
    }

    /// Table 3 accounting.
    pub fn tag_counts(&self) -> TagCounts {
        self.tags
    }

    /// Number of stable-tree pages.
    pub fn stable_pages(&self) -> usize {
        self.stable.len()
    }

    /// Snapshot of the mergeable page list: `(pid, page base)` pairs.
    fn mergeable_pages(m: &Machine) -> Vec<(Pid, VirtAddr)> {
        let mut out = Vec::new();
        for pidx in 0..m.process_count() {
            let pid = Pid(pidx);
            for vma in m.process(pid).space.mergeable_vmas() {
                for va in vma.page_addrs() {
                    out.push((pid, va));
                }
            }
        }
        out
    }

    /// Guest tag and (for file pages) the page-cache key of a mapping.
    fn vma_info(m: &Machine, pid: Pid, va: VirtAddr) -> (GuestTag, Option<(u64, u64)>) {
        match m.process(pid).space.find_vma(va) {
            Some(vma) => {
                let key = match vma.backing {
                    VmaBacking::File {
                        file_id,
                        offset_pages,
                    } => Some((file_id, offset_pages + (va.0 - vma.start.0) / PAGE_SIZE)),
                    VmaBacking::Anon => None,
                };
                (vma.tag, key)
            }
            None => (GuestTag::Other, None),
        }
    }

    /// Releases a page-cache reference if `frame` is the cached copy of the
    /// file page mapped at `(pid, va)` — the guest page being deduplicated
    /// out of its cache.
    fn drop_cache_ref(m: &mut Machine, pid: Pid, va: VirtAddr, frame: FrameId) {
        let (_, key) = Self::vma_info(m, pid, va);
        if let Some((file_id, page)) = key {
            let p = m.process_mut(pid);
            if p.page_cache.get(&(file_id, page)) == Some(&frame) {
                p.page_cache_evict(file_id, page);
                let _ = m.put_frame(frame);
            }
        }
    }

    /// The PTE flags of a merged (stable) mapping.
    fn merged_flags(&self) -> PteFlags {
        let mut f = PteFlags::PRESENT | PteFlags::USER;
        if self.cfg.unmerge_on_read {
            // Copy-on-access variant: trap reads as well.
            f |= PteFlags::RESERVED | PteFlags::NO_CACHE;
        }
        f
    }

    /// Points `(pid, va)` at stable node `node`, releasing its old frame.
    fn merge_into_stable(
        &mut self,
        m: &mut Machine,
        pid: Pid,
        va: VirtAddr,
        old: FrameId,
        node: NodeId,
        report: &mut ScanReport,
    ) {
        let stable_frame = self.stable.frame(node);
        debug_assert_ne!(stable_frame, old);
        m.trace_begin("ksm", SpanKind::Merge);
        m.mem_mut().info_mut(stable_frame).get();
        *self.stable.value_mut(node) += 1;
        if m.crash_now(CrashSite::MidMerge)
            || m.set_leaf(pid, va, Pte::new(stable_frame, self.merged_flags()))
                .is_err()
        {
            // The mapping vanished under us — or the scanner daemon died
            // mid-merge: undo the stable reference and leave the page
            // alone for a later round.
            m.mem_mut().info_mut(stable_frame).put();
            *self.stable.value_mut(node) -= 1;
            m.note_scan_retry();
            m.trace_end(SpanKind::Merge);
            return;
        }
        // Release the duplicate: cache reference first, then the mapping's.
        let (tag, _) = Self::vma_info(m, pid, va);
        Self::drop_cache_ref(m, pid, va, old);
        let _ = m.put_frame(old);
        let costs = m.costs();
        m.scan_cost(costs.pte_update + costs.buddy_interaction);
        m.trace_end(SpanKind::Merge);
        m.surface_transition(SurfaceTransition::Merge);
        self.tags.record(tag);
        self.merged_live += 1;
        self.stats.merged += 1;
        report.pages_merged += 1;
    }

    /// Resolves the 4 KiB frame backing `leaf` at `va` (huge-aware).
    fn leaf_4k_frame(leaf: &vusion_mmu::LeafInfo, va: VirtAddr) -> FrameId {
        if leaf.huge {
            FrameId(leaf.pte.frame().0 + (va.0 % vusion_mem::HUGE_PAGE_SIZE) / PAGE_SIZE)
        } else {
            leaf.pte.frame()
        }
    }

    /// Breaks the THP covering `va` if the mapping is huge. KSM splits a
    /// huge page only *when merging* a 4 KiB page inside it (§5.1) — the
    /// conditionality the translation attack observes.
    fn break_if_huge(
        &mut self,
        m: &mut Machine,
        pid: Pid,
        va: VirtAddr,
        report: &mut ScanReport,
    ) -> bool {
        if m.leaf(pid, va).map(|l| l.huge).unwrap_or(false) {
            if self.defer_zero {
                // Rung 3 active: splitting a THP consumes page-table
                // frames under critical pressure. Retry once it clears.
                m.note_scan_retry();
                return false;
            }
            m.trace_begin("ksm", SpanKind::ThpBreak);
            let broke = m.break_thp(pid, va).is_ok();
            if broke {
                let costs = m.costs();
                m.scan_cost(costs.pte_update);
            }
            m.trace_end(SpanKind::ThpBreak);
            if !broke {
                // Could not split (PT allocation failed): skip this page
                // for now and retry in a later round.
                m.note_scan_retry();
                return false;
            }
            self.stats.huge_broken += 1;
            report.huge_pages_broken += 1;
        }
        true
    }

    /// Scans one page (the §2.1 per-page algorithm).
    fn scan_one(&mut self, m: &mut Machine, pid: Pid, va: VirtAddr, report: &mut ScanReport) {
        report.pages_scanned += 1;
        let Some(leaf) = m.leaf(pid, va) else {
            return; // Never faulted in.
        };
        if !leaf.pte.is_present() {
            return;
        }
        // For THPs, consider the 4 KiB sub-frame's content but defer the
        // split until a merge actually happens.
        let frame = Self::leaf_4k_frame(&leaf, va);
        // Dirty-driven pass list: same backing frame, same write
        // generation since the last terminal decision — re-running the
        // per-page algorithm is guaranteed to reproduce that decision.
        if self.dirty.is_clean(m.mem(), pid, va, frame) {
            report.pages_skipped_clean += 1;
            return;
        }
        if m.observed_scan_flip() {
            // Injected bit flip: the page comparison is unreliable this
            // round, so skip and retry later.
            m.note_scan_retry();
            return;
        }
        if self.stable_index.contains_key(&frame) {
            // Already merged: terminal until the mapping or frame moves.
            self.dirty.mark_seen(m.mem(), pid, va, frame);
            return;
        }
        // Only merge frames we can account for: sole mapping, possibly plus
        // the page-cache reference. Not a terminal state — the refcount can
        // drop without the frame's write generation moving.
        let refs = m.mem().info(frame).refcount;
        let (_, cache_key) = Self::vma_info(m, pid, va);
        let max_refs = if cache_key.is_some() { 2 } else { 1 };
        if refs > max_refs {
            return;
        }
        if self.cfg.zero_only && !m.mem().is_zero(frame) {
            // Terminal: zero-ness is a pure function of the content the
            // write generation guards.
            self.dirty.mark_seen(m.mem(), pid, va, frame);
            return;
        }
        // 1. Stable tree first: merging against an already write-protected
        // page needs no volatility check (the content comparison is
        // authoritative) — matching real KSM, which only gates the
        // *unstable* tree with the checksum test. The hash index skips
        // the descent when no stable page can possibly match; a hit (or a
        // hash collision) is confirmed by the authoritative search.
        let mem = m.mem();
        let stable_node = if self.stable_hashes.may_contain(mem, frame) {
            self.stable.find(frame, |a, b| mem.compare_pages(a, b))
        } else {
            None
        };
        if let Some(node) = stable_node {
            if self.break_if_huge(m, pid, va, report) {
                self.merge_into_stable(m, pid, va, frame, node, report);
            }
            return;
        }
        // Volatility check: skip pages whose checksum changed since the
        // last encounter (KSM's cksum test) before touching the unstable
        // tree.
        let h = m.observed_hash(frame);
        let key = (pid.0, va.page());
        if self.checksums.insert(key, h) != Some(h) {
            self.stats.checksum_skips += 1;
            return;
        }
        // 2. Unstable tree, behind the same hash pre-filter.
        let mem = m.mem();
        let unstable_node = if self.unstable_hashes.may_contain(mem, frame) {
            self.unstable.find(frame, |a, b| mem.compare_pages(a, b))
        } else {
            None
        };
        if let Some(node) = unstable_node {
            let entry = *self.unstable.value(node);
            // Validate: the candidate must still be mapped to the same
            // frame (its content equality was just checked by the search).
            let valid = m
                .leaf(entry.pid, entry.va)
                .map(|l| l.pte.is_present() && Self::leaf_4k_frame(&l, entry.va) == entry.frame)
                .unwrap_or(false)
                && entry.frame != frame
                && !self.stable_index.contains_key(&entry.frame);
            self.unstable.remove(node);
            self.unstable_index.remove(&entry.frame);
            self.unstable_hashes.remove(entry.frame);
            self.dirty.forget(entry.pid, entry.va);
            // Scan-order priority: real KSM rebuilds the unstable tree
            // every round, so the earlier-scanned duplicate always
            // inserts first and its frame wins the promotion. Our tree
            // persists across rounds (to support dirty skipping), so an
            // entry filed late in round R would otherwise beat an
            // earlier-order page arriving in round R+1 — reversing the
            // in-place-merge direction the §4.2 attack depends on.
            // Resolving the winner by candidate order reproduces the
            // rebuild semantics exactly.
            let (wpid, wva, wframe, lpid, lva, lframe) =
                if (pid.0, va.0) < (entry.pid.0, entry.va.0) {
                    (pid, va, frame, entry.pid, entry.va, entry.frame)
                } else {
                    (entry.pid, entry.va, entry.frame, pid, va, frame)
                };
            // A merge is about to happen: split any THPs involved. Either
            // split failing (an injected or genuine PT allocation failure)
            // downgrades the candidate to stale — both pages stay intact
            // and get rescanned later.
            let valid = valid
                && self.break_if_huge(m, pid, va, report)
                && self.break_if_huge(m, entry.pid, entry.va, report)
                && m.set_leaf(wpid, wva, Pte::new(wframe, self.merged_flags()))
                    .is_ok();
            if valid {
                // Promote the winner: its frame becomes the stable page
                // (merge *in place* — the FFS weakness).
                Self::drop_cache_ref(m, wpid, wva, wframe);
                let mem = m.mem();
                let (snode, inserted) = self
                    .stable
                    .insert(wframe, 1, |a, b| mem.compare_pages(a, b));
                debug_assert!(inserted, "stable tree had no match a moment ago");
                self.stable_index.insert(wframe, snode);
                self.stable_hashes.insert(m.mem(), wframe);
                self.merged_live += 1; // The promoted party's own mapping.
                m.surface_transition(SurfaceTransition::Merge);
                self.stats.promotions += 1;
                report.pages_merged += 1; // The promoted candidate's mapping.
                self.merge_into_stable(m, lpid, lva, lframe, snode, report);
            } else {
                // Stale candidate: replace it with the scanned page.
                self.insert_unstable(m, pid, va, frame);
            }
            return;
        }
        // 3. Neither tree: file as a candidate.
        self.insert_unstable(m, pid, va, frame);
    }

    /// Files `(pid, va)` as an unstable candidate and marks it seen: an
    /// in-tree candidate is a terminal state — it merges when a *later*
    /// scan of a duplicate finds it, so revisiting it while unchanged
    /// does nothing.
    fn insert_unstable(&mut self, m: &Machine, pid: Pid, va: VirtAddr, frame: FrameId) {
        let mem = m.mem();
        let (node, inserted) =
            self.unstable
                .insert(frame, UnstableEntry { pid, va, frame }, |a, b| {
                    mem.compare_pages(a, b)
                });
        if inserted {
            self.unstable_index.insert(frame, node);
            self.unstable_hashes.insert(mem, frame);
        }
        self.dirty.mark_seen(mem, pid, va, frame);
    }

    /// Copy-on-write (or copy-on-access) unmerge.
    fn unmerge(&mut self, m: &mut Machine, fault: &PageFault) -> bool {
        let Some(leaf) = m.leaf(fault.pid, fault.va) else {
            return false;
        };
        let stable_frame = leaf.pte.frame();
        let Some(&node) = self.stable_index.get(&stable_frame) else {
            return false;
        };
        let Some(vma) = m.process(fault.pid).space.find_vma(fault.va).copied() else {
            return false;
        };
        // The page is ours: from here on the work is an unmerge attempt
        // (span opened only now, so foreign CoW faults never pollute it).
        m.trace_begin("ksm", SpanKind::Unmerge);
        let handled = self.unmerge_owned(m, fault, stable_frame, node, vma);
        m.trace_end(SpanKind::Unmerge);
        handled
    }

    /// The unmerge proper, once ownership is established.
    fn unmerge_owned(
        &mut self,
        m: &mut Machine,
        fault: &PageFault,
        stable_frame: FrameId,
        node: NodeId,
        vma: vusion_mmu::Vma,
    ) -> bool {
        // Copy into a fresh frame from the system allocator (Linux uses the
        // buddy allocator here — its LIFO reuse is attacker-predictable).
        let Ok(new) = m.alloc_frame(vusion_mem::PageType::Anon) else {
            return false; // OOM: stay merged; the access retries later.
        };
        if m.crash_now(CrashSite::MidUnmerge) {
            // Died after allocating the private copy: recovery frees it;
            // the page is still merged and the access simply retries.
            let _ = m.put_frame(new);
            return false;
        }
        m.mem_mut().copy_page(stable_frame, new);
        let costs = m.costs();
        m.charge(costs.copy_page + costs.pte_update + costs.buddy_interaction);
        let mut flags = PteFlags::PRESENT | PteFlags::USER | PteFlags::ACCESSED;
        if vma.prot.write {
            flags |= PteFlags::WRITABLE;
        }
        if fault.kind == vusion_kernel::AccessKind::Write {
            flags |= PteFlags::DIRTY;
        }
        if m.set_leaf(fault.pid, fault.va.page_base(), Pte::new(new, flags))
            .is_err()
        {
            let _ = m.put_frame(new);
            return false;
        }
        *self.stable.value_mut(node) -= 1;
        if m.put_frame(stable_frame).unwrap_or(false) {
            self.stable.remove(node);
            self.stable_index.remove(&stable_frame);
            self.stable_hashes.remove(stable_frame);
        }
        self.merged_live -= 1;
        m.surface_transition(SurfaceTransition::Unmerge);
        self.stats.unmerged += 1;
        true
    }
}

impl vusion_snapshot::Snapshot for Ksm {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.usize(self.cfg.pages_per_scan);
        w.u64(self.cfg.scan_period_ns);
        w.bool(self.cfg.unmerge_on_read);
        w.bool(self.cfg.zero_only);
        self.stable.save_with(w, |v, w| w.u32(*v));
        self.stable_hashes.save(w);
        self.unstable.save_with(w, |e, w| {
            w.usize(e.pid.0);
            w.u64(e.va.0);
            w.u64(e.frame.0);
        });
        self.unstable_hashes.save(w);
        let mut sums: Vec<((usize, u64), u64)> =
            self.checksums.iter().map(|(&k, &v)| (k, v)).collect();
        sums.sort_unstable();
        w.usize(sums.len());
        for ((pid, page), sum) in sums {
            w.usize(pid);
            w.u64(page);
            w.u64(sum);
        }
        self.dirty.save(w);
        self.candidates.save(w);
        w.u64(self.cursor);
        w.u64(self.merged_live);
        self.tags.save(w);
        w.u64(self.stats.merged);
        w.u64(self.stats.unmerged);
        w.u64(self.stats.promotions);
        w.u64(self.stats.full_rounds);
        w.u64(self.stats.huge_broken);
        w.u64(self.stats.checksum_skips);
        w.bool(self.defer_zero);
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        self.cfg.pages_per_scan = r.usize()?;
        self.cfg.scan_period_ns = r.u64()?;
        self.cfg.unmerge_on_read = r.bool()?;
        self.cfg.zero_only = r.bool()?;
        // The trees restore slot-exactly, so rebuilding the reverse map
        // from live node ids reproduces the pre-snapshot NodeIds.
        self.stable = ContentRbTree::load_with(r, |r| r.u32())?;
        self.stable_index = self
            .stable
            .ids()
            .into_iter()
            .map(|id| (self.stable.frame(id), id))
            .collect();
        self.stable_hashes = HashIndex::load(r)?;
        self.unstable = ContentRbTree::load_with(r, |r| {
            Ok(UnstableEntry {
                pid: Pid(r.usize()?),
                va: VirtAddr(r.u64()?),
                frame: FrameId(r.u64()?),
            })
        })?;
        self.unstable_index = self
            .unstable
            .ids()
            .into_iter()
            .map(|id| (self.unstable.frame(id), id))
            .collect();
        self.unstable_hashes = HashIndex::load(r)?;
        let sums = r.usize()?;
        self.checksums = BTreeMap::new();
        for _ in 0..sums {
            let key = (r.usize()?, r.u64()?);
            self.checksums.insert(key, r.u64()?);
        }
        self.dirty = DirtyTracker::load(r)?;
        self.candidates = CandidateCache::load(r)?;
        self.cursor = r.u64()?;
        self.merged_live = r.u64()?;
        self.tags = TagCounts::load(r)?;
        self.stats = KsmStats {
            merged: r.u64()?,
            unmerged: r.u64()?,
            promotions: r.u64()?,
            full_rounds: r.u64()?,
            huge_broken: r.u64()?,
            checksum_skips: r.u64()?,
        };
        self.defer_zero = r.bool()?;
        Ok(())
    }
}

impl vusion_snapshot::EngineState for Ksm {
    fn engine_tag(&self) -> &'static str {
        "ksm"
    }
}

impl FusionPolicy for Ksm {
    fn name(&self) -> &'static str {
        "ksm"
    }

    fn scan(&mut self, m: &mut Machine) -> ScanReport {
        let mut report = ScanReport::default();
        let (pages, rebuilt) = self.candidates.take(m, Self::mergeable_pages);
        if rebuilt {
            // The candidate set changed (mmap / madvise / new process):
            // drop checksums of pages no longer scanned, so the map stays
            // bounded by the candidate list — and drop the unstable tree
            // and the dirty list, whose (pid, va) keys may now be stale.
            let live: BTreeSet<(usize, u64)> =
                pages.iter().map(|&(pid, va)| (pid.0, va.page())).collect();
            self.checksums.retain(|key, _| live.contains(key));
            self.unstable.clear();
            self.unstable_index.clear();
            self.unstable_hashes.clear();
            self.dirty.clear();
        }
        if pages.is_empty() {
            self.candidates.put_back(pages);
            return report;
        }
        // Evict unstable candidates whose content changed since they were
        // filed: their position in the content-ordered tree is no longer
        // valid. (§2.1 drops the whole tree every round for this reason;
        // with the dirty-driven pass list the tree persists and changed
        // entries are evicted surgically, so clean candidates can still
        // be matched by late-arriving duplicates.)
        for frame in self.unstable_hashes.stale_frames(m.mem()) {
            if let Some(node) = self.unstable_index.remove(&frame) {
                let entry = *self.unstable.value(node);
                self.unstable.remove(node);
                self.unstable_hashes.remove(frame);
                self.dirty.forget(entry.pid, entry.va);
            }
        }
        // Stable pages may have changed in place (Rowhammer — guests
        // cannot write them): re-sync that pre-filter before trusting it.
        self.stable_hashes.refresh(m.mem());
        // Shard phase: pre-hash this wakeup's visit window in parallel
        // off a read-only view, so the serial decide phase below hits the
        // hash memo-cache exactly as a warmed single-threaded pass would.
        let limit = match self.budget {
            Some(b) => b as usize,
            None => self.cfg.pages_per_scan,
        };
        let window = limit.min(pages.len());
        let mut visit_frames = Vec::with_capacity(window);
        for i in 0..window {
            let idx = ((self.cursor + i as u64) % pages.len() as u64) as usize;
            let (pid, va) = pages[idx];
            if let Some(leaf) = m.leaf(pid, va) {
                if leaf.pte.is_present() {
                    visit_frames.push(Self::leaf_4k_frame(&leaf, va));
                }
            }
        }
        shard::prehash_frames(m, &self.runner, &visit_frames);
        // Serial decide/commit phase: every mutation, RNG draw, crash
        // poll, and trace event happens here in canonical order.
        for _ in 0..limit {
            if m.crash_now(CrashSite::MidScan) {
                // The daemon dies between pages: work already done this
                // wakeup stays committed, nothing is left in flight.
                break;
            }
            report.budget_used += 1;
            let idx = (self.cursor % pages.len() as u64) as usize;
            let (pid, va) = pages[idx];
            self.scan_one(m, pid, va, &mut report);
            self.cursor += 1;
            if self.cursor.is_multiple_of(pages.len() as u64) {
                self.stats.full_rounds += 1;
            }
        }
        self.candidates.put_back(pages);
        report
    }

    fn handle_fault(&mut self, m: &mut Machine, fault: &PageFault) -> bool {
        match fault.reason {
            vusion_kernel::FaultReason::WriteProtected => self.unmerge(m, fault),
            vusion_kernel::FaultReason::Trapped if self.cfg.unmerge_on_read => {
                self.unmerge(m, fault)
            }
            _ => false,
        }
    }

    fn prepare_collapse(&mut self, m: &mut Machine, pid: Pid, huge_base: VirtAddr) -> bool {
        // Linux khugepaged skips ranges containing KSM pages.
        for i in 0..vusion_mem::HUGE_PAGE_FRAMES {
            let va = VirtAddr(huge_base.0 + i * PAGE_SIZE);
            if let Some(leaf) = m.leaf(pid, va) {
                if self.stable_index.contains_key(&leaf.pte.frame()) {
                    return false;
                }
            }
        }
        true
    }

    fn pages_saved(&self) -> u64 {
        self.merged_live.saturating_sub(self.stable.len() as u64)
    }

    fn scan_period_ns(&self) -> u64 {
        self.cfg.scan_period_ns
    }

    fn set_scan_threads(&mut self, threads: usize) {
        self.cfg.scan_threads = threads.max(1);
        self.runner.set_threads(threads);
    }

    fn set_scan_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    fn pressure_shrink(&mut self, _m: &mut Machine) -> u64 {
        // Drop every transient structure the scan can rebuild: the
        // unstable tree (KSM proper drops it each round anyway), its
        // hash filter and reverse index, the checksum memo, the
        // dirty-driven pass list, and the candidate cache.
        let unstable = self.unstable.len() as u64;
        self.unstable.clear();
        self.unstable_index.clear();
        self.unstable_hashes.clear();
        let sums = self.checksums.len() as u64;
        self.checksums = BTreeMap::new();
        unstable + sums + self.dirty.shed() + self.candidates.shed()
    }

    fn set_zero_unmerge_deferral(&mut self, on: bool) {
        self.defer_zero = on;
    }

    fn save_state(&self, w: &mut vusion_snapshot::Writer) {
        vusion_snapshot::Snapshot::save(self, w)
    }

    fn restore_state(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        vusion_snapshot::Snapshot::load(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_kernel::{MachineConfig, System};
    use vusion_mmu::{Protection, Vma};

    const BASE: u64 = 0x10000;

    fn system(cfg: KsmConfig) -> (System<Ksm>, Pid, Pid) {
        let mut m = Machine::new(MachineConfig::test_small());
        let a = m.spawn("attacker").expect("spawn");
        let v = m.spawn("victim").expect("spawn");
        for pid in [a, v] {
            m.mmap(pid, Vma::anon(VirtAddr(BASE), 64, Protection::rw()));
            m.madvise_mergeable(pid, VirtAddr(BASE), 64);
        }
        (System::new(m, Ksm::new(cfg)), a, v)
    }

    fn page(fill: u8) -> [u8; PAGE_SIZE as usize] {
        let mut p = [0u8; PAGE_SIZE as usize];
        for (i, b) in p.iter_mut().enumerate() {
            *b = fill ^ (i % 13) as u8;
        }
        p
    }

    /// Scans enough rounds for checksum stabilization + both trees.
    fn settle(s: &mut System<Ksm>) {
        s.force_scans(12);
    }

    #[test]
    fn identical_pages_across_processes_merge() {
        let (mut s, a, v) = system(KsmConfig::default());
        s.write_page(a, VirtAddr(BASE), &page(1));
        s.write_page(v, VirtAddr(BASE), &page(1));
        let fa = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        let fv = s.machine.leaf(v, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert_ne!(fa, fv);
        settle(&mut s);
        let fa2 = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        let fv2 = s.machine.leaf(v, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert_eq!(fa2, fv2, "pages must share a frame after fusion");
        assert_eq!(s.policy.pages_saved(), 1);
        assert_eq!(s.policy.stable_pages(), 1);
        // Reads still work and return the shared content.
        assert_eq!(s.read(a, VirtAddr(BASE + 1)), page(1)[1]);
    }

    #[test]
    fn ksm_merges_in_place_one_sharers_frame_survives() {
        // The Flip Feng Shui precondition: the stable page is backed by one
        // of the sharing parties' own frames.
        let (mut s, a, v) = system(KsmConfig::default());
        s.write_page(a, VirtAddr(BASE), &page(2));
        s.write_page(v, VirtAddr(BASE), &page(2));
        let fa = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        let fv = s.machine.leaf(v, VirtAddr(BASE)).expect("leaf").pte.frame();
        settle(&mut s);
        let shared = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert!(
            shared == fa || shared == fv,
            "KSM must reuse a sharer's frame"
        );
    }

    #[test]
    fn write_triggers_cow_unmerge() {
        let (mut s, a, v) = system(KsmConfig::default());
        s.write_page(a, VirtAddr(BASE), &page(3));
        s.write_page(v, VirtAddr(BASE), &page(3));
        settle(&mut s);
        assert_eq!(s.policy.pages_saved(), 1);
        // Victim writes: must get a private copy; attacker's view unchanged.
        s.write(v, VirtAddr(BASE), 0xFF);
        let fa = s.machine.leaf(a, VirtAddr(BASE)).expect("leaf").pte.frame();
        let fv = s.machine.leaf(v, VirtAddr(BASE)).expect("leaf").pte.frame();
        assert_ne!(fa, fv, "CoW must unshare");
        assert_eq!(s.read(v, VirtAddr(BASE)), 0xFF);
        assert_eq!(
            s.read(a, VirtAddr(BASE)),
            page(3)[0],
            "attacker's data intact"
        );
        assert_eq!(s.policy.stats().unmerged, 1);
        assert_eq!(s.policy.pages_saved(), 0);
    }

    #[test]
    fn reads_do_not_unmerge_by_default() {
        let (mut s, a, v) = system(KsmConfig::default());
        s.write_page(a, VirtAddr(BASE), &page(4));
        s.write_page(v, VirtAddr(BASE), &page(4));
        settle(&mut s);
        let before = s.policy.pages_saved();
        s.read(a, VirtAddr(BASE));
        s.read(v, VirtAddr(BASE + 100));
        assert_eq!(s.policy.pages_saved(), before, "reads keep pages fused");
    }

    #[test]
    fn coa_variant_unmerges_on_read() {
        let (mut s, a, v) = system(KsmConfig {
            unmerge_on_read: true,
            ..Default::default()
        });
        s.write_page(a, VirtAddr(BASE), &page(5));
        s.write_page(v, VirtAddr(BASE), &page(5));
        settle(&mut s);
        assert_eq!(s.policy.pages_saved(), 1);
        assert_eq!(
            s.read(a, VirtAddr(BASE)),
            page(5)[0],
            "content preserved through CoA"
        );
        assert_eq!(s.policy.stats().unmerged, 1, "a read unmerges in CoA mode");
    }

    #[test]
    fn zero_only_variant_skips_nonzero() {
        let (mut s, a, v) = system(KsmConfig {
            zero_only: true,
            ..Default::default()
        });
        s.write_page(a, VirtAddr(BASE), &page(6));
        s.write_page(v, VirtAddr(BASE), &page(6));
        // And a zero page each.
        s.write_page(a, VirtAddr(BASE + PAGE_SIZE), &[0; PAGE_SIZE as usize]);
        s.write_page(v, VirtAddr(BASE + PAGE_SIZE), &[0; PAGE_SIZE as usize]);
        settle(&mut s);
        assert_eq!(s.policy.pages_saved(), 1, "only the zero pages merge");
    }

    #[test]
    fn volatile_pages_are_not_merged() {
        let (mut s, a, v) = system(KsmConfig::default());
        s.write_page(v, VirtAddr(BASE), &page(7));
        // The attacker's page changes between every scan.
        for round in 0..10u8 {
            s.write_page(a, VirtAddr(BASE), &page(round.wrapping_mul(31)));
            s.force_scans(1);
        }
        assert_eq!(
            s.policy.stats().merged,
            0,
            "volatile content must not merge"
        );
        assert!(s.policy.stats().checksum_skips > 0);
    }

    #[test]
    fn three_way_merge_counts_two_saved() {
        let mut m = Machine::new(MachineConfig::test_small());
        let pids: Vec<Pid> = (0..3)
            .map(|i| m.spawn(&format!("p{i}")).expect("spawn"))
            .collect();
        for &pid in &pids {
            m.mmap(pid, Vma::anon(VirtAddr(BASE), 8, Protection::rw()));
            m.madvise_mergeable(pid, VirtAddr(BASE), 8);
        }
        let mut s = System::new(m, Ksm::default_engine());
        for &pid in &pids {
            s.write_page(pid, VirtAddr(BASE), &page(8));
        }
        settle(&mut s);
        assert_eq!(s.policy.pages_saved(), 2);
        let frames: Vec<FrameId> = pids
            .iter()
            .map(|&p| s.machine.leaf(p, VirtAddr(BASE)).expect("leaf").pte.frame())
            .collect();
        assert!(
            frames.windows(2).all(|w| w[0] == w[1]),
            "all three share one frame"
        );
    }

    #[test]
    fn unregistered_memory_is_never_scanned() {
        let mut m = Machine::new(MachineConfig::test_small());
        let a = m.spawn("a").expect("spawn");
        let b = m.spawn("b").expect("spawn");
        for pid in [a, b] {
            m.mmap(pid, Vma::anon(VirtAddr(BASE), 8, Protection::rw()));
            // No madvise!
        }
        let mut s = System::new(m, Ksm::default_engine());
        s.write_page(a, VirtAddr(BASE), &page(9));
        s.write_page(b, VirtAddr(BASE), &page(9));
        settle(&mut s);
        assert_eq!(s.policy.pages_saved(), 0, "KSM is opt-in");
    }

    #[test]
    fn memory_consumption_drops_after_fusion() {
        let (mut s, a, v) = system(KsmConfig::default());
        for i in 0..16u64 {
            s.write_page(a, VirtAddr(BASE + i * PAGE_SIZE), &page(10));
            s.write_page(v, VirtAddr(BASE + i * PAGE_SIZE), &page(10));
        }
        let before = s.machine.allocated_frames();
        s.force_scans(30);
        let after = s.machine.allocated_frames();
        // 32 identical pages collapse to 1 frame: 31 frames come back.
        assert_eq!(before - after, 31, "saved frames must be released");
        assert_eq!(s.policy.pages_saved(), 31);
    }

    #[test]
    fn merged_pages_keep_content_across_rounds() {
        let (mut s, a, v) = system(KsmConfig::default());
        s.write_page(a, VirtAddr(BASE), &page(11));
        s.write_page(v, VirtAddr(BASE), &page(11));
        settle(&mut s);
        s.force_scans(20); // More rounds must not corrupt anything.
        assert_eq!(s.read_page(a, VirtAddr(BASE)), page(11));
        assert_eq!(s.read_page(v, VirtAddr(BASE)), page(11));
    }
}
