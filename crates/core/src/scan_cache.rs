//! Scan-path caching shared by the fusion engines: a content-hash index
//! over a content tree's pages, and an incremental candidate list.
//!
//! Both are pure wall-clock optimizations. The hash index only ever
//! answers "definitely not in the tree" (equal content implies equal
//! hash; a hash collision merely wastes one authoritative tree descent),
//! and the candidate cache reproduces exactly the list a fresh
//! enumeration would build, because rebuilds are deterministic and every
//! layout mutation bumps the machine's epoch. Neither changes a single
//! simulated-cycle charge or merge decision.

use std::collections::BTreeMap;

use vusion_kernel::{Machine, Pid};
use vusion_mem::{FrameId, PhysMemory, VirtAddr};

/// Content-hash index mirroring a content tree's node frames.
///
/// `may_contain(probe)` pre-filters tree searches: if the probe page's
/// hash is absent from the multiset of tree-page hashes, no tree page can
/// be content-equal and the O(log n) full-page-compare descent is
/// skipped. Tree pages are not immutable — guest writes hit unstable-tree
/// pages and Rowhammer hits anything — so every entry records the frame's
/// write generation and [`HashIndex::refresh`] re-hashes stale entries at
/// the top of each scan.
#[derive(Default)]
pub(crate) struct HashIndex {
    by_frame: BTreeMap<FrameId, (u64, u64)>, // frame -> (hash, write_gen)
    counts: BTreeMap<u64, u32>,              // hash -> tree pages bearing it
}

impl HashIndex {
    fn bump(counts: &mut BTreeMap<u64, u32>, hash: u64) {
        *counts.entry(hash).or_insert(0) += 1;
    }

    fn unbump(counts: &mut BTreeMap<u64, u32>, hash: u64) {
        if let Some(c) = counts.get_mut(&hash) {
            *c -= 1;
            if *c == 0 {
                counts.remove(&hash);
            }
        }
    }

    /// Records `frame` as present in the tree.
    pub(crate) fn insert(&mut self, mem: &PhysMemory, frame: FrameId) {
        let hash = mem.hash_page(frame);
        let gen = mem.info(frame).write_gen;
        if let Some((old, _)) = self.by_frame.insert(frame, (hash, gen)) {
            Self::unbump(&mut self.counts, old);
        }
        Self::bump(&mut self.counts, hash);
    }

    /// Forgets `frame` (removed from the tree).
    pub(crate) fn remove(&mut self, frame: FrameId) {
        if let Some((hash, _)) = self.by_frame.remove(&frame) {
            Self::unbump(&mut self.counts, hash);
        }
    }

    /// Moves an entry from `old` to `new` without rehashing when the
    /// content was copied verbatim (VUsion's re-randomization).
    pub(crate) fn replace_frame(&mut self, mem: &PhysMemory, old: FrameId, new: FrameId) {
        self.remove(old);
        self.insert(mem, new);
    }

    /// Drops everything (tree cleared or rebuilt).
    pub(crate) fn clear(&mut self) {
        self.by_frame.clear();
        self.counts.clear();
    }

    /// Frames whose recorded write generation no longer matches — their
    /// content changed (or their frame was freed and rewritten) since
    /// they were indexed.
    pub(crate) fn stale_frames(&self, mem: &PhysMemory) -> Vec<FrameId> {
        self.by_frame
            .iter()
            .filter(|(f, (_, gen))| mem.info(**f).write_gen != *gen)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Re-syncs entries whose frame content changed since they were
    /// recorded (detected via the frame's write generation). Cheap: the
    /// re-hash itself is served by the frame cache.
    pub(crate) fn refresh(&mut self, mem: &PhysMemory) {
        for f in self.stale_frames(mem) {
            self.insert(mem, f);
        }
    }

    /// Whether a tree page *could* be content-equal to `probe`. `false`
    /// is definitive; `true` must be confirmed by the tree search.
    pub(crate) fn may_contain(&self, mem: &PhysMemory, probe: FrameId) -> bool {
        self.counts.contains_key(&mem.hash_page(probe))
    }

    /// Serializes the per-frame entries (sorted for determinism). The hash
    /// multiset is derivable, so only `by_frame` is written.
    pub(crate) fn save(&self, w: &mut vusion_snapshot::Writer) {
        let mut entries: Vec<(u64, u64, u64)> = self
            .by_frame
            .iter()
            .map(|(f, &(hash, gen))| (f.0, hash, gen))
            .collect();
        entries.sort_unstable();
        w.usize(entries.len());
        for (frame, hash, gen) in entries {
            w.u64(frame);
            w.u64(hash);
            w.u64(gen);
        }
    }

    /// Rebuilds an index written by [`Self::save`].
    pub(crate) fn load(
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        let count = r.usize()?;
        let mut by_frame = BTreeMap::new();
        let mut counts = BTreeMap::new();
        for _ in 0..count {
            let frame = FrameId(r.u64()?);
            let hash = r.u64()?;
            let gen = r.u64()?;
            by_frame.insert(frame, (hash, gen));
            Self::bump(&mut counts, hash);
        }
        Ok(Self { by_frame, counts })
    }
}

/// Cached `mergeable_pages` enumeration, invalidated by the machine's
/// layout epoch (process count + per-space VMA layout generations).
///
/// Used in a take / put-back pattern so the scan loop can hold the list
/// while mutating the engine and the machine.
#[derive(Default)]
pub(crate) struct CandidateCache {
    pages: Vec<(Pid, VirtAddr)>,
    epoch: Option<(usize, u64)>,
}

impl CandidateCache {
    /// Returns `(pages, rebuilt)`: the candidate list (rebuilt via `build`
    /// only if the layout epoch moved) and whether a rebuild happened.
    /// Hand the vector back with [`CandidateCache::put_back`] after the
    /// scan loop.
    pub(crate) fn take(
        &mut self,
        m: &Machine,
        build: impl FnOnce(&Machine) -> Vec<(Pid, VirtAddr)>,
    ) -> (Vec<(Pid, VirtAddr)>, bool) {
        let epoch = m.layout_epoch();
        let rebuilt = self.epoch != Some(epoch);
        if rebuilt {
            self.pages = build(m);
            self.epoch = Some(epoch);
        }
        (std::mem::take(&mut self.pages), rebuilt)
    }

    /// Restores the list taken by [`CandidateCache::take`].
    pub(crate) fn put_back(&mut self, pages: Vec<(Pid, VirtAddr)>) {
        self.pages = pages;
    }

    /// Drops the cached list and its epoch stamp (reclaim-ladder shrink):
    /// the next take rebuilds from machine state, so nothing is lost but
    /// the memory. Returns the number of entries shed.
    pub(crate) fn shed(&mut self) -> u64 {
        let n = self.pages.len() as u64;
        self.pages = Vec::new();
        self.epoch = None;
        n
    }

    /// Serializes the cached list and its epoch stamp.
    pub(crate) fn save(&self, w: &mut vusion_snapshot::Writer) {
        match self.epoch {
            Some((procs, layout_gen)) => {
                w.bool(true);
                w.usize(procs);
                w.u64(layout_gen);
            }
            None => w.bool(false),
        }
        w.usize(self.pages.len());
        for &(pid, va) in &self.pages {
            w.usize(pid.0);
            w.u64(va.0);
        }
    }

    /// Rebuilds a cache written by [`Self::save`].
    pub(crate) fn load(
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        let epoch = if r.bool()? {
            Some((r.usize()?, r.u64()?))
        } else {
            None
        };
        let count = r.usize()?;
        let mut pages = Vec::with_capacity(count);
        for _ in 0..count {
            pages.push((Pid(r.usize()?), VirtAddr(r.u64()?)));
        }
        Ok(Self { pages, epoch })
    }
}

/// Dirty-driven pass list: remembers, per scanned `(pid, va)`, the frame
/// that backed the page and the frame's write generation at the moment
/// the engine finished deciding about it. On the next pass the engine
/// walks the leaf (mapping changes — CoW, remap, merge — surface as a
/// different frame) and asks [`DirtyTracker::is_clean`]; a hit means
/// neither the mapping nor the content moved, so re-running the decision
/// is guaranteed to reproduce last pass's outcome and the page can be
/// skipped, counted in `scan.pages_skipped_clean`.
///
/// Engines only call [`DirtyTracker::mark_seen`] from *terminal* decision
/// states — a state the pass would re-reach verbatim if nothing changed.
/// Probabilistic or progress-making states (KSM's checksum-mismatch
/// volatility filter, structural guards) are never marked, so those pages
/// keep being revisited.
#[derive(Default)]
pub(crate) struct DirtyTracker {
    seen: BTreeMap<(Pid, VirtAddr), (FrameId, u64)>,
}

impl DirtyTracker {
    /// Whether the page at `(pid, va)` — currently backed by `frame` — is
    /// unchanged since [`DirtyTracker::mark_seen`]: same backing frame
    /// *and* same frame write generation.
    pub(crate) fn is_clean(
        &self,
        mem: &PhysMemory,
        pid: Pid,
        va: VirtAddr,
        frame: FrameId,
    ) -> bool {
        self.seen.get(&(pid, va)) == Some(&(frame, mem.info(frame).write_gen))
    }

    /// Records the page's decision point: skip it while `frame` still
    /// backs it and its write generation holds.
    pub(crate) fn mark_seen(&mut self, mem: &PhysMemory, pid: Pid, va: VirtAddr, frame: FrameId) {
        self.seen
            .insert((pid, va), (frame, mem.info(frame).write_gen));
    }

    /// Forgets one page (it will be re-examined next pass).
    pub(crate) fn forget(&mut self, pid: Pid, va: VirtAddr) {
        self.seen.remove(&(pid, va));
    }

    /// Forgets everything (candidate list rebuilt).
    pub(crate) fn clear(&mut self) {
        self.seen.clear();
    }

    /// Drops all tracked pages and reports how many were shed
    /// (reclaim-ladder shrink): every page is simply re-examined.
    pub(crate) fn shed(&mut self) -> u64 {
        let n = self.seen.len() as u64;
        self.seen = BTreeMap::new();
        n
    }

    /// Number of tracked pages.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.seen.len()
    }

    /// Serializes the tracked pages (BTreeMap order, deterministic).
    pub(crate) fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.usize(self.seen.len());
        for (&(pid, va), &(frame, gen)) in &self.seen {
            w.usize(pid.0);
            w.u64(va.0);
            w.u64(frame.0);
            w.u64(gen);
        }
    }

    /// Rebuilds a tracker written by [`Self::save`].
    pub(crate) fn load(
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        let count = r.usize()?;
        let mut seen = BTreeMap::new();
        for _ in 0..count {
            let pid = Pid(r.usize()?);
            let va = VirtAddr(r.u64()?);
            let frame = FrameId(r.u64()?);
            let gen = r.u64()?;
            seen.insert((pid, va), (frame, gen));
        }
        Ok(Self { seen })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_mem::PhysAddr;

    #[test]
    fn hash_index_filters_and_tracks_membership() {
        let mut mem = PhysMemory::new(4);
        mem.write_byte(PhysAddr(0), 1);
        mem.write_byte(PhysAddr(4096), 2);
        mem.write_byte(PhysAddr(2 * 4096), 1); // same content as frame 0
        let mut ix = HashIndex::default();
        ix.insert(&mem, FrameId(0));
        assert!(ix.may_contain(&mem, FrameId(2)), "equal content must pass");
        assert!(
            !ix.may_contain(&mem, FrameId(1)),
            "absent hash is definitive"
        );
        ix.remove(FrameId(0));
        assert!(!ix.may_contain(&mem, FrameId(2)));
    }

    #[test]
    fn hash_index_refresh_catches_inplace_change() {
        let mut mem = PhysMemory::new(2);
        mem.write_byte(PhysAddr(0), 1);
        let mut ix = HashIndex::default();
        ix.insert(&mem, FrameId(0));
        // The tree page changes in place (a Rowhammer flip): the stale
        // hash must not make the filter claim the old content is present.
        mem.flip_bit(PhysAddr(0), 0);
        mem.write_byte(PhysAddr(4096), 1); // probe with the *old* content
        ix.refresh(&mem);
        assert!(
            !ix.may_contain(&mem, FrameId(1)),
            "refresh must drop the stale hash"
        );
        assert!(
            ix.may_contain(&mem, FrameId(0)),
            "the new content is indexed after refresh"
        );
    }

    #[test]
    fn duplicate_hashes_are_counted_not_clobbered() {
        let mut mem = PhysMemory::new(3);
        mem.write_byte(PhysAddr(0), 7);
        mem.write_byte(PhysAddr(4096), 7);
        mem.write_byte(PhysAddr(2 * 4096), 7);
        let mut ix = HashIndex::default();
        ix.insert(&mem, FrameId(0));
        ix.insert(&mem, FrameId(1));
        ix.remove(FrameId(0));
        assert!(
            ix.may_contain(&mem, FrameId(2)),
            "one bearer removed, one remains"
        );
        ix.remove(FrameId(1));
        assert!(!ix.may_contain(&mem, FrameId(2)));
    }

    #[test]
    fn dirty_tracker_detects_writes_and_remaps() {
        let mut mem = PhysMemory::new(3);
        mem.write_byte(PhysAddr(0), 1);
        let (pid, va) = (Pid(0), VirtAddr(0x4000));
        let mut dt = DirtyTracker::default();
        assert!(!dt.is_clean(&mem, pid, va, FrameId(0)), "unseen is dirty");
        dt.mark_seen(&mem, pid, va, FrameId(0));
        assert!(dt.is_clean(&mem, pid, va, FrameId(0)));
        // A write to the frame bumps its generation: dirty again.
        mem.write_byte(PhysAddr(7), 9);
        assert!(!dt.is_clean(&mem, pid, va, FrameId(0)));
        dt.mark_seen(&mem, pid, va, FrameId(0));
        // A remap (CoW, merge) surfaces as a different backing frame.
        assert!(!dt.is_clean(&mem, pid, va, FrameId(1)));
        dt.forget(pid, va);
        assert!(!dt.is_clean(&mem, pid, va, FrameId(0)));
    }

    #[test]
    fn dirty_tracker_round_trips_through_snapshot() {
        let mut mem = PhysMemory::new(2);
        mem.write_byte(PhysAddr(0), 3);
        mem.write_byte(PhysAddr(4096), 4);
        let mut dt = DirtyTracker::default();
        dt.mark_seen(&mem, Pid(1), VirtAddr(0x1000), FrameId(0));
        dt.mark_seen(&mem, Pid(2), VirtAddr(0x2000), FrameId(1));
        let mut w = vusion_snapshot::Writer::new();
        dt.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = vusion_snapshot::Reader::new(&bytes);
        let loaded = DirtyTracker::load(&mut r).expect("load");
        assert_eq!(loaded.len(), 2);
        assert!(loaded.is_clean(&mem, Pid(1), VirtAddr(0x1000), FrameId(0)));
        assert!(loaded.is_clean(&mem, Pid(2), VirtAddr(0x2000), FrameId(1)));
        assert!(!loaded.is_clean(&mem, Pid(1), VirtAddr(0x1000), FrameId(1)));
    }
}
