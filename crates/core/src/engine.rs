//! Engine factory: builds any of the evaluated fusion configurations.
//!
//! The paper's evaluation compares four configurations — "No dedup", "KSM",
//! "VUsion", "VUsion THP" — plus the Windows engine for the §5.2 attack and
//! two KSM variants for Figure 4. This enum names them all so experiments,
//! attacks, and benches can be written once and run against each.

use vusion_kernel::{FusionPolicy, Khugepaged, Machine, MachineConfig, NoFusion, System};
use vusion_mem::MmError;

use crate::ksm::{Ksm, KsmConfig};
use crate::vusion::{VUsion, VUsionConfig};
use crate::wpf::{Wpf, WpfConfig};

/// One of the evaluated fusion configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Fusion disabled ("No dedup").
    NoFusion,
    /// Linux KSM (insecure baseline).
    Ksm,
    /// KSM modified to unmerge on any fault (Figure 4's copy-on-access).
    KsmCoa,
    /// KSM merging only zero pages (Figure 4).
    KsmZeroOnly,
    /// Windows Page Fusion (insecure baseline).
    Wpf,
    /// VUsion (§7).
    VUsion,
    /// VUsion with the §8 THP enhancements.
    VUsionThp,
}

impl EngineKind {
    /// The four configurations of the performance tables.
    pub fn evaluation_set() -> [EngineKind; 4] {
        [
            EngineKind::NoFusion,
            EngineKind::Ksm,
            EngineKind::VUsion,
            EngineKind::VUsionThp,
        ]
    }

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::NoFusion => "No dedup",
            EngineKind::Ksm => "KSM",
            EngineKind::KsmCoa => "KSM (copy-on-access)",
            EngineKind::KsmZeroOnly => "KSM (zero pages only)",
            EngineKind::Wpf => "WPF",
            EngineKind::VUsion => "VUsion",
            EngineKind::VUsionThp => "VUsion THP",
        }
    }

    /// Stable machine-readable identifier (snake_case, no spaces) for
    /// file names, coverage keys, and canonical JSON.
    pub fn slug(self) -> &'static str {
        match self {
            EngineKind::NoFusion => "no_fusion",
            EngineKind::Ksm => "ksm",
            EngineKind::KsmCoa => "ksm_coa",
            EngineKind::KsmZeroOnly => "ksm_zero_only",
            EngineKind::Wpf => "wpf",
            EngineKind::VUsion => "vusion",
            EngineKind::VUsionThp => "vusion_thp",
        }
    }

    /// Adjusts a machine config for this engine (WPF needs the reserved
    /// linear region; the THP configurations enable huge demand paging).
    pub fn adapt_machine(self, mut cfg: MachineConfig) -> MachineConfig {
        match self {
            EngineKind::Wpf => {
                if cfg.reserved_top_frames == 0 {
                    cfg.reserved_top_frames = (cfg.frames / 16).max(64);
                }
                cfg
            }
            EngineKind::VUsionThp => cfg.with_thp(),
            _ => cfg,
        }
    }

    /// Builds the policy for a machine (already adapted). Reports
    /// [`MmError::MissingReservedRegion`] if WPF is requested on a machine
    /// whose config was not adapted.
    pub fn build_policy(
        self,
        m: &mut Machine,
        scan_period_ns: u64,
        pool_frames: usize,
    ) -> Result<Box<dyn FusionPolicy>, MmError> {
        Ok(match self {
            EngineKind::NoFusion => Box::new(NoFusion),
            EngineKind::Ksm => Box::new(Ksm::new(KsmConfig {
                scan_period_ns,
                ..Default::default()
            })),
            EngineKind::KsmCoa => Box::new(Ksm::new(KsmConfig {
                scan_period_ns,
                unmerge_on_read: true,
                ..Default::default()
            })),
            EngineKind::KsmZeroOnly => Box::new(Ksm::new(KsmConfig {
                scan_period_ns,
                zero_only: true,
                ..Default::default()
            })),
            EngineKind::Wpf => Box::new(Wpf::new(
                m,
                WpfConfig {
                    pass_period_ns: scan_period_ns * 16,
                    ..Default::default()
                },
            )?),
            EngineKind::VUsion => Box::new(VUsion::new(
                m,
                VUsionConfig {
                    scan_period_ns,
                    pool_frames,
                    ..Default::default()
                },
            )),
            EngineKind::VUsionThp => Box::new(VUsion::new(
                m,
                VUsionConfig {
                    scan_period_ns,
                    pool_frames,
                    thp_enhancements: true,
                    ..Default::default()
                },
            )),
        })
    }

    /// Builds a complete [`System`] over a fresh machine: adapted config,
    /// policy, and (for the THP configuration) the secured khugepaged.
    pub fn build_system(self, base: MachineConfig) -> System<Box<dyn FusionPolicy>> {
        let cfg = self.adapt_machine(base);
        let mut m = Machine::new(cfg);
        let pool = default_pool_frames(cfg.frames);
        let policy = match self.build_policy(&mut m, 20_000_000, pool) {
            Ok(p) => p,
            // adapt_machine reserved the linear region above, so engine
            // construction cannot fail on a freshly built machine.
            // vlint: allow(E001, construction on a fresh machine cannot fail — a panic here is a programming error worth stopping on)
            Err(e) => unreachable!("engine construction failed: {e}"),
        };
        let sys = System::new(m, policy);
        if self == EngineKind::VUsionThp {
            sys.with_khugepaged(Khugepaged::new().with_min_active(1))
        } else {
            sys
        }
    }
}

/// Pool sizing rule for scaled machines: 1/16 of memory, at least 256
/// frames, capped at the paper's 2¹⁵.
pub fn default_pool_frames(machine_frames: u64) -> usize {
    ((machine_frames / 16).max(256) as usize).min(vusion_mem::random_pool::DEFAULT_POOL_FRAMES)
}

#[cfg(test)]
mod tests {
    use super::*;

    use vusion_mem::{VirtAddr, PAGE_SIZE};
    use vusion_mmu::{Protection, Vma};

    fn smoke(kind: EngineKind) {
        let mut sys = kind.build_system(MachineConfig::test_small());
        let a = sys.machine.spawn("a").expect("spawn");
        let b = sys.machine.spawn("b").expect("spawn");
        for pid in [a, b] {
            sys.machine
                .mmap(pid, Vma::anon(VirtAddr(0x10000), 32, Protection::rw()));
            sys.machine.madvise_mergeable(pid, VirtAddr(0x10000), 32);
        }
        let mut page = [7u8; PAGE_SIZE as usize];
        page[0] = 9;
        for pid in [a, b] {
            sys.write_page(pid, VirtAddr(0x10000), &page);
        }
        sys.force_scans(14);
        // Whatever the engine did, contents must be preserved.
        assert_eq!(sys.read_page(a, VirtAddr(0x10000)), page);
        assert_eq!(sys.read_page(b, VirtAddr(0x10000)), page);
    }

    #[test]
    fn every_engine_preserves_contents() {
        for kind in [
            EngineKind::NoFusion,
            EngineKind::Ksm,
            EngineKind::KsmCoa,
            EngineKind::KsmZeroOnly,
            EngineKind::Wpf,
            EngineKind::VUsion,
            EngineKind::VUsionThp,
        ] {
            smoke(kind);
        }
    }

    #[test]
    fn fusing_engines_actually_save_memory() {
        for kind in [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion] {
            let mut sys = kind.build_system(MachineConfig::test_small());
            let a = sys.machine.spawn("a").expect("spawn");
            let b = sys.machine.spawn("b").expect("spawn");
            for pid in [a, b] {
                sys.machine
                    .mmap(pid, Vma::anon(VirtAddr(0x10000), 32, Protection::rw()));
                sys.machine.madvise_mergeable(pid, VirtAddr(0x10000), 32);
            }
            let page = [3u8; PAGE_SIZE as usize];
            for pid in [a, b] {
                sys.write_page(pid, VirtAddr(0x10000), &page);
            }
            sys.force_scans(14);
            assert!(sys.policy.pages_saved() >= 1, "{kind:?} saved nothing");
        }
    }

    #[test]
    fn labels_are_unique() {
        let kinds = [
            EngineKind::NoFusion,
            EngineKind::Ksm,
            EngineKind::KsmCoa,
            EngineKind::KsmZeroOnly,
            EngineKind::Wpf,
            EngineKind::VUsion,
            EngineKind::VUsionThp,
        ];
        let labels: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
        let slugs: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.slug()).collect();
        assert_eq!(slugs.len(), kinds.len());
        for slug in slugs {
            assert!(
                slug.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "slug {slug:?} is not snake_case"
            );
        }
    }

    #[test]
    fn pool_sizing_rule() {
        assert_eq!(default_pool_frames(4096), 256);
        assert_eq!(default_pool_frames(65536), 4096);
        assert_eq!(default_pool_frames(100_000_000), 32768);
    }
}
