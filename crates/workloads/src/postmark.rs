//! A Postmark-like mail-server benchmark (Table 4).
//!
//! Postmark stresses the file system with small-file transactions. In the
//! guest this means page-cache traffic: reads populate cache pages (prime
//! fusion candidates once the mailbox goes idle), appends copy-on-write
//! them into private dirty pages. Transactions per simulated second is the
//! reported metric.

use vusion_kernel::{FusionPolicy, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{GuestTag, Protection, Vma};
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

use crate::images::VmHandle;

/// Postmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct PostmarkBench {
    /// Size of the mail spool (pages; each "file" is 4 pages).
    pub spool_pages: u64,
    /// Transactions to run.
    pub transactions: u64,
}

impl Default for PostmarkBench {
    fn default() -> Self {
        Self {
            spool_pages: 2048,
            transactions: 2000,
        }
    }
}

/// Result of a Postmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostmarkResult {
    /// Transactions per simulated second.
    pub tx_per_s: f64,
    /// Total simulated duration (ns).
    pub duration_ns: u64,
}

const SPOOL_BASE: u64 = 0xd000_0000;
const FILE_PAGES: u64 = 4;

impl PostmarkBench {
    /// Maps the mail spool (file-backed: the guest page cache).
    pub fn setup<P: FusionPolicy>(&self, sys: &mut System<P>, vm: &VmHandle) {
        sys.machine.mmap(
            vm.pid,
            Vma::file(
                VirtAddr(SPOOL_BASE),
                self.spool_pages,
                Protection::rw(),
                0x90_0000,
                0,
            )
            .with_tag(GuestTag::PageCache),
        );
        sys.machine
            .madvise_mergeable(vm.pid, VirtAddr(SPOOL_BASE), self.spool_pages);
    }

    /// Runs the transaction mix: 50% read a file, 30% append (write last
    /// page), 20% create (write all pages of a file slot).
    pub fn run<P: FusionPolicy>(
        &self,
        sys: &mut System<P>,
        vm: &VmHandle,
        seed: u64,
    ) -> PostmarkResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let files = self.spool_pages / FILE_PAGES;
        let t0 = sys.machine.now_ns();
        for _ in 0..self.transactions {
            let file = rng.random_range(0..files);
            let base = SPOOL_BASE + file * FILE_PAGES * PAGE_SIZE;
            let kind = rng.random_range(0..10);
            if kind < 5 {
                // Read the whole file.
                for p in 0..FILE_PAGES {
                    sys.read(vm.pid, VirtAddr(base + p * PAGE_SIZE));
                }
            } else if kind < 8 {
                // Append: read header, write the tail page.
                sys.read(vm.pid, VirtAddr(base));
                for line in 0..8u64 {
                    sys.write(
                        vm.pid,
                        VirtAddr(base + (FILE_PAGES - 1) * PAGE_SIZE + line * 64),
                        (file % 251) as u8,
                    );
                }
            } else {
                // Create: overwrite the slot.
                for p in 0..FILE_PAGES {
                    for line in 0..4u64 {
                        sys.write(
                            vm.pid,
                            VirtAddr(base + p * PAGE_SIZE + line * 64),
                            (p + line) as u8,
                        );
                    }
                }
            }
        }
        let duration_ns = sys.machine.now_ns() - t0;
        PostmarkResult {
            tx_per_s: self.transactions as f64 / (duration_ns as f64 / 1e9),
            duration_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::ImageSpec;
    use vusion_core::EngineKind;
    use vusion_kernel::MachineConfig;

    fn run_with(kind: EngineKind) -> PostmarkResult {
        let mut sys = kind.build_system(MachineConfig::guest_2g_scaled());
        let vm = ImageSpec::small(0, 1).scaled(1, 2).boot(&mut sys, "vm");
        let bench = PostmarkBench {
            spool_pages: 512,
            transactions: 600,
        };
        bench.setup(&mut sys, &vm);
        bench.run(&mut sys, &vm, 7)
    }

    #[test]
    fn throughput_is_positive() {
        let r = run_with(EngineKind::NoFusion);
        assert!(r.tx_per_s > 100.0, "implausible throughput {}", r.tx_per_s);
    }

    #[test]
    fn engines_stay_within_band() {
        // Table 4: all engines within a few percent of each other.
        let base = run_with(EngineKind::NoFusion);
        for kind in [EngineKind::Ksm, EngineKind::VUsion] {
            let r = run_with(kind);
            let rel = r.tx_per_s / base.tx_per_s;
            assert!(
                rel > 0.75,
                "{kind:?} throughput collapsed to {rel:.3} of baseline"
            );
        }
    }
}
