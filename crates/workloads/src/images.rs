//! Synthetic VM images.
//!
//! A booted guest's memory decomposes (Table 3) into page-cache contents
//! (distro files, libraries — heavily duplicated across VMs of the same
//! family), pages sitting free in the guest's buddy allocator (stale data,
//! also duplicate-rich, plus zero pages), and live application data (mostly
//! unique). An [`ImageSpec`] describes those proportions; [`ImageSpec::boot`]
//! creates a process, maps and faults everything in, and registers the
//! guest's memory for fusion the way KVM registers guest RAM with KSM.

use vusion_kernel::{FusionPolicy, Pid, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{GuestTag, Protection, Vma};
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

/// Page content with a recognizable label (shared helper).
pub fn labeled_page(label: u64) -> [u8; PAGE_SIZE as usize] {
    let mut p = [0u8; PAGE_SIZE as usize];
    let mut state = label.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for chunk in p.chunks_mut(8) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        for (i, b) in chunk.iter_mut().enumerate() {
            *b = (v >> (8 * i)) as u8;
        }
    }
    p
}

/// Description of a VM image.
#[derive(Debug, Clone, Copy)]
pub struct ImageSpec {
    /// Distro family: images of the same family share base-file content.
    pub family: u64,
    /// Per-image seed for unique content.
    pub unique_seed: u64,
    /// Guest page cache holding distro files (family-shared).
    pub base_pages: u64,
    /// Guest page cache holding libraries (shared across *all* images).
    pub lib_pages: u64,
    /// Stale pages in the guest's buddy allocator (3/4 family-duplicate
    /// content, 1/4 zero).
    pub buddy_pages: u64,
    /// Demand-zero pages the guest mapped but never wrote.
    pub zero_pages: u64,
    /// Guest kernel text/data (same content across same-family kernels).
    pub kernel_pages: u64,
    /// Unique application data.
    pub app_pages: u64,
}

impl ImageSpec {
    /// A small all-purpose image (≈ 3.5 MiB of guest memory at scale 1).
    pub fn small(family: u64, unique_seed: u64) -> Self {
        Self {
            family,
            unique_seed,
            base_pages: 256,
            lib_pages: 128,
            buddy_pages: 256,
            zero_pages: 128,
            kernel_pages: 48,
            app_pages: 128,
        }
    }

    /// Total pages the image touches at boot.
    pub fn total_pages(&self) -> u64 {
        self.base_pages
            + self.lib_pages
            + self.buddy_pages
            + self.zero_pages
            + self.kernel_pages
            + self.app_pages
    }

    /// Scales every region by `num/den` (experiments shrink or grow images).
    pub fn scaled(mut self, num: u64, den: u64) -> Self {
        let s = |v: u64| (v * num / den).max(1);
        self.base_pages = s(self.base_pages);
        self.lib_pages = s(self.lib_pages);
        self.buddy_pages = s(self.buddy_pages);
        self.zero_pages = s(self.zero_pages);
        self.kernel_pages = s(self.kernel_pages);
        self.app_pages = s(self.app_pages);
        self
    }

    /// Boots the image: spawns a VM process, maps all regions, faults them
    /// in with content, and registers everything mergeable.
    pub fn boot<P: FusionPolicy>(&self, sys: &mut System<P>, name: &str) -> VmHandle {
        let pid = sys.machine.spawn(name).expect("spawn");
        let mut cursor = 0x1000_0000u64;
        let mut region = |pages: u64| {
            let start = cursor;
            // Keep regions 2 MiB-separated so layouts stay aligned-friendly.
            cursor += (pages * PAGE_SIZE).next_multiple_of(2 * 1024 * 1024) + 2 * 1024 * 1024;
            (VirtAddr(start), pages)
        };
        let (base_va, base_n) = region(self.base_pages);
        let (lib_va, lib_n) = region(self.lib_pages);
        let (buddy_va, buddy_n) = region(self.buddy_pages);
        let (zero_va, zero_n) = region(self.zero_pages);
        let (kernel_va, kernel_n) = region(self.kernel_pages);
        let (app_va, app_n) = region(self.app_pages);
        // Distro base: one big family-shared file.
        sys.machine.mmap(
            pid,
            Vma::file(base_va, base_n, Protection::ro(), 0x1000 + self.family, 0)
                .with_tag(GuestTag::PageCache),
        );
        // Libraries: one globally shared file.
        sys.machine.mmap(
            pid,
            Vma::file(lib_va, lib_n, Protection::rx(), 0x1, 0).with_tag(GuestTag::PageCache),
        );
        sys.machine.mmap(
            pid,
            Vma::anon(buddy_va, buddy_n, Protection::rw()).with_tag(GuestTag::GuestBuddy),
        );
        sys.machine.mmap(
            pid,
            Vma::anon(zero_va, zero_n, Protection::rw()).with_tag(GuestTag::GuestBuddy),
        );
        sys.machine.mmap(
            pid,
            Vma::anon(kernel_va, kernel_n, Protection::rw()).with_tag(GuestTag::GuestKernel),
        );
        sys.machine.mmap(
            pid,
            Vma::anon(app_va, app_n, Protection::rw()).with_tag(GuestTag::Other),
        );
        // KVM registers all guest memory with the fusion system.
        for (va, n) in [
            (base_va, base_n),
            (lib_va, lib_n),
            (buddy_va, buddy_n),
            (zero_va, zero_n),
            (kernel_va, kernel_n),
            (app_va, app_n),
        ] {
            sys.machine.madvise_mergeable(pid, va, n);
        }
        // Fault everything in ("boot"): file pages load content, buddy
        // pages get stale (duplicate-rich) content, zero pages stay zero.
        for i in 0..base_n {
            sys.read(pid, VirtAddr(base_va.0 + i * PAGE_SIZE));
        }
        for i in 0..lib_n {
            sys.read(pid, VirtAddr(lib_va.0 + i * PAGE_SIZE));
        }
        for i in 0..buddy_n {
            let content = if i % 4 == 0 {
                [0u8; PAGE_SIZE as usize] // Zero page in the free pool.
            } else {
                labeled_page(0xb0dd_0000 ^ (self.family << 32) ^ i)
            };
            sys.write_page(pid, VirtAddr(buddy_va.0 + i * PAGE_SIZE), &content);
        }
        for i in 0..zero_n {
            sys.read(pid, VirtAddr(zero_va.0 + i * PAGE_SIZE));
        }
        for i in 0..kernel_n {
            // Kernel text: identical across same-family guests.
            let content = labeled_page(0x6e71_0000 ^ (self.family << 48) ^ (i << 8));
            sys.write_page(pid, VirtAddr(kernel_va.0 + i * PAGE_SIZE), &content);
        }
        for i in 0..app_n {
            let content = labeled_page(self.unique_seed.wrapping_mul(0x1_0001) ^ (i << 40) | 1);
            sys.write_page(pid, VirtAddr(app_va.0 + i * PAGE_SIZE), &content);
        }
        VmHandle {
            pid,
            app_base: app_va,
            app_pages: app_n,
            buddy_base: buddy_va,
            spec: *self,
        }
    }
}

/// A booted VM.
#[derive(Debug, Clone, Copy)]
pub struct VmHandle {
    /// The VM's process id.
    pub pid: Pid,
    /// Base of the application region (workload drivers use it).
    pub app_base: VirtAddr,
    /// Application pages.
    pub app_pages: u64,
    /// Base of the guest-buddy region.
    pub buddy_base: VirtAddr,
    /// The image this VM booted from.
    pub spec: ImageSpec,
}

/// A catalog of images, standing in for the paper's 44 DAS4 cloud images.
pub struct ImageCatalog {
    images: Vec<ImageSpec>,
}

impl ImageCatalog {
    /// 44 images across 6 distro families with varying sizes, as in the
    /// Figure 11 experiment.
    pub fn das4(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let images = (0..44u64)
            .map(|i| {
                let family = i % 6;
                let mut spec = ImageSpec::small(family, seed ^ (i << 8) ^ 0xcafe);
                // Vary sizes by up to 2x.
                let num = rng.random_range(2..=4u64);
                spec = spec.scaled(num, 2);
                spec
            })
            .collect();
        Self { images }
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The `i`-th image.
    pub fn get(&self, i: usize) -> ImageSpec {
        self.images[i % self.images.len()]
    }

    /// A random selection of `n` images (with replacement), as in "16 VMs
    /// using randomly selected VM images".
    pub fn pick(&self, n: usize, seed: u64) -> Vec<ImageSpec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| self.images[rng.random_range(0..self.images.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_core::EngineKind;
    use vusion_kernel::MachineConfig;

    #[test]
    fn boot_populates_all_regions() {
        let mut sys = EngineKind::NoFusion.build_system(MachineConfig::test_small());
        let spec = ImageSpec::small(0, 7).scaled(1, 4);
        let before = sys.machine.allocated_frames();
        let vm = spec.boot(&mut sys, "vm0");
        let after = sys.machine.allocated_frames();
        assert!(
            after - before >= spec.total_pages() as usize,
            "all regions faulted in"
        );
        // App content is readable and labeled.
        let page = sys.read_page(vm.pid, vm.app_base);
        assert_ne!(page, [0u8; PAGE_SIZE as usize]);
    }

    #[test]
    fn same_family_images_share_base_content() {
        let mut sys = EngineKind::NoFusion.build_system(MachineConfig::test_small());
        let a = ImageSpec::small(1, 10).scaled(1, 4).boot(&mut sys, "a");
        let b = ImageSpec::small(1, 11).scaled(1, 4).boot(&mut sys, "b");
        // Base regions start at the same VA layout; compare first base page.
        let pa = sys
            .machine
            .translate_quiet(a.pid, VirtAddr(0x1000_0000))
            .expect("mapped");
        let pb = sys
            .machine
            .translate_quiet(b.pid, VirtAddr(0x1000_0000))
            .expect("mapped");
        assert_ne!(pa.frame(), pb.frame());
        assert!(
            sys.machine.mem().pages_equal(pa.frame(), pb.frame()),
            "family-shared distro file"
        );
    }

    #[test]
    fn different_families_differ() {
        let mut sys = EngineKind::NoFusion.build_system(MachineConfig::test_small());
        let a = ImageSpec::small(1, 10).scaled(1, 4).boot(&mut sys, "a");
        let b = ImageSpec::small(2, 10).scaled(1, 4).boot(&mut sys, "b");
        let pa = sys
            .machine
            .translate_quiet(a.pid, VirtAddr(0x1000_0000))
            .expect("mapped");
        let pb = sys
            .machine
            .translate_quiet(b.pid, VirtAddr(0x1000_0000))
            .expect("mapped");
        assert!(!sys.machine.mem().pages_equal(pa.frame(), pb.frame()));
    }

    #[test]
    fn ksm_reclaims_duplicate_memory_across_twin_vms() {
        let mut sys = EngineKind::Ksm.build_system(MachineConfig::guest_2g_scaled());
        let spec = ImageSpec::small(0, 1);
        spec.boot(&mut sys, "a");
        // Second VM with a different unique seed: app data differs, rest dups.
        let spec_b = ImageSpec {
            unique_seed: 2,
            ..spec
        };
        spec_b.boot(&mut sys, "b");
        let before = sys.machine.allocated_frames();
        sys.force_scans(((spec.total_pages() * 2 * 5) / 100) as usize);
        let after = sys.machine.allocated_frames();
        let saved = before - after;
        // Base + lib + buddy dups + zero pages are shareable; app is not.
        assert!(
            saved as u64 > spec.total_pages() / 2,
            "expected substantial fusion, saved only {saved} of {}",
            spec.total_pages()
        );
    }

    #[test]
    fn catalog_has_44_diverse_images() {
        let c = ImageCatalog::das4(9);
        assert_eq!(c.len(), 44);
        let picked = c.pick(16, 1);
        assert_eq!(picked.len(), 16);
        let families: std::collections::BTreeSet<u64> = picked.iter().map(|s| s.family).collect();
        assert!(families.len() > 2, "selection spans families");
    }

    #[test]
    fn zero_pages_are_actually_zero() {
        let mut sys = EngineKind::NoFusion.build_system(MachineConfig::test_small());
        let spec = ImageSpec::small(3, 3).scaled(1, 4);
        let vm = spec.boot(&mut sys, "z");
        // The zero region sits between buddy and app; recompute its base the
        // same way boot did.
        let mut cursor = 0x1000_0000u64;
        let mut region = |pages: u64| {
            let start = cursor;
            cursor += (pages * PAGE_SIZE).next_multiple_of(2 * 1024 * 1024) + 2 * 1024 * 1024;
            start
        };
        let _ = region(spec.base_pages);
        let _ = region(spec.lib_pages);
        let _ = region(spec.buddy_pages);
        let zero_base = region(spec.zero_pages);
        // (kernel and app regions follow; not needed here)
        assert_eq!(sys.read(vm.pid, VirtAddr(zero_base)), 0);
        let pa = sys
            .machine
            .translate_quiet(vm.pid, VirtAddr(zero_base))
            .expect("mapped");
        assert!(sys.machine.mem().is_zero(pa.frame()));
    }
}
