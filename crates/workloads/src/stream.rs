//! The Stream memory-bandwidth benchmark (Table 2).
//!
//! Four kernels over three arrays: copy (`c = a`), scale (`b = q·c`), add
//! (`c = a + b`), triad (`a = b + q·c`). Bandwidth is bytes moved per
//! simulated second. Fusion engines perturb it only through the few extra
//! faults their scanners induce, which is why the paper measures < 1%
//! overhead for every configuration.

use vusion_kernel::{FusionPolicy, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};

use crate::images::{labeled_page, VmHandle};

/// Stream configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamBench {
    /// Pages per array.
    pub pages: u64,
    /// Repetitions of each kernel.
    pub iterations: u32,
}

impl Default for StreamBench {
    fn default() -> Self {
        Self {
            pages: 512,
            iterations: 3,
        }
    }
}

/// Measured bandwidths in MiB/s of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamResult {
    /// `c = a`.
    pub copy_mib_s: f64,
    /// `b = q·c`.
    pub scale_mib_s: f64,
    /// `c = a + b`.
    pub add_mib_s: f64,
    /// `a = b + q·c`.
    pub triad_mib_s: f64,
}

const ARRAY_A: u64 = 0x9000_0000;
const ARRAY_B: u64 = 0xa000_0000;
const ARRAY_C: u64 = 0xb000_0000;

impl StreamBench {
    /// Maps and initializes the three arrays inside the VM.
    pub fn setup<P: FusionPolicy>(&self, sys: &mut System<P>, vm: &VmHandle) {
        for (base, salt) in [(ARRAY_A, 1u64), (ARRAY_B, 2), (ARRAY_C, 3)] {
            sys.machine.mmap(
                vm.pid,
                Vma::anon(VirtAddr(base), self.pages, Protection::rw()),
            );
            sys.machine
                .madvise_mergeable(vm.pid, VirtAddr(base), self.pages);
            for i in 0..self.pages {
                sys.write_page(
                    vm.pid,
                    VirtAddr(base + i * PAGE_SIZE),
                    &labeled_page(salt ^ (i << 16)),
                );
            }
        }
    }

    fn sweep<P: FusionPolicy>(
        sys: &mut System<P>,
        vm: &VmHandle,
        pages: u64,
        reads: &[u64],
        write: u64,
    ) -> u64 {
        let t0 = sys.machine.now_ns();
        for i in 0..pages {
            for &r in reads {
                // One access per cache line, streaming.
                for line in 0..(PAGE_SIZE / 64) {
                    sys.read(vm.pid, VirtAddr(r + i * PAGE_SIZE + line * 64));
                }
            }
            for line in 0..(PAGE_SIZE / 64) {
                sys.write(
                    vm.pid,
                    VirtAddr(write + i * PAGE_SIZE + line * 64),
                    (line % 251) as u8,
                );
            }
        }
        sys.machine.now_ns() - t0
    }

    /// Runs the four kernels and reports bandwidths.
    pub fn run<P: FusionPolicy>(&self, sys: &mut System<P>, vm: &VmHandle) -> StreamResult {
        let mut totals = [0u64; 4]; // copy, scale, add, triad.
        for _ in 0..self.iterations {
            totals[0] += Self::sweep(sys, vm, self.pages, &[ARRAY_A], ARRAY_C);
            totals[1] += Self::sweep(sys, vm, self.pages, &[ARRAY_C], ARRAY_B);
            totals[2] += Self::sweep(sys, vm, self.pages, &[ARRAY_A, ARRAY_B], ARRAY_C);
            totals[3] += Self::sweep(sys, vm, self.pages, &[ARRAY_B, ARRAY_C], ARRAY_A);
        }
        let bytes_2 = (self.pages * PAGE_SIZE * 2 * u64::from(self.iterations)) as f64;
        let bytes_3 = (self.pages * PAGE_SIZE * 3 * u64::from(self.iterations)) as f64;
        let mib = |bytes: f64, ns: u64| bytes / (1024.0 * 1024.0) / (ns as f64 / 1e9);
        StreamResult {
            copy_mib_s: mib(bytes_2, totals[0]),
            scale_mib_s: mib(bytes_2, totals[1]),
            add_mib_s: mib(bytes_3, totals[2]),
            triad_mib_s: mib(bytes_3, totals[3]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::ImageSpec;
    use vusion_core::EngineKind;
    use vusion_kernel::MachineConfig;

    fn run_with(kind: EngineKind) -> StreamResult {
        let mut sys = kind.build_system(MachineConfig::test_small());
        let vm = ImageSpec::small(0, 1).scaled(1, 8).boot(&mut sys, "vm");
        let bench = StreamBench {
            pages: 64,
            iterations: 2,
        };
        bench.setup(&mut sys, &vm);
        bench.run(&mut sys, &vm)
    }

    #[test]
    fn bandwidth_is_positive_and_sane() {
        let r = run_with(EngineKind::NoFusion);
        for v in [r.copy_mib_s, r.scale_mib_s, r.add_mib_s, r.triad_mib_s] {
            assert!(v > 100.0, "bandwidth {v} MiB/s implausibly low");
            assert!(v < 1_000_000.0, "bandwidth {v} MiB/s implausibly high");
        }
    }

    #[test]
    fn fusion_overhead_is_small() {
        // The Table 2 property: KSM and VUsion stay within a few percent.
        let base = run_with(EngineKind::NoFusion);
        for kind in [EngineKind::Ksm, EngineKind::VUsion] {
            let r = run_with(kind);
            let overhead = (base.copy_mib_s - r.copy_mib_s) / base.copy_mib_s;
            assert!(
                overhead < 0.10,
                "{kind:?} copy overhead {overhead:.3} too high"
            );
        }
    }

    #[test]
    fn add_and_triad_move_more_bytes() {
        // 3-operand kernels take longer per element, so bandwidths are in
        // the same ballpark; sanity check the accounting.
        let r = run_with(EngineKind::NoFusion);
        let lo = r.copy_mib_s.min(r.scale_mib_s) * 0.5;
        let hi = r.copy_mib_s.max(r.scale_mib_s) * 2.0;
        assert!(r.add_mib_s > lo && r.add_mib_s < hi);
        assert!(r.triad_mib_s > lo && r.triad_mib_s < hi);
    }
}
