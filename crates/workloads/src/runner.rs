//! Experiment scaffolding shared by the benches.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, MachineConfig, System};

/// A machine profile for experiments.
pub struct ExperimentMachine;

impl ExperimentMachine {
    /// The standard evaluation machine: 256 MiB (a scaled 2 GB guest host),
    /// the testbed's LLC geometry, DDR4 banks.
    pub fn standard() -> MachineConfig {
        MachineConfig::guest_2g_scaled()
    }

    /// The standard machine with transparent huge pages (server workloads).
    pub fn standard_thp() -> MachineConfig {
        MachineConfig::guest_2g_scaled().with_thp()
    }
}

/// Memory in use, in MiB (frames × 4 KiB).
pub fn consumed_mib<P: FusionPolicy>(sys: &System<P>) -> f64 {
    sys.machine.allocated_frames() as f64 * 4096.0 / (1024.0 * 1024.0)
}

/// One point of a memory-consumption time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySample {
    /// Simulated time (seconds).
    pub t_s: f64,
    /// Memory in use (MiB).
    pub mib: f64,
    /// Pages currently saved by fusion.
    pub pages_saved: u64,
}

/// Samples memory consumption while idling the system for `duration_ns`,
/// every `sample_ns`.
pub fn sample_idle<P: FusionPolicy>(
    sys: &mut System<P>,
    duration_ns: u64,
    sample_ns: u64,
) -> Vec<MemorySample> {
    let mut out = Vec::new();
    let end = sys.machine.now_ns() + duration_ns;
    while sys.machine.now_ns() < end {
        sys.idle(sample_ns.min(end - sys.machine.now_ns()));
        out.push(MemorySample {
            t_s: sys.machine.now_ns() as f64 / 1e9,
            mib: consumed_mib(sys),
            pages_saved: sys.policy.pages_saved(),
        });
    }
    out
}

/// Runs `f` once per engine, returning `(engine, result)` rows — the
/// standard "No dedup / KSM / VUsion / VUsion THP" comparison.
pub fn engine_comparison<R>(
    engines: &[EngineKind],
    base: MachineConfig,
    mut f: impl FnMut(EngineKind, System<Box<dyn FusionPolicy>>) -> R,
) -> Vec<(EngineKind, R)> {
    engines
        .iter()
        .map(|&kind| (kind, f(kind, kind.build_system(base))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::ImageSpec;

    #[test]
    fn memory_sampling_tracks_fusion() {
        let mut sys = EngineKind::Ksm.build_system(ExperimentMachine::standard());
        ImageSpec::small(0, 1).boot(&mut sys, "a");
        ImageSpec::small(0, 2).boot(&mut sys, "b");
        // Sample quickly: KSM converges within a couple of simulated
        // seconds at this scale (5000 pages/s over ~2000 pages).
        let samples = sample_idle(&mut sys, 10_000_000_000, 400_000_000);
        assert!(samples.len() >= 5);
        let first = samples.first().expect("non-empty");
        let last = samples.last().expect("non-empty");
        assert!(
            last.mib < first.mib,
            "idle fusion must reclaim memory: {first:?} -> {last:?}"
        );
        assert!(last.pages_saved > 0);
    }

    #[test]
    fn engine_comparison_runs_all() {
        let rows = engine_comparison(
            &EngineKind::evaluation_set(),
            MachineConfig::test_small(),
            |kind, sys| {
                let _ = sys;
                kind.label().len()
            },
        );
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn consumed_mib_counts_frames() {
        let mut sys = EngineKind::NoFusion.build_system(MachineConfig::test_small());
        let before = consumed_mib(&sys);
        ImageSpec::small(0, 1).scaled(1, 4).boot(&mut sys, "vm");
        assert!(consumed_mib(&sys) > before);
    }
}
