//! SPEC CPU2006- and PARSEC-like workload profiles (Figures 7 and 8).
//!
//! Each benchmark is modeled by its memory profile: footprint, hot working
//! set, write fraction, and how often it strays into cold pages. The
//! fusion-relevant behaviour — how many (fake-)merged idle pages the
//! workload re-activates per second — is a function of exactly these
//! parameters, which is what the overhead figures measure.

use vusion_kernel::{FusionPolicy, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

use crate::images::{labeled_page, VmHandle};

/// A benchmark's memory profile.
#[derive(Debug, Clone, Copy)]
pub struct CpuProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Total mapped footprint (pages).
    pub footprint_pages: u64,
    /// Hot working set (pages).
    pub working_set_pages: u64,
    /// Fraction of accesses that are writes.
    pub write_frac: f64,
    /// Fraction of accesses that stray outside the working set.
    pub cold_frac: f64,
}

/// The SPEC CPU2006 integer benchmarks (profiles scaled to the simulator).
pub fn spec_cpu2006() -> Vec<CpuProfile> {
    let p = |name, fp, ws, wf, cf| CpuProfile {
        name,
        footprint_pages: fp,
        working_set_pages: ws,
        write_frac: wf,
        cold_frac: cf,
    };
    vec![
        p("perlbench", 1200, 300, 0.35, 0.02),
        p("bzip2", 1600, 500, 0.40, 0.01),
        p("gcc", 2000, 700, 0.35, 0.05),
        p("mcf", 3000, 1400, 0.30, 0.08),
        p("gobmk", 800, 250, 0.30, 0.02),
        p("hmmer", 600, 200, 0.45, 0.01),
        p("sjeng", 700, 300, 0.30, 0.01),
        p("libquantum", 1800, 900, 0.50, 0.02),
        p("h264ref", 1000, 350, 0.40, 0.02),
        p("omnetpp", 2400, 1000, 0.35, 0.06),
        p("astar", 1400, 600, 0.30, 0.04),
        p("xalancbmk", 2200, 900, 0.35, 0.06),
    ]
}

/// PARSEC benchmarks (fmm/barnes/netapps excluded, as in the paper).
pub fn parsec() -> Vec<CpuProfile> {
    let p = |name, fp, ws, wf, cf| CpuProfile {
        name,
        footprint_pages: fp,
        working_set_pages: ws,
        write_frac: wf,
        cold_frac: cf,
    };
    vec![
        p("blackscholes", 900, 400, 0.25, 0.01),
        p("bodytrack", 1100, 450, 0.35, 0.03),
        p("canneal", 2800, 1300, 0.30, 0.10),
        p("dedup", 2000, 800, 0.45, 0.05),
        p("facesim", 1800, 800, 0.40, 0.03),
        p("ferret", 1500, 600, 0.35, 0.04),
        p("fluidanimate", 1600, 700, 0.45, 0.02),
        p("freqmine", 1400, 600, 0.35, 0.03),
        p("streamcluster", 2200, 1100, 0.30, 0.06),
        p("swaptions", 500, 200, 0.30, 0.01),
        p("vips", 1200, 500, 0.40, 0.03),
        p("x264", 1300, 500, 0.45, 0.02),
    ]
}

const BENCH_BASE: u64 = 0xc000_0000;

/// Maps and initializes the benchmark's footprint inside the VM.
pub fn setup_profile<P: FusionPolicy>(sys: &mut System<P>, vm: &VmHandle, profile: &CpuProfile) {
    sys.machine.mmap(
        vm.pid,
        Vma::anon(
            VirtAddr(BENCH_BASE),
            profile.footprint_pages,
            Protection::rw(),
        ),
    );
    sys.machine
        .madvise_mergeable(vm.pid, VirtAddr(BENCH_BASE), profile.footprint_pages);
    for i in 0..profile.footprint_pages {
        sys.write_page(
            sys_pid(vm),
            VirtAddr(BENCH_BASE + i * PAGE_SIZE),
            &labeled_page(0xcb_0000 ^ (i << 20) ^ u64::from(profile.name.len() as u32)),
        );
    }
}

fn sys_pid(vm: &VmHandle) -> vusion_kernel::Pid {
    vm.pid
}

/// Runs `ops` profile accesses; returns the simulated duration (ns).
pub fn run_profile<P: FusionPolicy>(
    sys: &mut System<P>,
    vm: &VmHandle,
    profile: &CpuProfile,
    ops: u64,
    seed: u64,
) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed ^ profile.footprint_pages);
    let t0 = sys.machine.now_ns();
    for _ in 0..ops {
        let page = if rng.random_range(0.0..1.0) < profile.cold_frac {
            rng.random_range(0..profile.footprint_pages)
        } else {
            rng.random_range(0..profile.working_set_pages.min(profile.footprint_pages))
        };
        let line = rng.random_range(0..PAGE_SIZE / 64);
        let va = VirtAddr(BENCH_BASE + page * PAGE_SIZE + line * 64);
        if rng.random_range(0.0..1.0) < profile.write_frac {
            sys.write(vm.pid, va, (page % 251) as u8);
        } else {
            sys.read(vm.pid, va);
        }
    }
    sys.machine.now_ns() - t0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::ImageSpec;
    use vusion_core::EngineKind;
    use vusion_kernel::MachineConfig;

    fn runtime(kind: EngineKind, profile: &CpuProfile, ops: u64) -> u64 {
        let mut sys = kind.build_system(MachineConfig::guest_2g_scaled());
        let vm = ImageSpec::small(0, 1).boot(&mut sys, "vm");
        setup_profile(&mut sys, &vm, profile);
        run_profile(&mut sys, &vm, profile, ops, 42)
    }

    #[test]
    fn suites_have_twelve_benchmarks_each() {
        assert_eq!(spec_cpu2006().len(), 12);
        assert_eq!(parsec().len(), 12);
        let names: std::collections::BTreeSet<_> = spec_cpu2006().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn vusion_overhead_is_bounded() {
        // The Figure 7 property at test scale: VUsion's extra faults cost
        // little because they are confined to cold pages.
        let p = spec_cpu2006()[4]; // gobmk: small, cache-friendly.
        let base = runtime(EngineKind::NoFusion, &p, 20_000);
        let vus = runtime(EngineKind::VUsion, &p, 20_000);
        let overhead = vus as f64 / base as f64 - 1.0;
        assert!(overhead < 0.25, "VUsion overhead {overhead:.3} out of band");
    }

    #[test]
    fn cold_heavy_profiles_pay_more_under_vusion() {
        // mcf strays into cold (fused) pages 4x more often than hmmer; its
        // copy-on-access tax must be higher.
        let suites = spec_cpu2006();
        let mcf = suites.iter().find(|p| p.name == "mcf").expect("present");
        let hmmer = suites.iter().find(|p| p.name == "hmmer").expect("present");
        let mcf_over = {
            let b = runtime(EngineKind::NoFusion, mcf, 15_000) as f64;
            runtime(EngineKind::VUsion, mcf, 15_000) as f64 / b
        };
        let hmmer_over = {
            let b = runtime(EngineKind::NoFusion, hmmer, 15_000) as f64;
            runtime(EngineKind::VUsion, hmmer, 15_000) as f64 / b
        };
        assert!(
            mcf_over > hmmer_over * 0.95,
            "cold-heavy mcf ({mcf_over:.3}) should pay at least as much as hmmer ({hmmer_over:.3})"
        );
    }
}
