//! Redis- and Memcached-like key-value stores under a memtier-like load
//! (Tables 6 and 7).
//!
//! Both stores keep a large page-resident value heap; a GET reads a value
//! line (plus store-specific metadata), a SET writes one. The memtier
//! parameters from the paper apply: a 1:10 SET/GET ratio and a large key
//! space, so much of the heap is touched rarely — prime fusion-candidate
//! territory whose reactivation cost separates the engines.

use vusion_kernel::{FusionPolicy, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

use crate::images::{labeled_page, VmHandle};

/// Which store to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvFlavor {
    /// Single-threaded event loop, dict metadata touched per op.
    Redis,
    /// Slab allocator, hash bucket per op, lighter metadata.
    Memcached,
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct KvStore {
    /// Which store.
    pub flavor: KvFlavor,
    /// Value-heap pages.
    pub heap_pages: u64,
    /// Metadata pages (dict/slab headers).
    pub meta_pages: u64,
    /// Number of keys.
    pub keys: u64,
}

impl KvStore {
    /// A Redis-like store.
    pub fn redis() -> Self {
        Self {
            flavor: KvFlavor::Redis,
            heap_pages: 3072,
            meta_pages: 128,
            keys: 100_000,
        }
    }

    /// A Memcached-like store.
    pub fn memcached() -> Self {
        Self {
            flavor: KvFlavor::Memcached,
            heap_pages: 3072,
            meta_pages: 64,
            keys: 100_000,
        }
    }
}

/// Result of a load run.
#[derive(Debug, Clone)]
pub struct KvResult {
    /// Operations per simulated second.
    pub ops_per_s: f64,
    /// SET latencies (ms).
    pub set_latencies_ms: Vec<f64>,
    /// GET latencies (ms).
    pub get_latencies_ms: Vec<f64>,
}

const HEAP_BASE: u64 = 0x3_0000_0000;
const META_BASE: u64 = 0x4_0000_0000;

/// A running store.
pub struct KvInstance {
    cfg: KvStore,
    vm: VmHandle,
}

impl KvStore {
    /// Maps and pre-populates the store inside a booted VM.
    pub fn start<P: FusionPolicy>(&self, sys: &mut System<P>, vm: &VmHandle) -> KvInstance {
        sys.machine.mmap(
            vm.pid,
            Vma::anon(VirtAddr(HEAP_BASE), self.heap_pages, Protection::rw()),
        );
        sys.machine.mmap(
            vm.pid,
            Vma::anon(VirtAddr(META_BASE), self.meta_pages, Protection::rw()),
        );
        sys.machine
            .madvise_mergeable(vm.pid, VirtAddr(HEAP_BASE), self.heap_pages);
        sys.machine
            .madvise_mergeable(vm.pid, VirtAddr(META_BASE), self.meta_pages);
        // Pre-populate: values are mostly sparse (32-byte objects), so many
        // heap pages start highly similar (zero-ish) — realistic dedup bait.
        for i in 0..self.heap_pages {
            if i % 8 == 0 {
                sys.write_page(
                    vm.pid,
                    VirtAddr(HEAP_BASE + i * PAGE_SIZE),
                    &labeled_page(0x4b_0000 ^ (i << 24)),
                );
            } else {
                sys.read(vm.pid, VirtAddr(HEAP_BASE + i * PAGE_SIZE)); // Demand zero.
            }
        }
        for i in 0..self.meta_pages {
            sys.write_page(
                vm.pid,
                VirtAddr(META_BASE + i * PAGE_SIZE),
                &labeled_page(0x3e7a ^ (i << 16)),
            );
        }
        KvInstance {
            cfg: *self,
            vm: *vm,
        }
    }
}

impl KvInstance {
    fn key_addr(&self, key: u64) -> VirtAddr {
        // 32-byte objects: 128 per page.
        let slot = key % (self.cfg.heap_pages * 128);
        VirtAddr(HEAP_BASE + (slot / 128) * PAGE_SIZE + (slot % 128) * 32)
    }

    fn meta_addr(&self, key: u64) -> VirtAddr {
        let slot = key % (self.cfg.meta_pages * 64);
        VirtAddr(META_BASE + (slot / 64) * PAGE_SIZE + (slot % 64) * 64)
    }

    /// One GET.
    pub fn get<P: FusionPolicy>(&self, sys: &mut System<P>, key: u64) -> u64 {
        let t0 = sys.machine.now_ns();
        match self.cfg.flavor {
            KvFlavor::Redis => {
                // Dict lookup: two metadata reads, then the value.
                sys.read(self.vm.pid, self.meta_addr(key));
                sys.read(self.vm.pid, self.meta_addr(key.rotate_left(17)));
            }
            KvFlavor::Memcached => {
                sys.read(self.vm.pid, self.meta_addr(key));
            }
        }
        sys.read(self.vm.pid, self.key_addr(key));
        sys.machine.now_ns() - t0
    }

    /// One SET.
    pub fn set<P: FusionPolicy>(&self, sys: &mut System<P>, key: u64, value: u8) -> u64 {
        let t0 = sys.machine.now_ns();
        sys.read(self.vm.pid, self.meta_addr(key));
        sys.write(self.vm.pid, self.meta_addr(key), value ^ 1);
        sys.write(self.vm.pid, self.key_addr(key), value);
        sys.machine.now_ns() - t0
    }

    /// Runs a memtier-like closed loop: `ops` operations, 1:10 SET/GET
    /// ratio, keys drawn hot-skewed (80% of ops hit 10% of the key space).
    pub fn run_load<P: FusionPolicy>(&self, sys: &mut System<P>, ops: u64, seed: u64) -> KvResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set_lat = Vec::new();
        let mut get_lat = Vec::new();
        let t0 = sys.machine.now_ns();
        for _ in 0..ops {
            let key = if rng.random_range(0..10) < 8 {
                rng.random_range(0..self.cfg.keys / 10)
            } else {
                rng.random_range(0..self.cfg.keys)
            };
            if rng.random_range(0..11) == 0 {
                set_lat.push(self.set(sys, key, (key % 251) as u8) as f64 / 1e6);
            } else {
                get_lat.push(self.get(sys, key) as f64 / 1e6);
            }
        }
        let wall = sys.machine.now_ns() - t0;
        KvResult {
            ops_per_s: ops as f64 / (wall as f64 / 1e9),
            set_latencies_ms: set_lat,
            get_latencies_ms: get_lat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::ImageSpec;
    use vusion_core::EngineKind;
    use vusion_kernel::MachineConfig;

    fn run_with(kind: EngineKind, store: KvStore, ops: u64) -> KvResult {
        let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
        let vm = ImageSpec::small(0, 1).boot(&mut sys, "kv-vm");
        let inst = store.start(&mut sys, &vm);
        inst.run_load(&mut sys, ops, 5)
    }

    #[test]
    fn load_mix_is_one_to_ten() {
        let r = run_with(EngineKind::NoFusion, KvStore::memcached(), 3000);
        let ratio = r.get_latencies_ms.len() as f64 / r.set_latencies_ms.len() as f64;
        assert!(
            (6.0..16.0).contains(&ratio),
            "SET:GET ratio off: 1:{ratio:.1}"
        );
    }

    #[test]
    fn throughput_positive_and_latencies_recorded() {
        let r = run_with(EngineKind::NoFusion, KvStore::redis(), 2000);
        assert!(r.ops_per_s > 10_000.0);
        assert!(!r.get_latencies_ms.is_empty());
        assert!(r.get_latencies_ms.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn redis_pays_more_metadata_than_memcached() {
        let r = run_with(EngineKind::NoFusion, KvStore::redis(), 2000);
        let m = run_with(EngineKind::NoFusion, KvStore::memcached(), 2000);
        assert!(
            m.ops_per_s > r.ops_per_s * 0.95,
            "memcached ({:.0}) should not trail redis ({:.0}) by much",
            m.ops_per_s,
            r.ops_per_s
        );
    }

    #[test]
    fn fusion_keeps_throughput_in_band() {
        let base = run_with(EngineKind::NoFusion, KvStore::memcached(), 2500);
        for kind in [EngineKind::Ksm, EngineKind::VUsion] {
            let r = run_with(kind, KvStore::memcached(), 2500);
            let rel = r.ops_per_s / base.ops_per_s;
            assert!(rel > 0.6, "{kind:?} throughput collapsed to {rel:.2}");
        }
    }
}
