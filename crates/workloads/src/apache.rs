//! An Apache-prefork-like HTTP server (Table 5, Figures 9 and 12).
//!
//! The server keeps a pool of worker processes; each worker owns a 2 MiB
//! THP-eligible heap whose first pages hold configuration/code *identical
//! across workers* (intra-VM duplicates — fusion bait inside the working
//! set). Serving a request touches a spread of the worker's heap, reads
//! document pages from the page cache and writes a response buffer. Under
//! load Apache "self-balances": the worker pool grows, which is what makes
//! memory consumption rise during the benchmark window in Figure 12.
//!
//! The THP story of Table 5 plays out here: with fusion off, worker heaps
//! stay 2 MiB-mapped and the hot set enjoys huge TLB reach. KSM merges the
//! duplicated config pages and thereby splits every worker's THP; VUsion
//! (plain) breaks idle THPs too; VUsion-THP conserves active huge pages
//! and lets the secured khugepaged re-collapse, recovering the throughput.

use vusion_kernel::{FusionPolicy, System};
use vusion_mem::{VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE};
use vusion_mmu::{GuestTag, Protection, Vma};
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

use crate::images::{labeled_page, VmHandle};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ApacheServer {
    /// Workers running at start.
    pub initial_workers: u64,
    /// Upper bound on the pool.
    pub max_workers: u64,
    /// Requests between pool-growth steps (self-balancing).
    pub grow_every: u64,
    /// Pages of each worker's heap that a request touches.
    pub touched_pages: u64,
    /// Document-root pages (page cache).
    pub doc_pages: u64,
}

impl Default for ApacheServer {
    fn default() -> Self {
        Self {
            initial_workers: 10,
            max_workers: 18,
            grow_every: 400,
            touched_pages: 176,
            doc_pages: 256,
        }
    }
}

/// A running server instance.
pub struct ApacheInstance {
    cfg: ApacheServer,
    vm: VmHandle,
    active_workers: u64,
    served: u64,
}

/// Result of a load run.
#[derive(Debug, Clone)]
pub struct ApacheResult {
    /// Requests per simulated second (the paper reports kreq/s).
    pub req_per_s: f64,
    /// Per-request latencies (ms).
    pub latencies_ms: Vec<f64>,
    /// Workers active at the end.
    pub final_workers: u64,
}

const WORKER_BASE: u64 = 0x2_0000_0000;
const DOC_BASE: u64 = 0x1_0000_0000;
/// Config/code pages at the start of each worker heap, identical across
/// workers.
const CONFIG_PAGES: u64 = 16;

impl ApacheServer {
    fn worker_heap(idx: u64) -> VirtAddr {
        VirtAddr(WORKER_BASE + idx * 2 * HUGE_PAGE_SIZE)
    }

    /// Starts the server inside a booted VM: maps the document root and the
    /// initial workers.
    pub fn start<P: FusionPolicy>(&self, sys: &mut System<P>, vm: &VmHandle) -> ApacheInstance {
        sys.machine.mmap(
            vm.pid,
            Vma::file(
                VirtAddr(DOC_BASE),
                self.doc_pages,
                Protection::ro(),
                0x4a11,
                0,
            )
            .with_tag(GuestTag::PageCache),
        );
        sys.machine
            .madvise_mergeable(vm.pid, VirtAddr(DOC_BASE), self.doc_pages);
        let mut inst = ApacheInstance {
            cfg: *self,
            vm: *vm,
            active_workers: 0,
            served: 0,
        };
        for _ in 0..self.initial_workers {
            inst.spawn_worker(sys);
        }
        inst
    }
}

impl ApacheInstance {
    /// Forks one more worker: maps a 2 MiB-aligned heap and initializes it
    /// (config pages shared, scratch unique).
    pub fn spawn_worker<P: FusionPolicy>(&mut self, sys: &mut System<P>) {
        if self.active_workers >= self.cfg.max_workers {
            return;
        }
        let idx = self.active_workers;
        let heap = ApacheServer::worker_heap(idx);
        let pages = HUGE_PAGE_SIZE / PAGE_SIZE;
        sys.machine
            .mmap(self.vm.pid, Vma::anon(heap, pages, Protection::rw()));
        sys.machine.madvise_mergeable(self.vm.pid, heap, pages);
        // Touch the heap (on a THP machine this maps one huge page).
        sys.read(self.vm.pid, heap);
        for p in 0..CONFIG_PAGES {
            sys.write_page(
                self.vm.pid,
                VirtAddr(heap.0 + p * PAGE_SIZE),
                &labeled_page(0xc0f1_6000 + p), // Same for every worker.
            );
        }
        for p in CONFIG_PAGES..self.cfg.touched_pages {
            sys.write_page(
                self.vm.pid,
                VirtAddr(heap.0 + p * PAGE_SIZE),
                &labeled_page(0x33_0000 ^ (idx << 32) ^ p),
            );
        }
        self.active_workers += 1;
    }

    /// Number of active workers.
    pub fn workers(&self) -> u64 {
        self.active_workers
    }

    /// Serves one request; returns its simulated latency (ns).
    pub fn serve<P: FusionPolicy>(&mut self, sys: &mut System<P>, rng: &mut StdRng) -> u64 {
        let t0 = sys.machine.now_ns();
        let worker = self.served % self.active_workers;
        let heap = ApacheServer::worker_heap(worker);
        // Parse request: read config pages.
        for p in 0..4u64 {
            sys.read(
                self.vm.pid,
                VirtAddr(heap.0 + p * PAGE_SIZE + (p * 7 % 64) * 64),
            );
        }
        // Touch a spread of the worker heap (session state, buffers).
        for t in 0..self.cfg.touched_pages / 4 {
            let page = (t * 4 + rng.random_range(0..4u64)) % self.cfg.touched_pages;
            sys.read(
                self.vm.pid,
                VirtAddr(heap.0 + page * PAGE_SIZE + rng.random_range(0..64u64) * 64),
            );
        }
        // Read the document.
        let doc = rng.random_range(0..self.cfg.doc_pages);
        for line in 0..8u64 {
            sys.read(
                self.vm.pid,
                VirtAddr(DOC_BASE + doc * PAGE_SIZE + line * 64),
            );
        }
        // Write the response buffer (last touched page of the heap).
        let resp = VirtAddr(heap.0 + (self.cfg.touched_pages - 1) * PAGE_SIZE);
        for line in 0..8u64 {
            sys.write(self.vm.pid, VirtAddr(resp.0 + line * 64), (doc % 251) as u8);
        }
        self.served += 1;
        // Self-balancing: grow the pool under sustained load.
        if self.served.is_multiple_of(self.cfg.grow_every) {
            self.spawn_worker(sys);
        }
        sys.machine.now_ns() - t0
    }

    /// Runs a wrk-like closed-loop load of `requests` requests.
    pub fn run_load<P: FusionPolicy>(
        &mut self,
        sys: &mut System<P>,
        requests: u64,
        seed: u64,
    ) -> ApacheResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut latencies_ms = Vec::with_capacity(requests as usize);
        let t0 = sys.machine.now_ns();
        for _ in 0..requests {
            let ns = self.serve(sys, &mut rng);
            latencies_ms.push(ns as f64 / 1e6);
        }
        let wall = sys.machine.now_ns() - t0;
        ApacheResult {
            req_per_s: requests as f64 / (wall as f64 / 1e9),
            latencies_ms,
            final_workers: self.active_workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::ImageSpec;
    use vusion_core::EngineKind;
    use vusion_kernel::MachineConfig;

    fn run_with(kind: EngineKind, requests: u64) -> ApacheResult {
        // THP machine, as in the paper's server experiments.
        let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
        let vm = ImageSpec::small(0, 1).boot(&mut sys, "apache-vm");
        let server = ApacheServer {
            initial_workers: 4,
            max_workers: 8,
            grow_every: 200,
            ..Default::default()
        };
        let mut inst = server.start(&mut sys, &vm);
        inst.run_load(&mut sys, requests, 11)
    }

    #[test]
    fn serves_requests_and_self_balances() {
        let r = run_with(EngineKind::NoFusion, 900);
        assert!(
            r.req_per_s > 1000.0,
            "throughput {} implausible",
            r.req_per_s
        );
        assert!(r.final_workers > 4, "pool must grow under load");
        assert_eq!(r.latencies_ms.len(), 900);
    }

    #[test]
    fn workers_map_huge_pages_without_fusion() {
        let mut sys =
            EngineKind::NoFusion.build_system(MachineConfig::guest_2g_scaled().with_thp());
        let vm = ImageSpec::small(0, 1).boot(&mut sys, "vm");
        let server = ApacheServer::default();
        let inst = server.start(&mut sys, &vm);
        let huge = sys.machine.count_huge_mappings(vm.pid);
        assert!(
            huge >= inst.workers() as usize,
            "each worker heap should be a THP"
        );
    }

    #[test]
    fn ksm_splits_worker_thps() {
        // The Figure 9 mechanism: duplicated config pages get merged and
        // the THPs around them split.
        let mut sys = EngineKind::Ksm.build_system(MachineConfig::guest_2g_scaled().with_thp());
        let vm = ImageSpec::small(0, 1).boot(&mut sys, "vm");
        let server = ApacheServer::default();
        let mut inst = server.start(&mut sys, &vm);
        let huge_before = sys.machine.count_huge_mappings(vm.pid);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            inst.serve(&mut sys, &mut rng);
        }
        sys.force_scans(400);
        let huge_after = sys.machine.count_huge_mappings(vm.pid);
        assert!(
            huge_after < huge_before,
            "KSM must split THPs ({huge_before} -> {huge_after})"
        );
    }
}
