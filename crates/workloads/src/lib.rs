//! Synthetic VM images and workload drivers with the memory-access profiles
//! of the paper's benchmarks (§9).
//!
//! The paper's performance and fusion-rate evaluation runs real suites
//! (SPEC CPU2006, PARSEC, Stream, Postmark, Apache, Redis, Memcached) in
//! KVM guests. What the fusion engines *see* of those workloads is their
//! memory behaviour: footprints, working sets, page-cache traffic,
//! duplicate content across VMs, THP affinity, and the rate at which idle
//! pages become active again. This crate reproduces those profiles:
//!
//! * [`images`] — bootable VM images with family-shared base files,
//!   globally shared libraries, stale "guest buddy" pages, zero pages and
//!   unique application data; the duplication structure that drives
//!   Figures 10–12 and Table 3.
//! * [`stream`] — the Stream bandwidth kernels (Table 2).
//! * [`cpu_suites`] — SPEC CPU2006- and PARSEC-like profiles (Figures 7/8).
//! * [`postmark`] — a mail-server file-transaction benchmark (Table 4).
//! * [`apache`] — a prefork HTTP server with self-balancing workers and a
//!   wrk-like load generator (Table 5, Figures 9/12).
//! * [`kv`] — Redis/Memcached-like key-value stores under a memtier-like
//!   load (Tables 6/7).
//! * [`runner`] — experiment scaffolding: build a multi-VM system for an
//!   engine, time-sample memory consumption, compare engines.

pub mod apache;
pub mod cpu_suites;
pub mod images;
pub mod kv;
pub mod postmark;
pub mod runner;
pub mod stream;

pub use images::{ImageCatalog, ImageSpec, VmHandle};
pub use runner::{consumed_mib, engine_comparison, ExperimentMachine, MemorySample};
