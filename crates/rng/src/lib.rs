//! Dependency-free seeded pseudo-random numbers for the simulation.
//!
//! Every stochastic component in the workspace (jitter, workloads, the
//! Randomized Allocation pool, Rowhammer bit-flip placement, fault
//! injection) draws from one of these generators, seeded from the master
//! seed in `MachineConfig`. Two generators back the crate:
//!
//! * **SplitMix64** expands a single `u64` seed into a full generator
//!   state (it is the recommended seeder for the xoshiro family);
//! * **xoshiro256\*\*** produces the actual stream — 256 bits of state,
//!   period 2²⁵⁶ − 1, and excellent statistical quality for simulation
//!   purposes (it is not, and does not need to be, cryptographic).
//!
//! The API mirrors the subset of the `rand` crate the workspace used
//! before going hermetic: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`RngExt::random_range`] over integer and float ranges. Keeping the
//! surface identical made the migration mechanical and keeps the door open
//! to swapping generators later without touching call sites.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a stream of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it through
    /// SplitMix64 so that nearby seeds yield uncorrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One step of SplitMix64 (Steele, Lea & Flood 2014). Advances `state`
/// and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256\*\* (Blackman & Vigna 2018): the workspace's standard
/// generator, named `StdRng` for source compatibility with `rand`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Exports the full 256-bit generator state, so a simulation snapshot
    /// can resume the stream exactly where it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`Self::state`].
    /// The next output continues the original stream bit-for-bit.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The value type produced by sampling.
    type Sample;
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Sample;
}

/// Maps 64 random bits onto `[0, span)` without modulo bias worth
/// speaking of: a 128-bit widening multiply (Lemire 2019, sans the
/// rejection step — the residual bias is ≤ span ⋅ 2⁻⁶⁴, irrelevant for
/// simulation spans).
#[inline]
fn bounded(bits: u64, span: u64) -> u64 {
    (((bits as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Sample = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Sample = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Sample = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(bounded(rng.next_u64(), span) as i64)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Sample = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as i64).wrapping_add(bounded(rng.next_u64(), span + 1) as i64)) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Sample = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws a uniform sample from `range` (half-open or inclusive,
    /// integer or float).
    #[inline]
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Sample
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator (xoshiro256\*\*).
    pub type StdRng = super::Xoshiro256StarStar;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds must not share outputs");
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, from the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(&mut s), 0x6e789e6aa1b965f4);
        assert_eq!(splitmix64(&mut s), 0x06c45d188009454f);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(2..=4u64);
            assert!((2..=4).contains(&w));
            let x = rng.random_range(0..3usize);
            assert!(x < 3);
            let y = rng.random_range(0..8u8);
            assert!(y < 8);
        }
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.random_range(-3..=3i64);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values should appear");
    }

    #[test]
    fn float_range_stays_in_bounds_and_varies() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let v = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            if v < 0.0 {
                lo_half += 1;
            }
        }
        assert!((3000..7000).contains(&lo_half), "both halves populated");
    }

    #[test]
    fn uniformity_chi_square_ish() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buckets = [0u32; 16];
        const N: u32 = 160_000;
        for _ in 0..N {
            buckets[rng.random_range(0..16usize)] += 1;
        }
        let expected = N / 16;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as i64 - expected as i64).abs();
            assert!(dev < expected as i64 / 10, "bucket {i} off by {dev}");
        }
    }

    #[test]
    fn random_bool_edges() {
        let mut rng = StdRng::seed_from_u64(17);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u64..5);
    }
}
