//! The deterministic memory-pressure governor.
//!
//! Real `ksmd` adapts `pages_to_scan` to memory pressure; VUsion's whole
//! premise is that a fusion daemon must stay safe *and* useful in exactly
//! the degraded regimes where real systems break. This module is the
//! control plane for that: a pressure signal derived from free memory and
//! absorbed allocation failures, smoothed through hysteresis bands, an
//! AIMD scan-budget law, and a reclaim escalation ladder the [`crate::System`]
//! walks through the [`crate::FusionPolicy`] relief hooks.
//!
//! Everything here is a pure function of simulated machine state and the
//! governor's own serialized state: no RNG, no wall clock, no host reads.
//! A sample taken before a scan wakeup in a live run is re-taken with the
//! same inputs when the journal replays that wakeup, so traces, metrics,
//! and snapshots stay byte-identical across restore + replay and across
//! any scan-shard thread count.
//!
//! The ladder (DESIGN.md §14) has three rungs, entered in order as the
//! band escalates and unwound on de-escalation:
//!
//! 1. **Drain** — flush engine deferred-free queues back to the allocator.
//! 2. **Shrink** — drop transient engine caches (candidate lists, dirty
//!    trackers, checksum/unstable-tree state, in-flight pass state).
//! 3. **Defer** — switch the engine into allocation-averse scanning:
//!    optional frame-allocating work (fake merges, rerandomization
//!    rounds, new fused tree frames) is deferred until pressure clears.

use vusion_mem::FrameAllocator;
use vusion_snapshot::{Reader, SnapshotError, Writer};

use crate::machine::Machine;

/// Hysteresis band of the pressure signal. Ordered: comparisons use the
/// derived `Ord`, so `Critical > Elevated > Nominal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum PressureBand {
    /// Memory is plentiful; budgets grow additively.
    #[default]
    Nominal,
    /// Free memory is low or allocations are failing; budgets shrink
    /// multiplicatively and the drain rung has fired.
    Elevated,
    /// Memory is nearly exhausted or failures are clustered; all three
    /// ladder rungs are active.
    Critical,
}

impl PressureBand {
    /// Stable wire/trace code (0/1/2).
    pub fn code(self) -> u8 {
        match self {
            PressureBand::Nominal => 0,
            PressureBand::Elevated => 1,
            PressureBand::Critical => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, SnapshotError> {
        Ok(match code {
            0 => PressureBand::Nominal,
            1 => PressureBand::Elevated,
            2 => PressureBand::Critical,
            _ => return Err(SnapshotError::Corrupt("unknown pressure band code")),
        })
    }

    /// Stable lowercase label (metrics gauge, reports).
    pub fn label(self) -> &'static str {
        match self {
            PressureBand::Nominal => "nominal",
            PressureBand::Elevated => "elevated",
            PressureBand::Critical => "critical",
        }
    }

    /// One band lower (saturating).
    fn lower(self) -> Self {
        match self {
            PressureBand::Critical => PressureBand::Elevated,
            _ => PressureBand::Nominal,
        }
    }
}

/// Governor tuning. All thresholds are integers so the control law is
/// exactly reproducible; free-memory thresholds are per-mille of the
/// buddy-managed frame count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureConfig {
    /// Master switch. A disabled governor samples nothing, grants no
    /// budgets, traces nothing, and folds no `pressure.*` metrics.
    pub enabled: bool,
    /// Free per-mille below which the band enters Elevated.
    pub elevated_enter_pm: u32,
    /// Free per-mille the signal must recover to before Elevated can exit
    /// (hysteresis gap: must be > `elevated_enter_pm`).
    pub elevated_exit_pm: u32,
    /// Free per-mille below which the band enters Critical.
    pub critical_enter_pm: u32,
    /// Free per-mille the signal must recover to before Critical can exit.
    pub critical_exit_pm: u32,
    /// OOM events absorbed since the previous sample that alone force at
    /// least Elevated.
    pub oom_elevated: u64,
    /// OOM events since the previous sample that alone force Critical.
    pub oom_critical: u64,
    /// Consecutive calm samples (signal above the exit threshold) required
    /// before the band steps down one level.
    pub cooldown_samples: u32,
    /// Floor of the per-wake scan budget.
    pub budget_min: u64,
    /// Ceiling of the per-wake scan budget (also the starting budget).
    pub budget_max: u64,
    /// Additive increase applied per nominal sample (ksmd-style ramp-up).
    pub budget_add: u64,
    /// Multiplicative decrease: the budget is right-shifted by this many
    /// bits on every elevated/critical sample (1 = halve).
    pub budget_shift: u32,
}

impl PressureConfig {
    /// Disabled governor (the default: zero cost, zero events).
    pub const OFF: PressureConfig = PressureConfig {
        enabled: false,
        ..PressureConfig::DEFAULT
    };

    const DEFAULT: PressureConfig = PressureConfig {
        enabled: true,
        elevated_enter_pm: 250,
        elevated_exit_pm: 350,
        critical_enter_pm: 100,
        critical_exit_pm: 200,
        oom_elevated: 1,
        oom_critical: 4,
        cooldown_samples: 2,
        budget_min: 8,
        budget_max: 256,
        budget_add: 16,
        budget_shift: 1,
    };

    /// Enabled governor with the default control law.
    pub fn standard() -> Self {
        Self::DEFAULT
    }

    /// Checks the control law is well formed: hysteresis gaps open the
    /// right way, the budget range is non-empty, and the decrease actually
    /// decreases. Returns a static description of the first violation.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.elevated_exit_pm <= self.elevated_enter_pm {
            return Err("elevated_exit_pm must exceed elevated_enter_pm");
        }
        if self.critical_exit_pm <= self.critical_enter_pm {
            return Err("critical_exit_pm must exceed critical_enter_pm");
        }
        if self.critical_enter_pm >= self.elevated_enter_pm {
            return Err("critical_enter_pm must be below elevated_enter_pm");
        }
        if self.budget_min == 0 || self.budget_min > self.budget_max {
            return Err("budget range must satisfy 0 < budget_min <= budget_max");
        }
        if self.budget_add == 0 {
            return Err("budget_add must be positive");
        }
        if self.budget_shift == 0 || self.budget_shift >= 64 {
            return Err("budget_shift must be in 1..64");
        }
        if self.oom_elevated == 0 || self.oom_critical < self.oom_elevated {
            return Err("oom thresholds must satisfy 0 < oom_elevated <= oom_critical");
        }
        if self.cooldown_samples == 0 {
            return Err("cooldown_samples must be positive");
        }
        Ok(())
    }

    /// Serializes the config (journal events and snapshots share this).
    pub fn save(&self, w: &mut Writer) {
        w.bool(self.enabled);
        w.u32(self.elevated_enter_pm);
        w.u32(self.elevated_exit_pm);
        w.u32(self.critical_enter_pm);
        w.u32(self.critical_exit_pm);
        w.u64(self.oom_elevated);
        w.u64(self.oom_critical);
        w.u32(self.cooldown_samples);
        w.u64(self.budget_min);
        w.u64(self.budget_max);
        w.u64(self.budget_add);
        w.u32(self.budget_shift);
    }

    /// Deserializes a config written by [`Self::save`].
    pub fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            enabled: r.bool()?,
            elevated_enter_pm: r.u32()?,
            elevated_exit_pm: r.u32()?,
            critical_enter_pm: r.u32()?,
            critical_exit_pm: r.u32()?,
            oom_elevated: r.u64()?,
            oom_critical: r.u64()?,
            cooldown_samples: r.u32()?,
            budget_min: r.u64()?,
            budget_max: r.u64()?,
            budget_add: r.u64()?,
            budget_shift: r.u32()?,
        })
    }
}

impl Default for PressureConfig {
    fn default() -> Self {
        Self::OFF
    }
}

/// Counters the governor maintains; folded into the metrics snapshot as
/// `pressure.*` only while the governor is enabled (zero-cost-when-off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureStats {
    /// Samples taken (one per scan wakeup).
    pub samples: u64,
    /// Band raises (one per sample that escalated, regardless of distance).
    pub escalations: u64,
    /// Band drops (always single steps, after the cooldown dwell).
    pub de_escalations: u64,
    /// Drain rungs entered (rung 1).
    pub drain_rungs: u64,
    /// Drain rungs that actually released work (`drained_ops > 0`).
    pub drain_rungs_effective: u64,
    /// Shrink rungs entered (rung 2).
    pub shrink_rungs: u64,
    /// Defer rungs entered (rung 3: zero-unmerge/allocation deferral on).
    pub defer_rungs: u64,
    /// Defer rung exits (deferral switched back off).
    pub defer_exits: u64,
    /// Total operations released by drain rungs (frames/dummies drained).
    pub drained_ops: u64,
    /// Total cache entries dropped by shrink rungs.
    pub shrunk_entries: u64,
    /// Scan-budget pages granted across all wakeups.
    pub budget_granted: u64,
    /// Budget pages actually consumed by engine passes.
    pub budget_used: u64,
    /// Budget pages carried to the next wakeup by a suspended cursor
    /// (`granted - used`; `tests/accounting.rs` holds the identity).
    pub budget_carried: u64,
}

/// What one sample decided; the [`crate::System`] turns this into trace
/// events and ladder-rung executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureDecision {
    /// The band after this sample.
    pub band: PressureBand,
    /// Set when the band rose this sample (the previous band).
    pub escalated_from: Option<PressureBand>,
    /// Set when the band stepped down this sample (the previous band).
    pub de_escalated_from: Option<PressureBand>,
    /// The per-wake scan budget after the AIMD update.
    pub budget: u64,
}

/// The governor: band state machine + AIMD budget + ladder accounting.
#[derive(Debug, Clone, Default)]
pub struct PressureGovernor {
    cfg: PressureConfig,
    band: PressureBand,
    budget: u64,
    /// Consecutive calm samples toward the cooldown dwell.
    calm_streak: u32,
    /// `oom_events` at the previous sample (delta source).
    last_oom: u64,
    stats: PressureStats,
}

impl PressureGovernor {
    /// A governor with the given config; the budget starts at the ceiling.
    pub fn new(cfg: PressureConfig) -> Self {
        Self {
            cfg,
            band: PressureBand::Nominal,
            budget: cfg.budget_max,
            calm_streak: 0,
            last_oom: 0,
            stats: PressureStats::default(),
        }
    }

    /// Whether the governor is active.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configuration.
    pub fn config(&self) -> &PressureConfig {
        &self.cfg
    }

    /// The current band.
    pub fn band(&self) -> PressureBand {
        self.band
    }

    /// The current per-wake scan budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The counters.
    pub fn stats(&self) -> PressureStats {
        self.stats
    }

    /// Takes one sample of the pressure signal from machine state and runs
    /// the band transition + AIMD budget update. Pure: reads only the
    /// buddy free-frame count, the configured frame total, and the
    /// absorbed-OOM counter — all simulated state, so a replayed wakeup
    /// re-derives the identical decision.
    pub fn sample(&mut self, m: &Machine) -> PressureDecision {
        let cfg = self.cfg;
        let total = m.config().frames - m.config().reserved_top_frames;
        let free = m.buddy().free_frames() as u64;
        let free_pm = (free.saturating_mul(1000) / total.max(1)) as u32;
        let oom_now = m.stats().oom_events;
        let oom_delta = oom_now.saturating_sub(self.last_oom);
        self.last_oom = oom_now;
        self.stats.samples += 1;

        // The raw (un-hysteresed) band the signal asks for.
        let raw = if free_pm < cfg.critical_enter_pm || oom_delta >= cfg.oom_critical {
            PressureBand::Critical
        } else if free_pm < cfg.elevated_enter_pm || oom_delta >= cfg.oom_elevated {
            PressureBand::Elevated
        } else {
            PressureBand::Nominal
        };

        let before = self.band;
        let mut escalated_from = None;
        let mut de_escalated_from = None;
        if raw > self.band {
            // Escalate immediately — pressure is not a thing to dwell on.
            self.band = raw;
            self.calm_streak = 0;
            self.stats.escalations += 1;
            escalated_from = Some(before);
        } else if raw < self.band {
            // De-escalate only through the hysteresis gap: the signal must
            // clear the *exit* threshold of the current band for
            // `cooldown_samples` consecutive samples, then step down once.
            let (exit_pm, exit_oom) = match self.band {
                PressureBand::Critical => (cfg.critical_exit_pm, cfg.oom_critical),
                _ => (cfg.elevated_exit_pm, cfg.oom_elevated),
            };
            if free_pm >= exit_pm && oom_delta < exit_oom {
                self.calm_streak += 1;
                if self.calm_streak >= cfg.cooldown_samples {
                    self.band = self.band.lower();
                    self.calm_streak = 0;
                    self.stats.de_escalations += 1;
                    de_escalated_from = Some(before);
                }
            } else {
                self.calm_streak = 0;
            }
        } else {
            self.calm_streak = 0;
        }

        // AIMD: additive increase while nominal, multiplicative decrease
        // under pressure — integer arithmetic, clamped to the configured
        // range (the ksmd `pages_to_scan` adaptation, made deterministic).
        self.budget = if self.band == PressureBand::Nominal {
            (self.budget + cfg.budget_add).min(cfg.budget_max)
        } else {
            (self.budget >> cfg.budget_shift).max(cfg.budget_min)
        };

        PressureDecision {
            band: self.band,
            escalated_from,
            de_escalated_from,
            budget: self.budget,
        }
    }

    /// Accounts one wakeup's budget flow: `granted` pages were offered,
    /// the engine consumed `used`, the remainder was carried by a cursor.
    pub fn account_budget(&mut self, granted: u64, used: u64) {
        let used = used.min(granted);
        self.stats.budget_granted += granted;
        self.stats.budget_used += used;
        self.stats.budget_carried += granted - used;
    }

    /// Accounts a drain-rung execution (rung 1) that released `ops` items.
    pub fn note_drain(&mut self, ops: u64) {
        self.stats.drain_rungs += 1;
        if ops > 0 {
            self.stats.drain_rungs_effective += 1;
        }
        self.stats.drained_ops += ops;
    }

    /// Accounts a shrink-rung execution (rung 2) dropping `entries`.
    pub fn note_shrink(&mut self, entries: u64) {
        self.stats.shrink_rungs += 1;
        self.stats.shrunk_entries += entries;
    }

    /// Accounts a defer-rung entry (rung 3 switched on).
    pub fn note_defer_entry(&mut self) {
        self.stats.defer_rungs += 1;
    }

    /// Accounts a defer-rung exit (rung 3 switched off).
    pub fn note_defer_exit(&mut self) {
        self.stats.defer_exits += 1;
    }

    /// Serializes the complete governor state (config included, so a
    /// restored system governs exactly like the snapshotted one).
    pub fn save(&self, w: &mut Writer) {
        self.cfg.save(w);
        w.u8(self.band.code());
        w.u64(self.budget);
        w.u32(self.calm_streak);
        w.u64(self.last_oom);
        let s = self.stats;
        for v in [
            s.samples,
            s.escalations,
            s.de_escalations,
            s.drain_rungs,
            s.drain_rungs_effective,
            s.shrink_rungs,
            s.defer_rungs,
            s.defer_exits,
            s.drained_ops,
            s.shrunk_entries,
            s.budget_granted,
            s.budget_used,
            s.budget_carried,
        ] {
            w.u64(v);
        }
    }

    /// Restores state written by [`Self::save`].
    pub fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let cfg = PressureConfig::load(r)?;
        let band = PressureBand::from_code(r.u8()?)?;
        let budget = r.u64()?;
        let calm_streak = r.u32()?;
        let last_oom = r.u64()?;
        let stats = PressureStats {
            samples: r.u64()?,
            escalations: r.u64()?,
            de_escalations: r.u64()?,
            drain_rungs: r.u64()?,
            drain_rungs_effective: r.u64()?,
            shrink_rungs: r.u64()?,
            defer_rungs: r.u64()?,
            defer_exits: r.u64()?,
            drained_ops: r.u64()?,
            shrunk_entries: r.u64()?,
            budget_granted: r.u64()?,
            budget_used: r.u64()?,
            budget_carried: r.u64()?,
        };
        Ok(Self {
            cfg,
            band,
            budget,
            calm_streak,
            last_oom,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use vusion_mem::PageType;

    fn tight() -> PressureConfig {
        PressureConfig {
            cooldown_samples: 2,
            ..PressureConfig::standard()
        }
    }

    #[test]
    fn default_config_is_off_and_standard_validates() {
        assert!(!PressureConfig::default().enabled);
        assert!(PressureConfig::OFF.validate().is_ok());
        assert!(PressureConfig::standard().validate().is_ok());
        let bad = PressureConfig {
            elevated_exit_pm: 100,
            ..PressureConfig::standard()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn oom_bursts_escalate_and_calm_samples_de_escalate() {
        let mut m = Machine::new(MachineConfig::test_small());
        let mut gov = PressureGovernor::new(tight());
        let d = gov.sample(&m);
        assert_eq!(d.band, PressureBand::Nominal);
        // A clustered failure burst forces Critical in one sample.
        for _ in 0..5 {
            m.note_oom();
        }
        let d = gov.sample(&m);
        assert_eq!(d.band, PressureBand::Critical);
        assert_eq!(d.escalated_from, Some(PressureBand::Nominal));
        // Budgets shrink multiplicatively under pressure.
        assert!(d.budget < gov.config().budget_max);
        // Two calm samples step down one band; two more reach Nominal.
        let mut bands = Vec::new();
        for _ in 0..4 {
            bands.push(gov.sample(&m).band);
        }
        assert_eq!(
            bands,
            vec![
                PressureBand::Critical,
                PressureBand::Elevated,
                PressureBand::Elevated,
                PressureBand::Nominal
            ]
        );
        assert_eq!(gov.stats().escalations, 1);
        assert_eq!(gov.stats().de_escalations, 2);
    }

    #[test]
    fn free_memory_exhaustion_escalates_without_oom_events() {
        let mut m = Machine::new(MachineConfig::test_small());
        let mut gov = PressureGovernor::new(tight());
        // Allocate until under the elevated threshold (25% free).
        while m.buddy().free_frames() * 1000 / 4096 >= 250 {
            m.alloc_frame(PageType::Anon).expect("plenty left");
        }
        let d = gov.sample(&m);
        assert_eq!(d.band, PressureBand::Elevated);
    }

    #[test]
    fn budget_recovers_additively_after_pressure() {
        let m = Machine::new(MachineConfig::test_small());
        let mut gov = PressureGovernor::new(tight());
        gov.budget = gov.cfg.budget_min;
        gov.band = PressureBand::Nominal;
        let first = gov.sample(&m).budget;
        let second = gov.sample(&m).budget;
        assert_eq!(first, gov.cfg.budget_min + gov.cfg.budget_add);
        assert_eq!(second, first + gov.cfg.budget_add);
    }

    #[test]
    fn budget_accounting_identity_holds() {
        let mut gov = PressureGovernor::new(tight());
        gov.account_budget(100, 64);
        gov.account_budget(50, 50);
        let s = gov.stats();
        assert_eq!(s.budget_granted, s.budget_used + s.budget_carried);
        assert_eq!(s.budget_carried, 36);
    }

    #[test]
    fn governor_state_round_trips() {
        let mut m = Machine::new(MachineConfig::test_small());
        let mut gov = PressureGovernor::new(tight());
        for _ in 0..3 {
            m.note_oom();
        }
        gov.sample(&m);
        gov.account_budget(32, 12);
        gov.note_drain(5);
        gov.note_shrink(7);
        gov.note_defer_entry();
        let mut w = Writer::new();
        gov.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = PressureGovernor::load(&mut r).expect("load");
        assert!(r.is_empty());
        assert_eq!(back.band, gov.band);
        assert_eq!(back.budget, gov.budget);
        assert_eq!(back.calm_streak, gov.calm_streak);
        assert_eq!(back.last_oom, gov.last_oom);
        assert_eq!(back.stats, gov.stats);
        assert_eq!(back.cfg, gov.cfg);
    }
}
