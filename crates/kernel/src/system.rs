//! The system driver: glues the machine, a fusion policy, and the daemons.
//!
//! Workloads and attacks talk to a [`System`]; it retries faulting accesses
//! after dispatching faults (policy first, kernel default second) and paces
//! the background scanner and `khugepaged` against simulated time, mirroring
//! how `ksmd` wakes every `T` ms on a spare core.

use vusion_mem::{MmError, VirtAddr, PAGE_SIZE};
use vusion_obs::{FaultKind, InstantKind, MetricsSnapshot, PageClass, Profile, SpanKind};
use vusion_snapshot::{Reader, SnapshotError, Writer};

use crate::journal::JournalEvent;
use crate::khugepaged::Khugepaged;
use crate::machine::{FaultReason, Machine, PageFault, Pid};
use crate::policy::{FusionPolicy, ScanReport};
use crate::pressure::{PressureBand, PressureConfig, PressureGovernor};

/// Driver counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Faults resolved by the fusion policy.
    pub policy_faults: u64,
    /// Faults resolved by the kernel default handler.
    pub kernel_faults: u64,
    /// Scanner wakeups executed.
    pub scan_wakeups: u64,
    /// Accesses that no handler could resolve (the simulated SIGSEGVs).
    pub unresolved_faults: u64,
    /// Accesses abandoned after the retry budget (fault livelocks).
    pub fault_livelocks: u64,
}

/// Everything observability knows about a run, bundled for reporting:
/// the engine under test, a full metrics snapshot, and the per-phase
/// cycle-attribution profile (the paper's Table 5 breakdown).
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Engine name ("ksm", "wpf", "vusion", "none").
    pub engine: String,
    /// Counters, gauges and latency histograms at report time.
    pub metrics: MetricsSnapshot,
    /// Cycle attribution per category and span kind.
    pub profile: Profile,
}

impl SystemReport {
    /// Human-readable report: the cycle-attribution table followed by the
    /// metrics snapshot.
    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== system report: engine={} ==\n", self.engine));
        if self.profile.is_empty() {
            out.push_str("(no spans recorded; was tracing enabled?)\n");
        } else {
            out.push_str(&self.profile.text());
        }
        out.push_str("-- metrics --\n");
        out.push_str(&self.metrics.to_json());
        out.push('\n');
        out
    }

    /// The whole report as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"engine\":{},\"profile\":{},\"metrics\":{}}}",
            vusion_obs::json::quote(&self.engine),
            self.profile.to_json(),
            self.metrics.to_json()
        )
    }
}

/// A machine paired with a fusion policy and optional khugepaged.
pub struct System<P: FusionPolicy> {
    /// The machine.
    pub machine: Machine,
    /// The fusion engine.
    pub policy: P,
    /// Optional THP collapse daemon.
    pub khugepaged: Option<Khugepaged>,
    next_scan_ns: u64,
    next_khuge_ns: u64,
    stats: SystemStats,
    scan_totals: ScanReport,
    governor: PressureGovernor,
}

impl<P: FusionPolicy> System<P> {
    /// Creates a driver. The first scan fires one period in.
    pub fn new(machine: Machine, policy: P) -> Self {
        let next_scan_ns = machine.now_ns() + policy.scan_period_ns();
        Self {
            machine,
            policy,
            khugepaged: None,
            next_scan_ns,
            next_khuge_ns: 0,
            stats: SystemStats::default(),
            scan_totals: ScanReport::default(),
            governor: PressureGovernor::new(PressureConfig::OFF),
        }
    }

    /// Attaches a khugepaged daemon.
    pub fn with_khugepaged(mut self, k: Khugepaged) -> Self {
        self.next_khuge_ns = self.machine.now_ns() + k.period_ns;
        self.khugepaged = Some(k);
        self
    }

    /// Sets the engine's scan-shard thread count (see
    /// [`FusionPolicy::set_scan_threads`]): a host-execution knob that
    /// never changes traces, metrics, or snapshots.
    // vlint: allow(J001, host-only — worker count changes wall-clock time, never simulation state)
    pub fn set_scan_threads(&mut self, threads: usize) {
        self.policy.set_scan_threads(threads);
    }

    /// Driver counters.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Accumulated scanner totals.
    pub fn scan_totals(&self) -> ScanReport {
        self.scan_totals
    }

    /// Installs (or replaces) the pressure governor. Journaled: the
    /// governor changes scan behavior, so a replay must re-install the
    /// same control law at the same point in the call sequence. Returns
    /// the config's validation error without installing if it is
    /// malformed (a disabled config always installs).
    pub fn set_pressure_governor(&mut self, cfg: PressureConfig) -> Result<(), &'static str> {
        if cfg.enabled {
            cfg.validate()?;
        }
        self.machine
            .record(|| JournalEvent::SetPressureGovernor { cfg });
        self.governor = PressureGovernor::new(cfg);
        // Reset any engine-side ladder residue from a previous governor:
        // a fresh governor starts at Nominal with no rungs active.
        self.policy.set_zero_unmerge_deferral(false);
        self.policy.set_scan_budget(None);
        Ok(())
    }

    /// The pressure governor (band, budget, and ladder counters).
    pub fn pressure_governor(&self) -> &PressureGovernor {
        &self.governor
    }

    /// One scanner wakeup: the governor samples the pressure signal and
    /// walks the escalation ladder, the policy scans under the granted
    /// budget inside a `ScanPass` span, then the budget flow is accounted.
    /// With the governor disabled this is exactly the pre-governor wakeup:
    /// no sample, no grant, no `pressure.*` side effects.
    fn scan_once(&mut self) {
        let grant = if self.governor.enabled() {
            let d = self.governor.sample(&self.machine);
            if let Some(prev) = d.escalated_from {
                self.machine.trace_instant(
                    "governor",
                    InstantKind::PressureEscalation,
                    d.band.code() as u64,
                );
                self.escalate_rungs(prev, d.band);
            }
            if let Some(prev) = d.de_escalated_from {
                self.machine.trace_instant(
                    "governor",
                    InstantKind::PressureDeEscalation,
                    d.band.code() as u64,
                );
                if prev == PressureBand::Critical {
                    // Unwind rung 3: allocation-averse scanning ends as
                    // soon as the band drops out of Critical.
                    self.policy.set_zero_unmerge_deferral(false);
                    self.governor.note_defer_exit();
                }
            }
            self.policy.set_scan_budget(Some(d.budget));
            Some(d.budget)
        } else {
            None
        };
        self.machine
            .trace_begin(self.policy.name(), SpanKind::ScanPass);
        let report = self.policy.scan(&mut self.machine);
        self.machine.trace_end(SpanKind::ScanPass);
        if let Some(granted) = grant {
            self.governor.account_budget(granted, report.budget_used);
        }
        self.scan_totals.absorb(&report);
        self.stats.scan_wakeups += 1;
    }

    /// Fires the ladder rungs crossed by an escalation from `prev` to
    /// `band`, in order: drain (rung 1) on entering Elevated, shrink
    /// (rung 2) and zero-unmerge deferral (rung 3) on entering Critical.
    /// A nominal → critical jump fires all three.
    fn escalate_rungs(&mut self, prev: PressureBand, band: PressureBand) {
        if prev < PressureBand::Elevated && band >= PressureBand::Elevated {
            self.machine
                .trace_begin("governor", SpanKind::PressureRelief);
            let ops = self.policy.pressure_drain(&mut self.machine);
            self.machine.trace_end(SpanKind::PressureRelief);
            self.governor.note_drain(ops);
        }
        if prev < PressureBand::Critical && band >= PressureBand::Critical {
            self.machine
                .trace_begin("governor", SpanKind::PressureRelief);
            let entries = self.policy.pressure_shrink(&mut self.machine);
            self.machine.trace_end(SpanKind::PressureRelief);
            self.governor.note_shrink(entries);
            self.machine
                .trace_begin("governor", SpanKind::PressureRelief);
            self.policy.set_zero_unmerge_deferral(true);
            self.machine.trace_end(SpanKind::PressureRelief);
            self.governor.note_defer_entry();
        }
    }

    /// Runs any background work whose deadline has passed.
    fn background(&mut self) {
        let now = self.machine.now_ns();
        while self.next_scan_ns <= now {
            self.scan_once();
            self.next_scan_ns += self.policy.scan_period_ns();
        }
        if let Some(k) = self.khugepaged.as_mut() {
            while self.next_khuge_ns <= now {
                self.machine
                    .trace_begin("khugepaged", SpanKind::ThpCollapse);
                k.scan(&mut self.machine, &mut self.policy);
                self.machine.trace_end(SpanKind::ThpCollapse);
                self.next_khuge_ns += k.period_ns;
            }
        }
    }

    /// Resolves one fault: charges the fault entry, then policy → kernel.
    /// Reports [`MmError::UnresolvableFault`] when no handler takes it —
    /// the simulated equivalent of delivering SIGSEGV.
    fn resolve(&mut self, fault: PageFault) -> Result<(), MmError> {
        let tracing = self.machine.obs().enabled();
        let surfacing = self.machine.surface_enabled();
        let timing = tracing || surfacing;
        let t0 = if timing { self.machine.now_ns() } else { 0 };
        // The surface classifies the fault by the page as the *attacker*
        // found it: the leaf before handling (handling may replace it).
        // No leaf means a demand fault; whether it was a zero fill is
        // known only afterwards, via the demand_zero counter delta.
        let pre_class = if surfacing {
            self.machine
                .leaf(fault.pid, fault.va)
                .map(|l| self.machine.classify_leaf(&l))
        } else {
            None
        };
        let zero_before = if surfacing {
            self.machine.stats().demand_zero
        } else {
            0
        };
        if tracing {
            self.machine
                .trace_begin(self.policy.name(), SpanKind::FaultHandling);
        }
        let base = self.machine.costs().fault_base;
        self.machine.charge(base);
        let outcome = if self.policy.handle_fault(&mut self.machine, &fault) {
            self.stats.policy_faults += 1;
            Ok(())
        } else if self.machine.default_fault(&fault) {
            self.stats.kernel_faults += 1;
            Ok(())
        } else {
            self.stats.unresolved_faults += 1;
            Err(MmError::UnresolvableFault(fault.va))
        };
        if tracing {
            self.machine.trace_end(SpanKind::FaultHandling);
        }
        if timing {
            let dt = self.machine.now_ns().saturating_sub(t0);
            if tracing {
                self.machine.obs_mut().observe_fault_latency(dt as f64);
            }
            if surfacing {
                let kind = match fault.reason {
                    FaultReason::NotMapped => FaultKind::Minor,
                    FaultReason::Trapped => FaultKind::Trap,
                    FaultReason::WriteProtected => FaultKind::CowBreak,
                };
                let class = match pre_class {
                    Some(c) => c,
                    None if self.machine.stats().demand_zero > zero_before => PageClass::Zero,
                    None => PageClass::Unshared,
                };
                self.machine.surface_record_fault(class, kind, dt);
            }
        }
        outcome
    }

    /// Timed read of one byte, retrying through faults. Reports
    /// [`MmError::UnresolvableFault`] (SIGSEGV) or
    /// [`MmError::FaultLivelock`] when the retry budget is exhausted.
    pub fn try_read(&mut self, pid: Pid, va: VirtAddr) -> Result<u8, MmError> {
        self.machine.record(|| JournalEvent::Read { pid, va });
        self.background();
        for _ in 0..8 {
            match self.machine.read(pid, va) {
                Ok(v) => return Ok(v),
                Err(f) => self.resolve(f)?,
            }
        }
        self.stats.fault_livelocks += 1;
        Err(MmError::FaultLivelock(va))
    }

    /// Timed write of one byte, retrying through faults; errors as
    /// [`Self::try_read`].
    pub fn try_write(&mut self, pid: Pid, va: VirtAddr, value: u8) -> Result<(), MmError> {
        self.machine
            .record(|| JournalEvent::Write { pid, va, value });
        self.background();
        for _ in 0..8 {
            match self.machine.write(pid, va, value) {
                Ok(()) => return Ok(()),
                Err(f) => self.resolve(f)?,
            }
        }
        self.stats.fault_livelocks += 1;
        Err(MmError::FaultLivelock(va))
    }

    /// Timed read of one byte (retries through faults). The
    /// workload-facing convenience wrapper: an unresolvable access reads
    /// as 0 and is counted in [`SystemStats`]; callers that must observe
    /// the failure use [`Self::try_read`].
    pub fn read(&mut self, pid: Pid, va: VirtAddr) -> u8 {
        self.try_read(pid, va).unwrap_or(0)
    }

    /// Timed write of one byte (retries through faults). The
    /// workload-facing convenience wrapper: an unresolvable store is
    /// dropped and counted in [`SystemStats`]; callers that must observe
    /// the failure use [`Self::try_write`].
    pub fn write(&mut self, pid: Pid, va: VirtAddr, value: u8) {
        let _ = self.try_write(pid, va, value);
    }

    /// Prefetch (never faults).
    pub fn prefetch(&mut self, pid: Pid, va: VirtAddr) {
        self.machine.record(|| JournalEvent::Prefetch { pid, va });
        self.background();
        self.machine.prefetch(pid, va);
    }

    /// `clflush` of the line containing `va` (never faults). Journaled:
    /// the flush evicts an LLC line, and the timing side channel observes
    /// LLC state, so a replay must re-evict the same line at the same
    /// point in the call sequence.
    pub fn clflush(&mut self, pid: Pid, va: VirtAddr) {
        self.machine.record(|| JournalEvent::Clflush { pid, va });
        self.background();
        self.machine.clflush(pid, va);
    }

    /// Reads a whole page with realistic timing: a faulting first access,
    /// then one access per remaining cache line.
    pub fn read_page(&mut self, pid: Pid, va: VirtAddr) -> [u8; PAGE_SIZE as usize] {
        let base = va.page_base();
        // One composite event; the inner byte reads must not re-journal.
        self.machine.record(|| JournalEvent::ReadPage { pid, va });
        self.machine.suspend_journal();
        self.read(pid, base);
        for line in 1..(PAGE_SIZE / 64) {
            self.read(pid, VirtAddr(base.0 + line * 64));
        }
        self.machine.resume_journal();
        match self.machine.translate_quiet(pid, base) {
            Some(pa) => *self.machine.mem().page(pa.frame()),
            // The page never got mapped (OOM during demand paging): the
            // failed reads above observed zeroes; report the same.
            None => [0; PAGE_SIZE as usize],
        }
    }

    /// Writes a whole page: a faulting first store (which performs any
    /// CoW/CoA), then one store per remaining line; content lands in the
    /// backing frame.
    pub fn write_page(&mut self, pid: Pid, va: VirtAddr, content: &[u8; PAGE_SIZE as usize]) {
        let base = va.page_base();
        self.machine.record(|| JournalEvent::WritePage {
            pid,
            va,
            content: Box::new(*content),
        });
        self.machine.suspend_journal();
        self.write(pid, base, content[0]);
        for line in 1..(PAGE_SIZE / 64) {
            self.write(
                pid,
                VirtAddr(base.0 + line * 64),
                content[(line * 64) as usize],
            );
        }
        self.machine.resume_journal();
        if let Some(pa) = self.machine.translate_quiet(pid, base) {
            self.machine.mem_mut().write_page(pa.frame(), content);
        }
        // Else: the page never got mapped (OOM during demand paging); the
        // store is dropped like the byte-wise writes above.
    }

    /// Lets simulated time pass, running background daemons on schedule.
    pub fn idle(&mut self, ns: u64) {
        self.machine.record(|| JournalEvent::Idle { ns });
        let target = self.machine.now_ns() + ns;
        while self.machine.now_ns() < target {
            let step = (target - self.machine.now_ns()).min(self.policy.scan_period_ns().max(1));
            self.machine.sleep(step);
            self.background();
        }
    }

    /// Forces `n` scanner wakeups immediately (experiment helper; does not
    /// advance the clock).
    pub fn force_scans(&mut self, n: usize) {
        self.machine.record(|| JournalEvent::ForceScans { n });
        for _ in 0..n {
            self.scan_once();
        }
        // Treat the forced scans as having satisfied any pending deadlines,
        // so subsequent timed operations are not interrupted by catch-up
        // wakeups (experiments rely on this for clean measurements).
        self.next_scan_ns = self.machine.now_ns() + self.policy.scan_period_ns();
        if let Some(k) = self.khugepaged.as_ref() {
            self.next_khuge_ns = self.machine.now_ns() + k.period_ns;
        }
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// A point-in-time metrics snapshot: whatever the registry has
    /// accumulated, plus the structured machine/driver/scanner/hierarchy
    /// counters folded in under stable dotted names — one document
    /// captures the whole system. Diff two snapshots to isolate a phase.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.machine.obs().metrics().snapshot();
        let m = self.machine.stats();
        for (name, v) in [
            ("machine.reads", m.reads),
            ("machine.writes", m.writes),
            ("machine.prefetches", m.prefetches),
            ("machine.faults_not_mapped", m.faults_not_mapped),
            ("machine.faults_trapped", m.faults_trapped),
            ("machine.faults_write_protected", m.faults_write_protected),
            ("machine.demand_zero", m.demand_zero),
            ("machine.demand_huge", m.demand_huge),
            ("machine.demand_file", m.demand_file),
            ("machine.cow_copies", m.cow_copies),
            ("machine.bit_flips", m.bit_flips),
            ("machine.oom_events", m.oom_events),
            ("machine.injected_faults", m.injected_faults),
            ("machine.scan_retries", m.scan_retries),
            ("machine.deferred_drains", m.deferred_drains),
        ] {
            snap.set_counter(name, v);
        }
        let s = self.stats;
        for (name, v) in [
            ("system.policy_faults", s.policy_faults),
            ("system.kernel_faults", s.kernel_faults),
            ("system.scan_wakeups", s.scan_wakeups),
            ("system.unresolved_faults", s.unresolved_faults),
            ("system.fault_livelocks", s.fault_livelocks),
        ] {
            snap.set_counter(name, v);
        }
        let t = self.scan_totals;
        for (name, v) in [
            ("scan.pages_scanned", t.pages_scanned),
            ("scan.pages_merged", t.pages_merged),
            ("scan.pages_fake_merged", t.pages_fake_merged),
            ("scan.pages_unmerged", t.pages_unmerged),
            ("scan.pages_skipped_active", t.pages_skipped_active),
            ("scan.pages_skipped_clean", t.pages_skipped_clean),
            ("scan.huge_pages_broken", t.huge_pages_broken),
            ("scan.budget_used", t.budget_used),
        ] {
            snap.set_counter(name, v);
        }
        // Zero-cost-when-off: a disabled governor contributes nothing.
        if self.governor.enabled() {
            let p = self.governor.stats();
            for (name, v) in [
                ("pressure.samples", p.samples),
                ("pressure.escalations", p.escalations),
                ("pressure.de_escalations", p.de_escalations),
                ("pressure.drain_rungs", p.drain_rungs),
                ("pressure.drain_rungs_effective", p.drain_rungs_effective),
                ("pressure.shrink_rungs", p.shrink_rungs),
                ("pressure.defer_rungs", p.defer_rungs),
                ("pressure.defer_exits", p.defer_exits),
                ("pressure.drained_ops", p.drained_ops),
                ("pressure.shrunk_entries", p.shrunk_entries),
                ("pressure.budget_granted", p.budget_granted),
                ("pressure.budget_used", p.budget_used),
                ("pressure.budget_carried", p.budget_carried),
            ] {
                snap.set_counter(name, v);
            }
            snap.set_gauge("pressure.band", self.governor.band().code() as i64);
            snap.set_gauge("pressure.budget", self.governor.budget() as i64);
        }
        let shards = self.machine.scan_shard_costs();
        for (i, &ns) in shards.iter().enumerate() {
            snap.set_counter(&format!("scan.shard_cost_ns.{i}"), ns);
        }
        // Like pressure.*: a disabled surface contributes no keys at all.
        if self.machine.surface_enabled() {
            let surf = self.machine.obs().surface();
            for &class in &PageClass::ALL {
                for &kind in &FaultKind::ALL {
                    snap.set_counter(
                        &format!("surface.fault.{}.{}", class.name(), kind.name()),
                        surf.fault_count(class, kind),
                    );
                }
            }
            let (h, m, e) = surf.llc_counts();
            for (name, v) in [
                ("surface.llc.hits_fused", h[1]),
                ("surface.llc.hits_other", h[0]),
                ("surface.llc.misses_fused", m[1]),
                ("surface.llc.misses_other", m[0]),
                ("surface.llc.evictions_fused", e[1]),
                ("surface.llc.evictions_other", e[0]),
            ] {
                snap.set_counter(name, v);
            }
            let d = surf.dram_totals();
            snap.set_counter("surface.dram.hits_fused", d[1][0]);
            snap.set_counter("surface.dram.hits_other", d[0][0]);
            snap.set_counter("surface.dram.conflicts_fused", d[1][2]);
            snap.set_counter("surface.dram.conflicts_other", d[0][2]);
            let (tf, te) = surf.tlb_counts();
            snap.set_counter("surface.tlb.fills_fused", tf[1]);
            snap.set_counter("surface.tlb.fills_other", tf[0]);
            snap.set_counter("surface.tlb.evictions_fused", te[1]);
            snap.set_counter("surface.tlb.evictions_other", te[0]);
            let tr = surf.transition_counts();
            snap.set_counter("surface.transitions.merge", tr[0]);
            snap.set_counter("surface.transitions.fake_merge", tr[1]);
            snap.set_counter("surface.transitions.unmerge", tr[2]);
        }
        let (hits, misses, invalidations, flushes) = self.machine.tlb_totals();
        snap.set_counter("tlb.hits", hits);
        snap.set_counter("tlb.misses", misses);
        snap.set_counter("tlb.shootdowns", invalidations);
        snap.set_counter("tlb.flushes", flushes);
        let c = self.machine.llc().stats();
        snap.set_counter("llc.hits", c.hits);
        snap.set_counter("llc.misses", c.misses);
        snap.set_counter("llc.evictions", c.evictions);
        snap.set_counter("llc.flushes", c.flushes);
        let b = self.machine.buddy().stats();
        snap.set_counter("buddy.allocs", b.allocs);
        snap.set_counter("buddy.frees", b.frees);
        snap.set_counter("buddy.splits", b.splits);
        snap.set_counter("buddy.merges", b.merges);
        if let Some(k) = self.khugepaged.as_ref() {
            let ks = k.stats();
            snap.set_counter("khugepaged.collapsed", ks.collapsed);
            snap.set_counter("khugepaged.blocked_by_policy", ks.blocked_by_policy);
            snap.set_counter("khugepaged.skipped", ks.skipped);
        }
        snap.set_gauge(
            "mem.allocated_frames",
            self.machine.allocated_frames() as i64,
        );
        snap.set_gauge("engine.pages_saved", self.policy.pages_saved() as i64);
        snap
    }

    /// The side-channel surface as canonical JSON (see
    /// [`Machine::surface_json`]).
    pub fn surface_json(&self) -> String {
        self.machine.surface_json()
    }

    /// The per-run report: engine name, metrics snapshot, and the
    /// cycle-attribution profile accumulated by the tracer.
    pub fn report(&self) -> SystemReport {
        SystemReport {
            engine: self.policy.name().to_string(),
            metrics: self.metrics_snapshot(),
            profile: self.machine.obs().tracer().profile().clone(),
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint, restore, replay
    // ------------------------------------------------------------------

    /// Serializes the whole system (machine, daemon deadlines, driver
    /// stats, khugepaged, engine state) into a sealed, checksummed blob.
    /// The machine's event journal is *not* included; pair
    /// [`Machine::journal`] with this blob to describe "state at T, then
    /// what happened".
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.machine.save_state(&mut w);
        w.u64(self.next_scan_ns);
        w.u64(self.next_khuge_ns);
        let s = self.stats;
        for v in [
            s.policy_faults,
            s.kernel_faults,
            s.scan_wakeups,
            s.unresolved_faults,
            s.fault_livelocks,
        ] {
            w.u64(v);
        }
        let t = self.scan_totals;
        for v in [
            t.pages_scanned,
            t.pages_merged,
            t.pages_fake_merged,
            t.pages_unmerged,
            t.pages_skipped_active,
            t.pages_skipped_clean,
            t.huge_pages_broken,
            t.budget_used,
        ] {
            w.u64(v);
        }
        self.governor.save(&mut w);
        match &self.khugepaged {
            Some(k) => {
                w.bool(true);
                k.save(&mut w);
            }
            None => w.bool(false),
        }
        // The engine payload is tagged with the policy name and framed as
        // a blob, so a bundle recorded under one engine fails loudly when
        // replayed into another.
        w.str(self.policy.name());
        let mut pw = Writer::new();
        self.policy.save_state(&mut pw);
        w.blob(&pw.into_bytes());
        vusion_snapshot::seal(&w.into_bytes())
    }

    /// Restores a snapshot taken by [`Self::snapshot`] into a system built
    /// with the same machine configuration and the same policy kind.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let payload = vusion_snapshot::unseal(bytes)?;
        let mut r = Reader::new(payload);
        self.machine.restore_state(&mut r)?;
        self.next_scan_ns = r.u64()?;
        self.next_khuge_ns = r.u64()?;
        self.stats = SystemStats {
            policy_faults: r.u64()?,
            kernel_faults: r.u64()?,
            scan_wakeups: r.u64()?,
            unresolved_faults: r.u64()?,
            fault_livelocks: r.u64()?,
        };
        self.scan_totals = ScanReport {
            pages_scanned: r.u64()?,
            pages_merged: r.u64()?,
            pages_fake_merged: r.u64()?,
            pages_unmerged: r.u64()?,
            pages_skipped_active: r.u64()?,
            pages_skipped_clean: r.u64()?,
            huge_pages_broken: r.u64()?,
            budget_used: r.u64()?,
        };
        self.governor = PressureGovernor::load(&mut r)?;
        if r.bool()? {
            self.khugepaged = Some(Khugepaged::load(&mut r)?);
        } else {
            self.khugepaged = None;
        }
        let tag = r.str()?;
        if tag != self.policy.name() {
            return Err(SnapshotError::Corrupt("engine tag mismatch"));
        }
        let blob = r.blob()?;
        let mut pr = Reader::new(blob);
        self.policy.restore_state(&mut pr)
    }

    /// Re-executes one journaled event. Journaling is suspended for the
    /// duration so a replay never re-records itself.
    pub fn replay_event(&mut self, ev: &JournalEvent) {
        self.machine.suspend_journal();
        match ev {
            JournalEvent::Spawn { name } => {
                let _ = self.machine.spawn(name);
            }
            JournalEvent::Mmap { pid, vma } => self.machine.mmap(*pid, *vma),
            JournalEvent::Madvise { pid, start, pages } => {
                let _ = self.machine.madvise_mergeable(*pid, *start, *pages);
            }
            JournalEvent::Read { pid, va } => {
                let _ = self.try_read(*pid, *va);
            }
            JournalEvent::Write { pid, va, value } => {
                let _ = self.try_write(*pid, *va, *value);
            }
            JournalEvent::ReadPage { pid, va } => {
                let _ = self.read_page(*pid, *va);
            }
            JournalEvent::WritePage { pid, va, content } => {
                self.write_page(*pid, *va, content);
            }
            JournalEvent::Prefetch { pid, va } => self.prefetch(*pid, *va),
            JournalEvent::Clflush { pid, va } => self.clflush(*pid, *va),
            JournalEvent::ForceScans { n } => self.force_scans(*n),
            JournalEvent::Idle { ns } => self.idle(*ns),
            JournalEvent::Hammer {
                pid,
                va1,
                va2,
                iterations,
            } => {
                let _ = self.machine.hammer(*pid, *va1, *va2, *iterations);
            }
            JournalEvent::ArmFaults => self.machine.arm_faults(),
            JournalEvent::SetPressureGovernor { cfg } => {
                let _ = self.set_pressure_governor(*cfg);
            }
        }
        self.machine.resume_journal();
    }

    /// Replays a journal in order. Starting from the matching snapshot,
    /// this converges to the same memory image and stats as the original
    /// (uncrashed) execution of the recorded call sequence.
    pub fn replay(&mut self, events: &[JournalEvent]) {
        for ev in events {
            self.replay_event(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::policy::NoFusion;
    use vusion_mmu::{Protection, Vma};

    fn system() -> (System<NoFusion>, Pid) {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 64, Protection::rw()));
        (System::new(m, NoFusion), pid)
    }

    #[test]
    fn read_write_roundtrip_through_faults() {
        let (mut s, pid) = system();
        s.write(pid, VirtAddr(0x10010), 7);
        assert_eq!(s.read(pid, VirtAddr(0x10010)), 7);
        assert_eq!(s.stats().kernel_faults, 1, "one demand-zero fault");
    }

    #[test]
    fn page_helpers_roundtrip() {
        let (mut s, pid) = system();
        let mut content = [0u8; PAGE_SIZE as usize];
        for (i, b) in content.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        s.write_page(pid, VirtAddr(0x12000), &content);
        assert_eq!(s.read_page(pid, VirtAddr(0x12000)), content);
    }

    #[test]
    fn idle_advances_clock_and_runs_scans() {
        let (mut s, pid) = system();
        let _ = pid;
        let t0 = s.machine.now_ns();
        s.idle(100_000_000); // 100 ms = 5 scan periods.
        assert!(s.machine.now_ns() >= t0 + 100_000_000);
        assert_eq!(s.stats().scan_wakeups, 5);
    }

    #[test]
    fn scans_triggered_by_foreground_time() {
        let (mut s, pid) = system();
        // Enough faulting writes to push the clock past several periods.
        let mut va = 0x10000u64;
        while s.machine.now_ns() < 50_000_000 {
            s.write(pid, VirtAddr(va), 1);
            va += PAGE_SIZE;
            if va >= 0x10000 + 64 * PAGE_SIZE {
                s.machine.sleep(1_000_000);
                va = 0x10000;
            }
        }
        s.read(pid, VirtAddr(0x10000));
        assert!(
            s.stats().scan_wakeups >= 2,
            "scanner must keep pace with time"
        );
    }

    #[test]
    fn unmapped_access_is_fatal() {
        // The simulated SIGSEGV: a typed error whose display names it.
        let (mut s, pid) = system();
        let va = VirtAddr(0x0dea_dbee_f000);
        let err = s.try_read(pid, va).expect_err("must not resolve");
        assert!(err.to_string().contains("SIGSEGV"), "{err}");
    }

    #[test]
    fn unmapped_access_is_a_typed_error() {
        let (mut s, pid) = system();
        let va = VirtAddr(0x0dea_dbee_f000);
        assert_eq!(s.try_read(pid, va), Err(MmError::UnresolvableFault(va)));
        assert_eq!(s.stats().unresolved_faults, 1);
        // The system survives: mapped memory still works afterwards.
        s.write(pid, VirtAddr(0x10000), 3);
        assert_eq!(s.read(pid, VirtAddr(0x10000)), 3);
    }
}
