//! The append-only event journal: every externally driven mutation of a
//! [`crate::Machine`], recorded as the *call* that caused it (never its
//! outcome), so `restore(snapshot) + replay(journal)` re-derives the exact
//! machine state deterministically.
//!
//! Recording is opt-in ([`crate::Machine::enable_journal`]) because
//! benchmarks drive millions of accesses. Composite operations (page-wise
//! read/write) record one event and suspend recording around their inner
//! byte accesses. Crash arming is deliberately *not* journaled: a replay
//! must converge to the uncrashed execution of the same call sequence,
//! which is exactly how the chaos tests verify crash recovery.

use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::Vma;
use vusion_snapshot::{Reader, SnapshotError, Writer};

use crate::machine::Pid;
use crate::pressure::PressureConfig;

/// One externally driven machine mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// `Machine::spawn`.
    Spawn {
        /// Process name.
        name: String,
    },
    /// `Machine::mmap`.
    Mmap {
        /// Target process.
        pid: Pid,
        /// The region added.
        vma: Vma,
    },
    /// `Machine::madvise_mergeable`.
    Madvise {
        /// Target process.
        pid: Pid,
        /// First page of the advised range.
        start: VirtAddr,
        /// Pages advised.
        pages: u64,
    },
    /// `System::try_read` / `System::read`.
    Read {
        /// Accessing process.
        pid: Pid,
        /// Address read.
        va: VirtAddr,
    },
    /// `System::try_write` / `System::write`.
    Write {
        /// Accessing process.
        pid: Pid,
        /// Address written.
        va: VirtAddr,
        /// Byte stored.
        value: u8,
    },
    /// `System::read_page`.
    ReadPage {
        /// Accessing process.
        pid: Pid,
        /// Page read.
        va: VirtAddr,
    },
    /// `System::write_page`.
    WritePage {
        /// Accessing process.
        pid: Pid,
        /// Page written.
        va: VirtAddr,
        /// Full page content stored.
        content: Box<[u8; PAGE_SIZE as usize]>,
    },
    /// `System::prefetch`.
    Prefetch {
        /// Accessing process.
        pid: Pid,
        /// Address prefetched.
        va: VirtAddr,
    },
    /// `System::force_scans`.
    ForceScans {
        /// Wakeups forced.
        n: usize,
    },
    /// `System::idle`.
    Idle {
        /// Simulated time passed.
        ns: u64,
    },
    /// `Machine::hammer`.
    Hammer {
        /// Hammering process.
        pid: Pid,
        /// First aggressor address.
        va1: VirtAddr,
        /// Second aggressor address.
        va2: VirtAddr,
        /// Activation pairs.
        iterations: u64,
    },
    /// `Machine::arm_faults` (the fault plan, unlike the crash plan, is
    /// part of the behavior a replay must reproduce).
    ArmFaults,
    /// `System::set_pressure_governor` (the governor changes scan
    /// behavior, so a replay must re-install the same control law).
    SetPressureGovernor {
        /// The governor configuration installed.
        cfg: PressureConfig,
    },
    /// `System::clflush` (the flush changes LLC state, which the timing
    /// side channel observes, so a replay must re-evict the same line).
    Clflush {
        /// Flushing process.
        pid: Pid,
        /// Address whose cache line is flushed.
        va: VirtAddr,
    },
}

/// The discriminant of a [`JournalEvent`], for introspection: shrinkers
/// and coverage reports classify events without matching on payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JournalEventKind {
    /// `Spawn`.
    Spawn,
    /// `Mmap`.
    Mmap,
    /// `Madvise`.
    Madvise,
    /// `Read`.
    Read,
    /// `Write`.
    Write,
    /// `ReadPage`.
    ReadPage,
    /// `WritePage`.
    WritePage,
    /// `Prefetch`.
    Prefetch,
    /// `ForceScans`.
    ForceScans,
    /// `Idle`.
    Idle,
    /// `Hammer`.
    Hammer,
    /// `ArmFaults`.
    ArmFaults,
    /// `SetPressureGovernor`.
    SetPressureGovernor,
    /// `Clflush`.
    Clflush,
}

impl JournalEventKind {
    /// Every kind, in tag order (matches the wire tags in
    /// [`JournalEvent::save`]).
    pub const ALL: [JournalEventKind; 14] = [
        JournalEventKind::Spawn,
        JournalEventKind::Mmap,
        JournalEventKind::Madvise,
        JournalEventKind::Read,
        JournalEventKind::Write,
        JournalEventKind::ReadPage,
        JournalEventKind::WritePage,
        JournalEventKind::Prefetch,
        JournalEventKind::ForceScans,
        JournalEventKind::Idle,
        JournalEventKind::Hammer,
        JournalEventKind::ArmFaults,
        JournalEventKind::SetPressureGovernor,
        JournalEventKind::Clflush,
    ];

    /// Stable lowercase label (coverage keys, report rows).
    pub fn label(self) -> &'static str {
        match self {
            JournalEventKind::Spawn => "spawn",
            JournalEventKind::Mmap => "mmap",
            JournalEventKind::Madvise => "madvise",
            JournalEventKind::Read => "read",
            JournalEventKind::Write => "write",
            JournalEventKind::ReadPage => "read_page",
            JournalEventKind::WritePage => "write_page",
            JournalEventKind::Prefetch => "prefetch",
            JournalEventKind::ForceScans => "force_scans",
            JournalEventKind::Idle => "idle",
            JournalEventKind::Hammer => "hammer",
            JournalEventKind::ArmFaults => "arm_faults",
            JournalEventKind::SetPressureGovernor => "set_pressure_governor",
            JournalEventKind::Clflush => "clflush",
        }
    }
}

impl JournalEvent {
    /// This event's discriminant.
    pub fn kind(&self) -> JournalEventKind {
        match self {
            Self::Spawn { .. } => JournalEventKind::Spawn,
            Self::Mmap { .. } => JournalEventKind::Mmap,
            Self::Madvise { .. } => JournalEventKind::Madvise,
            Self::Read { .. } => JournalEventKind::Read,
            Self::Write { .. } => JournalEventKind::Write,
            Self::ReadPage { .. } => JournalEventKind::ReadPage,
            Self::WritePage { .. } => JournalEventKind::WritePage,
            Self::Prefetch { .. } => JournalEventKind::Prefetch,
            Self::ForceScans { .. } => JournalEventKind::ForceScans,
            Self::Idle { .. } => JournalEventKind::Idle,
            Self::Hammer { .. } => JournalEventKind::Hammer,
            Self::ArmFaults => JournalEventKind::ArmFaults,
            Self::SetPressureGovernor { .. } => JournalEventKind::SetPressureGovernor,
            Self::Clflush { .. } => JournalEventKind::Clflush,
        }
    }

    /// Serializes one event.
    pub fn save(&self, w: &mut Writer) {
        match self {
            Self::Spawn { name } => {
                w.u8(0);
                w.str(name);
            }
            Self::Mmap { pid, vma } => {
                w.u8(1);
                w.usize(pid.0);
                vma.save(w);
            }
            Self::Madvise { pid, start, pages } => {
                w.u8(2);
                w.usize(pid.0);
                w.u64(start.0);
                w.u64(*pages);
            }
            Self::Read { pid, va } => {
                w.u8(3);
                w.usize(pid.0);
                w.u64(va.0);
            }
            Self::Write { pid, va, value } => {
                w.u8(4);
                w.usize(pid.0);
                w.u64(va.0);
                w.u8(*value);
            }
            Self::ReadPage { pid, va } => {
                w.u8(5);
                w.usize(pid.0);
                w.u64(va.0);
            }
            Self::WritePage { pid, va, content } => {
                w.u8(6);
                w.usize(pid.0);
                w.u64(va.0);
                w.bytes(content.as_slice());
            }
            Self::Prefetch { pid, va } => {
                w.u8(7);
                w.usize(pid.0);
                w.u64(va.0);
            }
            Self::ForceScans { n } => {
                w.u8(8);
                w.usize(*n);
            }
            Self::Idle { ns } => {
                w.u8(9);
                w.u64(*ns);
            }
            Self::Hammer {
                pid,
                va1,
                va2,
                iterations,
            } => {
                w.u8(10);
                w.usize(pid.0);
                w.u64(va1.0);
                w.u64(va2.0);
                w.u64(*iterations);
            }
            Self::ArmFaults => w.u8(11),
            Self::SetPressureGovernor { cfg } => {
                w.u8(12);
                cfg.save(w);
            }
            Self::Clflush { pid, va } => {
                w.u8(13);
                w.usize(pid.0);
                w.u64(va.0);
            }
        }
    }

    /// Deserializes one event.
    pub fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => Self::Spawn { name: r.str()? },
            1 => Self::Mmap {
                pid: Pid(r.usize()?),
                vma: Vma::load(r)?,
            },
            2 => Self::Madvise {
                pid: Pid(r.usize()?),
                start: VirtAddr(r.u64()?),
                pages: r.u64()?,
            },
            3 => Self::Read {
                pid: Pid(r.usize()?),
                va: VirtAddr(r.u64()?),
            },
            4 => Self::Write {
                pid: Pid(r.usize()?),
                va: VirtAddr(r.u64()?),
                value: r.u8()?,
            },
            5 => Self::ReadPage {
                pid: Pid(r.usize()?),
                va: VirtAddr(r.u64()?),
            },
            6 => {
                let pid = Pid(r.usize()?);
                let va = VirtAddr(r.u64()?);
                let mut content = Box::new([0u8; PAGE_SIZE as usize]);
                content.copy_from_slice(r.bytes(PAGE_SIZE as usize)?);
                Self::WritePage { pid, va, content }
            }
            7 => Self::Prefetch {
                pid: Pid(r.usize()?),
                va: VirtAddr(r.u64()?),
            },
            8 => Self::ForceScans { n: r.usize()? },
            9 => Self::Idle { ns: r.u64()? },
            10 => Self::Hammer {
                pid: Pid(r.usize()?),
                va1: VirtAddr(r.u64()?),
                va2: VirtAddr(r.u64()?),
                iterations: r.u64()?,
            },
            11 => Self::ArmFaults,
            12 => Self::SetPressureGovernor {
                cfg: PressureConfig::load(r)?,
            },
            13 => Self::Clflush {
                pid: Pid(r.usize()?),
                va: VirtAddr(r.u64()?),
            },
            _ => return Err(SnapshotError::Corrupt("unknown journal event tag")),
        })
    }

    /// Serializes a whole journal (length-prefixed event list).
    pub fn save_all(events: &[JournalEvent], w: &mut Writer) {
        w.usize(events.len());
        for ev in events {
            ev.save(w);
        }
    }

    /// Deserializes a journal written by [`Self::save_all`].
    pub fn load_all(r: &mut Reader<'_>) -> Result<Vec<JournalEvent>, SnapshotError> {
        let n = r.usize()?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(Self::load(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_mmu::Protection;

    #[test]
    fn events_round_trip() {
        let mut content = Box::new([0u8; PAGE_SIZE as usize]);
        for (i, b) in content.iter_mut().enumerate() {
            *b = (i % 253) as u8;
        }
        let events = vec![
            JournalEvent::Spawn { name: "vm0".into() },
            JournalEvent::Mmap {
                pid: Pid(0),
                vma: Vma::anon(VirtAddr(0x10000), 8, Protection::rw()),
            },
            JournalEvent::Madvise {
                pid: Pid(0),
                start: VirtAddr(0x10000),
                pages: 8,
            },
            JournalEvent::Read {
                pid: Pid(0),
                va: VirtAddr(0x10010),
            },
            JournalEvent::Write {
                pid: Pid(0),
                va: VirtAddr(0x10020),
                value: 0xab,
            },
            JournalEvent::ReadPage {
                pid: Pid(0),
                va: VirtAddr(0x11000),
            },
            JournalEvent::WritePage {
                pid: Pid(0),
                va: VirtAddr(0x12000),
                content,
            },
            JournalEvent::Prefetch {
                pid: Pid(0),
                va: VirtAddr(0x10000),
            },
            JournalEvent::ForceScans { n: 3 },
            JournalEvent::Idle { ns: 1_000_000 },
            JournalEvent::Hammer {
                pid: Pid(0),
                va1: VirtAddr(0x10000),
                va2: VirtAddr(0x14000),
                iterations: 1_000_000,
            },
            JournalEvent::ArmFaults,
            JournalEvent::SetPressureGovernor {
                cfg: PressureConfig::standard(),
            },
            JournalEvent::Clflush {
                pid: Pid(0),
                va: VirtAddr(0x10040),
            },
        ];
        let mut w = Writer::new();
        JournalEvent::save_all(&events, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = JournalEvent::load_all(&mut r).expect("load");
        assert_eq!(back, events);
        assert!(r.is_empty());
    }

    #[test]
    fn kind_labels_are_distinct_and_exhaustive() {
        let mut labels: Vec<&str> = JournalEventKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), JournalEventKind::ALL.len());
        // Every event maps to a kind listed in ALL.
        let ev = JournalEvent::ForceScans { n: 1 };
        assert!(JournalEventKind::ALL.contains(&ev.kind()));
        assert_eq!(ev.kind().label(), "force_scans");
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut w = Writer::new();
        w.u8(0xee);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(JournalEvent::load(&mut r).is_err());
    }
}
