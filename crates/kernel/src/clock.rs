//! Simulated time and the cost model that advances it.

use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

/// Nanosecond-resolution simulated clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current time in (fractional) milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now_ns as f64 / 1e6
    }

    /// Advances the clock.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
    }
}

/// Latency parameters of the simulated machine, in nanoseconds.
///
/// The defaults are calibrated to commodity hardware orders of magnitude
/// (LLC hit ≈ 12 ns, DRAM ≈ 60–100 ns, minor fault ≈ 1–2 µs on the paper's
/// 3.5 GHz Xeon E3-1240 v5). Absolute values do not need to match the
/// testbed — the attacks and benchmarks depend on the *separation* between
/// path costs, which these preserve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// A register-only CPU operation.
    pub cpu_op: u64,
    /// LLC hit.
    pub llc_hit: u64,
    /// DRAM access with the row already open.
    pub dram_row_hit: u64,
    /// DRAM access opening a row in an idle bank.
    pub dram_row_empty: u64,
    /// DRAM access that must close another row first.
    pub dram_row_conflict: u64,
    /// Fixed cost of entering the page-fault handler.
    pub fault_base: u64,
    /// Copying one 4 KiB page.
    pub copy_page: u64,
    /// Zero-filling one 4 KiB page.
    pub zero_page: u64,
    /// Updating a PTE (incl. TLB shootdown of one entry).
    // vlint: allow(P001, cycle-cost scalar named after the operation it prices — not a page-table word)
    pub pte_update: u64,
    /// Synchronous interaction with the buddy allocator on the fault path —
    /// the cost VUsion hides with deferred free (§7.1, decision ii).
    pub buddy_interaction: u64,
    /// Pushing an entry onto the deferred-free queue (cheap, same for the
    /// merged and fake-merged paths).
    pub deferred_queue_push: u64,
    /// Multiplicative jitter applied to every charge (0.03 = ±3%).
    pub jitter: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            cpu_op: 1,
            llc_hit: 12,
            dram_row_hit: 60,
            dram_row_empty: 75,
            dram_row_conflict: 100,
            fault_base: 1200,
            copy_page: 900,
            zero_page: 500,
            pte_update: 80,
            buddy_interaction: 400,
            deferred_queue_push: 30,
            jitter: 0.03,
        }
    }
}

/// Applies seeded jitter to a base cost.
#[derive(Debug)]
pub struct Jitter {
    rng: StdRng,
    frac: f64,
}

impl Jitter {
    /// Creates a jitter source.
    pub fn new(seed: u64, frac: f64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            frac,
        }
    }

    /// Serializes the jitter stream (RNG position and band width).
    pub fn save(&self, w: &mut vusion_snapshot::Writer) {
        for s in self.rng.state() {
            w.u64(s);
        }
        w.f64(self.frac);
    }

    /// Restores a jitter stream saved by [`Self::save`].
    pub fn load(
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        let mut s = [0u64; 4];
        for x in &mut s {
            *x = r.u64()?;
        }
        Ok(Self {
            rng: StdRng::from_state(s),
            frac: r.f64()?,
        })
    }

    /// Returns `base` perturbed by up to ±`frac`.
    pub fn apply(&mut self, base: u64) -> u64 {
        if base == 0 || self.frac <= 0.0 {
            return base;
        }
        let f = self.rng.random_range(-self.frac..self.frac);
        let jittered = base as f64 * (1.0 + f);
        jittered.round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = SimClock::new();
        c.advance(1500);
        c.advance(500);
        assert_eq!(c.now_ns(), 2000);
        assert!((c.now_ms() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut j = Jitter::new(7, 0.03);
        for _ in 0..1000 {
            let v = j.apply(1000);
            assert!((970..=1030).contains(&v), "jittered value {v} outside ±3%");
        }
    }

    #[test]
    fn jitter_varies() {
        let mut j = Jitter::new(7, 0.03);
        let vals: std::collections::BTreeSet<u64> = (0..100).map(|_| j.apply(10_000)).collect();
        assert!(vals.len() > 10, "jitter should actually vary");
    }

    #[test]
    fn zero_jitter_is_identity() {
        let mut j = Jitter::new(7, 0.0);
        assert_eq!(j.apply(1234), 1234);
    }

    #[test]
    fn default_costs_separate_paths() {
        let c = CostModel::default();
        // The separations the side channels depend on.
        assert!(c.llc_hit < c.dram_row_hit, "cache hit must beat DRAM");
        assert!(
            c.dram_row_hit < c.dram_row_conflict,
            "row hit must beat conflict"
        );
        assert!(
            c.fault_base > 5 * c.dram_row_conflict,
            "faults must dominate plain accesses"
        );
    }
}
