//! The simulated machine: memory hierarchy, processes, fault generation.

use std::collections::BTreeMap;
use vusion_cache::{CacheOutcome, Llc, LlcConfig};
use vusion_dram::{DramConfig, FlipEvent, RowBufferOutcome, RowBuffers, RowhammerModel};
use vusion_mem::{
    BuddyAllocator, CrashInjector, CrashPlan, CrashSite, FaultInjector, FaultPlan, FrameAllocator,
    FrameId, FrameState, InjectionStats, MmError, PageType, PhysAddr, PhysMemory, VirtAddr,
    HUGE_PAGE_FRAMES, HUGE_PAGE_SIZE, PAGE_SIZE,
};
use vusion_mmu::{AddressSpace, LeafInfo, Pte, PteFlags, Tlb, TlbEntry, Vma, VmaBacking};
use vusion_obs::{
    DramOutcome, FaultKind, InstantKind, Obs, PageClass, SpanKind, SurfaceExtras, SurfaceTransition,
};
use vusion_rng::rngs::StdRng;
use vusion_rng::SeedableRng;
use vusion_snapshot::{Reader, Snapshot, SnapshotError, Writer};

use crate::clock::{CostModel, Jitter, SimClock};
use crate::journal::JournalEvent;
use crate::process::Process;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub usize);

/// Number of *logical* shards scan cost is attributed across. Fixed (not
/// the worker-thread count) so the per-shard breakdown in the metrics
/// snapshot is byte-identical at any `--threads` value: work items are
/// partitioned by `index % LOGICAL_SCAN_SHARDS` over the deterministic
/// serial enumeration, independent of which OS thread hashed them.
pub const LOGICAL_SCAN_SHARDS: usize = 8;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load (also models instruction fetch).
    Read,
    /// Store.
    Write,
}

/// Why an access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultReason {
    /// No (present) translation exists.
    NotMapped,
    /// The leaf PTE has a reserved bit set: the access traps regardless of
    /// permissions (the S⊕F mechanism, §7.1).
    Trapped,
    /// A write hit a read-only mapping (copy-on-write).
    WriteProtected,
}

/// A page fault, delivered to the [`crate::FusionPolicy`] and then to the
/// default handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// Faulting process.
    pub pid: Pid,
    /// Faulting address.
    pub va: VirtAddr,
    /// The access that faulted.
    pub kind: AccessKind,
    /// Fault classification.
    pub reason: FaultReason,
}

/// Counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Prefetch instructions executed.
    pub prefetches: u64,
    /// Faults by reason.
    pub faults_not_mapped: u64,
    /// Reserved-bit traps.
    pub faults_trapped: u64,
    /// CoW faults.
    pub faults_write_protected: u64,
    /// Demand-zero fills (4 KiB).
    pub demand_zero: u64,
    /// Demand huge-page fills (2 MiB).
    pub demand_huge: u64,
    /// Page-cache fills.
    pub demand_file: u64,
    /// Copy-on-write copies performed by the default handler.
    pub cow_copies: u64,
    /// Rowhammer bit flips applied to memory.
    pub bit_flips: u64,
    /// Allocation failures observed by the kernel (genuine or injected):
    /// each one degraded gracefully instead of aborting.
    pub oom_events: u64,
    /// Faults injected by the machine's [`FaultPlan`] (allocator failures,
    /// checksum corruptions and scan bit flips combined).
    pub injected_faults: u64,
    /// Scanner pages skipped this run and left for a later round because a
    /// resource was unavailable or a scan read was unreliable.
    pub scan_retries: u64,
    /// Deferred-free-queue drains performed under memory pressure to
    /// recover frames before reporting exhaustion.
    pub deferred_drains: u64,
}

/// Machine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Physical memory size in 4 KiB frames.
    pub frames: u64,
    /// LLC geometry.
    pub llc: LlcConfig,
    /// DRAM geometry.
    pub dram: DramConfig,
    /// Latency model.
    pub costs: CostModel,
    /// Master seed (jitter, Rowhammer weak cells).
    pub seed: u64,
    /// Whether anonymous demand faults install 2 MiB mappings when possible
    /// (transparent huge pages).
    pub thp: bool,
    /// Fraction of DRAM rows with Rowhammer-weak cells.
    pub weak_row_fraction: f64,
    /// Frames at the top of physical memory excluded from the system buddy
    /// allocator. Windows Page Fusion's `MiAllocatePagesForMdl`-style
    /// allocator serves fused-page backing frames from this region (§2.2).
    pub reserved_top_frames: u64,
    /// Deterministic fault-injection plan, seeded from [`Self::seed`].
    /// Inert until [`Machine::arm_faults`] is called, so machine and engine
    /// construction stay deterministic regardless of the plan.
    pub fault_plan: FaultPlan,
    /// Seeded crash-point plan, mirroring `fault_plan`: inert until
    /// [`Machine::arm_crashes`] is called, after which the engine whose
    /// crash-site poll matches aborts that operation mid-flight exactly
    /// once.
    pub crash_plan: CrashPlan,
}

impl MachineConfig {
    /// A machine sized like one of the paper's 2 GB guests, scaled to
    /// 256 MiB so experiments stay fast; geometry matches the testbed LLC.
    pub fn guest_2g_scaled() -> Self {
        Self {
            frames: 65536, // 256 MiB
            llc: LlcConfig::xeon_e3_1240_v5(),
            dram: DramConfig::ddr4(),
            costs: CostModel::default(),
            seed: 0x5eed,
            thp: false,
            weak_row_fraction: 0.35,
            reserved_top_frames: 0,
            fault_plan: FaultPlan::NONE,
            crash_plan: CrashPlan::NONE,
        }
    }

    /// A small machine for unit tests (16 MiB, tiny LLC).
    pub fn test_small() -> Self {
        Self {
            frames: 4096,
            llc: LlcConfig::tiny(),
            dram: DramConfig::single_bank(),
            costs: CostModel::default(),
            seed: 0x5eed,
            thp: false,
            weak_row_fraction: 0.35,
            reserved_top_frames: 0,
            fault_plan: FaultPlan::NONE,
            crash_plan: CrashPlan::NONE,
        }
    }

    /// Reserves `n` frames at the top of memory (for WPF).
    pub fn with_reserved_top(mut self, n: u64) -> Self {
        self.reserved_top_frames = n;
        self
    }

    /// Enables transparent huge pages.
    pub fn with_thp(mut self) -> Self {
        self.thp = true;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault-injection plan (armed later via
    /// [`Machine::arm_faults`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the crash-point plan (armed later via
    /// [`Machine::arm_crashes`]).
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }
}

/// The simulated machine.
pub struct Machine {
    cfg: MachineConfig,
    mem: PhysMemory,
    buddy: BuddyAllocator,
    llc: Llc,
    rows: RowBuffers,
    hammer: RowhammerModel,
    clock: SimClock,
    jitter: Jitter,
    /// RNG available to policies that need machine-scoped randomness.
    pub policy_rng: StdRng,
    /// Scan-time fault source (checksum corruption, observed bit flips),
    /// salted independently from the allocator's injector.
    scan_injector: FaultInjector,
    /// Crash-point source, inert until [`Machine::arm_crashes`].
    crash_injector: CrashInjector,
    processes: Vec<Process>,
    stats: MachineStats,
    journal: Vec<JournalEvent>,
    journal_on: bool,
    /// Non-zero while a composite operation (page-wise read/write, replay)
    /// is recording itself: inner byte accesses must not double-journal.
    journal_suspend: u32,
    /// Observability hub: tracer + metrics registry. Disabled by default
    /// (every hook is a single branch) and excluded from snapshots — it
    /// describes a run, not machine state.
    obs: Obs,
    /// Cumulative scan cost per *logical* shard (see
    /// [`LOGICAL_SCAN_SHARDS`]). Accumulated unconditionally — it is plain
    /// integer addition, costs nothing observable, and snapshots carry it
    /// so restore+replay reproduces the same attribution.
    scan_shard_cost: [u64; LOGICAL_SCAN_SHARDS],
}

impl Machine {
    /// Builds the machine: physical memory, buddy allocator over all of it,
    /// cold caches.
    ///
    /// # Panics
    ///
    /// Panics if the configured reserved region leaves no general memory.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(
            cfg.reserved_top_frames < cfg.frames,
            "reserved region must leave general memory"
        );
        let mem = PhysMemory::new(cfg.frames as usize);
        let buddy = BuddyAllocator::new(FrameId(0), cfg.frames - cfg.reserved_top_frames);
        Self {
            cfg,
            mem,
            buddy,
            llc: Llc::new(cfg.llc),
            rows: RowBuffers::new(cfg.dram),
            hammer: RowhammerModel::new(cfg.dram, cfg.seed ^ 0xd7a3, cfg.weak_row_fraction),
            clock: SimClock::new(),
            jitter: Jitter::new(cfg.seed ^ 0x1177, cfg.costs.jitter),
            policy_rng: StdRng::seed_from_u64(cfg.seed ^ 0xbeef),
            scan_injector: FaultInjector::new(FaultPlan::NONE, cfg.seed ^ 0x5ca1),
            crash_injector: CrashInjector::new(CrashPlan::NONE),
            processes: Vec::new(),
            stats: MachineStats::default(),
            journal: Vec::new(),
            journal_on: false,
            journal_suspend: 0,
            obs: Obs::new(),
            scan_shard_cost: [0; LOGICAL_SCAN_SHARDS],
        }
    }

    /// Arms the configured [`FaultPlan`]: subsequent buddy allocations and
    /// scan-time reads consult deterministic, independently salted
    /// injectors. Called *after* setup (spawns, engine construction) so a
    /// chaos run perturbs steady-state behavior, not construction.
    pub fn arm_faults(&mut self) {
        self.record(|| JournalEvent::ArmFaults);
        let plan = self.cfg.fault_plan;
        self.buddy
            .set_fault_injector(FaultInjector::new(plan, self.cfg.seed ^ 0xfa01));
        self.scan_injector = FaultInjector::new(plan, self.cfg.seed ^ 0x5ca1);
    }

    /// Arms the configured [`CrashPlan`]: subsequent [`Self::crash_now`]
    /// polls count toward the planned crash point. Deliberately *not*
    /// journaled — a replay of a crashed run must converge to the
    /// uncrashed execution of the same call sequence.
    pub fn arm_crashes(&mut self) {
        self.crash_injector = CrashInjector::new(self.cfg.crash_plan);
    }

    /// Polls the crash injector at a named crash site. Engines call this
    /// at the top of interruptible operations; `true` means "the kernel
    /// thread died here": abandon the operation mid-flight (after restoring
    /// whatever invariant-preserving cleanup the call site defines).
    pub fn crash_now(&mut self, site: CrashSite) -> bool {
        let fired = self.crash_injector.should_crash(site);
        if fired {
            self.trace_instant("chaos", InstantKind::CrashPoint, site as u64);
        }
        fired
    }

    /// How many crashes have fired since arming.
    pub fn crashes_fired(&self) -> u64 {
        self.crash_injector.fired()
    }

    // ------------------------------------------------------------------
    // Event journal
    // ------------------------------------------------------------------

    /// Turns on journaling (off by default: benchmarks drive millions of
    /// operations and must not accumulate events).
    pub fn enable_journal(&mut self) {
        self.journal_on = true;
    }

    /// Whether events are currently being recorded.
    pub fn journal_enabled(&self) -> bool {
        self.journal_on && self.journal_suspend == 0
    }

    /// Drops all recorded events (e.g. right after taking a snapshot, so
    /// the journal describes exactly the delta since it).
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }

    /// The events recorded so far.
    pub fn journal(&self) -> &[JournalEvent] {
        &self.journal
    }

    /// Suspends recording (composite operations, replay).
    pub fn suspend_journal(&mut self) {
        self.journal_suspend += 1;
    }

    /// Resumes recording after [`Self::suspend_journal`].
    pub fn resume_journal(&mut self) {
        self.journal_suspend = self.journal_suspend.saturating_sub(1);
    }

    /// Appends an event if journaling is on; the closure keeps event
    /// construction (string/box allocation) off the hot path.
    pub fn record(&mut self, ev: impl FnOnce() -> JournalEvent) {
        if self.journal_on && self.journal_suspend == 0 {
            self.journal.push(ev());
        }
    }

    // ------------------------------------------------------------------
    // Observability (tracing, metrics)
    // ------------------------------------------------------------------

    /// The observability hub (read-only).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The observability hub, mutably (tests and drivers record metrics
    /// through this).
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Turns on tracing and metrics with the default ring capacity.
    /// Off by default: with tracing disabled every hook below is a single
    /// branch — no allocation, no clock read.
    pub fn enable_tracing(&mut self) {
        self.obs.enable(vusion_obs::DEFAULT_CAPACITY);
    }

    // ------------------------------------------------------------------
    // Side-channel surface recorder
    // ------------------------------------------------------------------

    /// Turns on the side-channel surface recorder (independent of
    /// tracing — see [`Obs`]), starting from a clean slate.
    pub fn enable_surface(&mut self) {
        self.obs.enable_surface();
    }

    /// Whether the surface recorder is on.
    #[inline(always)]
    pub fn surface_enabled(&self) -> bool {
        self.obs.surface_enabled()
    }

    /// Whether `frame` is currently shared (refcount > 1) — the ground
    /// truth the surface recorder classifies observables against.
    #[inline]
    fn frame_fused(&self, frame: FrameId) -> bool {
        frame.0 < self.cfg.frames && self.mem.info(frame).refcount > 1
    }

    /// Classifies the page a leaf PTE maps. Shared frames are `Fused`
    /// regardless of the trap bit (VUsion's merged pages are both);
    /// trapped-but-exclusive is the fake-merge disguise (`Trapped`);
    /// all-zero exclusive pages are `Zero`; everything else `Unshared`.
    pub fn classify_leaf(&self, leaf: &LeafInfo) -> PageClass {
        let frame = leaf.pte.frame();
        if self.frame_fused(frame) {
            PageClass::Fused
        } else if leaf.pte.is_trapped() {
            PageClass::Trapped
        } else if frame.0 < self.cfg.frames && self.mem.is_zero(frame) {
            PageClass::Zero
        } else {
            PageClass::Unshared
        }
    }

    /// Records one handled fault on the surface (no-op when disabled).
    #[inline]
    pub fn surface_record_fault(&mut self, class: PageClass, kind: FaultKind, latency_ns: u64) {
        if self.obs.surface_enabled() {
            self.obs.surface_mut().record_fault(class, kind, latency_ns);
        }
    }

    /// Records a page-class transition (merge / fake-merge / unmerge) on
    /// the surface (no-op when disabled). Engines call this next to their
    /// own stats counters.
    #[inline]
    pub fn surface_transition(&mut self, t: SurfaceTransition) {
        if self.obs.surface_enabled() {
            self.obs.surface_mut().record_transition(t);
        }
    }

    /// Snapshot-time observables the streaming counters cannot carry:
    /// page-class populations (one count per installed leaf; a 2 MiB leaf
    /// counts once), LLC lines per set currently backed by fused frames,
    /// and TLB entries split fused/other. Quiet: reads page tables and the
    /// zero-page memo only — no clock, no cache or hash side effects.
    pub fn surface_extras(&self) -> SurfaceExtras {
        let mut extras = SurfaceExtras::default();
        for p in &self.processes {
            for vma in p.space.vmas() {
                let mut pg = 0;
                while pg < vma.pages {
                    let va = VirtAddr(vma.start.0 + pg * PAGE_SIZE);
                    let Some(leaf) = p.space.tables().leaf(&self.mem, va) else {
                        pg += 1;
                        continue;
                    };
                    if !leaf.pte.is_present() && !leaf.pte.is_trapped() {
                        pg += 1;
                        continue;
                    }
                    let step = if leaf.huge {
                        HUGE_PAGE_SIZE / PAGE_SIZE
                    } else {
                        1
                    };
                    let class = self.classify_leaf(&leaf);
                    extras.populations[class.index()] += 1;
                    pg += step;
                }
            }
            for e in p.tlb.entries() {
                let fused = self.frame_fused(e.pte.frame());
                extras.tlb_occupancy[fused as usize] += 1;
            }
        }
        let cfg = self.llc.config();
        for set in 0..cfg.sets {
            let mut fused_lines = 0u64;
            for &line in self.llc.set_lines(set) {
                let frame = FrameId(line * cfg.line_size / PAGE_SIZE);
                if self.frame_fused(frame) {
                    fused_lines += 1;
                }
            }
            if fused_lines > 0 {
                extras.llc_fused_occupancy.push((set as u64, fused_lines));
            }
        }
        extras
    }

    /// The surface rendered as canonical JSON (streaming counters plus
    /// the snapshot-time extras).
    pub fn surface_json(&self) -> String {
        self.obs.surface().to_json(&self.surface_extras())
    }

    /// Opens a trace span, timestamped by the simulated clock. `cat` names
    /// the emitting engine or subsystem ("ksm", "kernel", "mmu", ...).
    #[inline]
    pub fn trace_begin(&mut self, cat: &'static str, kind: SpanKind) {
        if self.obs.enabled() {
            let now = self.clock.now_ns();
            self.obs.tracer_mut().begin(cat, kind, now);
        }
    }

    /// Closes the innermost trace span (which must be of `kind`).
    #[inline]
    pub fn trace_end(&mut self, kind: SpanKind) {
        if self.obs.enabled() {
            let now = self.clock.now_ns();
            self.obs.tracer_mut().end(kind, now);
        }
    }

    /// Records a point trace event.
    #[inline]
    pub fn trace_instant(&mut self, cat: &'static str, kind: InstantKind, arg: u64) {
        if self.obs.enabled() {
            let now = self.clock.now_ns();
            self.obs.tracer_mut().instant(cat, kind, now, arg);
        }
    }

    /// Attributes scanner-side modeled cost to the open trace span.
    /// Scan work runs on its own core and never advances the workload
    /// clock (see the crate docs), so engines report its cost-model value
    /// here for attribution. Observability-only: touches no clock and no
    /// RNG, so enabling tracing never changes simulated behavior.
    #[inline]
    pub fn scan_cost(&mut self, ns: u64) {
        if self.obs.enabled() {
            self.obs.tracer_mut().on_cycles(ns);
        }
    }

    /// Attributes the scan cost of a sharded (parallel) phase: one entry
    /// per shard, in shard-enumeration order, folded into a single total
    /// before it reaches the tracer. The fold is a sum — permutation
    /// invariant — and the per-shard work sets are fixed by the serial
    /// partition (`index % threads`), so the attributed value is identical
    /// at any thread count and the trace stays byte-stable.
    pub fn scan_cost_shards(&mut self, per_shard: &[u64]) {
        for (i, &ns) in per_shard.iter().enumerate() {
            self.scan_shard_cost[i % LOGICAL_SCAN_SHARDS] += ns;
        }
        let total: u64 = per_shard.iter().sum();
        self.scan_cost(total);
    }

    /// Cumulative scan cost attributed to each logical shard since
    /// construction (or the last snapshot restore — like the tracer,
    /// cost attribution is observability state and restarts at zero on
    /// restore rather than traveling in the snapshot).
    pub fn scan_shard_costs(&self) -> [u64; LOGICAL_SCAN_SHARDS] {
        self.scan_shard_cost
    }

    /// A page hash as the *scanner* observes it: the machine's fault plan
    /// may corrupt the value (a guest racing the checksum read). Memory
    /// itself is never altered — only the scanner's view.
    pub fn observed_hash(&mut self, frame: FrameId) -> u64 {
        let h = self.mem.hash_page(frame);
        self.scan_injector.corrupt_checksum(h)
    }

    /// Whether the scanner observes a transient bit flip on the page it is
    /// examining, making this round's content comparison unreliable.
    pub fn observed_scan_flip(&mut self) -> bool {
        self.scan_injector.scan_bitflip()
    }

    /// Records a scanner skip-and-retry (graceful degradation under
    /// resource failure). Call sites bump this exactly once per skipped
    /// page per round — `tests/accounting.rs` holds the identities.
    pub fn note_scan_retry(&mut self) {
        self.stats.scan_retries += 1;
        self.trace_instant("kernel", InstantKind::ScanRetry, 0);
    }

    /// Records an OOM condition an engine absorbed gracefully.
    pub fn note_oom(&mut self) {
        self.stats.oom_events += 1;
        self.trace_instant("kernel", InstantKind::Oom, 0);
    }

    /// Records a deferred-free-queue drain performed under memory pressure.
    pub fn note_deferred_drain(&mut self) {
        self.stats.deferred_drains += 1;
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The cost model.
    pub fn costs(&self) -> CostModel {
        self.cfg.costs
    }

    /// Current simulated time (ns).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Advances the clock by a jittered amount. Fault handlers use this to
    /// charge their work to the faulting thread. When tracing is on, the
    /// jittered cycles are also attributed to the open trace span.
    pub fn charge(&mut self, base_ns: u64) {
        let ns = self.jitter.apply(base_ns);
        self.clock.advance(ns);
        if self.obs.enabled() {
            self.obs.tracer_mut().on_cycles(ns);
        }
    }

    /// Advances the clock without jitter (idle time between operations).
    pub fn sleep(&mut self, ns: u64) {
        self.clock.advance(ns);
    }

    /// Counters. `injected_faults` is computed live from both injectors.
    pub fn stats(&self) -> MachineStats {
        let mut s = self.stats;
        s.injected_faults =
            self.buddy.injection_stats().total() + self.scan_injector.stats().total();
        s
    }

    /// Per-kind injection counters, combined across both injectors (the
    /// allocator's and the scanner's). Campaign coverage reports use this
    /// to show *which* fault kinds actually fired, not just how many.
    pub fn injection_breakdown(&self) -> InjectionStats {
        let a = self.buddy.injection_stats();
        let b = self.scan_injector.stats();
        InjectionStats {
            injected_allocs: a.injected_allocs + b.injected_allocs,
            injected_checksums: a.injected_checksums + b.injected_checksums,
            injected_bitflips: a.injected_bitflips + b.injected_bitflips,
        }
    }

    /// Physical memory (read-only).
    pub fn mem(&self) -> &PhysMemory {
        &self.mem
    }

    /// Physical memory (mutable) — for engines and tests.
    pub fn mem_mut(&mut self) -> &mut PhysMemory {
        &mut self.mem
    }

    /// The system buddy allocator (read-only).
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// The system buddy allocator.
    pub fn buddy_mut(&mut self) -> &mut BuddyAllocator {
        &mut self.buddy
    }

    /// The LLC (for attack primitives that inspect it).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// The LLC, mutably (experiment/test helper — e.g. flushing lines the
    /// guest could not flush itself).
    pub fn llc_mut(&mut self) -> &mut Llc {
        &mut self.llc
    }

    /// Splits the machine into the parts engines typically need together.
    pub fn mm_parts(&mut self) -> (&mut PhysMemory, &mut BuddyAllocator, &mut [Process]) {
        (&mut self.mem, &mut self.buddy, &mut self.processes)
    }

    // ------------------------------------------------------------------
    // Processes and mappings
    // ------------------------------------------------------------------

    /// Spawns a process; returns its pid, or [`MmError::OutOfFrames`] when
    /// no frame remains for its top-level page table.
    pub fn spawn(&mut self, name: &str) -> Result<Pid, MmError> {
        self.record(|| JournalEvent::Spawn {
            name: name.to_string(),
        });
        let space = AddressSpace::new(&mut self.mem, &mut self.buddy)?;
        self.processes.push(Process::new(name, space));
        Ok(Pid(self.processes.len() - 1))
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// A process by pid.
    ///
    /// # Panics
    ///
    /// Panics if the pid is stale.
    pub fn process(&self, pid: Pid) -> &Process {
        &self.processes[pid.0]
    }

    /// A process by pid, mutably.
    ///
    /// # Panics
    ///
    /// Panics if the pid is stale.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.processes[pid.0]
    }

    /// Adds a VMA to a process (`mmap`).
    pub fn mmap(&mut self, pid: Pid, vma: Vma) {
        self.record(|| JournalEvent::Mmap { pid, vma });
        self.processes[pid.0].space.add_vma(vma);
    }

    /// Registers memory for fusion (`madvise(MADV_MERGEABLE)`).
    pub fn madvise_mergeable(&mut self, pid: Pid, start: VirtAddr, pages: u64) -> usize {
        self.record(|| JournalEvent::Madvise { pid, start, pages });
        self.processes[pid.0].space.madvise_mergeable(start, pages)
    }

    /// A cheap fingerprint of everything the fusion candidate list is
    /// derived from: the process count plus every address space's layout
    /// generation. Engines cache their `mergeable_pages` enumeration and
    /// rebuild only when this changes (new process, `mmap`, or a
    /// successful `madvise(MADV_MERGEABLE)`).
    pub fn layout_epoch(&self) -> (usize, u64) {
        let gens = self
            .processes
            .iter()
            .map(|p| p.space.layout_generation())
            .sum();
        (self.processes.len(), gens)
    }

    /// Allocates a frame from the buddy allocator for the given use.
    /// Failure (genuine OOM or injected) is counted in
    /// [`MachineStats::oom_events`] and reported, never fatal.
    pub fn alloc_frame(&mut self, page_type: PageType) -> Result<FrameId, MmError> {
        match self.buddy.alloc() {
            Ok(f) => {
                self.mem.info_mut(f).on_alloc(page_type);
                Ok(f)
            }
            Err(e) => {
                self.stats.oom_events += 1;
                self.trace_instant("kernel", InstantKind::Oom, 0);
                Err(e)
            }
        }
    }

    /// The reserved top-of-memory region `(first frame, frame count)`, if
    /// configured. Fusion engines like WPF own it exclusively.
    pub fn reserved_region(&self) -> Option<(FrameId, u64)> {
        if self.cfg.reserved_top_frames == 0 {
            None
        } else {
            Some((
                FrameId(self.cfg.frames - self.cfg.reserved_top_frames),
                self.cfg.reserved_top_frames,
            ))
        }
    }

    /// Breaks a transparent huge page covering `va` into 512 base-page
    /// mappings over the same frames, converting the buddy record so the
    /// frames can later be freed individually, and flushing the TLB. Both
    /// KSM and VUsion do this before considering a THP's contents (§8.1).
    /// Reports [`MmError::BadPageTable`] if `va` is not covered by a huge
    /// mapping.
    pub fn break_thp(&mut self, pid: Pid, va: VirtAddr) -> Result<(), MmError> {
        let base = va.huge_base();
        let leaf = self.leaf(pid, base).ok_or(MmError::BadPageTable(base))?;
        if !leaf.huge {
            return Err(MmError::BadPageTable(base));
        }
        let head = leaf.pte.frame();
        {
            let (mem, buddy, procs) = self.mm_parts();
            procs[pid.0]
                .space
                .tables_mut()
                .break_huge(mem, buddy, base)?;
            procs[pid.0].tlb.flush();
        }
        self.trace_instant("mmu", InstantKind::TlbFlush, base.0);
        self.buddy.split_allocated(head, 9)
    }

    /// Allocates an order-9 (2 MiB) block and marks all 512 frames
    /// allocated with refcount 1. Returns the head frame, or `None` when
    /// memory is too fragmented.
    pub fn alloc_huge(&mut self, page_type: PageType) -> Option<FrameId> {
        let head = self.buddy.alloc_order(9).ok()?;
        for i in 0..HUGE_PAGE_FRAMES {
            self.mem.info_mut(FrameId(head.0 + i)).on_alloc(page_type);
        }
        Some(head)
    }

    /// Releases an order-9 block allocated with [`Self::alloc_huge`].
    /// Every frame must hold exactly one reference; a shared frame is
    /// reported (before any state changes) as [`MmError::DoubleFree`],
    /// since releasing it would strand its other owners.
    pub fn free_huge(&mut self, head: FrameId) -> Result<(), MmError> {
        for i in 0..HUGE_PAGE_FRAMES {
            let f = FrameId(head.0 + i);
            if self.mem.info(f).refcount != 1 {
                return Err(MmError::DoubleFree(f));
            }
        }
        for i in 0..HUGE_PAGE_FRAMES {
            let f = FrameId(head.0 + i);
            let mut info = self.mem.info_mut(f);
            info.put();
            info.on_free();
            drop(info);
            self.mem.zero_page(f);
        }
        self.buddy.free_order(head, 9)
    }

    /// Drops a reference to `frame`; frees it to the buddy allocator when
    /// the count reaches zero. Returns whether the frame was freed, or the
    /// buddy's misuse error (double free, foreign frame) with the
    /// reference *not* dropped, so a rejected put leaves state unchanged.
    pub fn put_frame(&mut self, frame: FrameId) -> Result<bool, MmError> {
        if self.mem.info(frame).refcount == 1 {
            self.buddy.free(frame)?;
            let mut info = self.mem.info_mut(frame);
            info.put();
            info.on_free();
            drop(info);
            self.mem.zero_page(frame);
            Ok(true)
        } else {
            self.mem.info_mut(frame).put();
            Ok(false)
        }
    }

    /// Overwrites the leaf PTE mapping `va` and shoots down the TLB entry.
    /// Reports [`MmError::BadPageTable`] if `va` has no leaf entry.
    pub fn set_leaf(&mut self, pid: Pid, va: VirtAddr, pte: Pte) -> Result<(), MmError> {
        let p = &mut self.processes[pid.0];
        p.space.tables_mut().set_leaf(&mut self.mem, va, pte)?;
        p.tlb.invalidate(va);
        self.trace_instant("mmu", InstantKind::TlbShootdown, va.0);
        Ok(())
    }

    /// Per-process TLB counters summed machine-wide:
    /// `(hits, misses, invalidations, full flushes)`.
    pub fn tlb_totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0);
        for p in &self.processes {
            let (h, m) = p.tlb.stats();
            let (inv, fl) = p.tlb.event_counts();
            t.0 += h;
            t.1 += m;
            t.2 += inv;
            t.3 += fl;
        }
        t
    }

    /// Reads the leaf PTE mapping `va`, if any (no timing).
    pub fn leaf(&self, pid: Pid, va: VirtAddr) -> Option<LeafInfo> {
        self.processes[pid.0].space.tables().leaf(&self.mem, va)
    }

    /// Quiet translation (no clock, no cache effects).
    pub fn translate_quiet(&self, pid: Pid, va: VirtAddr) -> Option<PhysAddr> {
        self.processes[pid.0].translate_quiet(&self.mem, va)
    }

    // ------------------------------------------------------------------
    // Timed memory hierarchy
    // ------------------------------------------------------------------

    fn dram_access(&mut self, pa: PhysAddr) {
        let outcome = self.rows.access(pa);
        if self.obs.surface_enabled() {
            let bank = self.rows.config().locate(pa).bank;
            let fused = self.frame_fused(pa.frame());
            let o = match outcome {
                RowBufferOutcome::Hit => DramOutcome::Hit,
                RowBufferOutcome::Empty => DramOutcome::Empty,
                RowBufferOutcome::Conflict => DramOutcome::Conflict,
            };
            self.obs.surface_mut().record_dram(fused, bank, o);
        }
        let cost = match outcome {
            RowBufferOutcome::Hit => self.cfg.costs.dram_row_hit,
            RowBufferOutcome::Empty => self.cfg.costs.dram_row_empty,
            RowBufferOutcome::Conflict => self.cfg.costs.dram_row_conflict,
        };
        self.charge(cost);
    }

    /// Touches the LLC for `pa` and, when the surface recorder is on,
    /// attributes the access and any capacity eviction to fused/other.
    fn llc_access_surfaced(&mut self, pa: PhysAddr) -> CacheOutcome {
        let (outcome, evicted) = self.llc.access_evicting(pa);
        if self.obs.surface_enabled() {
            let set = self.llc.set_index(pa) as u64;
            let fused = self.frame_fused(pa.frame());
            self.obs
                .surface_mut()
                .record_llc_access(fused, outcome == CacheOutcome::Hit, set);
            if let Some(line) = evicted {
                let victim = FrameId(line * self.llc.config().line_size / PAGE_SIZE);
                let victim_fused = self.frame_fused(victim);
                self.obs
                    .surface_mut()
                    .record_llc_eviction(victim_fused, set);
            }
        }
        outcome
    }

    /// A timed data access: through the LLC unless `uncached`.
    pub fn phys_access(&mut self, pa: PhysAddr, uncached: bool) {
        if uncached {
            self.dram_access(pa);
            return;
        }
        match self.llc_access_surfaced(pa) {
            CacheOutcome::Hit => self.charge(self.cfg.costs.llc_hit),
            CacheOutcome::Miss => self.dram_access(pa),
        }
    }

    /// A timed page walk: every level's entry read goes through the LLC.
    fn walk_timed(&mut self, pid: Pid, va: VirtAddr) -> Option<LeafInfo> {
        let walk = self.processes[pid.0].space.tables().walk(&self.mem, va);
        for step in walk.steps.clone() {
            self.phys_access(step, false);
        }
        walk.leaf
    }

    fn resolve_pa(leaf: &LeafInfo, va: VirtAddr) -> PhysAddr {
        if leaf.huge {
            PhysAddr(leaf.pte.frame().base().0 + va.0 % HUGE_PAGE_SIZE)
        } else {
            PhysAddr(leaf.pte.frame().base().0 + va.page_offset())
        }
    }

    /// Performs one timed access. On success the data access is charged and
    /// ACCESSED/DIRTY bits are updated; on failure a [`PageFault`] is
    /// returned (fault entry cost is *not* yet charged — the System driver
    /// charges it so every fault path pays it exactly once).
    pub fn try_access(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<PhysAddr, PageFault> {
        self.charge(self.cfg.costs.cpu_op);
        // TLB lookup. Trapped PTEs are never cached, so a hit is conclusive
        // unless the access needs write permission the entry lacks.
        let cached = self.processes[pid.0].tlb.lookup(va);
        let (leaf, filled_from_tlb) = match cached {
            Some(e) => (
                Some(LeafInfo {
                    pte: e.pte,
                    entry_addr: PhysAddr(0),
                    huge: e.huge,
                }),
                true,
            ),
            None => (self.walk_timed(pid, va), false),
        };
        let Some(leaf) = leaf else {
            self.stats.faults_not_mapped += 1;
            return Err(PageFault {
                pid,
                va,
                kind,
                reason: FaultReason::NotMapped,
            });
        };
        // Hardware checks reserved bits during the walk, before permissions.
        if leaf.pte.is_trapped() {
            self.stats.faults_trapped += 1;
            return Err(PageFault {
                pid,
                va,
                kind,
                reason: FaultReason::Trapped,
            });
        }
        if !leaf.pte.is_present() {
            self.stats.faults_not_mapped += 1;
            return Err(PageFault {
                pid,
                va,
                kind,
                reason: FaultReason::NotMapped,
            });
        }
        if kind == AccessKind::Write && !leaf.pte.has(PteFlags::WRITABLE) {
            self.stats.faults_write_protected += 1;
            return Err(PageFault {
                pid,
                va,
                kind,
                reason: FaultReason::WriteProtected,
            });
        }
        // Success: update A/D bits (hardware does this during the walk; the
        // TLB-hit case skips the PTE write like real TLBs skip A updates).
        if !filled_from_tlb {
            let mut pte = leaf.pte.set(PteFlags::ACCESSED);
            if kind == AccessKind::Write {
                pte = pte.set(PteFlags::DIRTY);
            }
            let base = if leaf.huge {
                va.huge_base()
            } else {
                va.page_base()
            };
            let p = &mut self.processes[pid.0];
            // The walk above just resolved this leaf; the entry exists.
            let _ = p.space.tables_mut().set_leaf(&mut self.mem, base, pte);
            let evicted = p.tlb.fill(
                va,
                TlbEntry {
                    pte,
                    huge: leaf.huge,
                },
            );
            if self.obs.surface_enabled() {
                let fused = self.frame_fused(pte.frame());
                self.obs.surface_mut().record_tlb_fill(fused);
                if let Some(e) = evicted {
                    let victim_fused = self.frame_fused(e.pte.frame());
                    self.obs.surface_mut().record_tlb_eviction(victim_fused);
                }
            }
        } else if kind == AccessKind::Write {
            // Set the dirty bit through a quiet walk (first write after a
            // read fill).
            let base = if leaf.huge {
                va.huge_base()
            } else {
                va.page_base()
            };
            if let Some(l) = self.processes[pid.0].space.tables().leaf(&self.mem, base) {
                let p = &mut self.processes[pid.0];
                // The quiet walk just resolved this leaf; the entry exists.
                let _ = p.space.tables_mut().set_leaf(
                    &mut self.mem,
                    base,
                    l.pte.set(PteFlags::DIRTY | PteFlags::ACCESSED),
                );
            }
        }
        let pa = Self::resolve_pa(&leaf, va);
        self.phys_access(pa, leaf.pte.has(PteFlags::NO_CACHE));
        Ok(pa)
    }

    /// Timed read of one byte.
    pub fn read(&mut self, pid: Pid, va: VirtAddr) -> Result<u8, PageFault> {
        let pa = self.try_access(pid, va, AccessKind::Read)?;
        self.stats.reads += 1;
        Ok(self.mem.read_byte(pa))
    }

    /// Timed write of one byte.
    pub fn write(&mut self, pid: Pid, va: VirtAddr, value: u8) -> Result<(), PageFault> {
        let pa = self.try_access(pid, va, AccessKind::Write)?;
        self.stats.writes += 1;
        self.mem.write_byte(pa, value);
        Ok(())
    }

    /// The x86 `prefetch` instruction: never faults. Loads the line into
    /// the LLC iff a translation exists **and caching is not disabled** —
    /// setting PCD on (fake-)merged pages is how VUsion defeats the
    /// prefetch side channel (§7.1/§9.1).
    pub fn prefetch(&mut self, pid: Pid, va: VirtAddr) {
        self.stats.prefetches += 1;
        self.charge(self.cfg.costs.cpu_op);
        let leaf = match self.processes[pid.0].tlb.lookup(va) {
            Some(e) => Some(LeafInfo {
                pte: e.pte,
                entry_addr: PhysAddr(0),
                huge: e.huge,
            }),
            None => self.walk_timed(pid, va),
        };
        if let Some(leaf) = leaf {
            if leaf.pte.is_present() && !leaf.pte.has(PteFlags::NO_CACHE) {
                // NOTE: the reserved bit does *not* stop the prefetch — only
                // PCD does. An S⊕F implementation without PCD stays
                // vulnerable, which test suites verify.
                let pa = Self::resolve_pa(&leaf, va);
                self.llc_access_surfaced(pa);
            }
        }
    }

    /// `clflush` of the line containing `va` (attacker flushes its own
    /// accessible memory).
    pub fn clflush(&mut self, pid: Pid, va: VirtAddr) {
        self.charge(self.cfg.costs.cpu_op * 4);
        // `clflush` needs a valid, untrapped translation; on a reserved-bit
        // PTE it would fault like any access, so it flushes nothing here.
        if let Some(leaf) = self.leaf(pid, va) {
            if leaf.pte.is_trapped() {
                return;
            }
            let pa = Self::resolve_pa(&leaf, va);
            self.llc.flush(pa);
            self.trace_instant("cache", InstantKind::LlcFlush, pa.0);
        }
    }

    // ------------------------------------------------------------------
    // Default (non-fusion) fault handling
    // ------------------------------------------------------------------

    /// Handles demand paging and file CoW. Returns `false` for faults the
    /// kernel cannot resolve (e.g. reserved-bit traps, which only fusion
    /// policies create, or accesses outside any VMA).
    pub fn default_fault(&mut self, fault: &PageFault) -> bool {
        match fault.reason {
            FaultReason::NotMapped => {
                self.trace_begin("kernel", SpanKind::DemandPaging);
                let handled = self.demand_page(fault);
                self.trace_end(SpanKind::DemandPaging);
                handled
            }
            FaultReason::WriteProtected => {
                self.trace_begin("kernel", SpanKind::CowCopy);
                let handled = self.cow_write(fault);
                self.trace_end(SpanKind::CowCopy);
                handled
            }
            FaultReason::Trapped => false,
        }
    }

    fn demand_page(&mut self, fault: &PageFault) -> bool {
        let Some(vma) = self.processes[fault.pid.0]
            .space
            .find_vma(fault.va)
            .copied()
        else {
            return false;
        };
        match vma.backing {
            VmaBacking::Anon => {
                if self.cfg.thp && self.try_demand_huge(fault, &vma) {
                    return true;
                }
                // OOM (genuine or injected) leaves the fault unresolved:
                // counted, surfaced to the caller, never fatal here.
                let Ok(frame) = self.alloc_frame(PageType::Anon) else {
                    return false;
                };
                self.charge(
                    self.cfg.costs.zero_page
                        + self.cfg.costs.pte_update
                        + self.cfg.costs.buddy_interaction,
                );
                let mut flags = PteFlags::PRESENT | PteFlags::USER | PteFlags::ACCESSED;
                if vma.prot.write {
                    flags |= PteFlags::WRITABLE;
                }
                let mapped = {
                    let (mem, buddy, procs) = self.mm_parts();
                    procs[fault.pid.0].space.tables_mut().map_page(
                        mem,
                        buddy,
                        fault.va.page_base(),
                        frame,
                        flags,
                    )
                };
                if mapped.is_err() {
                    // A table frame could not be allocated mid-map: give the
                    // data frame back and leave the fault unresolved.
                    self.stats.oom_events += 1;
                    self.trace_instant("kernel", InstantKind::Oom, 0);
                    let _ = self.put_frame(frame);
                    return false;
                }
                self.stats.demand_zero += 1;
                true
            }
            VmaBacking::File {
                file_id,
                offset_pages,
            } => {
                let page_in_vma = (fault.va.0 - vma.start.0) / PAGE_SIZE;
                let file_page = offset_pages + page_in_vma;
                self.charge(
                    self.cfg.costs.copy_page
                        + self.cfg.costs.pte_update
                        + self.cfg.costs.buddy_interaction,
                );
                let mapped = {
                    let (mem, buddy, procs) = self.mm_parts();
                    let loaded = procs[fault.pid.0].page_cache_load(mem, file_id, file_page, |m| {
                        let f = buddy.alloc()?;
                        m.info_mut(f).on_alloc(PageType::PageCache);
                        Ok(f)
                    });
                    loaded.map(|frame| {
                        // The mapping takes its own reference on top of the
                        // cache's.
                        mem.info_mut(frame).get();
                        // File pages map read-only; private writes CoW.
                        let flags = PteFlags::PRESENT | PteFlags::USER | PteFlags::ACCESSED;
                        let r = procs[fault.pid.0].space.tables_mut().map_page(
                            mem,
                            buddy,
                            fault.va.page_base(),
                            frame,
                            flags,
                        );
                        if r.is_err() {
                            // Undo the mapping's reference; the page stays
                            // cached for a later retry.
                            mem.info_mut(frame).put();
                        }
                        r
                    })
                };
                match mapped {
                    Ok(Ok(())) => {
                        self.stats.demand_file += 1;
                        true
                    }
                    Ok(Err(_)) | Err(_) => {
                        self.stats.oom_events += 1;
                        self.trace_instant("kernel", InstantKind::Oom, 0);
                        false
                    }
                }
            }
        }
    }

    fn try_demand_huge(&mut self, fault: &PageFault, vma: &Vma) -> bool {
        if !vma.thp_eligible {
            return false; // MADV_NOHUGEPAGE.
        }
        let base = fault.va.huge_base();
        // The whole 2 MiB range must lie inside the VMA and the PD slot
        // must be empty.
        if base.0 < vma.start.0 || base.0 + HUGE_PAGE_SIZE > vma.end().0 {
            return false;
        }
        if !self.processes[fault.pid.0]
            .space
            .tables()
            .huge_slot_free(&self.mem, base)
        {
            return false;
        }
        let Some(frame) = self.alloc_huge(PageType::Anon) else {
            return false; // Fragmented: fall back to 4 KiB.
        };
        // A 2 MiB zero-fill costs 512 page zeroes; hardware does it faster,
        // charge half.
        self.charge(
            self.cfg.costs.zero_page * HUGE_PAGE_FRAMES / 2
                + self.cfg.costs.pte_update
                + self.cfg.costs.buddy_interaction,
        );
        let mut flags = PteFlags::PRESENT | PteFlags::USER | PteFlags::ACCESSED;
        if vma.prot.write {
            flags |= PteFlags::WRITABLE;
        }
        let mapped = {
            let (mem, buddy, procs) = self.mm_parts();
            procs[fault.pid.0]
                .space
                .tables_mut()
                .map_huge(mem, buddy, base, frame, flags)
        };
        if mapped.is_err() {
            // A table frame could not be allocated: release the huge block
            // and fall back to the 4 KiB path.
            self.stats.oom_events += 1;
            self.trace_instant("kernel", InstantKind::Oom, 0);
            let _ = self.free_huge(frame);
            return false;
        }
        self.stats.demand_huge += 1;
        true
    }

    fn cow_write(&mut self, fault: &PageFault) -> bool {
        let Some(vma) = self.processes[fault.pid.0]
            .space
            .find_vma(fault.va)
            .copied()
        else {
            return false;
        };
        if !vma.prot.write {
            return false; // A genuine protection violation.
        }
        let Some(leaf) = self.leaf(fault.pid, fault.va) else {
            return false;
        };
        if leaf.huge {
            return false; // CoW on huge mappings is handled by policies.
        }
        let old = leaf.pte.frame();
        // OOM on the CoW copy is a countable event: the write simply stays
        // unresolved (the guest would be OOM-killed; the simulation reports
        // it through SystemStats instead).
        let Ok(new) = self.alloc_frame(PageType::Anon) else {
            return false;
        };
        self.mem.copy_page(old, new);
        self.charge(
            self.cfg.costs.copy_page + self.cfg.costs.pte_update + self.cfg.costs.buddy_interaction,
        );
        let pte = Pte::new(
            new,
            PteFlags::PRESENT
                | PteFlags::USER
                | PteFlags::WRITABLE
                | PteFlags::ACCESSED
                | PteFlags::DIRTY,
        );
        if self.set_leaf(fault.pid, fault.va.page_base(), pte).is_err() {
            let _ = self.put_frame(new);
            return false;
        }
        // The old frame may be shared (page cache); a rejected free would
        // mean the refcount was already wrong, which put_frame reports.
        let _ = self.put_frame(old);
        self.stats.cow_copies += 1;
        true
    }

    // ------------------------------------------------------------------
    // Rowhammer
    // ------------------------------------------------------------------

    /// Hammers the DRAM rows containing two of the attacker's own virtual
    /// addresses. Applies any induced flips to physical memory and returns
    /// them. Charges the (substantial) time hammering takes.
    pub fn hammer(
        &mut self,
        pid: Pid,
        va1: VirtAddr,
        va2: VirtAddr,
        iterations: u64,
    ) -> Vec<FlipEvent> {
        self.record(|| JournalEvent::Hammer {
            pid,
            va1,
            va2,
            iterations,
        });
        let Some(p1) = self.translate_quiet(pid, va1) else {
            return Vec::new();
        };
        let Some(p2) = self.translate_quiet(pid, va2) else {
            return Vec::new();
        };
        // Alternating activations are row conflicts by construction.
        self.sleep(iterations * 2 * self.cfg.costs.dram_row_conflict);
        let outcome = self.hammer.hammer(p1, p2, iterations);
        let mut applied = Vec::new();
        for flip in outcome.flips {
            if flip.addr.frame().0 < self.cfg.frames {
                self.mem.flip_bit(flip.addr, flip.bit);
                self.stats.bit_flips += 1;
                self.trace_instant("dram", InstantKind::BitFlip, flip.addr.0);
                applied.push(flip);
            }
        }
        applied
    }

    /// The Rowhammer fault model (read-only; lets attacks reason about
    /// geometry the way real attackers learn it from datasheets).
    pub fn rowhammer_model(&self) -> &RowhammerModel {
        &self.hammer
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Allocated frames (the memory-consumption metric of Figures 10–12).
    pub fn allocated_frames(&self) -> usize {
        self.mem.allocated_frames()
    }

    /// Audits frame accounting against the page tables and returns every
    /// violation found (empty = healthy). Two invariants must hold no
    /// matter what sequence of merges, unmerges, and injected failures the
    /// machine went through:
    ///
    /// 1. every present leaf PTE points at an in-bounds, *allocated* frame
    ///    with a non-zero refcount (no mapped-after-free), and
    /// 2. no frame is referenced by more leaf mappings than its refcount
    ///    (engines may hold extra references — tree nodes, deferred-free
    ///    queues — so `mappings ≤ refcount` is the sound direction; more
    ///    mappings than references means a refcount underflow), and
    /// 3. every *shared* frame (refcount > 1) is mapped read-only or
    ///    reserved-bit-trapped in every leaf PTE that references it — a
    ///    writable mapping of a shared frame would let one process corrupt
    ///    another's memory, the exact bug class fusion engines must never
    ///    introduce (§2, §7.1).
    ///
    /// Chaos tests call this after every fault-injected churn round.
    pub fn audit_frames(&self) -> Vec<String> {
        let mut mapped: BTreeMap<FrameId, u32> = BTreeMap::new();
        let mut violations = Vec::new();
        for (i, p) in self.processes.iter().enumerate() {
            for vma in p.space.vmas() {
                let mut pg = 0;
                while pg < vma.pages {
                    let va = VirtAddr(vma.start.0 + pg * PAGE_SIZE);
                    let Some(leaf) = p.space.tables().leaf(&self.mem, va) else {
                        pg += 1;
                        continue;
                    };
                    if !leaf.pte.is_present() {
                        pg += 1;
                        continue;
                    }
                    let frame = leaf.pte.frame();
                    // A huge mapping references one head frame; step over
                    // the whole region so it is counted once.
                    let step = if leaf.huge {
                        HUGE_PAGE_SIZE / PAGE_SIZE
                    } else {
                        1
                    };
                    if frame.0 >= self.cfg.frames {
                        violations.push(format!(
                            "p{i} {va:?}: leaf points outside physical memory ({frame:?})"
                        ));
                        pg += step;
                        continue;
                    }
                    let info = self.mem.info(frame);
                    if info.state != FrameState::Allocated {
                        violations.push(format!(
                            "p{i} {va:?}: mapped frame {frame:?} is {:?} (use after free)",
                            info.state
                        ));
                    }
                    if info.refcount == 0 {
                        violations.push(format!(
                            "p{i} {va:?}: mapped frame {frame:?} has refcount 0"
                        ));
                    }
                    if info.refcount > 1
                        && leaf.pte.has(PteFlags::WRITABLE)
                        && !leaf.pte.is_trapped()
                    {
                        violations.push(format!(
                            "p{i} {va:?}: shared frame {frame:?} (refcount {}) mapped writable",
                            info.refcount
                        ));
                    }
                    *mapped.entry(frame).or_insert(0) += 1;
                    pg += step;
                }
            }
        }
        for (frame, count) in mapped {
            let refcount = self.mem.info(frame).refcount;
            if count > refcount {
                violations.push(format!(
                    "{frame:?}: {count} leaf mappings but refcount {refcount} (underflow)"
                ));
            }
        }
        violations
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore
    // ------------------------------------------------------------------

    /// Serializes the complete machine state: physical frames and their
    /// metadata, the buddy allocator, caches, DRAM row buffers, clock,
    /// every RNG stream, injectors, and all processes (address spaces,
    /// TLBs, page caches). The journal is *not* included — a snapshot is
    /// state at a point in time; the journal is what happened after it,
    /// and the two travel separately in failure bundles.
    pub fn save_state(&self, w: &mut Writer) {
        w.u64(self.cfg.frames);
        w.u64(self.cfg.seed);
        self.mem.save(w);
        self.buddy.save(w);
        self.llc.save(w);
        self.rows.save(w);
        w.u64(self.clock.now_ns());
        self.jitter.save(w);
        for s in self.policy_rng.state() {
            w.u64(s);
        }
        self.scan_injector.save(w);
        self.crash_injector.save(w);
        w.usize(self.processes.len());
        for p in &self.processes {
            w.str(&p.name);
            p.space.save(w);
            p.tlb.save(w);
            let mut entries: Vec<(u64, u64, u64)> = p
                .page_cache
                .iter()
                .map(|(&(file, page), &frame)| (file, page, frame.0))
                .collect();
            entries.sort_unstable();
            w.usize(entries.len());
            for (file, page, frame) in entries {
                w.u64(file);
                w.u64(page);
                w.u64(frame);
            }
        }
        let s = self.stats;
        for v in [
            s.reads,
            s.writes,
            s.prefetches,
            s.faults_not_mapped,
            s.faults_trapped,
            s.faults_write_protected,
            s.demand_zero,
            s.demand_huge,
            s.demand_file,
            s.cow_copies,
            s.bit_flips,
            s.oom_events,
            s.injected_faults,
            s.scan_retries,
            s.deferred_drains,
        ] {
            w.u64(v);
        }
        // `scan_shard_cost` is deliberately NOT serialized: cost
        // attribution depends on hash-memo warmth (a pure-function cache
        // that does not travel through snapshots), so like the tracer it
        // is observability-local state, reset on restore.
    }

    /// Restores state saved by [`Self::save_state`] into a machine built
    /// with the *same configuration* (geometry and seed are verified; the
    /// Rowhammer model, being a pure function of config, is not
    /// serialized). The journal is left untouched.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        if r.u64()? != self.cfg.frames || r.u64()? != self.cfg.seed {
            return Err(SnapshotError::Corrupt("machine config mismatch"));
        }
        self.mem.load(r)?;
        self.buddy.load(r)?;
        self.llc.load(r)?;
        self.rows.load(r)?;
        self.clock = SimClock::new();
        self.clock.advance(r.u64()?);
        self.jitter = Jitter::load(r)?;
        let mut s = [0u64; 4];
        for x in &mut s {
            *x = r.u64()?;
        }
        self.policy_rng = StdRng::from_state(s);
        self.scan_injector.load(r)?;
        self.crash_injector.load(r)?;
        let n = r.usize()?;
        self.processes.clear();
        for _ in 0..n {
            let name = r.str()?;
            let space = AddressSpace::load(r)?;
            let mut tlb = Tlb::skylake();
            tlb.load(r)?;
            let mut page_cache = BTreeMap::new();
            let entries = r.usize()?;
            for _ in 0..entries {
                let file = r.u64()?;
                let page = r.u64()?;
                let frame = FrameId(r.u64()?);
                page_cache.insert((file, page), frame);
            }
            self.processes.push(Process {
                name,
                space,
                tlb,
                page_cache,
            });
        }
        self.stats = MachineStats {
            reads: r.u64()?,
            writes: r.u64()?,
            prefetches: r.u64()?,
            faults_not_mapped: r.u64()?,
            faults_trapped: r.u64()?,
            faults_write_protected: r.u64()?,
            demand_zero: r.u64()?,
            demand_huge: r.u64()?,
            demand_file: r.u64()?,
            cow_copies: r.u64()?,
            bit_flips: r.u64()?,
            oom_events: r.u64()?,
            injected_faults: r.u64()?,
            scan_retries: r.u64()?,
            deferred_drains: r.u64()?,
        };
        self.scan_shard_cost = [0; LOGICAL_SCAN_SHARDS];
        Ok(())
    }

    /// Counts 2 MiB mappings currently installed for a process's anonymous
    /// VMAs (the Figure 9 metric).
    pub fn count_huge_mappings(&self, pid: Pid) -> usize {
        let p = &self.processes[pid.0];
        let mut n = 0;
        for vma in p.space.vmas() {
            let mut va = VirtAddr(vma.start.0).huge_base();
            if va.0 < vma.start.0 {
                va = VirtAddr(va.0 + HUGE_PAGE_SIZE);
            }
            while va.0 + HUGE_PAGE_SIZE <= vma.end().0 {
                if let Some(leaf) = p.space.tables().leaf(&self.mem, va) {
                    if leaf.huge {
                        n += 1;
                    }
                }
                va = VirtAddr(va.0 + HUGE_PAGE_SIZE);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_mmu::Protection;

    fn machine() -> Machine {
        Machine::new(MachineConfig::test_small())
    }

    fn anon_vma(m: &mut Machine, pid: Pid, start: u64, pages: u64) {
        m.mmap(pid, Vma::anon(VirtAddr(start), pages, Protection::rw()));
    }

    #[test]
    fn demand_zero_then_read_write() {
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        anon_vma(&mut m, pid, 0x10000, 4);
        let va = VirtAddr(0x10000);
        // First access faults NotMapped.
        let fault = m.read(pid, va).expect_err("must fault");
        assert_eq!(fault.reason, FaultReason::NotMapped);
        assert!(m.default_fault(&fault), "demand paging handles it");
        assert_eq!(m.read(pid, va).expect("mapped now"), 0);
        m.write(pid, va, 0xAA).expect("writable");
        assert_eq!(m.read(pid, va).expect("read back"), 0xAA);
        assert_eq!(m.stats().demand_zero, 1);
    }

    #[test]
    fn access_outside_vma_unhandled() {
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        let fault = m.read(pid, VirtAddr(0xdead_0000)).expect_err("must fault");
        assert!(!m.default_fault(&fault), "no VMA covers it");
    }

    #[test]
    fn file_pages_shared_within_process_and_cow_on_write() {
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        m.mmap(
            pid,
            Vma::file(VirtAddr(0x2000_0000), 4, Protection::rw(), 9, 0),
        );
        let va = VirtAddr(0x2000_0000);
        let fault = m.read(pid, va).expect_err("fault");
        assert!(m.default_fault(&fault));
        let frame_before = m.leaf(pid, va).expect("leaf").pte.frame();
        assert_eq!(m.mem().info(frame_before).page_type, PageType::PageCache);
        // Write triggers CoW to a private anon frame; cache keeps the original.
        let wf = m.write(pid, va, 1).expect_err("read-only mapping");
        assert_eq!(wf.reason, FaultReason::WriteProtected);
        assert!(m.default_fault(&wf));
        m.write(pid, va, 1).expect("now writable");
        let frame_after = m.leaf(pid, va).expect("leaf").pte.frame();
        assert_ne!(frame_before, frame_after);
        assert_eq!(m.mem().info(frame_after).page_type, PageType::Anon);
        assert_eq!(m.stats().cow_copies, 1);
        // The cache still holds the pristine page.
        assert_eq!(m.mem().info(frame_before).refcount, 1);
    }

    #[test]
    fn trapped_pte_faults_on_read_and_write() {
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        anon_vma(&mut m, pid, 0x10000, 1);
        let va = VirtAddr(0x10000);
        let f = m.read(pid, va).expect_err("fault");
        m.default_fault(&f);
        // Trap the page the way S⊕F does.
        let leaf = m.leaf(pid, va).expect("leaf");
        m.set_leaf(
            pid,
            va,
            leaf.pte.set(PteFlags::RESERVED | PteFlags::NO_CACHE),
        )
        .expect("set leaf");
        let rf = m.read(pid, va).expect_err("trapped");
        assert_eq!(rf.reason, FaultReason::Trapped);
        let wf = m.write(pid, va, 1).expect_err("trapped");
        assert_eq!(wf.reason, FaultReason::Trapped);
        assert!(
            !m.default_fault(&rf),
            "the kernel cannot resolve policy traps"
        );
    }

    #[test]
    fn trap_faults_even_after_tlb_fill() {
        // Setting the reserved bit must take effect immediately: set_leaf
        // shoots down the TLB entry.
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        anon_vma(&mut m, pid, 0x10000, 1);
        let va = VirtAddr(0x10000);
        let f = m.read(pid, va).expect_err("fault");
        m.default_fault(&f);
        m.read(pid, va).expect("fills TLB");
        let leaf = m.leaf(pid, va).expect("leaf");
        m.set_leaf(pid, va, leaf.pte.set(PteFlags::RESERVED))
            .expect("set leaf");
        assert!(
            m.read(pid, va).is_err(),
            "stale TLB entry would be a security hole"
        );
    }

    #[test]
    fn timing_separates_fault_from_plain_access() {
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        anon_vma(&mut m, pid, 0x10000, 2);
        // Fault-in page 0.
        let f = m.read(pid, VirtAddr(0x10000)).expect_err("fault");
        m.default_fault(&f);
        // Warm access.
        let t0 = m.now_ns();
        m.read(pid, VirtAddr(0x10000)).expect("warm");
        let warm = m.now_ns() - t0;
        // Faulting access (to page 1), including handler work.
        let t1 = m.now_ns();
        let f1 = m.read(pid, VirtAddr(0x11000)).expect_err("fault");
        m.charge(m.costs().fault_base);
        m.default_fault(&f1);
        m.read(pid, VirtAddr(0x11000)).expect("after handling");
        let faulted = m.now_ns() - t1;
        assert!(
            faulted > warm * 5,
            "fault path ({faulted} ns) must dwarf warm access ({warm} ns)"
        );
    }

    #[test]
    fn thp_demand_fault_maps_huge() {
        let mut m = Machine::new(MachineConfig::test_small().with_thp());
        let pid = m.spawn("t").expect("spawn");
        // A VMA covering two full huge ranges, 2 MiB aligned.
        m.mmap(
            pid,
            Vma::anon(VirtAddr(HUGE_PAGE_SIZE), 1024, Protection::rw()),
        );
        let va = VirtAddr(HUGE_PAGE_SIZE + 0x3000);
        let f = m.read(pid, va).expect_err("fault");
        assert!(m.default_fault(&f));
        let leaf = m.leaf(pid, va).expect("leaf");
        assert!(leaf.huge, "THP machine installs a 2 MiB mapping");
        assert_eq!(m.stats().demand_huge, 1);
        assert_eq!(m.count_huge_mappings(pid), 1);
        // The whole range is readable without further faults.
        m.read(pid, VirtAddr(HUGE_PAGE_SIZE)).expect("mapped");
        m.read(pid, VirtAddr(2 * HUGE_PAGE_SIZE - 1))
            .expect("mapped");
    }

    #[test]
    fn prefetch_fills_cache_unless_pcd() {
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        anon_vma(&mut m, pid, 0x10000, 1);
        let va = VirtAddr(0x10000);
        let f = m.read(pid, va).expect_err("fault");
        m.default_fault(&f);
        let pa = m.translate_quiet(pid, va).expect("mapped");
        // Flush, prefetch: line comes back.
        m.clflush(pid, va);
        assert!(!m.llc().contains(pa));
        m.prefetch(pid, va);
        assert!(m.llc().contains(pa), "prefetch loads cacheable lines");
        // With PCD set (and even with RESERVED), prefetch must not load.
        // Flush first: clflush itself refuses trapped PTEs (it would fault).
        m.clflush(pid, va);
        let leaf = m.leaf(pid, va).expect("leaf");
        m.set_leaf(
            pid,
            va,
            leaf.pte.set(PteFlags::RESERVED | PteFlags::NO_CACHE),
        )
        .expect("set leaf");
        m.prefetch(pid, va);
        assert!(!m.llc().contains(pa), "PCD stops the prefetch side channel");
    }

    #[test]
    fn prefetch_on_trapped_cacheable_page_leaks() {
        // The reason VUsion must set PCD: a reserved-bit trap alone does
        // not stop prefetch.
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        anon_vma(&mut m, pid, 0x10000, 1);
        let va = VirtAddr(0x10000);
        let f = m.read(pid, va).expect_err("fault");
        m.default_fault(&f);
        let pa = m.translate_quiet(pid, va).expect("mapped");
        let leaf = m.leaf(pid, va).expect("leaf");
        m.set_leaf(pid, va, leaf.pte.set(PteFlags::RESERVED))
            .expect("set leaf"); // No PCD!
        m.clflush(pid, va);
        m.prefetch(pid, va);
        assert!(
            m.llc().contains(pa),
            "without PCD the prefetch side channel remains"
        );
    }

    #[test]
    fn hammer_applies_reproducible_flips() {
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        anon_vma(&mut m, pid, 0x10000, 64);
        // Map the first 64 pages.
        for i in 0..64u64 {
            let va = VirtAddr(0x10000 + i * PAGE_SIZE);
            let f = m.read(pid, va).expect_err("fault");
            m.default_fault(&f);
        }
        // Hammer around every page until a flip lands somewhere.
        let mut total = 0;
        for i in 1..63u64 {
            let a = VirtAddr(0x10000);
            let b = VirtAddr(0x10000 + i * PAGE_SIZE);
            total += m.hammer(pid, a, b, 2_000_000).len();
        }
        assert_eq!(m.stats().bit_flips as usize, total);
    }

    #[test]
    fn put_frame_frees_at_zero() {
        let mut m = machine();
        let f = m.alloc_frame(PageType::Anon).expect("frame");
        m.mem_mut().info_mut(f).get();
        assert!(!m.put_frame(f).expect("put"), "still referenced");
        assert!(m.put_frame(f).expect("put"), "last reference frees");
    }

    #[test]
    fn tlb_hit_skips_walk_cost() {
        let mut m = machine();
        let pid = m.spawn("t").expect("spawn");
        anon_vma(&mut m, pid, 0x10000, 1);
        let va = VirtAddr(0x10000);
        let f = m.read(pid, va).expect_err("fault");
        m.default_fault(&f);
        m.read(pid, va).expect("fill TLB and caches");
        m.read(pid, va).expect("warm");
        let t0 = m.now_ns();
        m.read(pid, va).expect("hot");
        let hot = m.now_ns() - t0;
        // A hot access is one cpu op + one LLC hit, well under 40 ns.
        assert!(hot < 40, "hot TLB+LLC access took {hot} ns");
    }
}
