//! The fusion-policy interface between the machine and the engines.
//!
//! The three engines of `vusion-core` (KSM, WPF, VUsion) implement this
//! trait. The machine raises page faults; faults on pages a policy owns
//! (write-protected merged pages, reserved-bit-trapped pages) are resolved
//! by the policy, everything else falls through to the kernel's default
//! demand-paging/CoW handler.

use vusion_mem::VirtAddr;

use crate::machine::{Machine, PageFault, Pid};

/// Outcome counters of one scanner wakeup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Pages examined.
    pub pages_scanned: u64,
    /// Pages merged with an existing copy (real merges).
    pub pages_merged: u64,
    /// Pages fake-merged (VUsion only).
    pub pages_fake_merged: u64,
    /// Pages unmerged (by the scanner, not by faults).
    pub pages_unmerged: u64,
    /// Pages skipped because they were in the working set.
    pub pages_skipped_active: u64,
    /// Pages skipped because their frame's write generation (and mapping)
    /// was unchanged since the last visit — the dirty-driven pass list.
    pub pages_skipped_clean: u64,
    /// Huge pages broken up to consider their contents for fusion.
    pub huge_pages_broken: u64,
    /// Scan-budget units this wakeup consumed (one per page visit). When
    /// the pressure governor grants a budget, `granted - budget_used` is
    /// the share a suspended cursor carries to the next wakeup.
    pub budget_used: u64,
}

impl ScanReport {
    /// Accumulates another report.
    pub fn absorb(&mut self, other: &ScanReport) {
        self.pages_scanned += other.pages_scanned;
        self.pages_merged += other.pages_merged;
        self.pages_fake_merged += other.pages_fake_merged;
        self.pages_unmerged += other.pages_unmerged;
        self.pages_skipped_active += other.pages_skipped_active;
        self.pages_skipped_clean += other.pages_skipped_clean;
        self.huge_pages_broken += other.huge_pages_broken;
        self.budget_used += other.budget_used;
    }
}

/// A page-fusion engine, driven by the [`crate::System`].
pub trait FusionPolicy {
    /// Engine name for reports ("ksm", "wpf", "vusion", "none").
    fn name(&self) -> &'static str;

    /// One scanner wakeup (KSM: scan N pages; WPF: possibly a full pass).
    /// Runs on its own core: must not charge the workload clock.
    fn scan(&mut self, m: &mut Machine) -> ScanReport;

    /// Attempts to resolve a fault on a page this policy owns. Returns
    /// `false` if the page is not under fusion management. Runs on the
    /// faulting thread: must charge its work via [`Machine::charge`].
    fn handle_fault(&mut self, m: &mut Machine, fault: &PageFault) -> bool;

    /// `khugepaged` asks to collapse the 2 MiB range at `huge_base`. The
    /// policy must release any of its pages in the range (VUsion
    /// fake-unmerges them, §8.2) or veto the collapse (KSM pages block it,
    /// as in Linux). Returns whether the collapse may proceed.
    fn prepare_collapse(&mut self, m: &mut Machine, pid: Pid, huge_base: VirtAddr) -> bool {
        let _ = (m, pid, huge_base);
        true
    }

    /// Frames currently saved by fusion (for the memory-consumption plots).
    fn pages_saved(&self) -> u64 {
        0
    }

    /// Scanner wakeup period. Default matches KSM's `T = 20 ms`.
    fn scan_period_ns(&self) -> u64 {
        20_000_000
    }

    /// Caps the page-visit budget of subsequent [`Self::scan`] wakeups
    /// (`None` lifts the cap). Granted by the pressure governor
    /// immediately before every wakeup, so it is never serialized: a
    /// restored system re-derives the grant from the restored governor.
    /// Engines honoring a budget must report consumption via
    /// [`ScanReport::budget_used`] and park their cursor mid-pass when
    /// the budget runs out. Stateless policies ignore it.
    fn set_scan_budget(&mut self, budget: Option<u64>) {
        let _ = budget;
    }

    /// Reclaim-ladder rung 1: release everything parked in deferred-free
    /// queues back to the allocator now. Returns the number of frames (or
    /// queue entries) released.
    fn pressure_drain(&mut self, m: &mut Machine) -> u64 {
        let _ = m;
        0
    }

    /// Reclaim-ladder rung 2: drop transient caches (candidate lists,
    /// checksum memos, unstable trees, suspended pass state). Correctness
    /// must not depend on anything shed here. Returns entries dropped.
    fn pressure_shrink(&mut self, m: &mut Machine) -> u64 {
        let _ = m;
        0
    }

    /// Reclaim-ladder rung 3: while `on`, the engine defers optional
    /// frame-allocating scan work (fake merges, rerandomization rounds,
    /// new fused tree frames) until pressure clears. Fault handling is
    /// never deferred. Engines persist the flag in their snapshot state.
    fn set_zero_unmerge_deferral(&mut self, on: bool) {
        let _ = on;
    }

    /// Sets the number of worker threads the engine may use for the
    /// shard-local (read-only) phase of a scan pass. A host-execution
    /// knob, not simulated state: it is never serialized, and traces,
    /// metrics, and snapshots are byte-identical at any value. Stateless
    /// policies ignore it.
    fn set_scan_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    /// Serializes the engine's complete scan/merge state into a snapshot.
    /// Stateless policies keep the default no-op; real engines implement
    /// `vusion_snapshot::EngineState` and delegate here.
    fn save_state(&self, w: &mut vusion_snapshot::Writer) {
        let _ = w;
    }

    /// Restores state written by [`Self::save_state`] into a freshly
    /// constructed policy of the same kind.
    fn restore_state(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        let _ = r;
        Ok(())
    }
}

/// The "No dedup" baseline: never merges, never handles faults.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFusion;

impl FusionPolicy for NoFusion {
    fn name(&self) -> &'static str {
        "none"
    }

    fn scan(&mut self, _m: &mut Machine) -> ScanReport {
        ScanReport::default()
    }

    fn handle_fault(&mut self, _m: &mut Machine, _fault: &PageFault) -> bool {
        false
    }
}

impl<P: FusionPolicy + ?Sized> FusionPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn scan(&mut self, m: &mut Machine) -> ScanReport {
        (**self).scan(m)
    }

    fn handle_fault(&mut self, m: &mut Machine, fault: &PageFault) -> bool {
        (**self).handle_fault(m, fault)
    }

    fn prepare_collapse(&mut self, m: &mut Machine, pid: Pid, huge_base: VirtAddr) -> bool {
        (**self).prepare_collapse(m, pid, huge_base)
    }

    fn pages_saved(&self) -> u64 {
        (**self).pages_saved()
    }

    fn scan_period_ns(&self) -> u64 {
        (**self).scan_period_ns()
    }

    fn set_scan_threads(&mut self, threads: usize) {
        (**self).set_scan_threads(threads)
    }

    fn set_scan_budget(&mut self, budget: Option<u64>) {
        (**self).set_scan_budget(budget)
    }

    fn pressure_drain(&mut self, m: &mut Machine) -> u64 {
        (**self).pressure_drain(m)
    }

    fn pressure_shrink(&mut self, m: &mut Machine) -> u64 {
        (**self).pressure_shrink(m)
    }

    fn set_zero_unmerge_deferral(&mut self, on: bool) {
        (**self).set_zero_unmerge_deferral(on)
    }

    // Explicitly forwarded: falling back to the trait defaults here would
    // silently snapshot a boxed engine as empty.
    fn save_state(&self, w: &mut vusion_snapshot::Writer) {
        (**self).save_state(w)
    }

    fn restore_state(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        (**self).restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn no_fusion_does_nothing() {
        let mut m = Machine::new(MachineConfig::test_small());
        let mut p = NoFusion;
        assert_eq!(p.scan(&mut m), ScanReport::default());
        assert_eq!(p.pages_saved(), 0);
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn scan_report_absorb_sums() {
        let mut a = ScanReport {
            pages_scanned: 5,
            pages_merged: 2,
            ..Default::default()
        };
        let b = ScanReport {
            pages_scanned: 3,
            pages_unmerged: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.pages_scanned, 8);
        assert_eq!(a.pages_merged, 2);
        assert_eq!(a.pages_unmerged, 1);
    }

    #[test]
    fn boxed_policy_delegates() {
        let mut m = Machine::new(MachineConfig::test_small());
        let mut p: Box<dyn FusionPolicy> = Box::new(NoFusion);
        assert_eq!(p.name(), "none");
        assert_eq!(p.scan(&mut m).pages_scanned, 0);
        assert_eq!(p.scan_period_ns(), 20_000_000);
    }
}
