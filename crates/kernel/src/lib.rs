//! The simulated machine: clock, processes, page-fault handling, daemons.
//!
//! This crate stands in for the parts of the Linux kernel that the VUsion
//! patch lives inside: the page-fault path, demand paging, the page cache,
//! `khugepaged`, and the timing-visible interaction of all of those with
//! the memory hierarchy (TLB → page walk → LLC → DRAM row buffer).
//!
//! Design notes:
//!
//! * **Time is simulated.** A [`SimClock`] advances by amounts drawn from a
//!   [`CostModel`] with seeded jitter. Attackers measure the clock exactly
//!   the way real attackers use `rdtsc`; side channels *emerge* from cost
//!   differences between code paths rather than being scripted.
//! * **Fusion engines are policies.** The [`FusionPolicy`] trait is the
//!   boundary between this substrate and the three engines in
//!   `vusion-core` (KSM, WPF, VUsion). The machine raises page faults; the
//!   policy resolves faults on pages it owns and runs scan passes; the
//!   [`System`] driver glues the two together and paces background scans
//!   against simulated time.
//! * **Scanner time is off-thread.** Like the real `ksmd`, scan work runs on
//!   its own core: it does not advance the workload-visible clock. Its cost
//!   surfaces as the extra page faults it induces — which is precisely the
//!   overhead the paper measures (§9.2).

pub mod clock;
pub mod journal;
pub mod khugepaged;
pub mod machine;
pub mod policy;
pub mod pressure;
pub mod process;
pub mod system;

pub use clock::{CostModel, SimClock};
pub use journal::{JournalEvent, JournalEventKind};
pub use khugepaged::{Khugepaged, KhugepagedStats};
pub use machine::{
    AccessKind, FaultReason, Machine, MachineConfig, MachineStats, PageFault, Pid,
    LOGICAL_SCAN_SHARDS,
};
pub use policy::{FusionPolicy, NoFusion, ScanReport};
pub use pressure::{
    PressureBand, PressureConfig, PressureDecision, PressureGovernor, PressureStats,
};
pub use process::Process;
pub use system::{System, SystemReport, SystemStats};

// Observability vocabulary, re-exported so engines and tests can name
// span/instant kinds without a direct `vusion-obs` dependency.
pub use vusion_obs::{
    bucket_floor_ns, latency_bucket, DramOutcome, FaultKind, InstantKind, MetricsSnapshot, Obs,
    PageClass, Profile, SideChannelSurface, SpanKind, SurfaceExtras, SurfaceTransition, Tracer,
    LATENCY_BUCKETS,
};
