//! Simulated processes (or, in the cloud scenarios, whole VMs).
//!
//! A KVM guest appears to the host as one process whose anonymous memory
//! holds the entire guest physical memory, so the cloud experiments model
//! each VM as a process with a large mergeable anonymous VMA. The per-VM
//! page cache maps simulated `(file, page)` pairs to frames, generating
//! deterministic content per file id — identical base-image files across
//! VMs therefore carry identical bytes, which is where cross-VM fusion
//! opportunities come from.

use std::collections::BTreeMap;

use vusion_mem::{FrameId, MmError, PhysAddr, PhysMemory, VirtAddr, PAGE_SIZE};
use vusion_mmu::{AddressSpace, Tlb};

/// A simulated process.
pub struct Process {
    /// Process name, for reporting.
    pub name: String,
    /// Virtual address space (VMAs + page tables).
    pub space: AddressSpace,
    /// Per-core TLB (the simulation pins one process per core).
    pub tlb: Tlb,
    /// Guest page cache: (file id, page offset) → frame.
    pub page_cache: BTreeMap<(u64, u64), FrameId>,
}

impl Process {
    /// Creates a process with an empty address space.
    pub fn new(name: &str, space: AddressSpace) -> Self {
        Self {
            name: name.to_string(),
            space,
            tlb: Tlb::skylake(),
            page_cache: BTreeMap::new(),
        }
    }

    /// Deterministic content of a simulated file page. The same
    /// `(file_id, offset)` pair yields the same bytes in every process —
    /// shared base images produce cross-VM duplicate pages.
    pub fn file_page_content(file_id: u64, offset_pages: u64) -> [u8; PAGE_SIZE as usize] {
        let mut out = [0u8; PAGE_SIZE as usize];
        let mut state = file_id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(offset_pages.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            | 1;
        for chunk in out.chunks_mut(8) {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            for (i, b) in chunk.iter_mut().enumerate() {
                *b = (v >> (8 * i)) as u8;
            }
        }
        out
    }

    /// Loads a file page into the page cache, materializing content on
    /// first use. Returns the backing frame, or the allocator's error when
    /// the frame for a cold page cannot be allocated (the cache is left
    /// unchanged, so a retry after reclaim can succeed).
    pub fn page_cache_load(
        &mut self,
        mem: &mut PhysMemory,
        file_id: u64,
        offset_pages: u64,
        alloc_frame: impl FnOnce(&mut PhysMemory) -> Result<FrameId, MmError>,
    ) -> Result<FrameId, MmError> {
        if let Some(&f) = self.page_cache.get(&(file_id, offset_pages)) {
            return Ok(f);
        }
        let f = alloc_frame(mem)?;
        mem.write_page(f, &Self::file_page_content(file_id, offset_pages));
        self.page_cache.insert((file_id, offset_pages), f);
        Ok(f)
    }

    /// Evicts a page-cache entry that fusion replaced (the engine now owns
    /// the mapping). Returns the frame that was cached.
    pub fn page_cache_evict(&mut self, file_id: u64, offset_pages: u64) -> Option<FrameId> {
        self.page_cache.remove(&(file_id, offset_pages))
    }

    /// Translates without side effects (no TLB/clock interaction); test and
    /// attack-setup helper.
    pub fn translate_quiet(&self, mem: &PhysMemory, va: VirtAddr) -> Option<PhysAddr> {
        let leaf = self.space.tables().leaf(mem, va)?;
        if leaf.huge {
            let off = va.0 % vusion_mem::HUGE_PAGE_SIZE;
            Some(PhysAddr(leaf.pte.frame().base().0 + off))
        } else {
            Some(PhysAddr(leaf.pte.frame().base().0 + va.page_offset()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_mem::{BuddyAllocator, FrameAllocator, PageType};
    use vusion_mmu::{Protection, Vma};

    fn setup() -> (PhysMemory, BuddyAllocator, Process) {
        let mut mem = PhysMemory::new(1024);
        let mut alloc = BuddyAllocator::new(FrameId(0), 1024);
        let space = AddressSpace::new(&mut mem, &mut alloc).expect("address space");
        (mem, alloc, Process::new("p0", space))
    }

    #[test]
    fn file_content_is_deterministic_and_distinct() {
        let a = Process::file_page_content(1, 0);
        let b = Process::file_page_content(1, 0);
        let c = Process::file_page_content(1, 1);
        let d = Process::file_page_content(2, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn page_cache_loads_once() {
        let (mut mem, mut alloc, mut p) = setup();
        let mut allocs = 0;
        let do_alloc = |mem: &mut PhysMemory, alloc: &mut BuddyAllocator, n: &mut u32| {
            let f = alloc.alloc().expect("frame");
            mem.info_mut(f).on_alloc(PageType::PageCache);
            *n += 1;
            Ok(f)
        };
        let f1 = p
            .page_cache_load(&mut mem, 7, 3, |m| do_alloc(m, &mut alloc, &mut allocs))
            .expect("load");
        let f2 = p
            .page_cache_load(&mut mem, 7, 3, |_| panic!("must not reallocate"))
            .expect("load");
        assert_eq!(f1, f2);
        assert_eq!(allocs, 1);
        // Content matches the deterministic generator.
        assert_eq!(mem.page(f1), &Process::file_page_content(7, 3));
    }

    #[test]
    fn same_file_same_content_across_processes() {
        let (mut mem, mut alloc, mut p1) = setup();
        let space2 = AddressSpace::new(&mut mem, &mut alloc).expect("address space");
        let mut p2 = Process::new("p1", space2);
        let mk = |mem: &mut PhysMemory, alloc: &mut BuddyAllocator| {
            let f = alloc.alloc().expect("frame");
            mem.info_mut(f).on_alloc(PageType::PageCache);
            Ok(f)
        };
        let f1 = p1
            .page_cache_load(&mut mem, 42, 0, |m| mk(m, &mut alloc))
            .expect("load");
        let f2 = p2
            .page_cache_load(&mut mem, 42, 0, |m| mk(m, &mut alloc))
            .expect("load");
        assert_ne!(f1, f2, "separate frames");
        assert!(
            mem.pages_equal(f1, f2),
            "identical content — a fusion opportunity"
        );
    }

    #[test]
    fn evict_removes_entry() {
        let (mut mem, mut alloc, mut p) = setup();
        let f = p
            .page_cache_load(&mut mem, 1, 1, |m| {
                let f = alloc.alloc().expect("frame");
                m.info_mut(f).on_alloc(PageType::PageCache);
                Ok(f)
            })
            .expect("load");
        assert_eq!(p.page_cache_evict(1, 1), Some(f));
        assert_eq!(p.page_cache_evict(1, 1), None);
    }

    #[test]
    fn translate_quiet_resolves_mapped_pages() {
        let (mut mem, mut alloc, mut p) = setup();
        let f = alloc.alloc().expect("frame");
        mem.info_mut(f).on_alloc(PageType::Anon);
        p.space
            .add_vma(Vma::anon(VirtAddr(0x1000), 1, Protection::rw()));
        p.space
            .tables_mut()
            .map_page(
                &mut mem,
                &mut alloc,
                VirtAddr(0x1000),
                f,
                vusion_mmu::PteFlags::PRESENT,
            )
            .expect("map");
        assert_eq!(
            p.translate_quiet(&mem, VirtAddr(0x1234)),
            Some(f.addr(0x234))
        );
        assert_eq!(p.translate_quiet(&mem, VirtAddr(0x9000)), None);
    }
}
