//! The `khugepaged` daemon: background collapse of 4 KiB pages into THPs.
//!
//! §8.2 of the paper: khugepaged "transparently collapses consecutive
//! physical pages into huge pages"; VUsion must prevent it from collapsing
//! (fake-)merged pages, or the translation attack returns. The protocol is:
//! if at least `min_active` of the 512 sub-pages are active, the policy is
//! asked to (fake-)unmerge the rest before the collapse copies everything
//! into a fresh, physically contiguous 2 MiB block.

use vusion_mem::{FrameId, PageType, VirtAddr, HUGE_PAGE_FRAMES, HUGE_PAGE_SIZE, PAGE_SIZE};
use vusion_mmu::{PteFlags, VmaBacking};

use crate::machine::{Machine, Pid};
use crate::policy::FusionPolicy;

/// Daemon counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KhugepagedStats {
    /// Ranges collapsed into huge pages.
    pub collapsed: u64,
    /// Ranges vetoed by the fusion policy.
    pub blocked_by_policy: u64,
    /// Ranges skipped (not fully mapped, shared, already huge, too cold).
    pub skipped: u64,
}

/// The collapse daemon.
pub struct Khugepaged {
    /// Wakeup period (simulated ns). Linux defaults to 10 s; experiments
    /// use 1 s to fit their time scale.
    pub period_ns: u64,
    /// Huge-range candidates examined per wakeup.
    pub ranges_per_scan: usize,
    /// Minimum number of *accessed* sub-pages for a range to be considered
    /// hot enough to collapse — the `n` knob of §8.1 (1 = collapse
    /// aggressively for performance; larger values preserve fusion).
    pub min_active: usize,
    cursor: usize,
    stats: KhugepagedStats,
}

impl Khugepaged {
    /// Creates the daemon with kernel-like defaults (scaled).
    pub fn new() -> Self {
        Self {
            period_ns: 1_000_000_000,
            ranges_per_scan: 16,
            min_active: 1,
            cursor: 0,
            stats: KhugepagedStats::default(),
        }
    }

    /// Overrides the activity threshold `n`.
    pub fn with_min_active(mut self, n: usize) -> Self {
        self.min_active = n.max(1);
        self
    }

    /// Counters.
    pub fn stats(&self) -> KhugepagedStats {
        self.stats
    }

    /// Serializes the daemon (knobs, scan cursor, counters).
    pub fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u64(self.period_ns);
        w.usize(self.ranges_per_scan);
        w.usize(self.min_active);
        w.usize(self.cursor);
        w.u64(self.stats.collapsed);
        w.u64(self.stats.blocked_by_policy);
        w.u64(self.stats.skipped);
    }

    /// Restores a daemon saved by [`Self::save`].
    pub fn load(
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        Ok(Self {
            period_ns: r.u64()?,
            ranges_per_scan: r.usize()?,
            min_active: r.usize()?,
            cursor: r.usize()?,
            stats: KhugepagedStats {
                collapsed: r.u64()?,
                blocked_by_policy: r.u64()?,
                skipped: r.u64()?,
            },
        })
    }

    /// Enumerates all 2 MiB-aligned candidate ranges in anonymous writable
    /// VMAs across all processes.
    fn candidates(m: &Machine) -> Vec<(Pid, VirtAddr)> {
        let mut out = Vec::new();
        for pidx in 0..m.process_count() {
            let pid = Pid(pidx);
            for vma in m.process(pid).space.vmas() {
                if vma.backing != VmaBacking::Anon || !vma.prot.write {
                    continue;
                }
                let mut base = vma.start.huge_base();
                if base.0 < vma.start.0 {
                    base = VirtAddr(base.0 + HUGE_PAGE_SIZE);
                }
                while base.0 + HUGE_PAGE_SIZE <= vma.end().0 {
                    out.push((pid, base));
                    base = VirtAddr(base.0 + HUGE_PAGE_SIZE);
                }
            }
        }
        out
    }

    /// One daemon wakeup. Runs off the workload clock.
    pub fn scan<P: FusionPolicy + ?Sized>(&mut self, m: &mut Machine, policy: &mut P) {
        let candidates = Self::candidates(m);
        if candidates.is_empty() {
            return;
        }
        for _ in 0..self.ranges_per_scan.min(candidates.len()) {
            let (pid, base) = candidates[self.cursor % candidates.len()];
            self.cursor = (self.cursor + 1) % candidates.len();
            self.try_collapse(m, policy, pid, base);
        }
    }

    fn try_collapse<P: FusionPolicy + ?Sized>(
        &mut self,
        m: &mut Machine,
        policy: &mut P,
        pid: Pid,
        base: VirtAddr,
    ) -> bool {
        // Phase 1: inspect the range.
        let mut active = 0usize;
        for i in 0..HUGE_PAGE_FRAMES {
            let va = VirtAddr(base.0 + i * PAGE_SIZE);
            let Some(leaf) = m.leaf(pid, va) else {
                self.stats.skipped += 1; // Hole: not fully mapped.
                return false;
            };
            if leaf.huge {
                self.stats.skipped += 1; // Already a THP.
                return false;
            }
            if leaf.pte.has(PteFlags::ACCESSED) {
                active += 1;
            }
        }
        if active < self.min_active {
            self.stats.skipped += 1; // Too cold to be worth a THP.
            return false;
        }
        // Phase 2: reserve the destination block *before* disturbing any
        // mappings — like Linux, which allocates the huge page first. The
        // policy's prepare_collapse irreversibly (fake-)unmerges sub-pages,
        // so failing the allocation afterwards would thrash fusion savings
        // on every wakeup under fragmentation.
        let Some(huge) = m.alloc_huge(PageType::Anon) else {
            self.stats.skipped += 1; // Fragmentation.
            return false;
        };
        // Phase 2b: let the fusion policy release (or veto) its pages.
        if !policy.prepare_collapse(m, pid, base) {
            let _ = m.free_huge(huge);
            self.stats.blocked_by_policy += 1;
            return false;
        }
        // Phase 3: re-validate — every sub-page must now be a private,
        // untrapped 4 KiB mapping.
        let mut frames = Vec::with_capacity(HUGE_PAGE_FRAMES as usize);
        for i in 0..HUGE_PAGE_FRAMES {
            let va = VirtAddr(base.0 + i * PAGE_SIZE);
            let Some(leaf) = m.leaf(pid, va) else {
                let _ = m.free_huge(huge);
                self.stats.skipped += 1;
                return false;
            };
            if leaf.huge || leaf.pte.is_trapped() || !leaf.pte.is_present() {
                let _ = m.free_huge(huge);
                self.stats.skipped += 1;
                return false;
            }
            let frame = leaf.pte.frame();
            if m.mem().info(frame).refcount != 1 {
                let _ = m.free_huge(huge);
                self.stats.skipped += 1; // Still shared: unsafe to move.
                return false;
            }
            frames.push(frame);
        }
        // Phase 4: copy into the reserved contiguous block and switch the
        // mapping (this is why §8.2's pre-unmerge makes the copy safe).
        for (i, &src) in frames.iter().enumerate() {
            m.mem_mut().copy_page(src, FrameId(huge.0 + i as u64));
        }
        let writable = m
            .process(pid)
            .space
            .find_vma(base)
            .map(|v| v.prot.write)
            .unwrap_or(false);
        let mut flags = PteFlags::PRESENT | PteFlags::USER | PteFlags::ACCESSED;
        if writable {
            flags |= PteFlags::WRITABLE;
        }
        let collapsed = {
            let (mem, buddy, procs) = m.mm_parts();
            let proc = &mut procs[pid.0];
            // Swap the PT for a huge entry in one shot (frees the PT frame).
            let r = proc
                .space
                .tables_mut()
                .collapse_huge(mem, buddy, base, huge, flags);
            proc.tlb.flush();
            r
        };
        if collapsed.is_err() {
            // The tables rejected the swap (a sub-page changed under us):
            // nothing was modified, so just release the reserved block.
            let _ = m.free_huge(huge);
            self.stats.skipped += 1;
            return false;
        }
        for f in frames {
            let _ = m.put_frame(f);
        }
        self.stats.collapsed += 1;
        true
    }
}

impl Default for Khugepaged {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::policy::NoFusion;
    use vusion_mmu::{Protection, Vma};

    fn setup() -> (Machine, Pid) {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(
            pid,
            Vma::anon(VirtAddr(HUGE_PAGE_SIZE), 1024, Protection::rw()),
        );
        (m, pid)
    }

    fn fault_in_range(m: &mut Machine, pid: Pid, base: VirtAddr, pages: u64) {
        for i in 0..pages {
            let va = VirtAddr(base.0 + i * PAGE_SIZE);
            if m.leaf(pid, va).is_none() {
                let f = m.read(pid, va).expect_err("fault");
                assert!(m.default_fault(&f));
            } else {
                m.read(pid, va).expect("mapped");
            }
        }
    }

    #[test]
    fn collapses_fully_mapped_active_range() {
        let (mut m, pid) = setup();
        let base = VirtAddr(HUGE_PAGE_SIZE);
        fault_in_range(&mut m, pid, base, 512);
        assert_eq!(m.count_huge_mappings(pid), 0);
        let mut k = Khugepaged::new();
        let mut p = NoFusion;
        k.scan(&mut m, &mut p);
        assert_eq!(k.stats().collapsed, 1);
        assert_eq!(m.count_huge_mappings(pid), 1);
        // Content still readable and translation now huge.
        m.read(pid, VirtAddr(base.0 + 12345)).expect("mapped");
        assert!(m.leaf(pid, base).expect("leaf").huge);
    }

    #[test]
    fn skips_partially_mapped_range() {
        let (mut m, pid) = setup();
        let base = VirtAddr(HUGE_PAGE_SIZE);
        fault_in_range(&mut m, pid, base, 100); // Hole after page 100.
        let mut k = Khugepaged::new();
        let mut p = NoFusion;
        k.scan(&mut m, &mut p);
        assert_eq!(k.stats().collapsed, 0);
        assert!(k.stats().skipped > 0);
    }

    #[test]
    fn min_active_gates_cold_ranges() {
        let (mut m, pid) = setup();
        let base = VirtAddr(HUGE_PAGE_SIZE);
        fault_in_range(&mut m, pid, base, 512);
        // Clear all accessed bits: the range is now idle.
        let (mem, _buddy, procs) = m.mm_parts();
        for i in 0..512u64 {
            procs[pid.0]
                .space
                .tables_mut()
                .test_and_clear_accessed(mem, VirtAddr(base.0 + i * PAGE_SIZE));
        }
        let mut k = Khugepaged::new().with_min_active(1);
        let mut p = NoFusion;
        k.scan(&mut m, &mut p);
        assert_eq!(k.stats().collapsed, 0, "idle range must not collapse");
        // Touch one page: now 1 >= min_active.
        m.read(pid, base).expect("mapped");
        k.scan(&mut m, &mut p);
        assert_eq!(k.stats().collapsed, 1);
    }

    #[test]
    fn policy_veto_blocks_collapse() {
        struct Veto;
        impl FusionPolicy for Veto {
            fn name(&self) -> &'static str {
                "veto"
            }
            fn scan(&mut self, _m: &mut Machine) -> crate::policy::ScanReport {
                Default::default()
            }
            fn handle_fault(&mut self, _m: &mut Machine, _f: &crate::machine::PageFault) -> bool {
                false
            }
            fn prepare_collapse(&mut self, _m: &mut Machine, _pid: Pid, _b: VirtAddr) -> bool {
                false
            }
        }
        let (mut m, pid) = setup();
        fault_in_range(&mut m, pid, VirtAddr(HUGE_PAGE_SIZE), 512);
        let mut k = Khugepaged::new();
        let mut p = Veto;
        k.scan(&mut m, &mut p);
        assert_eq!(k.stats().collapsed, 0);
        assert!(k.stats().blocked_by_policy > 0);
    }

    #[test]
    fn shared_subpage_aborts_collapse() {
        let (mut m, pid) = setup();
        let base = VirtAddr(HUGE_PAGE_SIZE);
        fault_in_range(&mut m, pid, base, 512);
        // Simulate a shared page (e.g. fused elsewhere): bump a refcount.
        let f = m.leaf(pid, base).expect("leaf").pte.frame();
        m.mem_mut().info_mut(f).get();
        let mut k = Khugepaged::new();
        let mut p = NoFusion;
        k.scan(&mut m, &mut p);
        assert_eq!(k.stats().collapsed, 0);
        m.mem_mut().info_mut(f).put();
    }

    #[test]
    fn collapse_frees_the_512_small_frames() {
        let (mut m, pid) = setup();
        let base = VirtAddr(HUGE_PAGE_SIZE);
        fault_in_range(&mut m, pid, base, 512);
        let before = m.allocated_frames();
        let mut k = Khugepaged::new();
        let mut p = NoFusion;
        k.scan(&mut m, &mut p);
        assert_eq!(k.stats().collapsed, 1);
        // 512 small frames freed, 512-frame block allocated, one PT freed.
        let after = m.allocated_frames();
        assert_eq!(after, before - 1, "net change is the freed PT frame");
    }
}
