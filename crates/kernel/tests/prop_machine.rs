//! Property tests for the machine: demand paging, CoW isolation, timing
//! monotonicity.

use proptest::prelude::*;
use vusion_kernel::{Machine, MachineConfig};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Demand paging + reads/writes behave like a flat byte store.
    #[test]
    fn machine_is_a_byte_store(ops in proptest::collection::vec((0u64..16, 0u64..PAGE_SIZE, any::<u8>()), 1..120)) {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("p");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 16, Protection::rw()));
        let mut model = std::collections::HashMap::new();
        for (pg, off, v) in ops {
            let va = VirtAddr(0x10000 + pg * PAGE_SIZE + off);
            loop {
                match m.write(pid, va, v) {
                    Ok(()) => break,
                    Err(f) => prop_assert!(m.default_fault(&f)),
                }
            }
            model.insert((pg, off), v);
        }
        for ((pg, off), v) in model {
            let va = VirtAddr(0x10000 + pg * PAGE_SIZE + off);
            let got = loop {
                match m.read(pid, va) {
                    Ok(b) => break b,
                    Err(f) => prop_assert!(m.default_fault(&f)),
                }
            };
            prop_assert_eq!(got, v);
        }
    }

    /// Two processes never observe each other's anonymous writes.
    #[test]
    fn process_isolation(writes in proptest::collection::vec((0usize..2, 0u64..8, any::<u8>()), 1..60)) {
        let mut m = Machine::new(MachineConfig::test_small());
        let pids = [m.spawn("a"), m.spawn("b")];
        for &pid in &pids {
            m.mmap(pid, Vma::anon(VirtAddr(0x10000), 8, Protection::rw()));
        }
        let mut model = std::collections::HashMap::new();
        for (p, pg, v) in writes {
            let va = VirtAddr(0x10000 + pg * PAGE_SIZE);
            loop {
                match m.write(pids[p], va, v) {
                    Ok(()) => break,
                    Err(f) => prop_assert!(m.default_fault(&f)),
                }
            }
            model.insert((p, pg), v);
        }
        for ((p, pg), v) in model {
            let va = VirtAddr(0x10000 + pg * PAGE_SIZE);
            let got = loop {
                match m.read(pids[p], va) {
                    Ok(b) => break b,
                    Err(f) => prop_assert!(m.default_fault(&f)),
                }
            };
            prop_assert_eq!(got, v, "process {} page {} corrupted", p, pg);
        }
    }

    /// The clock is monotone and every completed access advances it.
    #[test]
    fn clock_monotone(accesses in proptest::collection::vec(0u64..4, 1..80)) {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("p");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 4, Protection::rw()));
        let mut last = m.now_ns();
        for pg in accesses {
            let va = VirtAddr(0x10000 + pg * PAGE_SIZE);
            loop {
                match m.read(pid, va) {
                    Ok(_) => break,
                    Err(f) => prop_assert!(m.default_fault(&f)),
                }
            }
            let now = m.now_ns();
            prop_assert!(now > last, "access did not advance the clock");
            last = now;
        }
    }

    /// File-backed mappings share content within a process and CoW on
    /// write without disturbing the cache copy.
    #[test]
    fn file_cow_isolation(off in 0u64..PAGE_SIZE, v in 1u8..255) {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("p");
        // Two mappings of the same file page.
        m.mmap(pid, Vma::file(VirtAddr(0x10000), 1, Protection::rw(), 7, 0));
        m.mmap(pid, Vma::file(VirtAddr(0x20000), 1, Protection::rw(), 7, 0));
        let read = |m: &mut Machine, va: VirtAddr| loop {
            match m.read(pid, va) {
                Ok(b) => break b,
                Err(f) => assert!(m.default_fault(&f)),
            }
        };
        let before_a = read(&mut m, VirtAddr(0x10000 + off));
        let before_b = read(&mut m, VirtAddr(0x20000 + off));
        prop_assert_eq!(before_a, before_b, "same file page must read identically");
        // Write through the first mapping: CoW.
        loop {
            match m.write(pid, VirtAddr(0x10000 + off), v) {
                Ok(()) => break,
                Err(f) => prop_assert!(m.default_fault(&f)),
            }
        }
        prop_assert_eq!(read(&mut m, VirtAddr(0x10000 + off)), v);
        prop_assert_eq!(read(&mut m, VirtAddr(0x20000 + off)), before_b, "cache copy must survive");
    }
}
