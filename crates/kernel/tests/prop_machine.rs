//! Property-style tests for the machine: demand paging, CoW isolation,
//! timing monotonicity. Driven by the in-repo seeded PRNG: each test
//! sweeps many seeds so failures reproduce exactly by seed.

// Tests assert setup preconditions with expect("why"); the crate-level
// expect_used deny targets simulation code, not its test harness.
#![allow(clippy::expect_used)]

use vusion_kernel::{Machine, MachineConfig};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

const SEEDS: u64 = 32;

fn read(m: &mut Machine, pid: vusion_kernel::Pid, va: VirtAddr) -> u8 {
    loop {
        match m.read(pid, va) {
            Ok(b) => break b,
            Err(f) => assert!(m.default_fault(&f), "unresolvable fault at {va:?}"),
        }
    }
}

fn write(m: &mut Machine, pid: vusion_kernel::Pid, va: VirtAddr, v: u8) {
    loop {
        match m.write(pid, va, v) {
            Ok(()) => break,
            Err(f) => assert!(m.default_fault(&f), "unresolvable fault at {va:?}"),
        }
    }
}

/// Demand paging + reads/writes behave like a flat byte store.
#[test]
fn machine_is_a_byte_store() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb17e);
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("p").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 16, Protection::rw()));
        let mut model = std::collections::BTreeMap::new();
        let n = rng.random_range(1..120usize);
        for _ in 0..n {
            let pg = rng.random_range(0..16u64);
            let off = rng.random_range(0..PAGE_SIZE);
            let v = rng.random_range(0..=u8::MAX as u64) as u8;
            write(&mut m, pid, VirtAddr(0x10000 + pg * PAGE_SIZE + off), v);
            model.insert((pg, off), v);
        }
        for ((pg, off), v) in model {
            let va = VirtAddr(0x10000 + pg * PAGE_SIZE + off);
            assert_eq!(read(&mut m, pid, va), v, "seed {seed}");
        }
    }
}

/// Two processes never observe each other's anonymous writes.
#[test]
fn process_isolation() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x150a);
        let mut m = Machine::new(MachineConfig::test_small());
        let pids = [m.spawn("a").expect("spawn"), m.spawn("b").expect("spawn")];
        for &pid in &pids {
            m.mmap(pid, Vma::anon(VirtAddr(0x10000), 8, Protection::rw()));
        }
        let mut model = std::collections::BTreeMap::new();
        let n = rng.random_range(1..60usize);
        for _ in 0..n {
            let p = rng.random_range(0..2usize);
            let pg = rng.random_range(0..8u64);
            let v = rng.random_range(0..=u8::MAX as u64) as u8;
            write(&mut m, pids[p], VirtAddr(0x10000 + pg * PAGE_SIZE), v);
            model.insert((p, pg), v);
        }
        for ((p, pg), v) in model {
            let va = VirtAddr(0x10000 + pg * PAGE_SIZE);
            assert_eq!(
                read(&mut m, pids[p], va),
                v,
                "seed {seed}: process {p} page {pg} corrupted"
            );
        }
    }
}

/// The clock is monotone and every completed access advances it.
#[test]
fn clock_monotone() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc10c);
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("p").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 4, Protection::rw()));
        let mut last = m.now_ns();
        let n = rng.random_range(1..80usize);
        for _ in 0..n {
            let pg = rng.random_range(0..4u64);
            read(&mut m, pid, VirtAddr(0x10000 + pg * PAGE_SIZE));
            let now = m.now_ns();
            assert!(now > last, "seed {seed}: access did not advance the clock");
            last = now;
        }
    }
}

/// File-backed mappings share content within a process and CoW on
/// write without disturbing the cache copy.
#[test]
fn file_cow_isolation() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf11e);
        let off = rng.random_range(0..PAGE_SIZE);
        let v = rng.random_range(1..255u64) as u8;
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("p").expect("spawn");
        // Two mappings of the same file page.
        m.mmap(pid, Vma::file(VirtAddr(0x10000), 1, Protection::rw(), 7, 0));
        m.mmap(pid, Vma::file(VirtAddr(0x20000), 1, Protection::rw(), 7, 0));
        let before_a = read(&mut m, pid, VirtAddr(0x10000 + off));
        let before_b = read(&mut m, pid, VirtAddr(0x20000 + off));
        assert_eq!(
            before_a, before_b,
            "seed {seed}: same file page must read identically"
        );
        // Write through the first mapping: CoW.
        write(&mut m, pid, VirtAddr(0x10000 + off), v);
        assert_eq!(read(&mut m, pid, VirtAddr(0x10000 + off)), v, "seed {seed}");
        assert_eq!(
            read(&mut m, pid, VirtAddr(0x20000 + off)),
            before_b,
            "seed {seed}: cache copy must survive"
        );
    }
}
