//! Property-style tests for the page-table substrate, driven by the
//! in-repo seeded PRNG: each test sweeps many seeds and derives its
//! inputs from the seed, so failures reproduce exactly by seed.

// Tests assert setup preconditions with expect("why"); the crate-level
// expect_used deny targets simulation code, not its test harness.
#![allow(clippy::expect_used)]

use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

use vusion_mem::{
    BuddyAllocator, FrameAllocator, FrameId, PageType, PhysMemory, VirtAddr, HUGE_PAGE_SIZE,
    PAGE_SIZE,
};
use vusion_mmu::{PageTables, Pte, PteFlags};

const SEEDS: u64 = 48;

fn setup() -> (PhysMemory, BuddyAllocator, PageTables) {
    let mut mem = PhysMemory::new(8192);
    let mut alloc = BuddyAllocator::new(FrameId(0), 8192);
    let pt = PageTables::new(&mut mem, &mut alloc).expect("page tables");
    (mem, alloc, pt)
}

/// Mapping a set of distinct pages and walking them back recovers
/// exactly the mapped frames; unmapped addresses never resolve.
#[test]
fn map_walk_roundtrip() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7ab1e);
        let n = rng.random_range(1..64usize);
        let mut pages = std::collections::BTreeSet::new();
        for _ in 0..n {
            pages.insert(rng.random_range(0..2048u64));
        }
        let (mut mem, mut alloc, mut pt) = setup();
        let mut expected = std::collections::BTreeMap::new();
        for &pg in &pages {
            let f = alloc.alloc().expect("frame");
            mem.info_mut(f).on_alloc(PageType::Anon);
            let va = VirtAddr(pg * PAGE_SIZE);
            pt.map_page(
                &mut mem,
                &mut alloc,
                va,
                f,
                PteFlags::PRESENT | PteFlags::USER,
            )
            .expect("map");
            expected.insert(pg, f);
        }
        for pg in 0u64..2048 {
            let leaf = pt.leaf(&mem, VirtAddr(pg * PAGE_SIZE));
            match expected.get(&pg) {
                Some(&f) => {
                    let leaf = leaf.expect("mapped page must resolve");
                    assert_eq!(leaf.pte.frame(), f, "seed {seed}");
                    assert!(!leaf.huge, "seed {seed}");
                }
                None => assert!(leaf.is_none(), "seed {seed}: page {pg} must not resolve"),
            }
        }
    }
}

/// Walk step counts: 4 for base pages, 3 for huge pages, always ≤ 4.
#[test]
fn walk_depth_matches_mapping_kind() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdeb7);
        let huge_slot = rng.random_range(1..4u64);
        let small_pg = rng.random_range(0..512u64);
        let (mut mem, mut alloc, mut pt) = setup();
        // One huge mapping and one 4 KiB mapping in different PD slots.
        let hf = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(hf).on_alloc(PageType::Anon);
        let hva = VirtAddr(huge_slot * HUGE_PAGE_SIZE);
        pt.map_huge(&mut mem, &mut alloc, hva, hf, PteFlags::PRESENT)
            .expect("map huge");
        let sf = alloc.alloc().expect("frame");
        mem.info_mut(sf).on_alloc(PageType::Anon);
        let sva = VirtAddr(8 * HUGE_PAGE_SIZE + small_pg * PAGE_SIZE);
        pt.map_page(&mut mem, &mut alloc, sva, sf, PteFlags::PRESENT)
            .expect("map");
        let hw = pt.walk(&mem, VirtAddr(hva.0 + small_pg * PAGE_SIZE));
        assert_eq!(hw.steps.len(), 3, "seed {seed}");
        assert!(hw.leaf.expect("mapped").huge, "seed {seed}");
        let sw = pt.walk(&mem, sva);
        assert_eq!(sw.steps.len(), 4, "seed {seed}");
        assert!(!sw.leaf.expect("mapped").huge, "seed {seed}");
    }
}

/// break_huge preserves every translation and permission; collapse_huge
/// restores the huge mapping and frees the PT.
#[test]
fn break_collapse_roundtrip() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb4ea);
        let probe = rng.random_range(0..512u64);
        let (mut mem, mut alloc, mut pt) = setup();
        let hf = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(hf).on_alloc(PageType::Anon);
        let base = VirtAddr(2 * HUGE_PAGE_SIZE);
        pt.map_huge(
            &mut mem,
            &mut alloc,
            base,
            hf,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        )
        .expect("map huge");
        pt.break_huge(&mut mem, &mut alloc, base).expect("break");
        let va = VirtAddr(base.0 + probe * PAGE_SIZE);
        let leaf = pt.leaf(&mem, va).expect("still mapped");
        assert!(!leaf.huge, "seed {seed}");
        assert_eq!(leaf.pte.frame(), FrameId(hf.0 + probe), "seed {seed}");
        assert!(leaf.pte.has(PteFlags::WRITABLE), "seed {seed}");
        let free_before = alloc.free_frames();
        pt.collapse_huge(
            &mut mem,
            &mut alloc,
            base,
            hf,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        )
        .expect("collapse");
        assert_eq!(
            alloc.free_frames(),
            free_before + 1,
            "seed {seed}: PT frame must be freed"
        );
        assert!(pt.leaf(&mem, va).expect("mapped").huge, "seed {seed}");
    }
}

/// PTE bit algebra: set/clear of arbitrary flag masks never disturbs
/// the frame field.
#[test]
fn pte_flags_never_touch_frame() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1a6);
        let frame = rng.random_range(0..(1u64 << 30));
        let set_res = rng.random_range(0..2u8) == 1;
        let set_pcd = rng.random_range(0..2u8) == 1;
        let mut pte = Pte::new(FrameId(frame), PteFlags::PRESENT);
        if set_res {
            pte = pte.set(PteFlags::RESERVED);
        }
        if set_pcd {
            pte = pte.set(PteFlags::NO_CACHE);
        }
        pte = pte
            .set(PteFlags::ACCESSED | PteFlags::DIRTY)
            .clear(PteFlags::DIRTY);
        assert_eq!(pte.frame(), FrameId(frame), "seed {seed}");
        assert_eq!(pte.is_trapped(), set_res, "seed {seed}");
        assert_eq!(pte.has(PteFlags::NO_CACHE), set_pcd, "seed {seed}");
        assert!(!pte.has(PteFlags::DIRTY), "seed {seed}");
    }
}

/// Accessed-bit tracking: set on map, cleared exactly once.
#[test]
fn accessed_bit_clears_once() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xacce);
        let pg = rng.random_range(0..1024u64);
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc().expect("frame");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(pg * PAGE_SIZE);
        pt.map_page(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::ACCESSED,
        )
        .expect("map");
        assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(true));
        assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(false));
        // Re-marking (a hardware walk) makes it observable again.
        let leaf = pt.leaf(&mem, va).expect("mapped");
        pt.set_leaf(&mut mem, va, leaf.pte.set(PteFlags::ACCESSED))
            .expect("set leaf");
        assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(true));
    }
}

/// Operations that fail (remap, misalignment, unmapped set_leaf) leave the
/// tables unchanged: the prior translations all still resolve identically.
#[test]
fn failed_operations_leave_tables_intact() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1e47);
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc().expect("frame");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let pg = rng.random_range(0..512u64);
        let va = VirtAddr(pg * PAGE_SIZE);
        pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT)
            .expect("map");
        // Remap must fail and change nothing.
        let g = alloc.alloc().expect("frame");
        assert!(pt
            .map_page(&mut mem, &mut alloc, va, g, PteFlags::PRESENT)
            .is_err());
        alloc.free(g).expect("free");
        // Unmapped set_leaf and unmap must fail.
        let hole = VirtAddr((pg + 1024) * PAGE_SIZE);
        assert!(pt
            .set_leaf(&mut mem, hole, Pte::new(f, PteFlags::PRESENT))
            .is_err());
        assert!(pt.unmap(&mut mem, hole).is_err());
        // Misaligned huge map must fail.
        let hf = alloc.alloc_order(9).expect("huge block");
        assert!(pt
            .map_huge(
                &mut mem,
                &mut alloc,
                VirtAddr(HUGE_PAGE_SIZE + PAGE_SIZE),
                hf,
                PteFlags::PRESENT
            )
            .is_err());
        alloc.free_order(hf, 9).expect("free");
        // The original translation is untouched.
        let leaf = pt.leaf(&mem, va).expect("still mapped");
        assert_eq!(leaf.pte.frame(), f, "seed {seed}");
    }
}
