//! Property tests for the page-table substrate.

use proptest::prelude::*;
use vusion_mem::{
    BuddyAllocator, FrameAllocator, FrameId, PageType, PhysMemory, VirtAddr, HUGE_PAGE_SIZE,
    PAGE_SIZE,
};
use vusion_mmu::{PageTables, Pte, PteFlags};

fn setup() -> (PhysMemory, BuddyAllocator, PageTables) {
    let mut mem = PhysMemory::new(8192);
    let mut alloc = BuddyAllocator::new(FrameId(0), 8192);
    let pt = PageTables::new(&mut mem, &mut alloc);
    (mem, alloc, pt)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Mapping a set of distinct pages and walking them back recovers
    /// exactly the mapped frames; unmapped addresses never resolve.
    #[test]
    fn map_walk_roundtrip(pages in proptest::collection::hash_set(0u64..2048, 1..64)) {
        let (mut mem, mut alloc, mut pt) = setup();
        let mut expected = std::collections::HashMap::new();
        for &pg in &pages {
            let f = alloc.alloc().expect("frame");
            mem.info_mut(f).on_alloc(PageType::Anon);
            let va = VirtAddr(pg * PAGE_SIZE);
            pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT | PteFlags::USER);
            expected.insert(pg, f);
        }
        for pg in 0u64..2048 {
            let leaf = pt.leaf(&mem, VirtAddr(pg * PAGE_SIZE));
            match expected.get(&pg) {
                Some(&f) => {
                    let leaf = leaf.expect("mapped page must resolve");
                    prop_assert_eq!(leaf.pte.frame(), f);
                    prop_assert!(!leaf.huge);
                }
                None => prop_assert!(leaf.is_none(), "page {} must not resolve", pg),
            }
        }
    }

    /// Walk step counts: 4 for base pages, 3 for huge pages, always ≤ 4.
    #[test]
    fn walk_depth_matches_mapping_kind(huge_slot in 1u64..4, small_pg in 0u64..512) {
        let (mut mem, mut alloc, mut pt) = setup();
        // One huge mapping and one 4 KiB mapping in different PD slots.
        let hf = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(hf).on_alloc(PageType::Anon);
        let hva = VirtAddr(huge_slot * HUGE_PAGE_SIZE);
        pt.map_huge(&mut mem, &mut alloc, hva, hf, PteFlags::PRESENT);
        let sf = alloc.alloc().expect("frame");
        mem.info_mut(sf).on_alloc(PageType::Anon);
        let sva = VirtAddr(8 * HUGE_PAGE_SIZE + small_pg * PAGE_SIZE);
        pt.map_page(&mut mem, &mut alloc, sva, sf, PteFlags::PRESENT);
        let hw = pt.walk(&mem, VirtAddr(hva.0 + small_pg * PAGE_SIZE));
        prop_assert_eq!(hw.steps.len(), 3);
        prop_assert!(hw.leaf.expect("mapped").huge);
        let sw = pt.walk(&mem, sva);
        prop_assert_eq!(sw.steps.len(), 4);
        prop_assert!(!sw.leaf.expect("mapped").huge);
    }

    /// break_huge preserves every translation and permission; collapse_huge
    /// restores the huge mapping and frees the PT.
    #[test]
    fn break_collapse_roundtrip(probe in 0u64..512) {
        let (mut mem, mut alloc, mut pt) = setup();
        let hf = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(hf).on_alloc(PageType::Anon);
        let base = VirtAddr(2 * HUGE_PAGE_SIZE);
        pt.map_huge(&mut mem, &mut alloc, base, hf, PteFlags::PRESENT | PteFlags::WRITABLE);
        pt.break_huge(&mut mem, &mut alloc, base);
        let va = VirtAddr(base.0 + probe * PAGE_SIZE);
        let leaf = pt.leaf(&mem, va).expect("still mapped");
        prop_assert!(!leaf.huge);
        prop_assert_eq!(leaf.pte.frame(), FrameId(hf.0 + probe));
        prop_assert!(leaf.pte.has(PteFlags::WRITABLE));
        let free_before = alloc.free_frames();
        pt.collapse_huge(&mut mem, &mut alloc, base, hf, PteFlags::PRESENT | PteFlags::WRITABLE);
        prop_assert_eq!(alloc.free_frames(), free_before + 1, "PT frame must be freed");
        prop_assert!(pt.leaf(&mem, va).expect("mapped").huge);
    }

    /// PTE bit algebra: set/clear of arbitrary flag masks never disturbs
    /// the frame field.
    #[test]
    fn pte_flags_never_touch_frame(frame in 0u64..(1 << 30), set_res in any::<bool>(), set_pcd in any::<bool>()) {
        let mut pte = Pte::new(FrameId(frame), PteFlags::PRESENT);
        if set_res {
            pte = pte.set(PteFlags::RESERVED);
        }
        if set_pcd {
            pte = pte.set(PteFlags::NO_CACHE);
        }
        pte = pte.set(PteFlags::ACCESSED | PteFlags::DIRTY).clear(PteFlags::DIRTY);
        prop_assert_eq!(pte.frame(), FrameId(frame));
        prop_assert_eq!(pte.is_trapped(), set_res);
        prop_assert_eq!(pte.has(PteFlags::NO_CACHE), set_pcd);
        prop_assert!(!pte.has(PteFlags::DIRTY));
    }

    /// Accessed-bit tracking: set on map, cleared exactly once.
    #[test]
    fn accessed_bit_clears_once(pg in 0u64..1024) {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc().expect("frame");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(pg * PAGE_SIZE);
        pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT | PteFlags::ACCESSED);
        prop_assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(true));
        prop_assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(false));
        // Re-marking (a hardware walk) makes it observable again.
        let leaf = pt.leaf(&mem, va).expect("mapped");
        pt.set_leaf(&mut mem, va, leaf.pte.set(PteFlags::ACCESSED));
        prop_assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(true));
    }
}
