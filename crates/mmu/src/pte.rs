//! Page-table entries with x86-64 bit layout.
//!
//! The bits VUsion cares about:
//!
//! * `PRESENT` — VUsion deliberately does **not** clear it (§7.1: the
//!   present bit "is used for tracking memory pages in many places in
//!   Linux"); instead it sets a **reserved bit**, which the processor
//!   checks *before* permissions and faults on unconditionally.
//! * `PCD` (Caching Disabled) — set together with the reserved bit to stop
//!   the `prefetch` side channel (Gruss et al., CCS'16): a prefetch of an
//!   uncacheable page does not load it into the LLC.
//! * `ACCESSED` — hardware-set on every access; the substrate of the idle
//!   page tracking that VUsion's working-set estimation uses (§7.2).
//!
//! Both [`Pte`] and [`PteFlags`] keep their bit representation private:
//! every manipulation outside this crate goes through the typed accessors
//! below, so the reserved-bit trap and the permission bits that Table 1's
//! security conclusions rest on cannot be twiddled as anonymous `u64`s.
//! `vlint`'s P-rules enforce that the `bits`/`from_bits` escape hatches
//! stay inside `vusion-mmu`.

use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Not};

use vusion_mem::FrameId;

/// Typed flag bits of a PTE (x86-64 layout).
///
/// A `PteFlags` value is a mask; combine masks with `|`, intersect with
/// `&`, and remove bits with `& !mask`. Construction from raw integers is
/// only possible through [`PteFlags::from_bits`], which exists for the
/// crate's own entry decoding and for snapshot wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteFlags(u64);

impl PteFlags {
    /// The empty mask.
    pub const NONE: PteFlags = PteFlags(0);
    /// Entry is valid.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Writes allowed.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// User-mode access allowed.
    pub const USER: PteFlags = PteFlags(1 << 2);
    /// Caching disabled (PCD).
    pub const NO_CACHE: PteFlags = PteFlags(1 << 4);
    /// Hardware-set on access.
    pub const ACCESSED: PteFlags = PteFlags(1 << 5);
    /// Hardware-set on write.
    pub const DIRTY: PteFlags = PteFlags(1 << 6);
    /// Page size: this PD entry maps a 2 MiB page.
    pub const HUGE: PteFlags = PteFlags(1 << 7);
    /// A reserved bit (bit 51). Setting it makes the processor raise a page
    /// fault on any access, regardless of the permission bits — the trap
    /// mechanism S⊕F is built on.
    pub const RESERVED: PteFlags = PteFlags(1 << 51);
    /// No-execute.
    pub const NX: PteFlags = PteFlags(1 << 63);

    /// Physical-address bits 12..51.
    const ADDR_MASK: u64 = 0x0007_FFFF_FFFF_F000;
    /// All flag bits (everything that is not part of the frame address).
    const FLAG_MASK: u64 = !Self::ADDR_MASK;

    /// The raw bit pattern. Escape hatch for this crate's entry encoding
    /// and snapshot serialization; `vlint` rule P002 rejects uses outside
    /// `vusion-mmu`.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds a mask from raw bits, dropping anything that overlaps the
    /// frame-address field. Same policing as [`PteFlags::bits`].
    pub const fn from_bits(bits: u64) -> PteFlags {
        PteFlags(bits & Self::FLAG_MASK)
    }

    /// Whether every bit of `mask` is set in `self`.
    pub const fn contains(self, mask: PteFlags) -> bool {
        self.0 & mask.0 == mask.0
    }

    /// Whether any bit of `mask` is set in `self`.
    pub const fn intersects(self, mask: PteFlags) -> bool {
        self.0 & mask.0 != 0
    }

    /// Whether no flag bit is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for PteFlags {
    fn bitor_assign(&mut self, rhs: PteFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for PteFlags {
    type Output = PteFlags;
    fn bitand(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 & rhs.0)
    }
}

impl BitAndAssign for PteFlags {
    fn bitand_assign(&mut self, rhs: PteFlags) {
        self.0 &= rhs.0;
    }
}

impl Not for PteFlags {
    type Output = PteFlags;
    fn not(self) -> PteFlags {
        // Complement within the flag space: the address field never leaks
        // into a mask.
        PteFlags(!self.0 & Self::FLAG_MASK)
    }
}

/// A 64-bit page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(pub(crate) u64);

impl Pte {
    /// The zero (non-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Builds an entry pointing at `frame` with the given flags.
    ///
    /// # Panics
    ///
    /// Panics if the frame number does not fit the address field — the
    /// simulator's equivalent of handing the MMU a physical address the
    /// bus cannot carry.
    pub fn new(frame: FrameId, flags: PteFlags) -> Self {
        let addr = frame.0 << 12;
        assert_eq!(
            addr & !PteFlags::ADDR_MASK,
            0,
            "frame number too large for PTE"
        );
        Pte(addr | flags.0)
    }

    /// The frame this entry points to.
    pub fn frame(self) -> FrameId {
        FrameId((self.0 & PteFlags::ADDR_MASK) >> 12)
    }

    /// Replaces the frame, keeping all flags. Used by VUsion when
    /// re-randomizing the backing frame of a (fake-)merged page each scan.
    pub fn with_frame(self, frame: FrameId) -> Self {
        Pte::new(frame, self.flags())
    }

    /// The entry's flag bits as a typed mask.
    pub fn flags(self) -> PteFlags {
        PteFlags(self.0 & PteFlags::FLAG_MASK)
    }

    /// Whether all bits in `mask` are set.
    pub fn has(self, mask: PteFlags) -> bool {
        self.flags().contains(mask)
    }

    /// Returns a copy with `mask` set.
    pub fn set(self, mask: PteFlags) -> Self {
        Pte(self.0 | mask.0)
    }

    /// Returns a copy with `mask` cleared.
    pub fn clear(self, mask: PteFlags) -> Self {
        Pte(self.0 & !mask.0)
    }

    /// Present and not reserved-trapped: a plain access succeeds if
    /// permissions allow.
    pub fn is_present(self) -> bool {
        self.has(PteFlags::PRESENT)
    }

    /// Whether the entry traps on any access (reserved bit set).
    pub fn is_trapped(self) -> bool {
        self.has(PteFlags::RESERVED)
    }

    /// Whether this is the completely empty entry.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw 64-bit word, exactly as it sits in the table frame. Only
    /// for wire formats (snapshots); `vlint` rule P002 rejects uses
    /// outside `vusion-mmu`.
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Rebuilds an entry from its raw word. Same policing as
    /// [`Pte::to_bits`].
    pub const fn from_bits(bits: u64) -> Pte {
        Pte(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let pte = Pte::new(FrameId(0x1234), PteFlags::PRESENT | PteFlags::WRITABLE);
        assert_eq!(pte.frame(), FrameId(0x1234));
        assert!(pte.has(PteFlags::PRESENT));
        assert!(pte.has(PteFlags::WRITABLE));
        assert!(!pte.has(PteFlags::NX));
    }

    #[test]
    fn reserved_bit_is_outside_address_field() {
        let pte = Pte::new(
            FrameId(0xF_FFFF_FFFF),
            PteFlags::RESERVED | PteFlags::PRESENT,
        );
        assert_eq!(pte.frame(), FrameId(0xF_FFFF_FFFF));
        assert!(pte.is_trapped());
        assert!(pte.is_present(), "VUsion keeps PRESENT set while trapping");
    }

    #[test]
    fn with_frame_keeps_flags() {
        let pte = Pte::new(
            FrameId(1),
            PteFlags::PRESENT | PteFlags::NO_CACHE | PteFlags::RESERVED,
        );
        let moved = pte.with_frame(FrameId(99));
        assert_eq!(moved.frame(), FrameId(99));
        assert_eq!(moved.flags(), pte.flags());
    }

    #[test]
    fn set_and_clear() {
        let pte = Pte::new(FrameId(5), PteFlags::PRESENT);
        let a = pte.set(PteFlags::ACCESSED | PteFlags::DIRTY);
        assert!(a.has(PteFlags::ACCESSED));
        let c = a.clear(PteFlags::ACCESSED);
        assert!(!c.has(PteFlags::ACCESSED));
        assert!(c.has(PteFlags::DIRTY));
        assert_eq!(c.frame(), FrameId(5));
    }

    #[test]
    fn empty_entry() {
        assert!(Pte::EMPTY.is_empty());
        assert!(!Pte::EMPTY.is_present());
        assert!(!Pte(4).is_empty());
    }

    #[test]
    fn mask_complement_stays_in_flag_space() {
        let f = !PteFlags::HUGE;
        assert!(!f.contains(PteFlags::HUGE));
        assert!(f.contains(PteFlags::PRESENT | PteFlags::RESERVED | PteFlags::NX));
        assert_eq!(f.bits() & PteFlags::ADDR_MASK, 0, "address bits never leak");
        // Clearing through a complemented mask keeps the frame intact.
        let pte = Pte::new(FrameId(7), PteFlags::PRESENT | PteFlags::HUGE);
        let cleared = Pte::new(FrameId(7), pte.flags() & !PteFlags::HUGE);
        assert_eq!(cleared.frame(), FrameId(7));
        assert!(!cleared.has(PteFlags::HUGE));
        assert!(cleared.has(PteFlags::PRESENT));
    }

    #[test]
    fn from_bits_drops_address_bits() {
        let f = PteFlags::from_bits(u64::MAX);
        assert_eq!(f.bits() & PteFlags::ADDR_MASK, 0);
        assert!(f.contains(PteFlags::PRESENT | PteFlags::NX | PteFlags::RESERVED));
        assert_eq!(Pte::from_bits(0x1234_5007).to_bits(), 0x1234_5007);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_frame_rejected() {
        let _ = Pte::new(FrameId(1 << 40), PteFlags::PRESENT);
    }
}
