//! Page-table entries with x86-64 bit layout.
//!
//! The bits VUsion cares about:
//!
//! * `PRESENT` — VUsion deliberately does **not** clear it (§7.1: the
//!   present bit "is used for tracking memory pages in many places in
//!   Linux"); instead it sets a **reserved bit**, which the processor
//!   checks *before* permissions and faults on unconditionally.
//! * `PCD` (Caching Disabled) — set together with the reserved bit to stop
//!   the `prefetch` side channel (Gruss et al., CCS'16): a prefetch of an
//!   uncacheable page does not load it into the LLC.
//! * `ACCESSED` — hardware-set on every access; the substrate of the idle
//!   page tracking that VUsion's working-set estimation uses (§7.2).

use vusion_mem::FrameId;

/// Flag bits of a PTE (x86-64 layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteFlags(pub u64);

impl PteFlags {
    /// Entry is valid.
    pub const PRESENT: u64 = 1 << 0;
    /// Writes allowed.
    pub const WRITABLE: u64 = 1 << 1;
    /// User-mode access allowed.
    pub const USER: u64 = 1 << 2;
    /// Caching disabled (PCD).
    pub const NO_CACHE: u64 = 1 << 4;
    /// Hardware-set on access.
    pub const ACCESSED: u64 = 1 << 5;
    /// Hardware-set on write.
    pub const DIRTY: u64 = 1 << 6;
    /// Page size: this PD entry maps a 2 MiB page.
    pub const HUGE: u64 = 1 << 7;
    /// A reserved bit (bit 51). Setting it makes the processor raise a page
    /// fault on any access, regardless of the permission bits — the trap
    /// mechanism S⊕F is built on.
    pub const RESERVED: u64 = 1 << 51;
    /// No-execute.
    pub const NX: u64 = 1 << 63;

    /// All flag bits (everything that is not part of the frame address).
    const FLAG_MASK: u64 = !Self::ADDR_MASK;
    /// Physical-address bits 12..51.
    const ADDR_MASK: u64 = 0x0007_FFFF_FFFF_F000;
}

/// A 64-bit page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(pub u64);

impl Pte {
    /// The zero (non-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Builds an entry pointing at `frame` with the given flag bits.
    ///
    /// # Panics
    ///
    /// Panics if the frame number does not fit the address field.
    pub fn new(frame: FrameId, flags: u64) -> Self {
        let addr = frame.0 << 12;
        assert_eq!(
            addr & !PteFlags::ADDR_MASK,
            0,
            "frame number too large for PTE"
        );
        assert_eq!(
            flags & PteFlags::ADDR_MASK,
            0,
            "flags overlap address field"
        );
        Pte(addr | flags)
    }

    /// The frame this entry points to.
    pub fn frame(self) -> FrameId {
        FrameId((self.0 & PteFlags::ADDR_MASK) >> 12)
    }

    /// Replaces the frame, keeping all flags. Used by VUsion when
    /// re-randomizing the backing frame of a (fake-)merged page each scan.
    pub fn with_frame(self, frame: FrameId) -> Self {
        Pte::new(frame, self.0 & PteFlags::FLAG_MASK)
    }

    /// Raw flag bits.
    pub fn flags(self) -> u64 {
        self.0 & PteFlags::FLAG_MASK
    }

    /// Whether all bits in `mask` are set.
    pub fn has(self, mask: u64) -> bool {
        self.0 & mask == mask
    }

    /// Returns a copy with `mask` set.
    pub fn set(self, mask: u64) -> Self {
        Pte(self.0 | mask)
    }

    /// Returns a copy with `mask` cleared.
    pub fn clear(self, mask: u64) -> Self {
        Pte(self.0 & !mask)
    }

    /// Present and not reserved-trapped: a plain access succeeds if
    /// permissions allow.
    pub fn is_present(self) -> bool {
        self.has(PteFlags::PRESENT)
    }

    /// Whether the entry traps on any access (reserved bit set).
    pub fn is_trapped(self) -> bool {
        self.has(PteFlags::RESERVED)
    }

    /// Whether this is the completely empty entry.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let pte = Pte::new(FrameId(0x1234), PteFlags::PRESENT | PteFlags::WRITABLE);
        assert_eq!(pte.frame(), FrameId(0x1234));
        assert!(pte.has(PteFlags::PRESENT));
        assert!(pte.has(PteFlags::WRITABLE));
        assert!(!pte.has(PteFlags::NX));
    }

    #[test]
    fn reserved_bit_is_outside_address_field() {
        let pte = Pte::new(
            FrameId(0xF_FFFF_FFFF),
            PteFlags::RESERVED | PteFlags::PRESENT,
        );
        assert_eq!(pte.frame(), FrameId(0xF_FFFF_FFFF));
        assert!(pte.is_trapped());
        assert!(pte.is_present(), "VUsion keeps PRESENT set while trapping");
    }

    #[test]
    fn with_frame_keeps_flags() {
        let pte = Pte::new(
            FrameId(1),
            PteFlags::PRESENT | PteFlags::NO_CACHE | PteFlags::RESERVED,
        );
        let moved = pte.with_frame(FrameId(99));
        assert_eq!(moved.frame(), FrameId(99));
        assert_eq!(moved.flags(), pte.flags());
    }

    #[test]
    fn set_and_clear() {
        let pte = Pte::new(FrameId(5), PteFlags::PRESENT);
        let a = pte.set(PteFlags::ACCESSED | PteFlags::DIRTY);
        assert!(a.has(PteFlags::ACCESSED));
        let c = a.clear(PteFlags::ACCESSED);
        assert!(!c.has(PteFlags::ACCESSED));
        assert!(c.has(PteFlags::DIRTY));
        assert_eq!(c.frame(), FrameId(5));
    }

    #[test]
    fn empty_entry() {
        assert!(Pte::EMPTY.is_empty());
        assert!(!Pte::EMPTY.is_present());
        assert!(!Pte(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_frame_rejected() {
        let _ = Pte::new(FrameId(1 << 40), PteFlags::PRESENT);
    }
}
