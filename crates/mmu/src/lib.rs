//! x86-64-style MMU simulation.
//!
//! VUsion's two central mechanisms are implemented *in the page tables*:
//!
//! * **S⊕F (share xor fetch)** removes *all* access to pages under fusion
//!   consideration by setting a **reserved bit** in their PTEs — the
//!   processor faults on any access regardless of permission bits — plus the
//!   **Caching Disabled** (PCD) bit to defeat `prefetch`-based side channels
//!   (§7.1).
//! * The **translation attack** (§5.1) observes whether a virtual address is
//!   mapped by a 2 MiB or a 4 KiB PTE through the depth of the page-table
//!   walk; VUsion's THP handling (§8) exists to close it.
//!
//! Both require real page tables, so this crate implements them as actual
//! little-endian u64 entries living inside simulated physical frames, with
//! 4-level walks that report every physical address they touch (the kernel
//! crate routes those through the LLC model, which is what makes AnC-style
//! attacks observable).

pub mod pte;
pub mod space;
pub mod tables;
pub mod tlb;
pub mod vma;

pub use pte::{Pte, PteFlags};
pub use space::AddressSpace;
pub use tables::{LeafInfo, PageTables, Walk};
pub use tlb::{Tlb, TlbEntry};
pub use vma::{GuestTag, Protection, Vma, VmaBacking};
