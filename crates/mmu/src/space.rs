//! A per-process address space: VMA list plus page tables.

use vusion_mem::{FrameAllocator, MmError, PhysMemory, VirtAddr};

use crate::tables::PageTables;
use crate::vma::Vma;

/// One process's (or one VM's) virtual address space.
pub struct AddressSpace {
    tables: PageTables,
    vmas: Vec<Vma>,
    layout_gen: u64,
}

impl AddressSpace {
    /// Creates an empty address space (allocates the PML4), or reports
    /// [`MmError::OutOfFrames`].
    pub fn new(mem: &mut PhysMemory, alloc: &mut dyn FrameAllocator) -> Result<Self, MmError> {
        Ok(Self {
            tables: PageTables::new(mem, alloc)?,
            vmas: Vec::new(),
            layout_gen: 0,
        })
    }

    /// Layout generation: bumped whenever the VMA list or its mergeable
    /// marking changes. Scanners key their cached candidate lists on this
    /// so they only re-enumerate after an `mmap`/`madvise`, not on every
    /// scan.
    pub fn layout_generation(&self) -> u64 {
        self.layout_gen
    }

    /// The page tables.
    pub fn tables(&self) -> &PageTables {
        &self.tables
    }

    /// The page tables, mutably.
    pub fn tables_mut(&mut self) -> &mut PageTables {
        &mut self.tables
    }

    /// Adds a VMA (an `mmap` call).
    ///
    /// # Panics
    ///
    /// Panics if the area overlaps an existing VMA.
    pub fn add_vma(&mut self, vma: Vma) {
        assert!(
            !self.vmas.iter().any(|v| v.overlaps(&vma)),
            "VMA overlap at {:?}",
            vma.start
        );
        self.vmas.push(vma);
        self.vmas.sort_by_key(|v| v.start.0);
        self.layout_gen += 1;
    }

    /// The VMA containing `va`, if any.
    pub fn find_vma(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(va))
    }

    /// All VMAs, sorted by start address.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Marks every VMA intersecting `[start, start + pages)` as mergeable —
    /// the `madvise(MADV_MERGEABLE)` registration KSM requires (§2.1).
    /// Returns how many VMAs were registered.
    pub fn madvise_mergeable(&mut self, start: VirtAddr, pages: u64) -> usize {
        let probe = Vma::anon(
            start.page_base(),
            pages.max(1),
            crate::vma::Protection::ro(),
        );
        let mut n = 0;
        for v in &mut self.vmas {
            if v.overlaps(&probe) && !v.mergeable {
                v.mergeable = true;
                n += 1;
            }
        }
        if n > 0 {
            self.layout_gen += 1;
        }
        n
    }

    /// All mergeable VMAs (the fusion scanner's candidate list).
    pub fn mergeable_vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.iter().filter(|v| v.mergeable)
    }

    /// Serializes the space: root table frame, VMA list, layout
    /// generation. The table frames themselves are physical memory and
    /// travel with the [`PhysMemory`] snapshot.
    pub fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u64(self.tables.root().0);
        w.usize(self.vmas.len());
        for v in &self.vmas {
            v.save(w);
        }
        w.u64(self.layout_gen);
    }

    /// Rebuilds a space previously written by [`Self::save`]. No frames
    /// are allocated: the recorded root must already be live in the
    /// restored physical memory.
    pub fn load(
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        let root = vusion_mem::FrameId(r.u64()?);
        let n = r.usize()?;
        let mut vmas = Vec::with_capacity(n);
        for _ in 0..n {
            vmas.push(Vma::load(r)?);
        }
        Ok(Self {
            tables: PageTables::from_root(root),
            vmas,
            layout_gen: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vma::Protection;
    use vusion_mem::{BuddyAllocator, FrameId};

    fn setup() -> (PhysMemory, BuddyAllocator, AddressSpace) {
        let mut mem = PhysMemory::new(1024);
        let mut alloc = BuddyAllocator::new(FrameId(0), 1024);
        let sp = AddressSpace::new(&mut mem, &mut alloc).expect("address space");
        (mem, alloc, sp)
    }

    #[test]
    fn vma_lookup() {
        let (_m, _a, mut sp) = setup();
        sp.add_vma(Vma::anon(VirtAddr(0x1000), 4, Protection::rw()));
        sp.add_vma(Vma::anon(VirtAddr(0x10000), 4, Protection::ro()));
        assert!(sp.find_vma(VirtAddr(0x2000)).is_some());
        assert!(sp.find_vma(VirtAddr(0x9000)).is_none());
        assert_eq!(sp.vmas().len(), 2);
    }

    #[test]
    fn vmas_stay_sorted() {
        let (_m, _a, mut sp) = setup();
        sp.add_vma(Vma::anon(VirtAddr(0x10000), 1, Protection::rw()));
        sp.add_vma(Vma::anon(VirtAddr(0x1000), 1, Protection::rw()));
        assert_eq!(sp.vmas()[0].start, VirtAddr(0x1000));
    }

    #[test]
    fn madvise_marks_overlapping_vmas() {
        let (_m, _a, mut sp) = setup();
        sp.add_vma(Vma::anon(VirtAddr(0x1000), 4, Protection::rw()));
        sp.add_vma(Vma::anon(VirtAddr(0x10000), 4, Protection::rw()));
        let n = sp.madvise_mergeable(VirtAddr(0x2000), 2);
        assert_eq!(n, 1);
        assert_eq!(sp.mergeable_vmas().count(), 1);
        assert!(sp.find_vma(VirtAddr(0x1000)).expect("vma").mergeable);
        assert!(!sp.find_vma(VirtAddr(0x10000)).expect("vma").mergeable);
    }

    #[test]
    fn layout_generation_tracks_mutations() {
        let (_m, _a, mut sp) = setup();
        let g0 = sp.layout_generation();
        sp.add_vma(Vma::anon(VirtAddr(0x1000), 4, Protection::rw()));
        let g1 = sp.layout_generation();
        assert!(g1 > g0);
        assert_eq!(sp.madvise_mergeable(VirtAddr(0x1000), 4), 1);
        let g2 = sp.layout_generation();
        assert!(g2 > g1);
        // A no-op madvise leaves the candidate set unchanged.
        assert_eq!(sp.madvise_mergeable(VirtAddr(0x1000), 4), 0);
        assert_eq!(sp.layout_generation(), g2);
    }

    #[test]
    fn madvise_is_idempotent() {
        let (_m, _a, mut sp) = setup();
        sp.add_vma(Vma::anon(VirtAddr(0x1000), 4, Protection::rw()));
        assert_eq!(sp.madvise_mergeable(VirtAddr(0x1000), 4), 1);
        assert_eq!(sp.madvise_mergeable(VirtAddr(0x1000), 4), 0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_vma_panics() {
        let (_m, _a, mut sp) = setup();
        sp.add_vma(Vma::anon(VirtAddr(0x1000), 4, Protection::rw()));
        sp.add_vma(Vma::anon(VirtAddr(0x3000), 4, Protection::rw()));
    }
}
