//! Virtual memory areas.
//!
//! §2.1: "VMAs are contiguous areas of virtual memory and the (virtual)
//! memory pages that belong to the same VMA share certain properties such
//! as permissions. [...] user processes that want page fusion should inform
//! KSM via an madvise system call" — registration happens at VMA
//! granularity, and the KSM scanner iterates registered VMAs round-robin.

use vusion_mem::{VirtAddr, PAGE_SIZE};

/// Access permissions of a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protection {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Protection {
    /// Read+write, the common anonymous-memory protection.
    pub fn rw() -> Self {
        Self {
            read: true,
            write: true,
            exec: false,
        }
    }

    /// Read-only.
    pub fn ro() -> Self {
        Self {
            read: true,
            write: false,
            exec: false,
        }
    }

    /// Read+execute (library text).
    pub fn rx() -> Self {
        Self {
            read: true,
            write: false,
            exec: true,
        }
    }
}

/// What backs a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaBacking {
    /// Anonymous memory (demand-zero).
    Anon,
    /// File-backed memory served through the page cache; the id names the
    /// simulated file.
    File {
        /// Simulated file identifier.
        file_id: u64,
        /// Page offset of the mapping within the file.
        offset_pages: u64,
    },
}

/// What a region means *inside the guest*, for the paper's Table 3
/// accounting ("page cache", "buddy", "kernel", "rest"). A KVM host sees
/// all guest memory as anonymous; the guest-side classification determines
/// where fusion opportunities come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GuestTag {
    /// Unclassified ("rest" in Table 3).
    #[default]
    Other,
    /// Guest page-cache contents (the largest fusion contributor).
    PageCache,
    /// Pages sitting free in the guest's buddy allocator (stale, often
    /// duplicate content).
    GuestBuddy,
    /// Guest kernel memory.
    GuestKernel,
}

/// A contiguous virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First address (page aligned).
    pub start: VirtAddr,
    /// Length in 4 KiB pages.
    pub pages: u64,
    /// Access permissions.
    pub prot: Protection,
    /// Whether the owner registered this area for fusion
    /// (`madvise(MADV_MERGEABLE)`).
    pub mergeable: bool,
    /// Backing store.
    pub backing: VmaBacking,
    /// Guest-side classification (Table 3).
    pub tag: GuestTag,
    /// Whether transparent huge pages may back this area
    /// (`madvise(MADV_NOHUGEPAGE)` clears it).
    pub thp_eligible: bool,
}

impl Vma {
    /// Creates an anonymous, non-mergeable VMA.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not page aligned or `pages == 0`.
    pub fn anon(start: VirtAddr, pages: u64, prot: Protection) -> Self {
        assert_eq!(start.page_offset(), 0, "VMA start must be page aligned");
        assert!(pages > 0, "empty VMA");
        Self {
            start,
            pages,
            prot,
            mergeable: false,
            backing: VmaBacking::Anon,
            tag: GuestTag::default(),
            thp_eligible: true,
        }
    }

    /// Creates a file-backed VMA.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not page aligned or `pages == 0`.
    pub fn file(
        start: VirtAddr,
        pages: u64,
        prot: Protection,
        file_id: u64,
        offset_pages: u64,
    ) -> Self {
        assert_eq!(start.page_offset(), 0, "VMA start must be page aligned");
        assert!(pages > 0, "empty VMA");
        Self {
            start,
            pages,
            prot,
            mergeable: false,
            backing: VmaBacking::File {
                file_id,
                offset_pages,
            },
            tag: GuestTag::default(),
            thp_eligible: true,
        }
    }

    /// Disables THP backing for this area (`MADV_NOHUGEPAGE`).
    pub fn no_thp(mut self) -> Self {
        self.thp_eligible = false;
        self
    }

    /// Sets the guest-side classification (builder style).
    pub fn with_tag(mut self, tag: GuestTag) -> Self {
        self.tag = tag;
        self
    }

    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.start.0 + self.pages * PAGE_SIZE)
    }

    /// Whether `va` falls inside this area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va.0 >= self.start.0 && va.0 < self.end().0
    }

    /// Whether this area overlaps another.
    pub fn overlaps(&self, other: &Vma) -> bool {
        self.start.0 < other.end().0 && other.start.0 < self.end().0
    }

    /// Iterator over the page base addresses of the area.
    pub fn page_addrs(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        (0..self.pages).map(move |i| VirtAddr(self.start.0 + i * PAGE_SIZE))
    }

    /// Serializes the area into a snapshot payload.
    pub fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u64(self.start.0);
        w.u64(self.pages);
        w.bool(self.prot.read);
        w.bool(self.prot.write);
        w.bool(self.prot.exec);
        w.bool(self.mergeable);
        match self.backing {
            VmaBacking::Anon => w.u8(0),
            VmaBacking::File {
                file_id,
                offset_pages,
            } => {
                w.u8(1);
                w.u64(file_id);
                w.u64(offset_pages);
            }
        }
        w.u8(match self.tag {
            GuestTag::Other => 0,
            GuestTag::PageCache => 1,
            GuestTag::GuestBuddy => 2,
            GuestTag::GuestKernel => 3,
        });
        w.bool(self.thp_eligible);
    }

    /// Reads an area previously written by [`Self::save`].
    pub fn load(
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<Self, vusion_snapshot::SnapshotError> {
        use vusion_snapshot::SnapshotError;
        let start = VirtAddr(r.u64()?);
        let pages = r.u64()?;
        let prot = Protection {
            read: r.bool()?,
            write: r.bool()?,
            exec: r.bool()?,
        };
        let mergeable = r.bool()?;
        let backing = match r.u8()? {
            0 => VmaBacking::Anon,
            1 => VmaBacking::File {
                file_id: r.u64()?,
                offset_pages: r.u64()?,
            },
            _ => return Err(SnapshotError::Corrupt("vma backing")),
        };
        let tag = match r.u8()? {
            0 => GuestTag::Other,
            1 => GuestTag::PageCache,
            2 => GuestTag::GuestBuddy,
            3 => GuestTag::GuestKernel,
            _ => return Err(SnapshotError::Corrupt("guest tag")),
        };
        let thp_eligible = r.bool()?;
        if start.page_offset() != 0 || pages == 0 {
            return Err(SnapshotError::Corrupt("vma geometry"));
        }
        Ok(Self {
            start,
            pages,
            prot,
            mergeable,
            backing,
            tag,
            thp_eligible,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_end() {
        let v = Vma::anon(VirtAddr(0x1000), 2, Protection::rw());
        assert!(v.contains(VirtAddr(0x1000)));
        assert!(v.contains(VirtAddr(0x2fff)));
        assert!(!v.contains(VirtAddr(0x3000)));
        assert_eq!(v.end(), VirtAddr(0x3000));
    }

    #[test]
    fn overlap_detection() {
        let a = Vma::anon(VirtAddr(0x1000), 2, Protection::rw());
        let b = Vma::anon(VirtAddr(0x2000), 2, Protection::rw());
        let c = Vma::anon(VirtAddr(0x3000), 1, Protection::rw());
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn page_addrs_enumerates_pages() {
        let v = Vma::anon(VirtAddr(0x4000), 3, Protection::ro());
        let pages: Vec<_> = v.page_addrs().collect();
        assert_eq!(
            pages,
            vec![VirtAddr(0x4000), VirtAddr(0x5000), VirtAddr(0x6000)]
        );
    }

    #[test]
    fn file_backing_carries_offset() {
        let v = Vma::file(VirtAddr(0x8000), 4, Protection::rx(), 7, 16);
        assert_eq!(
            v.backing,
            VmaBacking::File {
                file_id: 7,
                offset_pages: 16
            }
        );
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_start_panics() {
        let _ = Vma::anon(VirtAddr(0x1001), 1, Protection::rw());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zero_pages_panics() {
        let _ = Vma::anon(VirtAddr(0x1000), 0, Protection::rw());
    }
}
