//! A translation lookaside buffer.
//!
//! The TLB matters to the reproduction in two ways: performance (huge pages
//! exist to reduce TLB misses — the entire motivation of §8) and security
//! (a TLB hit skips the page-table walk, so the AnC attack needs the walk
//! entries evicted; the paper's §5.3 also mentions TLB-based side channels).

use std::collections::BTreeMap;

use vusion_mem::{FrameId, VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE};

use crate::pte::Pte;

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The leaf PTE at fill time.
    pub pte: Pte,
    /// Whether it is a 2 MiB translation.
    pub huge: bool,
}

/// Fully associative TLB with FIFO replacement and separate 4 KiB / 2 MiB
/// arrays (like real x86 STLBs, modeled simply).
pub struct Tlb {
    cap_4k: usize,
    cap_2m: usize,
    map_4k: BTreeMap<u64, TlbEntry>,
    fifo_4k: Vec<u64>,
    map_2m: BTreeMap<u64, TlbEntry>,
    fifo_2m: Vec<u64>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    flushes: u64,
}

impl Tlb {
    /// Creates a TLB with the given entry counts.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(cap_4k: usize, cap_2m: usize) -> Self {
        assert!(cap_4k > 0 && cap_2m > 0, "TLB capacities must be positive");
        Self {
            cap_4k,
            cap_2m,
            map_4k: BTreeMap::new(),
            fifo_4k: Vec::new(),
            map_2m: BTreeMap::new(),
            fifo_2m: Vec::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
            flushes: 0,
        }
    }

    /// A typical size: 1536 4 KiB entries, 32 2 MiB entries.
    pub fn skylake() -> Self {
        Self::new(1536, 32)
    }

    /// Looks up `va`; counts a hit or miss.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        if let Some(e) = self.map_2m.get(&(va.0 / HUGE_PAGE_SIZE)) {
            self.hits += 1;
            return Some(*e);
        }
        if let Some(e) = self.map_4k.get(&va.page()) {
            self.hits += 1;
            return Some(*e);
        }
        self.misses += 1;
        None
    }

    /// Inserts a translation after a successful walk.
    pub fn fill(&mut self, va: VirtAddr, entry: TlbEntry) -> Option<TlbEntry> {
        if entry.huge {
            let key = va.0 / HUGE_PAGE_SIZE;
            if self.map_2m.insert(key, entry).is_none() {
                self.fifo_2m.push(key);
                if self.fifo_2m.len() > self.cap_2m {
                    let evict = self.fifo_2m.remove(0);
                    return self.map_2m.remove(&evict);
                }
            }
        } else {
            let key = va.page();
            if self.map_4k.insert(key, entry).is_none() {
                self.fifo_4k.push(key);
                if self.fifo_4k.len() > self.cap_4k {
                    let evict = self.fifo_4k.remove(0);
                    return self.map_4k.remove(&evict);
                }
            }
        }
        None
    }

    /// Iterates every resident entry (4 KiB then 2 MiB, each in key
    /// order). Read-only — snapshot-time occupancy walks use this.
    pub fn entries(&self) -> impl Iterator<Item = &TlbEntry> {
        self.map_4k.values().chain(self.map_2m.values())
    }

    /// Invalidates any translation covering `va` (`invlpg`).
    pub fn invalidate(&mut self, va: VirtAddr) {
        self.invalidations += 1;
        if self.map_4k.remove(&va.page()).is_some() {
            self.fifo_4k.retain(|&k| k != va.page());
        }
        let hk = va.0 / HUGE_PAGE_SIZE;
        if self.map_2m.remove(&hk).is_some() {
            self.fifo_2m.retain(|&k| k != hk);
        }
    }

    /// Flushes everything (CR3 reload).
    pub fn flush(&mut self) {
        self.flushes += 1;
        self.map_4k.clear();
        self.fifo_4k.clear();
        self.map_2m.clear();
        self.fifo_2m.clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(invalidations, full flushes)` — the shootdown traffic the
    /// observability layer reports (`invlpg` per PTE rewrite, CR3 reloads
    /// on THP breaks and process switches).
    pub fn event_counts(&self) -> (u64, u64) {
        (self.invalidations, self.flushes)
    }

    /// The frame a cached translation resolves `va` to (test helper).
    pub fn translate_frame(&mut self, va: VirtAddr) -> Option<FrameId> {
        let e = self.lookup(va)?;
        if e.huge {
            let offset_pages = (va.0 % HUGE_PAGE_SIZE) / PAGE_SIZE;
            Some(FrameId(e.pte.frame().0 + offset_pages))
        } else {
            Some(e.pte.frame())
        }
    }
}

impl vusion_snapshot::Snapshot for Tlb {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.usize(self.cap_4k);
        w.usize(self.cap_2m);
        // Entries travel in FIFO order; the maps contain exactly the FIFO
        // keys, so this round-trips both content and eviction order.
        w.usize(self.fifo_4k.len());
        for &k in &self.fifo_4k {
            w.u64(k);
            let e = self.map_4k.get(&k).copied().unwrap_or(TlbEntry {
                pte: Pte(0),
                huge: false,
            });
            w.u64(e.pte.0);
        }
        w.usize(self.fifo_2m.len());
        for &k in &self.fifo_2m {
            w.u64(k);
            let e = self.map_2m.get(&k).copied().unwrap_or(TlbEntry {
                pte: Pte(0),
                huge: true,
            });
            w.u64(e.pte.0);
        }
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.invalidations);
        w.u64(self.flushes);
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        self.cap_4k = r.usize()?;
        self.cap_2m = r.usize()?;
        self.flush();
        let n = r.usize()?;
        for _ in 0..n {
            let k = r.u64()?;
            let pte = Pte(r.u64()?);
            self.fifo_4k.push(k);
            self.map_4k.insert(k, TlbEntry { pte, huge: false });
        }
        let n = r.usize()?;
        for _ in 0..n {
            let k = r.u64()?;
            let pte = Pte(r.u64()?);
            self.fifo_2m.push(k);
            self.map_2m.insert(k, TlbEntry { pte, huge: true });
        }
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        self.invalidations = r.u64()?;
        self.flushes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;

    fn entry(frame: u64, huge: bool) -> TlbEntry {
        TlbEntry {
            pte: Pte::new(FrameId(frame), PteFlags::PRESENT),
            huge,
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut t = Tlb::new(4, 4);
        assert!(t.lookup(VirtAddr(0x1000)).is_none());
        t.fill(VirtAddr(0x1000), entry(7, false));
        assert_eq!(
            t.lookup(VirtAddr(0x1234)).expect("hit").pte.frame(),
            FrameId(7)
        );
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn huge_entry_covers_2m() {
        let mut t = Tlb::new(4, 4);
        t.fill(VirtAddr(HUGE_PAGE_SIZE), entry(512, true));
        assert!(t
            .lookup(VirtAddr(HUGE_PAGE_SIZE + 123 * PAGE_SIZE))
            .is_some());
        assert_eq!(
            t.translate_frame(VirtAddr(HUGE_PAGE_SIZE + 123 * PAGE_SIZE)),
            Some(FrameId(512 + 123))
        );
    }

    #[test]
    fn fifo_eviction() {
        let mut t = Tlb::new(2, 2);
        t.fill(VirtAddr(0x1000), entry(1, false));
        t.fill(VirtAddr(0x2000), entry(2, false));
        t.fill(VirtAddr(0x3000), entry(3, false));
        assert!(t.lookup(VirtAddr(0x1000)).is_none(), "oldest evicted");
        assert!(t.lookup(VirtAddr(0x2000)).is_some());
        assert!(t.lookup(VirtAddr(0x3000)).is_some());
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut t = Tlb::new(4, 4);
        t.fill(VirtAddr(0x1000), entry(1, false));
        t.invalidate(VirtAddr(0x1000));
        assert!(t.lookup(VirtAddr(0x1000)).is_none());
    }

    #[test]
    fn flush_clears_all() {
        let mut t = Tlb::new(4, 4);
        t.fill(VirtAddr(0x1000), entry(1, false));
        t.fill(VirtAddr(HUGE_PAGE_SIZE * 4), entry(1024, true));
        t.flush();
        assert!(t.lookup(VirtAddr(0x1000)).is_none());
        assert!(t.lookup(VirtAddr(HUGE_PAGE_SIZE * 4)).is_none());
    }

    #[test]
    fn event_counts_track_shootdowns_and_flushes() {
        let mut t = Tlb::new(4, 4);
        t.fill(VirtAddr(0x1000), entry(1, false));
        t.invalidate(VirtAddr(0x1000));
        t.invalidate(VirtAddr(0x2000)); // Counts even when nothing is cached.
        t.flush();
        assert_eq!(t.event_counts(), (2, 1));
    }

    #[test]
    fn refill_does_not_duplicate_fifo() {
        let mut t = Tlb::new(2, 2);
        t.fill(VirtAddr(0x1000), entry(1, false));
        t.fill(VirtAddr(0x1000), entry(9, false));
        t.fill(VirtAddr(0x2000), entry(2, false));
        // Capacity 2: both entries must still be present.
        assert_eq!(
            t.lookup(VirtAddr(0x1000)).expect("hit").pte.frame(),
            FrameId(9)
        );
        assert!(t.lookup(VirtAddr(0x2000)).is_some());
    }
}
