//! Four-level page tables stored in simulated physical frames.
//!
//! Table entries are little-endian u64s written into [`PhysMemory`], so a
//! page walk is a sequence of real physical reads. [`Walk::steps`] exposes
//! every address a walk touched; the kernel routes them through the LLC,
//! which is precisely what the AnC translation attack (§5.1) measures: a
//! 2 MiB mapping touches three table levels, a 4 KiB mapping four.
//!
//! All mutating operations are fallible: table allocation propagates
//! [`MmError::OutOfFrames`] from the frame allocator, and structurally
//! invalid requests (remapping a mapped page, unmapping an unmapped one,
//! huge operations at unaligned or wrongly-populated slots) surface as
//! [`MmError::BadPageTable`] instead of aborting the simulation.

use vusion_mem::{FrameAllocator, FrameId, MmError, PageType, PhysAddr, PhysMemory, VirtAddr};

use crate::pte::{Pte, PteFlags};

/// Information about the leaf entry that maps an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafInfo {
    /// The leaf entry.
    pub pte: Pte,
    /// Physical address of the entry itself (inside a table frame).
    pub entry_addr: PhysAddr,
    /// Whether the mapping is a 2 MiB huge page.
    pub huge: bool,
}

/// Result of a page walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Physical addresses of every table entry read, in order (PML4 first).
    pub steps: Vec<PhysAddr>,
    /// The leaf mapping, if the walk reached one. `None` means the walk hit
    /// a non-present intermediate entry or an empty leaf.
    pub leaf: Option<LeafInfo>,
}

/// A 4-level page-table tree rooted at a PML4 frame.
pub struct PageTables {
    root: FrameId,
}

/// Flags given to intermediate (non-leaf) table entries.
const TABLE_FLAGS: PteFlags = PteFlags::from_bits(
    PteFlags::PRESENT.bits() | PteFlags::WRITABLE.bits() | PteFlags::USER.bits(),
);

impl PageTables {
    /// Allocates an empty PML4, or reports [`MmError::OutOfFrames`].
    pub fn new(mem: &mut PhysMemory, alloc: &mut dyn FrameAllocator) -> Result<Self, MmError> {
        let root = Self::alloc_table(mem, alloc)?;
        Ok(Self { root })
    }

    /// The PML4 frame.
    pub fn root(&self) -> FrameId {
        self.root
    }

    /// Rebuilds the handle around an existing root frame (snapshot
    /// restore: the table frames themselves live in [`PhysMemory`] and
    /// travel with its contents, so only the root needs recording).
    pub(crate) fn from_root(root: FrameId) -> Self {
        Self { root }
    }

    fn alloc_table(
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
    ) -> Result<FrameId, MmError> {
        let f = alloc.alloc()?;
        mem.info_mut(f).on_alloc(PageType::PageTable);
        mem.zero_page(f);
        Ok(f)
    }

    fn entry_addr(table: FrameId, idx: usize) -> PhysAddr {
        table.base() + (idx as u64) * 8
    }

    fn read_entry(mem: &PhysMemory, table: FrameId, idx: usize) -> Pte {
        Pte(mem.read_u64(Self::entry_addr(table, idx)))
    }

    fn write_entry(mem: &mut PhysMemory, table: FrameId, idx: usize, pte: Pte) {
        mem.write_u64(Self::entry_addr(table, idx), pte.0);
    }

    /// Walks the tables for `va`, recording each entry address touched.
    pub fn walk(&self, mem: &PhysMemory, va: VirtAddr) -> Walk {
        let idx = va.pt_indices();
        let mut steps = Vec::with_capacity(4);
        let mut table = self.root;
        for (level, &ix) in idx.iter().enumerate() {
            let entry_addr = Self::entry_addr(table, ix);
            steps.push(entry_addr);
            let pte = Self::read_entry(mem, table, idx[level]);
            if level == 3 {
                // PT leaf.
                let leaf = if pte.is_empty() {
                    None
                } else {
                    Some(LeafInfo {
                        pte,
                        entry_addr,
                        huge: false,
                    })
                };
                return Walk { steps, leaf };
            }
            if level == 2 && pte.has(PteFlags::HUGE) {
                // PD leaf mapping a 2 MiB page: 3-level walk.
                return Walk {
                    steps,
                    leaf: Some(LeafInfo {
                        pte,
                        entry_addr,
                        huge: true,
                    }),
                };
            }
            if !pte.is_present() {
                return Walk { steps, leaf: None };
            }
            table = pte.frame();
        }
        // The loop always returns at level 3; this is dead code kept only to
        // satisfy control-flow analysis without a panicking branch.
        Walk { steps, leaf: None }
    }

    /// Ensures intermediate tables down to the PT exist and returns the PT
    /// frame. Splits nothing: a huge mapping in the way is
    /// [`MmError::BadPageTable`].
    fn ensure_pt(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
    ) -> Result<FrameId, MmError> {
        let idx = va.pt_indices();
        let mut table = self.root;
        for (level, &ix) in idx.iter().enumerate().take(3) {
            let pte = Self::read_entry(mem, table, ix);
            if level == 2 && pte.has(PteFlags::HUGE) {
                // A 4 KiB mapping was requested under an existing huge
                // mapping; the caller must break_huge first.
                return Err(MmError::BadPageTable(va));
            }
            table = if pte.is_present() {
                pte.frame()
            } else {
                let t = Self::alloc_table(mem, alloc)?;
                Self::write_entry(mem, table, idx[level], Pte::new(t, TABLE_FLAGS));
                t
            };
        }
        Ok(table)
    }

    /// Maps `va` (4 KiB) to `frame` with the given flags.
    ///
    /// # Errors
    ///
    /// [`MmError::BadPageTable`] if the page is already mapped (unmap first)
    /// or a huge mapping covers the address; [`MmError::OutOfFrames`] if an
    /// intermediate table cannot be allocated.
    pub fn map_page(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
        frame: FrameId,
        flags: PteFlags,
    ) -> Result<(), MmError> {
        let pt = self.ensure_pt(mem, alloc, va)?;
        let idx = va.pt_indices()[3];
        let old = Self::read_entry(mem, pt, idx);
        if !old.is_empty() {
            return Err(MmError::BadPageTable(va));
        }
        Self::write_entry(mem, pt, idx, Pte::new(frame, flags));
        Ok(())
    }

    /// Maps a 2 MiB huge page at `va` (must be 2 MiB aligned) to the 512
    /// frames starting at `frame` (must be huge-aligned).
    ///
    /// # Errors
    ///
    /// [`MmError::BadPageTable`] on misalignment or if anything is already
    /// mapped there; [`MmError::OutOfFrames`] if an intermediate table
    /// cannot be allocated.
    pub fn map_huge(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
        frame: FrameId,
        flags: PteFlags,
    ) -> Result<(), MmError> {
        if !va.is_huge_aligned() || !frame.is_huge_aligned() {
            return Err(MmError::BadPageTable(va));
        }
        let idx = va.pt_indices();
        let mut table = self.root;
        for &ix in idx.iter().take(2) {
            let pte = Self::read_entry(mem, table, ix);
            table = if pte.is_present() {
                pte.frame()
            } else {
                let t = Self::alloc_table(mem, alloc)?;
                Self::write_entry(mem, table, ix, Pte::new(t, TABLE_FLAGS));
                t
            };
        }
        let old = Self::read_entry(mem, table, idx[2]);
        if !old.is_empty() {
            return Err(MmError::BadPageTable(va));
        }
        Self::write_entry(mem, table, idx[2], Pte::new(frame, flags | PteFlags::HUGE));
        Ok(())
    }

    /// Reads the leaf mapping for `va` without recording steps.
    pub fn leaf(&self, mem: &PhysMemory, va: VirtAddr) -> Option<LeafInfo> {
        self.walk(mem, va).leaf
    }

    /// Overwrites the leaf entry that maps `va` (4 KiB or huge).
    ///
    /// # Errors
    ///
    /// [`MmError::BadPageTable`] if `va` has no leaf entry.
    pub fn set_leaf(
        &mut self,
        mem: &mut PhysMemory,
        va: VirtAddr,
        pte: Pte,
    ) -> Result<(), MmError> {
        let leaf = self.leaf(mem, va).ok_or(MmError::BadPageTable(va))?;
        mem.write_u64(leaf.entry_addr, pte.0);
        Ok(())
    }

    /// Removes the leaf mapping for `va` and returns the old entry.
    ///
    /// # Errors
    ///
    /// [`MmError::BadPageTable`] if `va` is not mapped.
    pub fn unmap(&mut self, mem: &mut PhysMemory, va: VirtAddr) -> Result<Pte, MmError> {
        let leaf = self.leaf(mem, va).ok_or(MmError::BadPageTable(va))?;
        mem.write_u64(leaf.entry_addr, Pte::EMPTY.0);
        Ok(leaf.pte)
    }

    /// Replaces a huge mapping with a PT of 512 4-KiB entries pointing at
    /// the same 512 frames with the same permission flags (KSM-style huge
    /// page break, §5.1 / §8.1). Returns the new PT frame.
    ///
    /// # Errors
    ///
    /// [`MmError::BadPageTable`] if `va` is not covered by a huge mapping;
    /// [`MmError::OutOfFrames`] if the PT cannot be allocated.
    pub fn break_huge(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
    ) -> Result<FrameId, MmError> {
        let base = va.huge_base();
        let leaf = self.leaf(mem, base).ok_or(MmError::BadPageTable(base))?;
        if !leaf.huge {
            return Err(MmError::BadPageTable(base));
        }
        let flags = leaf.pte.flags() & !PteFlags::HUGE;
        let first = leaf.pte.frame();
        let pt = Self::alloc_table(mem, alloc)?;
        for i in 0..512u64 {
            Self::write_entry(mem, pt, i as usize, Pte::new(FrameId(first.0 + i), flags));
        }
        mem.write_u64(leaf.entry_addr, Pte::new(pt, TABLE_FLAGS).0);
        Ok(pt)
    }

    /// Replaces 512 4-KiB mappings (which must cover the whole huge range
    /// starting at `va`, all pointing into the huge-aligned block starting
    /// at `frame`) with one huge mapping, freeing the PT frame.
    ///
    /// # Errors
    ///
    /// [`MmError::BadPageTable`] on misalignment, when the PD slot does not
    /// hold a PT, or when the PT frame is multiply referenced; free errors
    /// from the allocator propagate.
    pub fn collapse_huge(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
        frame: FrameId,
        flags: PteFlags,
    ) -> Result<(), MmError> {
        if !va.is_huge_aligned() || !frame.is_huge_aligned() {
            return Err(MmError::BadPageTable(va));
        }
        let idx = va.pt_indices();
        let mut table = self.root;
        for &ix in idx.iter().take(2) {
            let pte = Self::read_entry(mem, table, ix);
            if !pte.is_present() {
                return Err(MmError::BadPageTable(va));
            }
            table = pte.frame();
        }
        let pd_entry = Self::read_entry(mem, table, idx[2]);
        if !pd_entry.is_present() || pd_entry.has(PteFlags::HUGE) {
            return Err(MmError::BadPageTable(va));
        }
        let pt = pd_entry.frame();
        // Validate the PT's refcount before touching the PD entry, so a
        // rejected collapse leaves the tables unchanged.
        let mut info = mem.info_mut(pt);
        if !info.put() {
            return Err(MmError::BadPageTable(va));
        }
        info.on_free();
        drop(info);
        Self::write_entry(mem, table, idx[2], Pte::new(frame, flags | PteFlags::HUGE));
        // Release the now-unused PT frame. Zero it first: every free path
        // must scrub, or stale PTE bytes would leak into later demand-zero
        // pages (the buddy's LIFO reuse hands this frame out next).
        mem.zero_page(pt);
        alloc.free(pt)?;
        Ok(())
    }

    /// Whether the PD slot covering `va` is completely empty (no PT, no
    /// huge mapping) — i.e. a 2 MiB demand mapping could be installed.
    pub fn huge_slot_free(&self, mem: &PhysMemory, va: VirtAddr) -> bool {
        let idx = va.pt_indices();
        let mut table = self.root;
        for &ix in idx.iter().take(2) {
            let pte = Self::read_entry(mem, table, ix);
            if !pte.is_present() {
                return true;
            }
            table = pte.frame();
        }
        Self::read_entry(mem, table, idx[2]).is_empty()
    }

    /// Tests and clears the ACCESSED bit of the leaf mapping `va` — the
    /// idle-page-tracking primitive (§7.2). Returns `None` if unmapped.
    pub fn test_and_clear_accessed(&mut self, mem: &mut PhysMemory, va: VirtAddr) -> Option<bool> {
        let leaf = self.leaf(mem, va)?;
        let was = leaf.pte.has(PteFlags::ACCESSED);
        if was {
            mem.write_u64(leaf.entry_addr, leaf.pte.clear(PteFlags::ACCESSED).0);
        }
        Some(was)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_mem::BuddyAllocator;

    fn setup() -> (PhysMemory, BuddyAllocator, PageTables) {
        let mut mem = PhysMemory::new(4096);
        let mut alloc = BuddyAllocator::new(FrameId(0), 4096);
        let pt = PageTables::new(&mut mem, &mut alloc).expect("PML4");
        (mem, alloc, pt)
    }

    fn user_frame(mem: &mut PhysMemory, alloc: &mut BuddyAllocator) -> FrameId {
        let f = alloc.alloc().expect("frame");
        mem.info_mut(f).on_alloc(PageType::Anon);
        f
    }

    #[test]
    fn map_and_walk_4k() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x7000_0000_0000);
        pt.map_page(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::USER,
        )
        .expect("map");
        let w = pt.walk(&mem, va);
        assert_eq!(w.steps.len(), 4, "4 KiB mapping walks four levels");
        let leaf = w.leaf.expect("mapped");
        assert_eq!(leaf.pte.frame(), f);
        assert!(!leaf.huge);
    }

    #[test]
    fn unmapped_walk_has_no_leaf() {
        let (mem, _alloc, pt) = setup();
        let w = pt.walk(&mem, VirtAddr(0x1234_5000));
        assert!(w.leaf.is_none());
        assert_eq!(w.steps.len(), 1, "stops at the first non-present level");
    }

    #[test]
    fn huge_mapping_walks_three_levels() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(0x4000_0000);
        pt.map_huge(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        )
        .expect("map_huge");
        let w = pt.walk(&mem, va + 5 * 4096 + 3);
        assert_eq!(w.steps.len(), 3, "2 MiB mapping walks three levels");
        let leaf = w.leaf.expect("mapped");
        assert!(leaf.huge);
        assert_eq!(leaf.pte.frame(), f);
    }

    #[test]
    fn break_huge_preserves_translation() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(0x4000_0000);
        pt.map_huge(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        )
        .expect("map_huge");
        pt.break_huge(&mut mem, &mut alloc, va + 17 * 4096)
            .expect("break_huge");
        // Every sub-page now maps 4 KiB to the corresponding frame.
        for i in [0u64, 17, 511] {
            let w = pt.walk(&mem, va + i * 4096);
            assert_eq!(w.steps.len(), 4, "now a 4-level walk");
            let leaf = w.leaf.expect("still mapped");
            assert!(!leaf.huge);
            assert_eq!(leaf.pte.frame(), FrameId(f.0 + i));
            assert!(leaf.pte.has(PteFlags::WRITABLE));
        }
    }

    #[test]
    fn collapse_huge_restores_three_level_walk() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(0x4000_0000);
        pt.map_huge(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        )
        .expect("map_huge");
        pt.break_huge(&mut mem, &mut alloc, va).expect("break_huge");
        let table_frames_before = alloc.free_frames();
        pt.collapse_huge(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        )
        .expect("collapse_huge");
        assert_eq!(
            alloc.free_frames(),
            table_frames_before + 1,
            "PT frame freed"
        );
        let w = pt.walk(&mem, va + 4096);
        assert_eq!(w.steps.len(), 3);
        assert!(w.leaf.expect("mapped").huge);
    }

    #[test]
    fn set_leaf_changes_mapping() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let g = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x1000);
        pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT)
            .expect("map");
        let leaf = pt.leaf(&mem, va).expect("mapped");
        pt.set_leaf(
            &mut mem,
            va,
            leaf.pte
                .with_frame(g)
                .set(PteFlags::RESERVED | PteFlags::NO_CACHE),
        )
        .expect("set_leaf");
        let new = pt.leaf(&mem, va).expect("mapped");
        assert_eq!(new.pte.frame(), g);
        assert!(new.pte.is_trapped());
        assert!(new.pte.has(PteFlags::NO_CACHE));
    }

    #[test]
    fn set_leaf_on_unmapped_is_reported() {
        let (mut mem, _alloc, mut pt) = setup();
        let va = VirtAddr(0x5000);
        assert_eq!(
            pt.set_leaf(&mut mem, va, Pte::EMPTY),
            Err(MmError::BadPageTable(va))
        );
    }

    #[test]
    fn unmap_clears_leaf() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x2000);
        pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT)
            .expect("map");
        let old = pt.unmap(&mut mem, va).expect("unmap");
        assert_eq!(old.frame(), f);
        assert!(pt.leaf(&mem, va).is_none());
        assert_eq!(
            pt.unmap(&mut mem, va),
            Err(MmError::BadPageTable(va)),
            "second unmap is a typed error"
        );
    }

    #[test]
    fn accessed_bit_test_and_clear() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x3000);
        pt.map_page(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::ACCESSED,
        )
        .expect("map");
        assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(true));
        assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(false));
        assert_eq!(
            pt.test_and_clear_accessed(&mut mem, VirtAddr(0x9999_0000)),
            None
        );
    }

    #[test]
    fn distinct_addresses_share_tables() {
        let (mut mem, mut alloc, mut pt) = setup();
        let free_before = alloc.free_frames();
        let f1 = user_frame(&mut mem, &mut alloc);
        let f2 = user_frame(&mut mem, &mut alloc);
        pt.map_page(
            &mut mem,
            &mut alloc,
            VirtAddr(0x1000),
            f1,
            PteFlags::PRESENT,
        )
        .expect("map");
        let tables_after_first = free_before - alloc.free_frames();
        pt.map_page(
            &mut mem,
            &mut alloc,
            VirtAddr(0x2000),
            f2,
            PteFlags::PRESENT,
        )
        .expect("map");
        let tables_after_second = free_before - alloc.free_frames();
        // The second mapping reuses the same PDPT/PD/PT: no new table frames.
        assert_eq!(tables_after_second, tables_after_first);
    }

    #[test]
    fn double_map_is_reported() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x1000);
        pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT)
            .expect("map");
        assert_eq!(
            pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT),
            Err(MmError::BadPageTable(va)),
            "remapping must be a typed error"
        );
        // The original mapping is untouched.
        assert_eq!(pt.leaf(&mem, va).expect("mapped").pte.frame(), f);
    }

    #[test]
    fn huge_map_requires_alignment() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(0x1000);
        assert_eq!(
            pt.map_huge(&mut mem, &mut alloc, va, f, PteFlags::PRESENT),
            Err(MmError::BadPageTable(va))
        );
    }

    #[test]
    fn map_under_huge_is_reported() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(0x4000_0000);
        pt.map_huge(&mut mem, &mut alloc, va, f, PteFlags::PRESENT)
            .expect("map_huge");
        let inner = va + 3 * 4096;
        let g = user_frame(&mut mem, &mut alloc);
        assert_eq!(
            pt.map_page(&mut mem, &mut alloc, inner, g, PteFlags::PRESENT),
            Err(MmError::BadPageTable(inner)),
            "4 KiB map under a huge mapping must be a typed error"
        );
    }

    #[test]
    fn out_of_frames_surfaces_from_table_allocation() {
        let mut mem = PhysMemory::new(2);
        let mut alloc = BuddyAllocator::new(FrameId(0), 2);
        let mut pt = PageTables::new(&mut mem, &mut alloc).expect("PML4");
        let f = alloc.alloc().expect("frame");
        mem.info_mut(f).on_alloc(PageType::Anon);
        // No frames left for the PDPT/PD/PT chain.
        assert_eq!(
            pt.map_page(&mut mem, &mut alloc, VirtAddr(0x1000), f, PteFlags::PRESENT),
            Err(MmError::OutOfFrames)
        );
    }
}
